"""Analytic prefilter: same winners, half the wall-clock timing."""

import numpy as np
import pytest

from repro.analysis.cost import COST_CACHE_ENV
from repro.analysis.cost.calibrate import clear_calibration_memo
from repro.core.config import MixGemmConfig
from repro.tuning import TuneCache, tune_graph
from repro.tuning.space import (
    analytic_score,
    candidate_space,
    prefilter_candidates,
)


@pytest.fixture(autouse=True)
def _isolated_cost_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(COST_CACHE_ENV, str(tmp_path / "costcache"))
    clear_calibration_memo()
    yield
    clear_calibration_memo()


CONFIG = MixGemmConfig(bw_a=8, bw_b=8)
M, N, K = 16, 16, 512


def _space():
    return candidate_space(CONFIG, M, N, K, event_mac_limit=0)


class TestAnalyticScore:
    def test_fast_backend_ranks_ahead_of_event(self):
        space = candidate_space(CONFIG, 4, 4, 64)
        fast = next(c for c in space if c.backend == "fast")
        event = next(c for c in space if c.backend == "event")
        assert analytic_score(CONFIG, fast, 4, 4, 64) < \
            analytic_score(CONFIG, event, 4, 4, 64)

    def test_score_is_deterministic(self):
        cand = _space()[0]
        assert analytic_score(CONFIG, cand, M, N, K) == \
            analytic_score(CONFIG, cand, M, N, K)

    def test_larger_gemm_costs_more(self):
        cand = _space()[0]
        small = analytic_score(CONFIG, cand, M, N, K)
        large = analytic_score(CONFIG, cand, 4 * M, N, K)
        assert large[1] > small[1]


class TestPrefilterCandidates:
    def test_keeps_default_at_index_zero(self):
        space = _space()
        kept, scored = prefilter_candidates(CONFIG, space, M, N, K)
        assert kept[0] == space[0]
        assert scored == len(space)

    def test_times_at_most_half_of_large_spaces(self):
        space = candidate_space(CONFIG, 4, 4, 512)  # event points too
        assert len(space) > 4
        kept, scored = prefilter_candidates(CONFIG, space, 4, 4, 512)
        assert len(kept) <= max(2, scored // 2)

    def test_preserves_original_order(self):
        space = _space()
        kept, _ = prefilter_candidates(CONFIG, space, M, N, K)
        indices = [space.index(c) for c in kept]
        assert indices == sorted(indices)

    def test_tiny_spaces_pass_through(self):
        space = _space()[:3]
        assert len(space) <= 3
        kept, scored = prefilter_candidates(CONFIG, space, M, N, K)
        assert kept == space
        assert scored == len(space)


class TestCampaignEquivalence:
    def _graph(self, k=512, n=16):
        from repro.runtime.graph import GraphModel, NodeSpec

        rng = np.random.default_rng(3)
        node = NodeSpec(op="quant_linear", attrs={
            "act_bits": 8, "weight_bits": 8,
            "act_signed": True, "act_scale": 0.05})
        node.tensors["weight"] = rng.standard_normal((n, k)) * 0.05
        return GraphModel(nodes=[node], name="prefilter-probe")

    def test_same_winner_as_exhaustive_sweep(self, tmp_path):
        graph = self._graph()
        x = np.random.default_rng(5).standard_normal((8, 512))
        full = tune_graph(graph, x, cache=TuneCache(tmp_path / "full"),
                          event_mac_limit=0)
        pre = tune_graph(graph, x, cache=TuneCache(tmp_path / "pre"),
                         event_mac_limit=0, analytic_prefilter=True)
        (lo_full,), (lo_pre,) = full.layers, pre.layers
        assert lo_pre.blocking == lo_full.blocking
        assert lo_pre.backend == lo_full.backend
        assert lo_pre.cores == lo_full.cores

    def test_prefilter_records_scored_and_timed_counts(self, tmp_path):
        graph = self._graph()
        x = np.random.default_rng(5).standard_normal((8, 512))
        pre = tune_graph(graph, x, cache=TuneCache(tmp_path / "pre"),
                         event_mac_limit=0, analytic_prefilter=True)
        (lo,) = pre.layers
        assert lo.candidates_scored >= lo.candidates
        assert lo.as_dict()["candidates_scored"] == lo.candidates_scored
        assert "analytic prefilter" in pre.render()

    def test_exhaustive_sweep_reports_no_scoring(self, tmp_path):
        graph = self._graph()
        x = np.random.default_rng(5).standard_normal((8, 512))
        full = tune_graph(graph, x, cache=TuneCache(tmp_path / "full"),
                          event_mac_limit=0)
        (lo,) = full.layers
        assert lo.candidates_scored == 0
        assert "analytic prefilter" not in full.render()
