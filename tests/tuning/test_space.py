"""Candidate-space pruning: grid validity, kc dedup, degenerate shapes."""

import pytest

from repro.core.config import (
    BlockingParams,
    MixGemmConfig,
    blocking_candidates,
    blocking_problems,
)
from repro.tuning import (
    candidate_space,
    default_candidate,
    effective_kc_split,
)


class TestGridValidity:
    def test_mr_exceeding_mc_rejected(self):
        problems = blocking_problems(4, 16, 64, 16, 4)
        assert any("mr=16 exceeds mc=4" in p for p in problems)
        with pytest.raises(ValueError, match="mr cannot exceed mc"):
            BlockingParams(mc=4, nc=16, kc=64, mr=16, nr=4)

    def test_nr_exceeding_nc_rejected(self):
        problems = blocking_problems(16, 4, 64, 4, 16)
        assert any("nr=16 exceeds nc=4" in p for p in problems)
        with pytest.raises(ValueError, match="nr cannot exceed nc"):
            BlockingParams(mc=16, nc=4, kc=64, mr=4, nr=16)

    def test_nonpositive_axes_rejected(self):
        assert blocking_problems(0, 16, 64, 4, 4)
        assert blocking_problems(16, 16, -1, 4, 4)

    def test_default_grid_all_buildable(self):
        grid = blocking_candidates()
        assert grid
        for b in grid:
            assert blocking_problems(b.mc, b.nc, b.kc, b.mr, b.nr) == []

    def test_invalid_grid_points_filtered_not_raised(self):
        grid = blocking_candidates(mc_values=(2, 16), mr_values=(4,))
        assert all(b.mr <= b.mc for b in grid)
        assert {b.mc for b in grid} == {16}


class TestKcDedup:
    def test_kc_past_k_collapses_to_one_split(self):
        """Every kc whose span covers K maps to the same execution."""
        config = MixGemmConfig(bw_a=8, bw_b=8)
        k = 16     # far below even the smallest kc span (16 * 8 = 128)
        splits = {effective_kc_split(config, b, k)
                  for b in blocking_candidates()}
        assert len(splits) == 1

    def test_fast_candidates_deduped_by_split(self):
        config = MixGemmConfig(bw_a=8, bw_b=8)
        cands = candidate_space(config, 8, 8, 16, event_mac_limit=0)
        fast = [c for c in cands if c.backend == "fast"]
        # one split -> exactly the default candidate survives
        assert len(fast) == 1
        assert fast[0].blocking == config.blocking

    def test_multiple_splits_survive_for_large_k(self):
        config = MixGemmConfig(bw_a=8, bw_b=8)
        k = 8192
        cands = candidate_space(config, 8, 8, k, event_mac_limit=0)
        fast = [c for c in cands if c.backend == "fast"]
        splits = {effective_kc_split(config, c.blocking, k) for c in fast}
        assert len(splits) == len(fast) > 1

    def test_split_grows_with_compression(self):
        b = BlockingParams(mc=16, nc=16, kc=64)
        k = 1 << 20
        split8 = effective_kc_split(MixGemmConfig(bw_a=8, bw_b=8), b, k)
        split2 = effective_kc_split(MixGemmConfig(bw_a=2, bw_b=2), b, k)
        assert split2 > split8


class TestCandidateList:
    def test_default_always_leads(self):
        config = MixGemmConfig(bw_a=8, bw_b=8)
        cands = candidate_space(config, 16, 16, 256)
        assert cands[0] == default_candidate(config, 256)
        assert cands[0].blocking == config.blocking

    def test_event_candidates_gated_by_mac_limit(self):
        config = MixGemmConfig(bw_a=8, bw_b=8)
        small = candidate_space(config, 4, 4, 16, event_mac_limit=1 << 16)
        large = candidate_space(config, 512, 512, 8192,
                                event_mac_limit=1 << 16)
        assert any(c.backend == "event" for c in small)
        assert not any(c.backend == "event" for c in large)

    def test_degenerate_one_row_layer(self):
        config = MixGemmConfig(bw_a=8, bw_b=8)
        cands = candidate_space(config, 1, 64, 128)
        assert cands and cands[0].backend in ("fast", "event")
        assert all(c.cores == 1 for c in cands)

    def test_degenerate_one_column_layer(self):
        config = MixGemmConfig(bw_a=8, bw_b=8)
        cands = candidate_space(config, 64, 1, 128)
        assert cands
        assert len({(c.backend, c.blocking, c.cores)
                    for c in cands}) == len(cands)

    def test_cores_axis_expands_the_space(self):
        config = MixGemmConfig(bw_a=8, bw_b=8)
        one = candidate_space(config, 16, 64, 8192, event_mac_limit=0)
        two = candidate_space(config, 16, 64, 8192, event_mac_limit=0,
                              cores_values=(1, 2))
        assert len(two) > len(one)
        assert any(c.cores == 2 for c in two)
