"""Tuned-cache consumption at plan compile, export and attach."""

import json

import numpy as np
import pytest

from repro.core.config import BlockingParams, MixGemmConfig
from repro.robustness.errors import ReliabilityWarning
from repro.runtime.graph import GraphModel, NodeSpec
from repro.runtime.plan import attach_plan, compile_graph, export_plan
from repro.tuning import TuneCache, TuneEntry, TuneKey

K, N = 8192, 16
TUNED_BLOCKING = (16, 16, 256, 4, 4)


def big_k_graph(seed=0):
    rng = np.random.default_rng(seed)
    node = NodeSpec(op="quant_linear", attrs={
        "act_bits": 8, "weight_bits": 8,
        "act_signed": True, "act_scale": 0.05})
    node.tensors["weight"] = rng.standard_normal((N, K)) * 0.05
    return GraphModel(nodes=[node], name="bigk")


def seeded_cache(tmp_path, blocking=TUNED_BLOCKING):
    """A cache holding one hand-crafted winner for the big-K layer."""
    cache = TuneCache(tmp_path)
    key = TuneKey.from_config(MixGemmConfig(bw_a=8, bw_b=8), 4, N, K,
                              fuse=True, gemm_backend="auto")
    cache.put(TuneEntry(key=key, blocking=blocking, backend="fast",
                        cores=1, median_s=0.001, default_median_s=0.002,
                        candidates=5))
    return cache


@pytest.fixture
def x():
    return np.random.default_rng(7).standard_normal((4, K))


class TestTunedCompile:
    def test_cache_entry_applied_and_bit_exact(self, tmp_path, x):
        graph = big_k_graph()
        default = compile_graph(graph, backend="mixgemm")
        tuned = compile_graph(graph, backend="mixgemm", tuned=True,
                              tune_cache=seeded_cache(tmp_path))
        label = tuned.steps[0].stats_label
        assert tuned.info.tuned
        assert tuned.info.tuned_layers == {label: TUNED_BLOCKING}
        assert tuned.steps[0].gemm.config.blocking == \
            BlockingParams(*TUNED_BLOCKING)
        np.testing.assert_array_equal(tuned.run(x).output,
                                      default.run(x).output)

    def test_default_winner_not_recorded(self, tmp_path, x):
        """An entry whose winner is the simulator default leaves the
        plan untuned -- no override to carry, nothing to re-apply."""
        cache = seeded_cache(tmp_path, blocking=(16, 16, 64, 4, 4))
        tuned = compile_graph(big_k_graph(), backend="mixgemm",
                              tuned=True, tune_cache=cache)
        assert tuned.info.tuned
        assert tuned.info.tuned_layers == {}

    def test_untuned_compile_ignores_cache(self, tmp_path):
        tuned = compile_graph(big_k_graph(), backend="mixgemm",
                              tune_cache=seeded_cache(tmp_path))
        assert not tuned.info.tuned
        assert tuned.info.tuned_layers == {}

    def test_corrupt_cache_degrades_to_default(self, tmp_path, x):
        cache = seeded_cache(tmp_path)
        for path in tmp_path.glob("*.json"):
            path.write_text("{ torn", encoding="utf-8")
        with pytest.warns(ReliabilityWarning, match="ignoring"):
            plan = compile_graph(big_k_graph(), backend="mixgemm",
                                 tuned=True, tune_cache=TuneCache(tmp_path))
        assert plan.info.tuned_layers == {}
        default = compile_graph(big_k_graph(), backend="mixgemm")
        np.testing.assert_array_equal(plan.run(x).output,
                                      default.run(x).output)

    def test_blocking_overrides_direct(self, x):
        graph = big_k_graph()
        plan = compile_graph(graph, backend="mixgemm")
        label = plan.steps[0].stats_label
        forced = compile_graph(
            graph, backend="mixgemm",
            blocking_overrides={label: BlockingParams(*TUNED_BLOCKING)})
        assert forced.info.tuned
        assert forced.info.tuned_layers == {label: TUNED_BLOCKING}
        np.testing.assert_array_equal(forced.run(x).output,
                                      plan.run(x).output)

    def test_info_as_dict_carries_tuning(self, tmp_path):
        plan = compile_graph(big_k_graph(), backend="mixgemm",
                             tuned=True,
                             tune_cache=seeded_cache(tmp_path))
        payload = json.loads(json.dumps(plan.info.as_dict()))
        assert payload["tuned"] is True
        assert list(payload["tuned_layers"].values()) == \
            [list(TUNED_BLOCKING)]


class TestExportAttach:
    def test_tuned_plan_round_trips(self, tmp_path, x):
        tuned = compile_graph(big_k_graph(), backend="mixgemm",
                              tuned=True,
                              tune_cache=seeded_cache(tmp_path))
        expected = tuned.run(x).output
        shared = export_plan(tuned)
        try:
            assert shared.handle.tuned_blocking
            assert dict(shared.handle.tuned_blocking) == \
                tuned.info.tuned_layers
            attached = attach_plan(shared.handle)
            try:
                assert attached.plan.info.tuned_layers == \
                    tuned.info.tuned_layers
                np.testing.assert_array_equal(
                    attached.plan.run(x).output, expected)
            finally:
                attached.close()
        finally:
            shared.close()

    def test_untuned_handle_has_empty_tuning(self, x):
        plan = compile_graph(big_k_graph(), backend="mixgemm")
        shared = export_plan(plan)
        try:
            assert shared.handle.tuned_blocking == ()
            attached = attach_plan(shared.handle)
            try:
                np.testing.assert_array_equal(
                    attached.plan.run(x).output, plan.run(x).output)
            finally:
                attached.close()
        finally:
            shared.close()
