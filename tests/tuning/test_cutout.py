"""Cutout extraction: real operands, exact reconstruction, guardrails."""

import numpy as np
import pytest

from repro.core.gemm import reference_gemm
from repro.robustness.faults import demo_graph, demo_input
from repro.runtime.graph import GraphModel, NodeSpec
from repro.runtime.plan import compile_graph
from repro.tuning import TuningError, extract_cutouts
from repro.tuning.cutout import bound_weight_operand


@pytest.fixture(scope="module")
def demo_plan():
    return compile_graph(demo_graph(), backend="mixgemm")


@pytest.fixture(scope="module")
def demo_x():
    return demo_input()


def linear_graph(k, n, *, act_bits=8, weight_bits=8, seed=0):
    rng = np.random.default_rng(seed)
    node = NodeSpec(op="quant_linear", attrs={
        "act_bits": act_bits, "weight_bits": weight_bits,
        "act_signed": True, "act_scale": 0.05})
    node.tensors["weight"] = rng.standard_normal((n, k)) * 0.05
    return GraphModel(nodes=[node], name=f"lin-{k}x{n}")


class TestExtraction:
    def test_one_cutout_per_quantized_layer(self, demo_plan, demo_x):
        cutouts = extract_cutouts(demo_plan, demo_x)
        quantized = [s for s in demo_plan.steps
                     if getattr(s, "gemm", None) is not None
                     or getattr(s, "gemms", [])]
        assert len(cutouts) == len(quantized)
        assert [c.label for c in cutouts] == \
            [s.stats_label for s in quantized]

    def test_operand_shapes_agree(self, demo_plan, demo_x):
        for c in extract_cutouts(demo_plan, demo_x):
            assert c.a.ndim == c.b.ndim == 2
            assert c.a.shape == (c.m, c.k)
            assert c.b.shape == (c.k, c.n)
            assert c.macs == c.m * c.n * c.k
            assert c.config.name in c.describe()

    def test_activations_in_quantized_range(self, demo_plan, demo_x):
        for c in extract_cutouts(demo_plan, demo_x):
            bound = 1 << (c.config.bw_a - 1)
            assert c.a.dtype == np.int64
            assert int(np.abs(c.a).max()) <= bound

    def test_cutout_reproduces_the_plan_layer(self):
        """The simulated GEMM on the cutout operands matches plain
        int64 reference_gemm -- the cutout IS the layer's real work."""
        from repro.core.gemm import MixGemm

        graph = linear_graph(96, 24)
        plan = compile_graph(graph, backend="mixgemm")
        rng = np.random.default_rng(3)
        x = rng.standard_normal((8, 96))
        (cutout,) = extract_cutouts(plan, x)
        executor = MixGemm(cutout.config, emulate_datapath=False)
        got = executor.gemm(cutout.a, cutout.b).c
        assert np.array_equal(got, reference_gemm(cutout.a, cutout.b))

    def test_weight_reconstruction_matches_event_panel(self):
        """Fast-mode kc-block reassembly equals the event-mode panel."""
        graph = linear_graph(4096, 16)
        x = np.random.default_rng(5).standard_normal((4, 4096))
        fast = compile_graph(graph, backend="mixgemm",
                             gemm_backend="fast")
        event = compile_graph(graph, backend="mixgemm",
                              gemm_backend="event")
        b_fast = bound_weight_operand(fast.steps[0].gemm)
        b_event = bound_weight_operand(event.steps[0].gemm)
        assert b_fast.shape == b_event.shape
        assert np.array_equal(b_fast, b_event)
        (c_fast,) = extract_cutouts(fast, x)
        (c_event,) = extract_cutouts(event, x)
        assert np.array_equal(c_fast.a, c_event.a)


class TestGuardrails:
    def test_numpy_backend_rejected(self, demo_x):
        plan = compile_graph(demo_graph(), backend="numpy")
        with pytest.raises(TuningError, match="mixgemm"):
            extract_cutouts(plan, demo_x)

    def test_no_quantized_layers_rejected(self):
        graph = GraphModel(nodes=[NodeSpec(op="relu")], name="actonly")
        plan = compile_graph(graph, backend="mixgemm")
        with pytest.raises(TuningError, match="no quantized"):
            extract_cutouts(plan, np.ones((2, 4)))

    def test_hook_restored_after_extraction(self, demo_plan, demo_x):
        from repro.runtime.observe import set_range_hook

        sentinel_calls = []
        previous = set_range_hook(
            lambda label, kind, values: sentinel_calls.append(label))
        try:
            extract_cutouts(demo_plan, demo_x)
            n_during = len(sentinel_calls)
            demo_plan.run(demo_x)
            assert len(sentinel_calls) > n_during
        finally:
            set_range_hook(previous)
