"""On-disk tune cache: atomic writes, damage tolerance, dual keying."""

import json
import os

import pytest

from repro.core.config import MixGemmConfig
from repro.robustness.errors import ReliabilityWarning
from repro.tuning import (
    TUNE_CACHE_ENV,
    TUNE_SCHEMA_VERSION,
    TuneCache,
    TuneEntry,
    TuneKey,
    default_cache_dir,
)


def make_key(m=64, n=32, k=256, bw_a=8, bw_w=8):
    config = MixGemmConfig(bw_a=bw_a, bw_b=bw_w)
    return TuneKey.from_config(config, m, n, k, fuse=True,
                               gemm_backend="auto")


def make_entry(key, blocking=(16, 16, 256, 4, 4)):
    return TuneEntry(key=key, blocking=blocking, backend="fast",
                     cores=1, median_s=0.001, default_median_s=0.002,
                     candidates=7)


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        cache = TuneCache(tmp_path)
        entry = make_entry(make_key())
        cache.put(entry)
        got = cache.get(entry.key)
        assert got == entry
        assert got.speedup == pytest.approx(2.0)

    def test_hit_miss_accounting(self, tmp_path):
        cache = TuneCache(tmp_path)
        key = make_key()
        assert cache.get(key) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put(make_entry(key))
        assert cache.get(key) is not None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_distinct_shapes_distinct_files(self, tmp_path):
        cache = TuneCache(tmp_path)
        cache.put(make_entry(make_key(k=128)))
        cache.put(make_entry(make_key(k=256)))
        assert len(list(tmp_path.glob("*.json"))) == 2
        assert len(cache.entries()) == 2

    def test_clear(self, tmp_path):
        cache = TuneCache(tmp_path)
        cache.put(make_entry(make_key()))
        assert cache.clear() == 1
        assert cache.entries() == []
        assert cache.get(make_key()) is None


class TestAtomicity:
    def test_no_temp_files_survive_put(self, tmp_path):
        cache = TuneCache(tmp_path)
        cache.put(make_entry(make_key()))
        leftovers = [p for p in tmp_path.iterdir()
                     if not p.name.endswith(".json")]
        assert leftovers == []

    def test_put_republishes_whole_entry(self, tmp_path):
        """A second put of the same key atomically replaces the file."""
        cache = TuneCache(tmp_path)
        key = make_key()
        cache.put(make_entry(key, blocking=(16, 16, 64, 4, 4)))
        cache.put(make_entry(key, blocking=(256, 256, 1024, 4, 4)))
        assert cache.get(key).blocking == (256, 256, 1024, 4, 4)
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_put_failure_leaves_no_temp(self, tmp_path, monkeypatch):
        cache = TuneCache(tmp_path)

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            cache.put(make_entry(make_key()))
        monkeypatch.undo()
        assert list(tmp_path.iterdir()) == []


class TestDamageTolerance:
    def test_corrupt_entry_warns_and_reads_as_absent(self, tmp_path):
        cache = TuneCache(tmp_path)
        key = make_key()
        path = cache.put(make_entry(key))
        path.write_text("{ torn json", encoding="utf-8")
        fresh = TuneCache(tmp_path)
        with pytest.warns(ReliabilityWarning, match="ignoring"):
            assert fresh.get(key) is None
        assert fresh.misses == 1

    def test_version_skew_warns_and_reads_as_absent(self, tmp_path):
        cache = TuneCache(tmp_path)
        key = make_key()
        path = cache.put(make_entry(key))
        payload = json.loads(path.read_text())
        payload["schema"] = TUNE_SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        fresh = TuneCache(tmp_path)
        with pytest.warns(ReliabilityWarning, match="schema"):
            assert fresh.get(key) is None

    def test_unbuildable_persisted_blocking_rejected(self, tmp_path):
        cache = TuneCache(tmp_path)
        key = make_key()
        path = cache.put(make_entry(key))
        payload = json.loads(path.read_text())
        payload["blocking"] = [4, 4, 64, 16, 16]   # mr > mc
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.warns(ReliabilityWarning):
            assert TuneCache(tmp_path).get(key) is None

    def test_key_mismatch_warns(self, tmp_path):
        """An entry renamed onto another digest is rejected."""
        cache = TuneCache(tmp_path)
        entry = make_entry(make_key(k=128))
        src = cache.put(entry)
        other = make_key(k=256)
        os.replace(src, tmp_path / f"{other.digest()}.json")
        with pytest.warns(ReliabilityWarning, match="digest"):
            assert TuneCache(tmp_path).get(other) is None

    def test_corrupt_neighbour_does_not_block_good_entries(self, tmp_path):
        cache = TuneCache(tmp_path)
        good = make_entry(make_key())
        cache.put(good)
        (tmp_path / "zzzz-broken.json").write_text("not json")
        fresh = TuneCache(tmp_path)
        with pytest.warns(ReliabilityWarning):
            entries = fresh.entries()
        assert entries == [good]


class TestShapeLookup:
    def test_lookup_by_shape_digest(self, tmp_path):
        cache = TuneCache(tmp_path)
        entry = make_entry(make_key())
        cache.put(entry)
        fresh = TuneCache(tmp_path)
        assert fresh.lookup_shape(entry.key.shape_digest()) == entry
        # compile-time consultation is not campaign accounting
        assert (fresh.hits, fresh.misses) == (0, 0)

    def test_same_shape_different_m_share_digest(self, tmp_path):
        k64, k128 = make_key(m=64), make_key(m=128)
        assert k64.digest() != k128.digest()
        assert k64.shape_digest() == k128.shape_digest()

    def test_later_file_wins_on_shape_collision(self, tmp_path):
        cache = TuneCache(tmp_path)
        a = make_entry(make_key(m=64), blocking=(16, 16, 64, 4, 4))
        b = make_entry(make_key(m=128), blocking=(16, 16, 256, 4, 4))
        cache.put(a)
        cache.put(b)
        winner = TuneCache(tmp_path).lookup_shape(a.key.shape_digest())
        last_digest = sorted([a.key.digest(), b.key.digest()])[-1]
        assert winner.key.digest() == last_digest

    def test_put_invalidates_index(self, tmp_path):
        cache = TuneCache(tmp_path)
        entry = make_entry(make_key())
        assert cache.lookup_shape(entry.key.shape_digest()) is None
        cache.put(entry)
        assert cache.lookup_shape(entry.key.shape_digest()) == entry


class TestDefaultLocation:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TUNE_CACHE_ENV, str(tmp_path / "alt"))
        assert default_cache_dir() == tmp_path / "alt"
        assert TuneCache().path == tmp_path / "alt"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv(TUNE_CACHE_ENV, raising=False)
        assert default_cache_dir().as_posix().endswith(
            ".cache/repro/tune")
