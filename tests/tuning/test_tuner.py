"""Campaign orchestration: dedup, persistence, exactness, fan-out."""

import numpy as np
import pytest

from repro.core.config import BlockingParams, MixGemmConfig
from repro.robustness.errors import ReliabilityWarning
from repro.runtime.graph import GraphModel, NodeSpec
from repro.tuning import (
    Candidate,
    TuneCache,
    fan_out_measurements,
    measure_candidate,
    measure_serial,
    reference_digest,
    tune_graph,
)

#: Small grid so campaign tests stay fast.
GRID = [BlockingParams(mc=16, nc=16, kc=16),
        BlockingParams(mc=16, nc=16, kc=64),
        BlockingParams(mc=16, nc=16, kc=1024)]


def quant_linear_node(k, n, *, act_bits=8, weight_bits=8, seed=0):
    rng = np.random.default_rng(seed)
    node = NodeSpec(op="quant_linear", attrs={
        "act_bits": act_bits, "weight_bits": weight_bits,
        "act_signed": True, "act_scale": 0.05})
    node.tensors["weight"] = rng.standard_normal((n, k)) * 0.05
    return node


def two_identical_layers_graph(dim=24):
    """Two quant_linear layers with the same (K, N) = duplicate shape."""
    return GraphModel(nodes=[
        quant_linear_node(dim, dim, seed=0),
        NodeSpec(op="relu"),
        quant_linear_node(dim, dim, seed=1),
    ], name="twins")


class TestCampaign:
    def test_duplicate_shapes_tune_once(self, tmp_path):
        cache = TuneCache(tmp_path)
        x = np.random.default_rng(2).standard_normal((4, 24))
        report = tune_graph(two_identical_layers_graph(), x, cache=cache,
                            blockings=GRID, repeats=2, warmup=1,
                            fuse=False)
        assert len(report.layers) == 2
        assert [lo.cached for lo in report.layers] == [False, True]
        assert (report.hits, report.misses) == (1, 1)
        assert report.swept == 1
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_second_run_is_all_hits(self, tmp_path):
        graph = two_identical_layers_graph()
        x = np.random.default_rng(2).standard_normal((4, 24))
        tune_graph(graph, x, cache=TuneCache(tmp_path), blockings=GRID,
                   repeats=2, warmup=1, fuse=False)
        rerun = tune_graph(graph, x, cache=TuneCache(tmp_path),
                           blockings=GRID, repeats=2, warmup=1,
                           fuse=False)
        assert rerun.swept == 0
        assert rerun.misses == 0
        assert rerun.hits == 2
        assert all(lo.cached for lo in rerun.layers)

    def test_winner_never_slower_than_default(self, tmp_path):
        x = np.random.default_rng(4).standard_normal((8, 96))
        graph = GraphModel(nodes=[quant_linear_node(96, 16)], name="one")
        report = tune_graph(graph, x, cache=TuneCache(tmp_path),
                            blockings=GRID, repeats=3, warmup=1)
        (lo,) = report.layers
        assert lo.median_s <= lo.default_median_s
        assert lo.speedup >= 1.0
        assert lo.candidates >= 1

    def test_corrupt_entry_warns_and_resweeps(self, tmp_path):
        graph = GraphModel(nodes=[quant_linear_node(48, 8)], name="one")
        x = np.random.default_rng(5).standard_normal((4, 48))
        cache = TuneCache(tmp_path)
        tune_graph(graph, x, cache=cache, blockings=GRID, repeats=2,
                   warmup=1)
        (path,) = tmp_path.glob("*.json")
        path.write_text("{ torn", encoding="utf-8")
        with pytest.warns(ReliabilityWarning, match="ignoring"):
            rerun = tune_graph(graph, x, cache=TuneCache(tmp_path),
                               blockings=GRID, repeats=2, warmup=1)
        assert rerun.swept == 1
        # the re-sweep republished a readable entry
        assert TuneCache(tmp_path).entries()

    def test_report_renders(self, tmp_path):
        graph = GraphModel(nodes=[quant_linear_node(48, 8)], name="one")
        x = np.random.default_rng(5).standard_normal((4, 48))
        report = tune_graph(graph, x, cache=TuneCache(tmp_path),
                            blockings=GRID, repeats=2, warmup=1)
        text = report.render()
        assert "winner" in text and "sweep" in text
        payload = report.as_dict()
        assert payload["layers"][0]["speedup"] >= 1.0


class TestExactnessGate:
    def test_wrap_point_change_rejected(self):
        """With a sub-container AccMem, a kc that moves the wrap points
        computes a different function and must be ruled ineligible."""
        config = MixGemmConfig(bw_a=8, bw_b=8, accmem_bits=20)
        rng = np.random.default_rng(9)
        a = rng.integers(-128, 128, size=(8, 4096))
        b = rng.integers(-128, 128, size=(4096, 8))
        expected = reference_digest(config, a, b)
        default = Candidate(blocking=config.blocking, backend="fast")
        bigger = Candidate(blocking=BlockingParams(mc=16, nc=16, kc=1024),
                           backend="fast")
        r_default = measure_candidate(config, default, a, b, repeats=1,
                                      expected_digest=expected)
        r_bigger = measure_candidate(config, bigger, a, b, repeats=1,
                                     expected_digest=expected)
        assert r_default.eligible
        assert not r_bigger.exact
        assert not r_bigger.eligible

    def test_equivalent_blocking_is_exact(self):
        config = MixGemmConfig(bw_a=8, bw_b=8)
        rng = np.random.default_rng(9)
        a = rng.integers(-128, 128, size=(8, 4096))
        b = rng.integers(-128, 128, size=(4096, 8))
        expected = reference_digest(config, a, b)
        for blocking in GRID:
            r = measure_candidate(config, Candidate(blocking=blocking,
                                                    backend="fast"),
                                  a, b, repeats=1,
                                  expected_digest=expected)
            assert r.eligible, blocking


class TestFanOut:
    def _problem(self):
        config = MixGemmConfig(bw_a=8, bw_b=8)
        rng = np.random.default_rng(11)
        a = rng.integers(-128, 128, size=(8, 2048))
        b = rng.integers(-128, 128, size=(2048, 8))
        cands = [Candidate(blocking=blk, backend="fast") for blk in GRID]
        return config, a, b, cands, reference_digest(config, a, b)

    def test_processes_agree_with_serial(self):
        config, a, b, cands, expected = self._problem()
        serial = measure_serial(config, cands, a, b, repeats=1,
                                expected_digest=expected)
        fanned = fan_out_measurements(config, cands, a, b, processes=2,
                                      repeats=1,
                                      expected_digest=expected)
        assert [r.candidate for r in fanned] == \
            [r.candidate for r in serial]
        assert [r.eligible for r in fanned] == \
            [r.eligible for r in serial]

    def test_unavailable_start_method_degrades_serially(self):
        config, a, b, cands, expected = self._problem()
        with pytest.warns(ReliabilityWarning, match="fan-out"):
            results = fan_out_measurements(
                config, cands, a, b, processes=2, repeats=1,
                expected_digest=expected,
                start_method="no-such-method")
        assert len(results) == len(cands)
        assert all(r.eligible for r in results)

    def test_parallel_candidate_measures(self):
        """A cores>1 candidate routes through ParallelMixGemm and stays
        bit-exact."""
        config, a, b, _, expected = self._problem()
        r = measure_candidate(
            config, Candidate(blocking=config.blocking, backend="fast",
                              cores=2),
            a, b, repeats=1, expected_digest=expected)
        assert r.eligible
