"""CLI tests (``python -m repro ...``)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in ("info", "gemm", "figure6", "figure7", "table",
                        "network", "explore", "report", "faultsim"):
            # parse_args should accept each command's minimal invocation.
            if command == "table":
                args = parser.parse_args([command, "1"])
            elif command in ("network", "explore"):
                args = parser.parse_args([command, "resnet18"])
            elif command == "report":
                args = parser.parse_args([command, "--output", "x.md"])
            else:
                args = parser.parse_args([command])
            assert callable(args.func)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Mix-GEMM" in out
        assert "a2-w2" in out

    def test_gemm_exact(self, capsys):
        assert main(["gemm", "-m", "4", "-k", "40", "-n", "4",
                     "--abits", "4", "--wbits", "4"]) == 0
        out = capsys.readouterr().out
        assert "exact=True" in out
        assert "MAC/cycle" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "mc=256" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        assert "Src Buffers" in capsys.readouterr().out

    def test_network_ladder(self, capsys):
        assert main(["network", "alexnet"]) == 0
        out = capsys.readouterr().out
        assert "a8-w8" in out
        assert "GOPS/W" in out

    def test_explore(self, capsys):
        assert main(["explore", "mobilenet_v1", "--budget", "2"]) == 0
        out = capsys.readouterr().out
        assert "mixed:" in out
        assert "uniform:" in out

    def test_report(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        assert main(["report", "--output", str(path)]) == 0
        text = path.read_text()
        assert "Figure 6" in text
        assert "Table III" in text
        assert "Extensions" in text

    def test_unknown_network_raises(self):
        with pytest.raises(KeyError):
            main(["network", "lenet"])


class TestFaultsim:
    def test_campaign_passes_at_full_guards(self, capsys):
        assert main(["faultsim", "--trials", "8", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "guard_level=off" in out
        assert "guard_level=full" in out
        assert "PASS" in out

    def test_unknown_site_rejected(self, capsys):
        assert main(["faultsim", "--sites", "tlb"]) == 2
        assert "unknown fault site" in capsys.readouterr().err

    def test_guard_level_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faultsim", "--guard-level", "off"])
