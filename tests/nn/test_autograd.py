"""Autograd engine tests, including numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.autograd import (
    Tensor,
    accuracy,
    softmax_cross_entropy,
    unbroadcast,
)


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    g = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        g[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(make_output, x_data, atol=1e-5):
    """Compare autograd gradient against central differences."""
    x = Tensor(x_data.copy(), requires_grad=True)
    out = make_output(x)
    out.sum().backward()
    got = x.grad

    def scalar_fn(data):
        return float(make_output(Tensor(data)).data.sum())

    want = numerical_grad(scalar_fn, x_data.copy())
    assert np.allclose(got, want, atol=atol), \
        f"max err {np.abs(got - want).max()}"


rng = np.random.default_rng(0)


class TestElementwiseGrads:
    def test_add(self):
        check_grad(lambda x: x + 3.0, rng.normal(size=(3, 4)))

    def test_mul(self):
        y = rng.normal(size=(3, 4))
        check_grad(lambda x: x * y, rng.normal(size=(3, 4)))

    def test_sub_neg(self):
        check_grad(lambda x: 1.0 - x, rng.normal(size=(5,)))

    def test_div(self):
        check_grad(lambda x: x / 2.5, rng.normal(size=(4,)))
        check_grad(lambda x: 2.5 / x,
                   rng.normal(size=(4,)) + 3.0)

    def test_pow(self):
        check_grad(lambda x: x ** 3, rng.normal(size=(4,)))

    def test_exp_log(self):
        check_grad(lambda x: x.exp(), rng.normal(size=(4,)))
        check_grad(lambda x: x.log(), np.abs(rng.normal(size=(4,))) + 1.0)

    def test_sigmoid_silu(self):
        check_grad(lambda x: x.sigmoid(), rng.normal(size=(6,)))
        check_grad(lambda x: x.silu(), rng.normal(size=(6,)))

    def test_relu(self):
        x = rng.normal(size=(10,))
        x[np.abs(x) < 0.1] += 0.5  # stay off the kink
        check_grad(lambda t: t.relu(), x)

    def test_clip(self):
        x = np.array([-1.0, 0.5, 3.0, 7.0])
        check_grad(lambda t: t.clip(0.0, 6.0), x)


class TestBroadcastingGrads:
    def test_broadcast_add(self):
        b = rng.normal(size=(4,))
        check_grad(lambda x: x + b, rng.normal(size=(3, 4)))

    def test_bias_gradient_sums(self):
        x = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (x + b).sum().backward()
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_unbroadcast_shapes(self):
        g = np.ones((5, 3, 4))
        assert unbroadcast(g, (3, 4)).shape == (3, 4)
        assert unbroadcast(g, (1, 4)).shape == (1, 4)
        assert unbroadcast(np.ones((3, 4)), (3, 1)).shape == (3, 1)


class TestMatrixGrads:
    def test_matmul(self):
        w = rng.normal(size=(4, 5))
        check_grad(lambda x: x @ Tensor(w), rng.normal(size=(3, 4)))

    def test_matmul_weight_grad(self):
        x = Tensor(rng.normal(size=(3, 4)))
        w = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        (x @ w).sum().backward()
        assert np.allclose(w.grad, x.data.T @ np.ones((3, 5)))

    def test_transpose_reshape(self):
        check_grad(lambda x: x.T, rng.normal(size=(3, 4)))
        check_grad(lambda x: x.reshape(12), rng.normal(size=(3, 4)))

    def test_pad2d(self):
        check_grad(lambda x: x.pad2d(1, 2),
                   rng.normal(size=(2, 3, 4, 5)))


class TestReductions:
    def test_sum_axis(self):
        check_grad(lambda x: x.sum(axis=0), rng.normal(size=(3, 4)))
        check_grad(lambda x: x.sum(axis=(0, 2)),
                   rng.normal(size=(2, 3, 4)))

    def test_mean(self):
        check_grad(lambda x: x.mean(), rng.normal(size=(3, 4)))
        check_grad(lambda x: x.mean(axis=1), rng.normal(size=(3, 4)))


class TestBackwardMechanics:
    def test_grad_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x  # x used twice
        y.backward()
        assert np.allclose(x.grad, [4.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2.0
        b = x + 1.0
        (a * b).backward()  # d/dx (2x (x+1)) = 4x + 2
        assert np.allclose(x.grad, [14.0])

    def test_no_grad_tensors_skipped(self):
        x = Tensor(np.array([1.0]))
        y = Tensor(np.array([2.0]), requires_grad=True)
        (x * y).backward()
        assert x.grad is None
        assert np.allclose(y.grad, [1.0])

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.array([1.0])).backward()

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2).backward()
        x.zero_grad()
        assert x.grad is None

    def test_detach_cuts_tape(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad

    def test_wrapping_tensor_rejected(self):
        with pytest.raises(TypeError):
            Tensor(Tensor([1.0]))


class TestSoftmaxCrossEntropy:
    def test_loss_value_matches_manual(self):
        logits = Tensor(np.array([[2.0, 0.0], [0.0, 2.0]]),
                        requires_grad=True)
        labels = np.array([0, 1])
        loss, probs = softmax_cross_entropy(logits, labels)
        manual = -np.log(np.exp(2) / (np.exp(2) + 1))
        assert float(loss.data) == pytest.approx(manual)

    def test_gradient_matches_numerical(self):
        z = rng.normal(size=(4, 3))
        labels = np.array([0, 1, 2, 1])

        def fn(data):
            t = Tensor(data)
            loss, _ = softmax_cross_entropy(t, labels)
            return float(loss.data)

        logits = Tensor(z.copy(), requires_grad=True)
        loss, _ = softmax_cross_entropy(logits, labels)
        loss.backward()
        want = numerical_grad(fn, z.copy())
        assert np.allclose(logits.grad, want, atol=1e-6)

    def test_probs_sum_to_one(self):
        logits = Tensor(rng.normal(size=(5, 7)))
        _, probs = softmax_cross_entropy(logits, np.zeros(5, dtype=int))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_accuracy(self):
        probs = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert accuracy(probs, np.array([0, 1, 1])) == pytest.approx(2 / 3)
