"""Synthetic dataset generator tests."""

import numpy as np
import pytest

from repro.nn.data import Dataset, synthetic_image_dataset


class TestDataset:
    def test_length_and_classes(self):
        ds = synthetic_image_dataset(n_classes=3, n_samples=60, seed=1)
        assert len(ds) == 60
        assert ds.n_classes == 3

    def test_normalization(self):
        ds = synthetic_image_dataset(n_samples=128, seed=2)
        assert abs(ds.images.mean()) < 1e-9
        assert ds.images.std() == pytest.approx(1.0)

    def test_batches_cover_everything(self):
        ds = synthetic_image_dataset(n_samples=50, seed=3)
        seen = 0
        for images, labels in ds.batches(16):
            assert len(images) == len(labels)
            seen += len(labels)
        assert seen == 50

    def test_shuffled_batches(self):
        ds = synthetic_image_dataset(n_samples=64, seed=4)
        rng = np.random.default_rng(0)
        first = next(iter(ds.batches(64, rng)))[1]
        assert not np.array_equal(first, ds.labels)
        assert np.array_equal(np.sort(first), np.sort(ds.labels))

    def test_split(self):
        ds = synthetic_image_dataset(n_samples=100, seed=5)
        train, val = ds.split(0.8)
        assert len(train) == 80
        assert len(val) == 20

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 1, 2, 2)), np.zeros(4, dtype=int))

    def test_classes_are_separable(self):
        # A nearest-centroid classifier should beat chance comfortably,
        # otherwise QAT experiments would be meaningless.
        ds = synthetic_image_dataset(n_classes=4, n_samples=400, seed=6)
        train, val = ds.split(0.8)
        centroids = np.stack([
            train.images[train.labels == c].mean(axis=0).ravel()
            for c in range(4)
        ])
        flat = val.images.reshape(len(val), -1)
        pred = np.argmin(
            ((flat[:, None, :] - centroids[None]) ** 2).sum(axis=2), axis=1
        )
        assert (pred == val.labels).mean() > 0.5

    def test_deterministic_by_seed(self):
        a = synthetic_image_dataset(n_samples=10, seed=7)
        b = synthetic_image_dataset(n_samples=10, seed=7)
        assert np.array_equal(a.images, b.images)
