"""im2col/im2row lowering tests against direct convolution."""

import numpy as np
import pytest

from repro.nn.im2col import (
    conv_geometry,
    im2col,
    im2row,
    nchw_to_rows,
    row2im,
    rows_to_nchw,
    weight_matrix,
)


def direct_conv2d(x, w, stride=1, padding=0):
    """Naive nested-loop convolution (ground truth)."""
    n, c, h, wid = x.shape
    f, _, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding),
                       (padding, padding)))
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (wid + 2 * padding - kw) // stride + 1
    out = np.zeros((n, f, oh, ow))
    for b in range(n):
        for o in range(f):
            for i in range(oh):
                for j in range(ow):
                    patch = x[b, :, i * stride:i * stride + kh,
                              j * stride:j * stride + kw]
                    out[b, o, i, j] = (patch * w[o]).sum()
    return out


rng = np.random.default_rng(0)


class TestConvGeometry:
    def test_output_sizes(self):
        geo = conv_geometry((1, 3, 8, 8), (16, 3, 3, 3), stride=1, padding=1)
        assert (geo.out_h, geo.out_w) == (8, 8)
        geo = conv_geometry((1, 3, 8, 8), (16, 3, 3, 3), stride=2, padding=0)
        assert (geo.out_h, geo.out_w) == (3, 3)

    def test_gemm_dims_match_paper_mapping(self):
        # Table III convolution benchmark: input 16x16x32, filter 64x3x3x32.
        geo = conv_geometry((1, 32, 16, 16), (64, 32, 3, 3), stride=1,
                            padding=1)
        assert geo.gemm_m == 16 * 16
        assert geo.gemm_k == 32 * 3 * 3
        assert geo.gemm_n == 64
        assert geo.macs == 16 * 16 * 32 * 9 * 64

    def test_grouped_geometry(self):
        geo = conv_geometry((1, 8, 4, 4), (8, 1, 3, 3), groups=8, padding=1)
        assert geo.gemm_k == 9
        assert geo.gemm_n == 1
        assert geo.macs == 8 * 16 * 9

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            conv_geometry((1, 3, 8, 8), (16, 4, 3, 3))

    def test_group_divisibility(self):
        with pytest.raises(ValueError):
            conv_geometry((1, 4, 8, 8), (6, 1, 3, 3), groups=4)


class TestIm2Row:
    @pytest.mark.parametrize("stride, padding", [(1, 0), (1, 1), (2, 0),
                                                 (2, 1), (3, 2)])
    def test_gemm_equals_direct_conv(self, stride, padding):
        x = rng.normal(size=(2, 3, 9, 9))
        w = rng.normal(size=(4, 3, 3, 3))
        rows = im2row(x, 3, 3, stride, padding)
        y = rows @ weight_matrix(w)
        geo = conv_geometry(x.shape, w.shape, stride, padding)
        got = rows_to_nchw(y, geo.batch, geo.out_h, geo.out_w)
        want = direct_conv2d(x, w, stride, padding)
        assert np.allclose(got, want)

    def test_1x1_conv(self):
        x = rng.normal(size=(2, 5, 4, 4))
        w = rng.normal(size=(7, 5, 1, 1))
        rows = im2row(x, 1, 1)
        y = rows_to_nchw(rows @ weight_matrix(w), 2, 4, 4)
        assert np.allclose(y, direct_conv2d(x, w))

    def test_im2col_is_transpose(self):
        x = rng.normal(size=(1, 2, 5, 5))
        assert np.array_equal(im2col(x, 3, 3), im2row(x, 3, 3).T)

    def test_row_count(self):
        x = rng.normal(size=(2, 3, 8, 8))
        rows = im2row(x, 3, 3, stride=1, padding=1)
        assert rows.shape == (2 * 8 * 8, 3 * 3 * 3)


class TestRow2Im:
    def test_adjoint_property(self):
        """row2im is the adjoint of im2row: <im2row(x), r> == <x, row2im(r)>."""
        x = rng.normal(size=(2, 3, 6, 6))
        r = rng.normal(size=im2row(x, 3, 3, 2, 1).shape)
        lhs = (im2row(x, 3, 3, 2, 1) * r).sum()
        rhs = (x * row2im(r, x.shape, 3, 3, 2, 1)).sum()
        assert lhs == pytest.approx(rhs)

    def test_shape_roundtrip(self):
        x = rng.normal(size=(1, 2, 7, 7))
        rows = im2row(x, 3, 3, 1, 0)
        back = row2im(rows, x.shape, 3, 3, 1, 0)
        assert back.shape == x.shape

    def test_rows_nchw_roundtrip(self):
        y = rng.normal(size=(2, 4, 3, 3))
        assert np.allclose(
            rows_to_nchw(nchw_to_rows(y), 2, 3, 3), y
        )
