"""Winograd convolution tests + the quantization-range argument."""

import numpy as np
import pytest

from repro.nn.winograd import (
    multiplication_counts,
    transform_filter,
    transform_input_tile,
    transform_output,
    winograd_conv2d,
    winograd_range_expansion,
)

from .test_im2col import direct_conv2d

rng = np.random.default_rng(0)


class TestCorrectness:
    def test_single_tile(self):
        d = rng.normal(size=(4, 4))
        g = rng.normal(size=(3, 3))
        m = transform_input_tile(d) * transform_filter(g)
        got = transform_output(m)
        want = direct_conv2d(d[None, None], g[None, None])[0, 0]
        assert np.allclose(got, want)

    @pytest.mark.parametrize("n, c, f, size", [(1, 1, 1, 6), (2, 3, 4, 8),
                                               (1, 4, 2, 10)])
    def test_full_conv_matches_direct(self, n, c, f, size):
        x = rng.normal(size=(n, c, size, size))
        w = rng.normal(size=(f, c, 3, 3))
        got = winograd_conv2d(x, w)
        want = direct_conv2d(x, w)
        assert np.allclose(got, want, atol=1e-10)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            winograd_conv2d(np.zeros((1, 1, 7, 7)),
                            np.zeros((1, 1, 3, 3)))  # odd output
        with pytest.raises(ValueError):
            winograd_conv2d(np.zeros((1, 1, 6, 6)),
                            np.zeros((1, 1, 5, 5)))  # not 3x3
        with pytest.raises(ValueError):
            winograd_conv2d(np.zeros((1, 2, 6, 6)),
                            np.zeros((1, 3, 3, 3)))  # channel mismatch
        with pytest.raises(ValueError):
            transform_filter(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            transform_input_tile(np.zeros((3, 3)))


class TestComplexity:
    def test_2_25x_fewer_multiplications(self):
        direct, wino = multiplication_counts(8, 8, 16, 32)
        assert direct / wino == pytest.approx(2.25)


class TestQuantizationArgument:
    """Why the paper restricts itself to GEMM-based convolution."""

    def test_input_transform_inflates_range(self):
        # Worst-case 2-bit inputs: the transformed tile exceeds the
        # original range by up to 4x.
        worst = np.full((4, 4), -2.0)
        worst[::2] *= -1  # alternate signs to maximize sums
        v = transform_input_tile(worst)
        assert np.abs(v).max() > np.abs(worst).max()

    def test_range_expansion_figures(self):
        exp = winograd_range_expansion(2)
        assert exp["input_range_gain"] == pytest.approx(4.0)
        assert exp["extra_input_bits"] == 2.0
        # 2-bit data needs a 4-bit transformed representation: the whole
        # 2-bit compression benefit is gone.
        assert exp["effective_input_bits"] == 4.0
        assert exp["effective_weight_bits"] > 4.0

    def test_expansion_relatively_harmless_at_8bit(self):
        exp = winograd_range_expansion(8)
        # +2 bits on 8 is a 25% cost; +2 bits on 2 is a 100% cost.
        assert exp["effective_input_bits"] / 8 < \
            winograd_range_expansion(2)["effective_input_bits"] / 2

    def test_transformed_weights_not_grid_aligned(self):
        # G introduces quarter steps: integer weights leave the integer
        # grid, so the Winograd domain cannot reuse the affine quantizer
        # without re-quantization error.
        g = np.ones((3, 3))
        u = transform_filter(g)
        fractional = np.abs(u - np.round(u)) > 1e-12
        assert fractional.any()
