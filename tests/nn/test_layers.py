"""Layer / module-system tests, incl. conv & pooling gradient checks."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.autograd import Tensor, softmax_cross_entropy
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    LayerQuantSpec,
    Linear,
    MaxPool2d,
    Module,
    QuantConv2d,
    QuantLinear,
    ReLU,
    ReLU6,
    Sequential,
    seed_init,
)
from repro.nn.optim import SGD, MultiStepLR, StepLR

from .test_autograd import numerical_grad

rng = np.random.default_rng(0)


class TestConvGrads:
    @pytest.mark.parametrize("stride, padding, groups",
                             [(1, 0, 1), (1, 1, 1), (2, 1, 1), (1, 1, 2)])
    def test_conv2d_input_grad(self, stride, padding, groups):
        x_data = rng.normal(size=(2, 4, 5, 5))
        w = Tensor(rng.normal(size=(6, 4 // groups, 3, 3)))

        def out(x):
            return F.conv2d(x, w, stride=stride, padding=padding,
                            groups=groups)

        x = Tensor(x_data.copy(), requires_grad=True)
        out(x).sum().backward()

        def fn(data):
            return float(out(Tensor(data)).data.sum())

        want = numerical_grad(fn, x_data.copy(), eps=1e-6)
        assert np.allclose(x.grad, want, atol=1e-5)

    def test_conv2d_weight_and_bias_grad(self):
        x = Tensor(rng.normal(size=(2, 3, 5, 5)))
        w_data = rng.normal(size=(4, 3, 3, 3))
        b_data = rng.normal(size=4)
        w = Tensor(w_data.copy(), requires_grad=True)
        b = Tensor(b_data.copy(), requires_grad=True)
        F.conv2d(x, w, b, padding=1).sum().backward()

        def fn_w(data):
            return float(
                F.conv2d(x, Tensor(data), Tensor(b_data),
                         padding=1).data.sum()
            )

        assert np.allclose(w.grad, numerical_grad(fn_w, w_data.copy()),
                           atol=1e-5)
        # Bias gradient is just the output count per channel.
        assert np.allclose(b.grad, 2 * 5 * 5)

    def test_depthwise_conv(self):
        # MobileNet-style depthwise: groups == channels.
        x = Tensor(rng.normal(size=(1, 4, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(4, 1, 3, 3)), requires_grad=True)
        y = F.conv2d(x, w, padding=1, groups=4)
        assert y.shape == (1, 4, 6, 6)
        y.sum().backward()
        assert x.grad.shape == x.shape
        assert w.grad.shape == w.shape


class TestPoolingGrads:
    def test_max_pool_forward(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        y = F.max_pool2d(x, 2)
        assert np.array_equal(y.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_grad_routes_to_argmax(self):
        x_data = rng.normal(size=(2, 3, 6, 6))
        x = Tensor(x_data.copy(), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()

        def fn(data):
            return float(F.max_pool2d(Tensor(data), 2).data.sum())

        want = numerical_grad(fn, x_data.copy())
        assert np.allclose(x.grad, want, atol=1e-5)

    def test_avg_pool_grad(self):
        x_data = rng.normal(size=(1, 2, 4, 4))
        x = Tensor(x_data.copy(), requires_grad=True)
        F.avg_pool2d(x, 2).sum().backward()
        assert np.allclose(x.grad, 0.25)

    def test_global_avg_pool(self):
        x = Tensor(rng.normal(size=(2, 3, 4, 4)))
        y = F.global_avg_pool2d(x)
        assert y.shape == (2, 3)
        assert np.allclose(y.data, x.data.mean(axis=(2, 3)))


class TestBatchNorm:
    def test_normalizes_in_training(self):
        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(8, 3, 4, 4)))
        y = bn(x)
        assert np.allclose(y.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        assert np.allclose(y.data.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_running_stats_update(self):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.full((4, 2, 2, 2), 10.0))
        bn(x)
        assert np.allclose(bn.running_mean, 5.0)  # 0.5*0 + 0.5*10

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(2)
        bn.running_mean[:] = 1.0
        bn.running_var[:] = 4.0
        bn.eval()
        x = Tensor(np.full((1, 2, 1, 1), 3.0))
        y = bn(x)
        assert np.allclose(y.data, (3 - 1) / 2, atol=1e-3)

    def test_gradcheck_training_mode(self):
        x_data = rng.normal(size=(4, 2, 3, 3))
        gamma = np.array([1.5, 0.5])
        beta = np.array([0.1, -0.2])

        def out(x):
            return F.batch_norm2d(
                x, Tensor(gamma), Tensor(beta),
                np.zeros(2), np.ones(2), training=True,
            )

        x = Tensor(x_data.copy(), requires_grad=True)
        out(x).sum().backward()

        def fn(data):
            return float(out(Tensor(data)).data.sum())

        want = numerical_grad(fn, x_data.copy())
        assert np.allclose(x.grad, want, atol=1e-4)


class TestModuleSystem:
    def test_parameter_registration(self):
        layer = Linear(4, 3)
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_nested_modules(self):
        model = Sequential(Conv2d(1, 2, 3), ReLU(), Linear(8, 4))
        names = [n for n, _ in model.named_parameters()]
        assert any("weight" in n for n in names)
        assert model.num_parameters() > 0

    def test_train_eval_propagates(self):
        model = Sequential(BatchNorm2d(2), ReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        layer = Linear(2, 2)
        out = layer(Tensor(rng.normal(size=(1, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_seed_init_reproducible(self):
        seed_init(42)
        w1 = Linear(4, 4).weight.data.copy()
        seed_init(42)
        w2 = Linear(4, 4).weight.data.copy()
        assert np.array_equal(w1, w2)


class TestActivationsAndShapes:
    def test_relu6_clips(self):
        y = ReLU6()(Tensor(np.array([-1.0, 3.0, 9.0])))
        assert list(y.data) == [0.0, 3.0, 6.0]

    def test_flatten(self):
        y = Flatten()(Tensor(np.zeros((2, 3, 4, 4))))
        assert y.shape == (2, 48)

    def test_pool_layers(self):
        x = Tensor(np.zeros((1, 2, 8, 8)))
        assert MaxPool2d(2)(x).shape == (1, 2, 4, 4)
        assert AvgPool2d(4)(x).shape == (1, 2, 2, 2)
        assert GlobalAvgPool2d()(x).shape == (1, 2)


class TestQuantLayers:
    def test_quant_linear_quantizes_weights(self):
        spec = LayerQuantSpec(act_bits=8, weight_bits=2)
        layer = QuantLinear(8, 4, spec=spec)
        x = Tensor(rng.normal(size=(2, 8)))
        layer(x)  # must run without error
        # Per-channel 2-bit weights have at most 4 distinct levels/channel.
        from repro.nn.functional_quant import (
            fake_quant_ste, weight_absmax_scale,
        )
        scale = weight_absmax_scale(layer.weight.data, 2)
        wq = fake_quant_ste(layer.weight, scale, 2, channel_axis=0)
        for row in range(4):
            assert len(np.unique(wq.data[row])) <= 4

    def test_quant_conv_trains(self):
        seed_init(0)
        spec = LayerQuantSpec(act_bits=4, weight_bits=4, act_signed=True)
        layer = QuantConv2d(1, 4, 3, spec=spec, padding=1)
        x = Tensor(rng.normal(size=(2, 1, 6, 6)))
        y = layer(x)
        loss = (y * y).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.act_log_scale.grad is not None

    def test_spec_name(self):
        assert LayerQuantSpec(act_bits=5, weight_bits=3).name == "a5-w3"
        assert LayerQuantSpec().name == "afp-wfp"

    def test_calibrate_act_scale(self):
        spec = LayerQuantSpec(act_bits=8, weight_bits=8)
        layer = QuantLinear(4, 2, spec=spec)
        layer.calibrate_act_scale(0.5)
        assert float(np.exp(layer.act_log_scale.data)) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            layer.calibrate_act_scale(-1.0)

    def test_fp_spec_is_identity(self):
        spec = LayerQuantSpec()  # no quantization
        layer = QuantLinear(4, 2, spec=spec)
        x = Tensor(rng.normal(size=(3, 4)))
        y_q = layer(x)
        y_ref = x.data @ layer.weight.data.T + layer.bias.data
        assert np.allclose(y_q.data, y_ref)


class TestOptim:
    def test_sgd_plain_step(self):
        p = Tensor(np.array([1.0]), requires_grad=True)
        opt = SGD([p], lr=0.1)
        p.grad = np.array([2.0])
        opt.step()
        assert np.allclose(p.data, [0.8])

    def test_momentum_accumulates(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()  # v = 1, p = -1
        p.grad = np.array([1.0])
        opt.step()  # v = 1.9, p = -2.9
        assert np.allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = Tensor(np.array([10.0]), requires_grad=True)
        opt = SGD([p], lr=0.1, weight_decay=0.1)
        p.grad = np.array([0.0])
        opt.step()
        assert np.allclose(p.data, [10.0 - 0.1 * 1.0])

    def test_step_lr_schedule(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_epochs=2, gamma=0.1)
        sched.step()
        assert opt.lr == pytest.approx(1.0)
        sched.step()
        assert opt.lr == pytest.approx(0.1)

    def test_multistep_lr(self):
        p = Tensor(np.array([0.0]), requires_grad=True)
        opt = SGD([p], lr=1.0)
        sched = MultiStepLR(opt, milestones=[1, 3])
        sched.step()
        assert opt.lr == pytest.approx(0.1)
        sched.step()
        assert opt.lr == pytest.approx(0.1)
        sched.step()
        assert opt.lr == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        p = Tensor(np.array([0.0]), requires_grad=True)
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)


class TestEndToEndTraining:
    def test_small_mlp_learns_xor(self):
        seed_init(7)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        model = Sequential(Linear(2, 16), ReLU(), Linear(16, 2))
        opt = SGD(model.parameters(), lr=0.5, momentum=0.9)
        for _ in range(300):
            opt.zero_grad()
            logits = model(Tensor(x))
            loss, probs = softmax_cross_entropy(logits, y)
            loss.backward()
            opt.step()
        assert (probs.argmax(axis=1) == y).all()
