"""Repo-wide fixtures."""

import pytest

from repro.analysis.concurrency import sanitized_session


@pytest.fixture()
def lock_sanitizer():
    """Run the test body under the runtime lock sanitizer.

    Locks handed out by :mod:`repro.core.locks` during the test are
    recording wrappers, and the annotated serving-stack classes are
    instrumented; the test receives the active
    :class:`~repro.analysis.concurrency.LockSanitizer` and can
    cross-check its trace against the static verdicts.
    """
    with sanitized_session() as active:
        yield active
