"""Zero-point-folded asymmetric GEMM tests (the GEMMLowp-style path)."""

import numpy as np
import pytest

from repro.quant.affine import QuantParams
from repro.quant.integer_ops import integer_gemm, integer_gemm_asymmetric


def _asym_act(bits=8):
    return QuantParams(scale=0.1, zero_point=7.0, bits=bits, signed=False)


def _asym_wgt(bits=8, zp=3.0):
    return QuantParams(scale=0.2, zero_point=zp, bits=bits, signed=False)


class TestZeroPointFolding:
    def test_matches_direct_subtraction(self):
        rng = np.random.default_rng(0)
        x_qp = _asym_act()
        w_qp = _asym_wgt()
        x_q = rng.integers(0, 256, size=(5, 17))
        w_q = rng.integers(0, 256, size=(17, 4))
        direct = integer_gemm(x_q, w_q, x_qp, w_qp)
        folded = integer_gemm_asymmetric(x_q, w_q, x_qp, w_qp)
        assert np.array_equal(direct.acc, folded.acc)

    def test_symmetric_special_case(self):
        rng = np.random.default_rng(1)
        qp = QuantParams(scale=0.1, zero_point=0.0, bits=8, signed=True)
        x_q = rng.integers(-128, 128, size=(3, 9))
        w_q = rng.integers(-128, 128, size=(9, 2))
        folded = integer_gemm_asymmetric(x_q, w_q, qp, qp)
        assert np.array_equal(folded.acc, x_q @ w_q)

    def test_one_sided_asymmetry(self):
        rng = np.random.default_rng(2)
        x_qp = _asym_act()
        w_qp = QuantParams(scale=0.2, zero_point=0.0, bits=8, signed=True)
        x_q = rng.integers(0, 256, size=(4, 12))
        w_q = rng.integers(-128, 128, size=(12, 6))
        direct = integer_gemm(x_q, w_q, x_qp, w_qp)
        folded = integer_gemm_asymmetric(x_q, w_q, x_qp, w_qp)
        assert np.array_equal(direct.acc, folded.acc)

    def test_mixgemm_backend(self):
        rng = np.random.default_rng(3)
        x_qp = _asym_act(bits=8)
        w_qp = QuantParams(scale=0.2, zero_point=0.0, bits=4, signed=True)
        x_q = rng.integers(0, 256, size=(4, 16))
        w_q = rng.integers(-8, 8, size=(16, 4))
        folded = integer_gemm_asymmetric(
            x_q, w_q, x_qp, w_qp, backend="mixgemm",
        )
        direct = integer_gemm(x_q, w_q, x_qp, w_qp)
        assert np.array_equal(folded.acc, direct.acc)
        assert folded.gemm_result is not None

    def test_per_channel_zero_points_rejected(self):
        x_qp = QuantParams(scale=[0.1, 0.2], zero_point=0.0, bits=8,
                           signed=False, axis=0)
        w_qp = _asym_wgt()
        with pytest.raises(ValueError):
            integer_gemm_asymmetric(
                np.zeros((1, 2), dtype=int), np.zeros((2, 1), dtype=int),
                x_qp, w_qp,
            )

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            integer_gemm_asymmetric(
                np.zeros((1, 1), dtype=int), np.zeros((1, 1), dtype=int),
                _asym_act(), _asym_wgt(), backend="gpu",
            )
