"""KL-divergence (entropy) calibration observer tests."""

import numpy as np
import pytest

from repro.quant.affine import QuantError
from repro.quant.observers import (
    AbsMaxObserver,
    KlDivergenceObserver,
    PercentileObserver,
)


class TestKlObserver:
    def test_requires_data(self):
        with pytest.raises(QuantError):
            KlDivergenceObserver(8).quant_params()

    def test_validates_bins(self):
        with pytest.raises(QuantError):
            KlDivergenceObserver(8, n_bins=4)

    def test_threshold_within_observed_range(self):
        rng = np.random.default_rng(0)
        obs = KlDivergenceObserver(8)
        x = rng.normal(size=50_000)
        obs.observe(x)
        threshold = obs.best_threshold()
        assert 0 < threshold <= np.abs(x).max() + 1e-12

    def test_clips_heavy_tails_harder_than_absmax(self):
        # A heavy-tailed activation: the KL threshold should sit well
        # below the absolute maximum.
        rng = np.random.default_rng(1)
        x = rng.standard_cauchy(size=100_000)
        kl = KlDivergenceObserver(4)
        amax = AbsMaxObserver(4, signed=True)
        kl.observe(x)
        amax.observe(x)
        kl_scale = float(kl.quant_params().scale)
        amax_scale = float(amax.quant_params().scale)
        assert kl_scale < amax_scale / 10

    def test_keeps_gaussian_bulk(self):
        # On a clean Gaussian the threshold must retain most of the mass.
        rng = np.random.default_rng(2)
        x = rng.normal(size=100_000)
        obs = KlDivergenceObserver(8)
        obs.observe(x)
        threshold = obs.best_threshold()
        kept = (np.abs(x) <= threshold).mean()
        assert kept > 0.95

    def test_multi_batch_rebinning(self):
        obs = KlDivergenceObserver(8)
        obs.observe(np.linspace(0, 1, 1000))
        obs.observe(np.linspace(0, 5, 1000))  # wider range -> re-bin
        threshold = obs.best_threshold()
        assert 0 < threshold <= 5.0
        assert obs.batches_seen == 2

    def test_quant_params_symmetric(self):
        rng = np.random.default_rng(3)
        obs = KlDivergenceObserver(6, signed=True)
        obs.observe(rng.normal(size=10_000))
        qp = obs.quant_params()
        assert qp.is_symmetric
        assert qp.bits == 6

    def test_lower_quantization_error_than_absmax_on_outliers(self):
        """The point of entropy calibration: better effective resolution
        when rare outliers would otherwise stretch the grid."""
        from repro.quant.affine import quantization_error

        rng = np.random.default_rng(4)
        x = rng.normal(size=20_000)
        x[:5] *= 200.0  # a few wild outliers
        kl = KlDivergenceObserver(4)
        amax = AbsMaxObserver(4, signed=True)
        kl.observe(x)
        amax.observe(x)
        bulk = x[np.abs(x) < 5]
        err_kl = quantization_error(bulk, kl.quant_params())
        err_amax = quantization_error(bulk, amax.quant_params())
        assert err_kl < err_amax

    def test_comparable_to_percentile_on_gaussians(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=50_000)
        kl = KlDivergenceObserver(8)
        pct = PercentileObserver(8, percentile=99.99)
        kl.observe(x)
        pct.observe(x)
        ratio = float(kl.quant_params().scale) \
            / float(pct.quant_params().scale)
        assert 0.3 < ratio < 3.0
