"""Unit tests for uniform affine quantization (Eq. 1-2)."""

import numpy as np
import pytest

from repro.quant.affine import (
    QuantError,
    QuantParams,
    dequantize,
    fake_quantize,
    qparams_from_range,
    quantization_error,
    quantize,
    requantize_scale,
)


class TestQuantParams:
    def test_grid_bounds_signed(self):
        qp = QuantParams(scale=0.1, zero_point=0.0, bits=4, signed=True)
        assert (qp.qmin, qp.qmax) == (-8, 7)

    def test_grid_bounds_unsigned(self):
        qp = QuantParams(scale=0.1, zero_point=0.0, bits=4, signed=False)
        assert (qp.qmin, qp.qmax) == (0, 15)

    def test_symmetric_flag(self):
        assert QuantParams(0.1, 0.0, 8, True).is_symmetric
        assert not QuantParams(0.1, 3.0, 8, False).is_symmetric

    def test_validation(self):
        with pytest.raises(QuantError):
            QuantParams(scale=0.0, zero_point=0.0, bits=8, signed=True)
        with pytest.raises(QuantError):
            QuantParams(scale=0.1, zero_point=0.0, bits=9, signed=True)
        with pytest.raises(QuantError):
            QuantParams(scale=[0.1, 0.2], zero_point=0.0, bits=8,
                        signed=True)  # per-tensor needs scalar scale

    def test_per_channel(self):
        qp = QuantParams(scale=[0.1, 0.2, 0.3], zero_point=0.0, bits=8,
                         signed=True, axis=0)
        assert qp.is_per_channel
        assert qp.scale.shape == (3,)

    def test_with_bits_preserves_range(self):
        qp8 = QuantParams(scale=0.01, zero_point=0.0, bits=8, signed=True)
        qp4 = qp8.with_bits(4)
        # Representable max should be (nearly) unchanged.
        assert qp4.qmax * qp4.scale == pytest.approx(
            qp8.qmax * qp8.scale, rel=0.1
        )


class TestQuantizeDequantize:
    def test_equation1_rounding_and_clamping(self):
        qp = QuantParams(scale=1.0, zero_point=0.0, bits=4, signed=True)
        x = np.array([-100.0, -8.4, -0.5, 0.4, 6.6, 100.0])
        q = quantize(x, qp)
        assert list(q) == [-8, -8, 0, 0, 7, 7]

    def test_zero_point_shift(self):
        qp = QuantParams(scale=0.5, zero_point=4.0, bits=4, signed=False)
        q = quantize(np.array([0.0]), qp)
        assert q[0] == 4  # x/s + z = 0 + 4

    def test_roundtrip_on_grid_points(self):
        qp = QuantParams(scale=0.25, zero_point=0.0, bits=6, signed=True)
        codes = np.arange(qp.qmin, qp.qmax + 1)
        x = dequantize(codes, qp)
        assert np.array_equal(quantize(x, qp), codes)

    def test_fake_quantize_idempotent(self):
        qp = QuantParams(scale=0.1, zero_point=0.0, bits=5, signed=True)
        x = np.random.default_rng(0).normal(size=100)
        once = fake_quantize(x, qp)
        twice = fake_quantize(once, qp)
        assert np.allclose(once, twice)

    def test_per_channel_broadcasting(self):
        qp = QuantParams(scale=[1.0, 0.5], zero_point=0.0, bits=8,
                         signed=True, axis=0)
        x = np.array([[1.0, 2.0], [1.0, 2.0]])
        q = quantize(x, qp)
        assert list(q[0]) == [1, 2]
        assert list(q[1]) == [2, 4]

    def test_codes_fit_declared_bitwidth(self):
        rng = np.random.default_rng(1)
        for bits in range(2, 9):
            qp = QuantParams(scale=0.07, zero_point=0.0, bits=bits,
                             signed=True)
            q = quantize(rng.normal(scale=10, size=1000), qp)
            assert q.min() >= qp.qmin
            assert q.max() <= qp.qmax


class TestQParamsFromRange:
    def test_symmetric_absmax(self):
        qp = qparams_from_range(-2.0, 1.0, 8, signed=True, symmetric=True)
        assert float(qp.scale) == pytest.approx(2.0 / 127)
        assert qp.is_symmetric

    def test_asymmetric_covers_range(self):
        qp = qparams_from_range(-1.0, 3.0, 8, signed=False, symmetric=False)
        assert quantize(np.array([-1.0]), qp)[0] == qp.qmin
        assert quantize(np.array([3.0]), qp)[0] == qp.qmax

    def test_degenerate_range_guard(self):
        qp = qparams_from_range(0.0, 0.0, 8, signed=True)
        assert float(qp.scale) > 0

    def test_per_channel_vector(self):
        lo = np.array([-1.0, -2.0])
        hi = np.array([1.0, 2.0])
        qp = qparams_from_range(lo, hi, 8, signed=True, axis=0)
        assert qp.scale.shape == (2,)
        assert qp.scale[1] == pytest.approx(2 * qp.scale[0])


class TestErrorMetrics:
    def test_error_decreases_with_bits(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=2000)
        errors = []
        for bits in (2, 4, 6, 8):
            qp = qparams_from_range(x.min(), x.max(), bits, signed=True)
            errors.append(quantization_error(x, qp))
        assert errors == sorted(errors, reverse=True)

    def test_exact_on_grid(self):
        qp = QuantParams(scale=0.5, zero_point=0.0, bits=4, signed=True)
        x = np.array([-1.0, 0.0, 0.5, 3.0])
        assert quantization_error(x, qp) == pytest.approx(0.0)


class TestRequantizeScale:
    def test_scalar_times_per_channel(self):
        act = QuantParams(scale=0.1, zero_point=0.0, bits=8, signed=False)
        wgt = QuantParams(scale=[0.2, 0.4], zero_point=0.0, bits=4,
                          signed=True, axis=0)
        s = requantize_scale(act, wgt)
        assert np.allclose(s, [0.02, 0.04])

    def test_per_channel_activations_rejected(self):
        act = QuantParams(scale=[0.1, 0.2], zero_point=0.0, bits=8,
                          signed=False, axis=0)
        wgt = QuantParams(scale=0.2, zero_point=0.0, bits=4, signed=True)
        with pytest.raises(QuantError):
            requantize_scale(act, wgt)
