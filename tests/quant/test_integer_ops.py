"""Tests for the integer layer pipeline and its Mix-GEMM backend."""

import numpy as np
import pytest

from repro.core.config import BlockingParams, MixGemmConfig
from repro.quant.affine import QuantParams, qparams_from_range
from repro.quant.integer_ops import (
    dequantized_reference,
    integer_gemm,
    quantized_linear,
)
from repro.quant.bias_correction import (
    apply_bias_correction,
    bias_correction_conv,
    bias_correction_linear,
    weight_quantization_error,
)


def _qparams_for(x, bits, signed, axis=None):
    x = np.asarray(x, dtype=np.float64)
    if axis is None:
        return qparams_from_range(x.min(), x.max(), bits, signed=signed)
    axes = tuple(i for i in range(x.ndim) if i != axis)
    amax = np.abs(x).max(axis=axes)
    return qparams_from_range(-amax, amax, bits, signed=signed, axis=axis)


class TestIntegerGemm:
    def test_symmetric_passthrough(self):
        x_qp = QuantParams(scale=0.1, zero_point=0.0, bits=8, signed=True)
        w_qp = QuantParams(scale=0.2, zero_point=0.0, bits=8, signed=True)
        x_q = np.array([[1, 2]], dtype=np.int64)
        w_q = np.array([[3], [4]], dtype=np.int64)
        out = integer_gemm(x_q, w_q, x_qp, w_qp)
        assert out.acc[0, 0] == 11

    def test_zero_point_folding(self):
        x_qp = QuantParams(scale=0.1, zero_point=2.0, bits=8, signed=False)
        w_qp = QuantParams(scale=0.2, zero_point=0.0, bits=8, signed=True)
        x_q = np.array([[3]], dtype=np.int64)
        w_q = np.array([[5]], dtype=np.int64)
        out = integer_gemm(x_q, w_q, x_qp, w_qp)
        assert out.acc[0, 0] == (3 - 2) * 5

    def test_mixgemm_backend_matches_numpy(self):
        rng = np.random.default_rng(0)
        x_qp = QuantParams(scale=0.1, zero_point=0.0, bits=8, signed=True)
        w_qp = QuantParams(scale=0.2, zero_point=0.0, bits=4, signed=True)
        x_q = rng.integers(-128, 128, size=(6, 24))
        w_q = rng.integers(-8, 8, size=(24, 5))
        cfg = MixGemmConfig(bw_a=8, bw_b=4,
                            blocking=BlockingParams(mc=8, nc=8, kc=64))
        ref = integer_gemm(x_q, w_q, x_qp, w_qp)
        sim = integer_gemm(x_q, w_q, x_qp, w_qp, backend="mixgemm",
                           config=cfg)
        assert np.array_equal(ref.acc, sim.acc)
        assert sim.gemm_result is not None
        assert sim.gemm_result.cycles > 0

    def test_unknown_backend(self):
        x_qp = QuantParams(scale=0.1, zero_point=0.0, bits=8, signed=True)
        with pytest.raises(ValueError):
            integer_gemm(np.zeros((1, 1), dtype=int),
                         np.zeros((1, 1), dtype=int),
                         x_qp, x_qp, backend="cuda")


class TestQuantizedLinear:
    def test_integer_pipeline_equals_fake_quant_reference(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(4, 16))
        w = rng.normal(size=(8, 16))
        b = rng.normal(size=8)
        x_qp = _qparams_for(x, 8, signed=True)
        w_qp = _qparams_for(w, 4, signed=True, axis=0)
        y_int, _ = quantized_linear(x, w, b, x_qp, w_qp)
        y_ref = dequantized_reference(x, w, b, x_qp, w_qp)
        assert np.allclose(y_int, y_ref, atol=1e-9)

    def test_mixgemm_backend_end_to_end(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(3, 10))
        w = rng.normal(size=(4, 10))
        x_qp = _qparams_for(x, 6, signed=True)
        w_qp = _qparams_for(w, 4, signed=True, axis=0)
        cfg = MixGemmConfig(bw_a=6, bw_b=4,
                            blocking=BlockingParams(mc=8, nc=8, kc=60))
        y_sim, result = quantized_linear(x, w, None, x_qp, w_qp,
                                         backend="mixgemm", config=cfg)
        y_ref = dequantized_reference(x, w, None, x_qp, w_qp)
        assert np.allclose(y_sim, y_ref, atol=1e-9)
        assert result is not None

    def test_output_error_shrinks_with_bits(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(32, 20))
        w = rng.normal(size=(10, 20))
        exact = x @ w.T
        errors = []
        for bits in (2, 4, 8):
            x_qp = _qparams_for(x, bits, signed=True)
            w_qp = _qparams_for(w, bits, signed=True, axis=0)
            y, _ = quantized_linear(x, w, None, x_qp, w_qp)
            errors.append(float(np.abs(y - exact).mean()))
        assert errors[0] > errors[1] > errors[2]


class TestBiasCorrection:
    def test_weight_error_zero_on_grid(self):
        qp = QuantParams(scale=0.5, zero_point=0.0, bits=4, signed=True)
        w = np.array([[0.5, -1.0], [1.5, 0.0]])
        assert np.allclose(weight_quantization_error(w, qp), 0.0)

    def test_linear_correction_reduces_output_bias(self):
        rng = np.random.default_rng(4)
        w = rng.normal(size=(6, 12))
        x = np.abs(rng.normal(size=(64, 12))) + 0.5  # biased inputs
        qp = _qparams_for(w, 3, signed=True, axis=0)
        corr = bias_correction_linear(w, qp, x)
        from repro.quant.affine import fake_quantize
        w_q = fake_quantize(w, qp)
        bias = np.zeros(6)
        y_raw = x @ w_q.T + bias
        y_fix = x @ w_q.T + apply_bias_correction(bias, corr)
        y_true = x @ w.T
        raw_bias = np.abs((y_raw - y_true).mean(axis=0))
        fix_bias = np.abs((y_fix - y_true).mean(axis=0))
        assert fix_bias.mean() < raw_bias.mean()

    def test_conv_correction_shape(self):
        rng = np.random.default_rng(5)
        w = rng.normal(size=(8, 3, 3, 3))
        x = rng.normal(size=(4, 3, 8, 8)) + 1.0
        qp = _qparams_for(w, 3, signed=True, axis=0)
        corr = bias_correction_conv(w, qp, x)
        assert corr.shape == (8,)

    def test_clip_zero_disables(self):
        corr = np.array([5.0, -3.0])
        out = apply_bias_correction(np.zeros(2), corr, clip=0.0)
        assert np.allclose(out, 0.0)

    def test_none_bias(self):
        out = apply_bias_correction(None, np.array([1.0]))
        assert np.allclose(out, [-1.0])
