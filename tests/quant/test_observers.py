"""Unit tests for calibration observers."""

import numpy as np
import pytest

from repro.quant.affine import QuantError, quantize
from repro.quant.observers import (
    AbsMaxObserver,
    MinMaxObserver,
    PercentileObserver,
    paper_activation_observer,
    paper_weight_observer,
)


class TestMinMaxObserver:
    def test_tracks_running_extremes(self):
        obs = MinMaxObserver(8, signed=False)
        obs.observe(np.array([0.0, 1.0]))
        obs.observe(np.array([-2.0, 0.5]))
        qp = obs.quant_params()
        assert quantize(np.array([-2.0]), qp)[0] == qp.qmin
        assert quantize(np.array([1.0]), qp)[0] == qp.qmax

    def test_requires_data(self):
        with pytest.raises(QuantError):
            MinMaxObserver(8).quant_params()

    def test_per_channel(self):
        obs = MinMaxObserver(8, signed=True, axis=0)
        obs.observe(np.array([[1.0, -1.0], [4.0, -0.5]]))
        qp = obs.quant_params()
        assert qp.scale.shape == (2,)


class TestAbsMaxObserver:
    def test_symmetric_scale(self):
        obs = AbsMaxObserver(4, signed=True)
        obs.observe(np.array([-3.5, 1.0]))
        qp = obs.quant_params()
        assert qp.is_symmetric
        assert float(qp.scale) == pytest.approx(3.5 / 7)

    def test_per_channel_weights(self):
        # The paper's weight scheme: per-output-channel absmax.
        w = np.zeros((3, 4, 2, 2))
        w[0] += 1.0
        w[1] += 2.0
        w[2] += 4.0
        obs = AbsMaxObserver(8, signed=True, axis=0)
        obs.observe(w)
        qp = obs.quant_params()
        assert qp.scale.shape == (3,)
        assert qp.scale[1] == pytest.approx(2 * qp.scale[0])

    def test_max_accumulates_across_batches(self):
        obs = AbsMaxObserver(8, signed=True)
        obs.observe(np.array([1.0]))
        obs.observe(np.array([-5.0]))
        obs.observe(np.array([2.0]))
        qp = obs.quant_params()
        assert float(qp.scale) == pytest.approx(5.0 / 127)


class TestPercentileObserver:
    def test_ignores_outliers(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=100_000)
        x[0] = 1000.0  # a single wild outlier
        pct = PercentileObserver(8, percentile=99.9)
        amax = AbsMaxObserver(8, signed=True)
        pct.observe(x)
        amax.observe(x)
        assert float(pct.quant_params().scale) < float(
            amax.quant_params().scale
        )

    def test_averages_across_batches(self):
        # Observing [0, 1] then [0, 3] must average the percentiles, not
        # max-reduce them.
        obs = PercentileObserver(8, percentile=100.0)
        obs.observe(np.linspace(0, 1, 100))
        obs.observe(np.linspace(0, 3, 100))
        qp = obs.quant_params()
        assert float(qp.scale) == pytest.approx(2.0 / 255, rel=1e-6)

    def test_invalid_percentile(self):
        with pytest.raises(QuantError):
            PercentileObserver(8, percentile=0.0)
        with pytest.raises(QuantError):
            PercentileObserver(8, percentile=101.0)


class TestPaperPresets:
    def test_weight_observer_is_per_channel_signed(self):
        obs = paper_weight_observer(4)
        assert obs.signed
        assert obs.axis == 0

    def test_activation_observer_defaults(self):
        obs = paper_activation_observer(4)
        assert not obs.signed
        assert obs.axis is None
        assert obs.percentile == 99.999
