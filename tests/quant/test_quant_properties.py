"""Property-based tests (hypothesis) for the quantization substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant.affine import (
    QuantParams,
    dequantize,
    fake_quantize,
    qparams_from_range,
    quantize,
)

bits_strategy = st.integers(min_value=2, max_value=8)
finite_floats = st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False, allow_infinity=False)


@st.composite
def tensor_and_params(draw):
    bits = draw(bits_strategy)
    signed = draw(st.booleans())
    scale = draw(st.floats(min_value=1e-6, max_value=1e3))
    shape = draw(st.integers(min_value=1, max_value=50))
    x = draw(hnp.arrays(np.float64, shape,
                        elements=finite_floats))
    qp = QuantParams(scale=scale, zero_point=0.0, bits=bits,
                     signed=signed)
    return x, qp


@given(tensor_and_params())
@settings(max_examples=200, deadline=None)
def test_codes_always_in_grid(case):
    """Quantized codes never escape the Equation-2 range."""
    x, qp = case
    q = quantize(x, qp)
    assert q.min() >= qp.qmin
    assert q.max() <= qp.qmax


@given(tensor_and_params())
@settings(max_examples=200, deadline=None)
def test_fake_quantize_idempotent(case):
    """quantize(dequantize(quantize(x))) == quantize(x)."""
    x, qp = case
    once = fake_quantize(x, qp)
    twice = fake_quantize(once, qp)
    assert np.allclose(once, twice, atol=1e-12)


@given(tensor_and_params())
@settings(max_examples=200, deadline=None)
def test_error_bounded_by_half_step_inside_range(case):
    """|x - fq(x)| <= scale/2 wherever x is inside the clip range."""
    x, qp = case
    fq = fake_quantize(x, qp)
    scale = float(qp.scale)
    lo = qp.qmin * scale
    hi = qp.qmax * scale
    inside = (x >= lo) & (x <= hi)
    err = np.abs(x - fq)[inside]
    assert (err <= scale / 2 + 1e-9).all()


@given(tensor_and_params())
@settings(max_examples=150, deadline=None)
def test_dequantize_quantize_roundtrip(case):
    """Codes survive a dequantize/quantize round trip exactly."""
    x, qp = case
    q = quantize(x, qp)
    assert np.array_equal(quantize(dequantize(q, qp), qp), q)


@given(
    st.floats(min_value=-100, max_value=0),
    st.floats(min_value=0, max_value=100),
    bits_strategy,
    st.booleans(),
)
@settings(max_examples=200, deadline=None)
def test_qparams_cover_requested_range(lo, hi, bits, symmetric):
    """The derived grid represents both endpoints within one step."""
    qp = qparams_from_range(lo, hi, bits, signed=True,
                            symmetric=symmetric)
    scale = float(qp.scale)
    for endpoint in (lo, hi):
        fq = float(fake_quantize(np.array([endpoint]), qp)[0])
        assert abs(fq - endpoint) <= scale * 1.01


@given(bits_strategy, st.floats(min_value=0.5, max_value=100.0))
@settings(max_examples=100, deadline=None)
def test_more_bits_less_error(bits, absmax):
    """For the same range, error shrinks monotonically with bits."""
    if bits == 8:
        return
    rng = np.random.default_rng(0)
    x = rng.uniform(-absmax, absmax, size=256)
    qp_low = qparams_from_range(-absmax, absmax, bits, signed=True)
    qp_high = qparams_from_range(-absmax, absmax, bits + 1, signed=True)
    err_low = np.abs(x - fake_quantize(x, qp_low)).mean()
    err_high = np.abs(x - fake_quantize(x, qp_high)).mean()
    assert err_high <= err_low + 1e-12
