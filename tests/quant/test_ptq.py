"""PTQ pipeline tests: calibration-only quantization and its limits."""

import numpy as np
import pytest

from repro.models.builders import build_tiny
from repro.nn.data import synthetic_image_dataset
from repro.quant.ptq import (
    apply_bias_correction_to_model,
    layer_quantization_snr,
    post_training_quantize,
)
from repro.quant.qat import (
    QatRecipe,
    calibrate_activations,
    evaluate,
    set_model_bits,
    train_qat,
)


@pytest.fixture(scope="module")
def data():
    return synthetic_image_dataset(
        n_classes=4, n_samples=240, image_size=12, seed=3
    ).split(0.8)


@pytest.fixture(scope="module")
def float_model(data):
    """A float-trained model (PTQ's starting point)."""
    train, val = data
    model = build_tiny("alexnet", act_bits=None, weight_bits=None)
    recipe = QatRecipe(lr=0.05, epochs=6, lr_step=4, batch_size=32)
    train_qat(model, train, val, recipe, seed=0)
    return model


class TestPtqPipeline:
    def test_8bit_ptq_preserves_accuracy(self, data, float_model):
        train, val = data
        float_acc = evaluate(float_model, val)
        set_model_bits(float_model, 8, 8, first_last_bits=None)
        report = post_training_quantize(float_model, train, val)
        try:
            assert report.bits == 8
            assert report.calibrated_layers > 0
            # Paper Section II-A: PTQ "is effective at higher precisions
            # like 7- and 8-bit".
            assert report.accuracy >= float_acc - 0.10
        finally:
            set_model_bits(float_model, None, None, first_last_bits=None)

    def test_2bit_ptq_degrades(self, data, float_model):
        train, val = data
        float_acc = evaluate(float_model, val)
        set_model_bits(float_model, 2, 2, first_last_bits=None)
        report = post_training_quantize(float_model, train, val)
        set_model_bits(float_model, None, None, first_last_bits=None)
        # PTQ cannot "scale down to narrower data sizes" (Section II-A):
        # without retraining, 2-bit loses clearly against float.
        assert report.accuracy <= float_acc

    def test_requires_quant_layers(self, data):
        from repro.nn.layers import Linear, Sequential
        train, val = data
        with pytest.raises(ValueError):
            post_training_quantize(Sequential(Linear(4, 4)), train, val)

    def test_bias_correction_counts_layers(self, data, float_model):
        train, _ = data
        set_model_bits(float_model, 4, 4, first_last_bits=None)
        calibrate_activations(float_model, train, batch_size=16, batches=2)
        biases_before = [
            l.bias.data.copy()
            for l in float_model.modules()
            if hasattr(l, "bias") and l.bias is not None
        ]
        corrected = apply_bias_correction_to_model(
            float_model, train, batch_size=16, batches=2,
        )
        set_model_bits(float_model, None, None, first_last_bits=None)
        assert corrected > 0
        biases_after = [
            l.bias.data
            for l in float_model.modules()
            if hasattr(l, "bias") and l.bias is not None
        ]
        changed = any(
            not np.allclose(b, a)
            for b, a in zip(biases_before, biases_after)
        )
        assert changed

    def test_clip_zero_is_noop(self, data, float_model):
        train, _ = data
        set_model_bits(float_model, 4, 4, first_last_bits=None)
        biases_before = [
            l.bias.data.copy()
            for l in float_model.modules()
            if hasattr(l, "bias") and l.bias is not None
        ]
        apply_bias_correction_to_model(
            float_model, train, batch_size=16, batches=2, clip=0.0,
        )
        set_model_bits(float_model, None, None, first_last_bits=None)
        biases_after = [
            l.bias.data
            for l in float_model.modules()
            if hasattr(l, "bias") and l.bias is not None
        ]
        for b, a in zip(biases_before, biases_after):
            assert np.allclose(b, a)


class TestSnrDiagnostic:
    def test_snr_improves_with_bits(self, float_model):
        snrs = {}
        for bits in (2, 4, 8):
            set_model_bits(float_model, bits, bits, first_last_bits=None)
            values = layer_quantization_snr(float_model)
            snrs[bits] = np.mean(list(values.values()))
        set_model_bits(float_model, None, None, first_last_bits=None)
        assert snrs[2] < snrs[4] < snrs[8]

    def test_roughly_6db_per_bit(self, float_model):
        set_model_bits(float_model, 8, 8, first_last_bits=None)
        snr8 = np.mean(list(layer_quantization_snr(float_model).values()))
        set_model_bits(float_model, 4, 4, first_last_bits=None)
        snr4 = np.mean(list(layer_quantization_snr(float_model).values()))
        set_model_bits(float_model, None, None, first_last_bits=None)
        # The classic ~6 dB/bit law, loosely.
        assert 15 < snr8 - snr4 < 35
