"""QAT pipeline tests: recipes, calibration, training, progressive runs."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.data import synthetic_image_dataset
from repro.nn.layers import (
    Flatten,
    GlobalAvgPool2d,
    LayerQuantSpec,
    QuantConv2d,
    QuantLinear,
    ReLU,
    Sequential,
    seed_init,
)
from repro.quant.qat import (
    LOW_PRECISION_WEIGHT_DECAY,
    PAPER_RECIPES,
    QatRecipe,
    calibrate_activations,
    evaluate,
    progressive_qat,
    quant_layers,
    set_model_bits,
    train_qat,
)


def make_tiny_qcnn(act_bits=8, weight_bits=8, n_classes=4):
    seed_init(123)
    spec_in = LayerQuantSpec(act_bits=act_bits, weight_bits=weight_bits,
                             act_signed=True)
    spec_mid = LayerQuantSpec(act_bits=act_bits, weight_bits=weight_bits)
    return Sequential(
        QuantConv2d(1, 8, 3, spec=spec_in, padding=1),
        ReLU(),
        QuantConv2d(8, 8, 3, spec=spec_mid, padding=1, stride=2),
        ReLU(),
        GlobalAvgPool2d(),
        QuantLinear(8, n_classes, spec=spec_mid),
    )


@pytest.fixture(scope="module")
def dataset():
    return synthetic_image_dataset(
        n_classes=4, n_samples=240, image_size=12, seed=0
    ).split(0.8)


class TestRecipes:
    def test_paper_recipes_present(self):
        assert set(PAPER_RECIPES) == {
            "alexnet", "vgg16", "resnet18", "mobilenet_v1",
            "regnet_x_400mf", "efficientnet_b0",
        }

    def test_paper_recipe_values(self):
        # Section IV-A: ResNet-18 lr 1e-3, 90 epochs, step 30, batch 256.
        r = PAPER_RECIPES["resnet18"]
        assert (r.lr, r.epochs, r.lr_step, r.batch_size) == \
            (1e-3, 90, 30, 256)
        assert r.momentum == 0.9
        assert r.weight_decay == 1e-4

    def test_scaled_recipe(self):
        r = PAPER_RECIPES["resnet18"].scaled(0.1)
        assert r.epochs == 9
        assert r.lr_step == 3
        assert r.lr == PAPER_RECIPES["resnet18"].lr


class TestSetModelBits:
    def test_first_last_stay_8bit(self):
        model = make_tiny_qcnn()
        set_model_bits(model, 3, 3)
        layers = quant_layers(model)
        assert layers[0].spec.act_bits == 8
        assert layers[0].spec.weight_bits == 8
        assert layers[-1].spec.weight_bits == 8
        assert layers[1].spec.act_bits == 3
        assert layers[1].spec.weight_bits == 3

    def test_override_first_last(self):
        model = make_tiny_qcnn()
        set_model_bits(model, 2, 2, first_last_bits=None)
        assert all(
            layer.spec.weight_bits == 2 for layer in quant_layers(model)
        )

    def test_signedness_preserved(self):
        model = make_tiny_qcnn()
        signed_before = [layer.spec.act_signed
                         for layer in quant_layers(model)]
        set_model_bits(model, 4, 4)
        signed_after = [layer.spec.act_signed
                        for layer in quant_layers(model)]
        assert signed_before == signed_after

    def test_none_disables_quant(self):
        model = make_tiny_qcnn()
        set_model_bits(model, None, None, first_last_bits=None)
        assert all(layer.spec.act_bits is None
                   for layer in quant_layers(model))


class TestCalibration:
    def test_calibration_sets_scales(self, dataset):
        train, _ = dataset
        model = make_tiny_qcnn()
        before = [float(layer.act_log_scale.data)
                  for layer in quant_layers(model)]
        calibrate_activations(model, train, batch_size=16, batches=4)
        after = [float(layer.act_log_scale.data)
                 for layer in quant_layers(model)]
        assert before != after

    def test_calibrated_model_still_runs(self, dataset):
        train, val = dataset
        model = make_tiny_qcnn()
        calibrate_activations(model, train, batch_size=16, batches=2)
        acc = evaluate(model, val)
        assert 0.0 <= acc <= 1.0


class TestTraining:
    def test_qat_improves_over_init(self, dataset):
        train, val = dataset
        model = make_tiny_qcnn(act_bits=8, weight_bits=8)
        calibrate_activations(model, train, batch_size=16, batches=4)
        init_acc = evaluate(model, val)
        recipe = QatRecipe(lr=0.05, epochs=8, lr_step=6, batch_size=32)
        history = train_qat(model, train, val, recipe, seed=0)
        assert history.best_val_accuracy > max(init_acc, 0.4)
        assert len(history.loss) == 8

    def test_history_records_epochs(self, dataset):
        train, val = dataset
        model = make_tiny_qcnn()
        recipe = QatRecipe(lr=0.01, epochs=2, lr_step=1, batch_size=32)
        history = train_qat(model, train, val, recipe)
        assert len(history.val_accuracy) == 2
        assert len(history.train_accuracy) == 2

    def test_progressive_lowers_weight_decay(self, dataset):
        train, val = dataset
        model = make_tiny_qcnn()
        recipe = QatRecipe(lr=0.01, epochs=1, lr_step=1, batch_size=64)
        logs = []
        histories = progressive_qat(
            model, train, val, recipe,
            bit_schedule=[(4, 4), (3, 3)],
            log=logs.append,
        )
        assert set(histories) == {"a4-w4", "a3-w3"}
        assert any("a3-w3" in line for line in logs)
        assert LOW_PRECISION_WEIGHT_DECAY == 5e-5


class TestAccuracyBitwidthTrend:
    def test_8bit_beats_2bit_after_training(self, dataset):
        """The qualitative Figure 7 trend on synthetic data."""
        train, val = dataset
        recipe = QatRecipe(lr=0.05, epochs=8, lr_step=6, batch_size=32)
        accs = {}
        for bits in (8, 2):
            model = make_tiny_qcnn(act_bits=bits, weight_bits=bits)
            # Quantize *every* layer (no 8-bit rescue) to sharpen the trend.
            set_model_bits(model, bits, bits, first_last_bits=None)
            calibrate_activations(model, train, batch_size=16, batches=4)
            history = train_qat(model, train, val, recipe, seed=1)
            accs[bits] = history.best_val_accuracy
        assert accs[8] >= accs[2]
