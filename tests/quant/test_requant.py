"""Integer-only requantization tests (fixed-point GEMMLowp semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.requant import (
    INT32_MAX,
    INT32_MIN,
    FixedPointMultiplier,
    RequantError,
    quantize_multiplier,
    requantize_int,
    requantize_reference,
    rounding_right_shift,
    saturating_rounding_doubling_high_mul,
)


class TestQuantizeMultiplier:
    @pytest.mark.parametrize("value", [0.0003, 0.01, 0.25, 0.5, 0.9999])
    def test_encoding_accuracy(self, value):
        fp = quantize_multiplier(value)
        assert fp.real_value == pytest.approx(value, rel=1e-8)
        assert (1 << 30) <= fp.m0 < (1 << 31)

    def test_half_is_exact(self):
        fp = quantize_multiplier(0.5)
        assert fp.real_value == 0.5

    def test_invalid(self):
        with pytest.raises(RequantError):
            quantize_multiplier(0.0)
        with pytest.raises(RequantError):
            quantize_multiplier(-0.5)
        with pytest.raises(RequantError):
            quantize_multiplier(2.0)  # >= 1 unsupported


class TestSrdhm:
    def test_identity_on_half(self):
        # b = 2^30 encodes 0.5: SRDHM(a, 2^30) == round(a / 2).
        a = np.array([10, 11, -11, 0])
        got = saturating_rounding_doubling_high_mul(a, 1 << 30)
        assert list(got) == [5, 6, -6, 0]  # round half away from zero

    def test_overflow_case_saturates(self):
        got = saturating_rounding_doubling_high_mul(
            np.array([INT32_MIN]), INT32_MIN
        )
        assert got[0] == INT32_MAX


class TestRoundingShift:
    def test_rounds_half_away_from_zero(self):
        x = np.array([3, 5, -3, -5])
        got = rounding_right_shift(x, 1)
        assert list(got) == [2, 3, -2, -3]

    def test_zero_shift_identity(self):
        x = np.array([7, -7])
        assert np.array_equal(rounding_right_shift(x, 0), x)

    def test_large_shift(self):
        assert rounding_right_shift(np.array([1 << 20]), 20)[0] == 1


class TestRequantize:
    @given(
        st.floats(min_value=1e-5, max_value=0.999),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=200, deadline=None)
    def test_within_one_lsb_of_float(self, multiplier, seed):
        rng = np.random.default_rng(seed)
        acc = rng.integers(-(1 << 20), 1 << 20, size=64)
        fp = quantize_multiplier(multiplier)
        integer = requantize_int(acc, fp)
        reference = requantize_reference(acc, multiplier)
        assert np.abs(integer - reference).max() <= 1

    def test_clipping(self):
        fp = quantize_multiplier(0.5)
        got = requantize_int(np.array([10_000, -10_000]), fp)
        assert list(got) == [127, -128]

    def test_zero_point_applied(self):
        fp = quantize_multiplier(0.5)
        got = requantize_int(np.array([10]), fp, zero_point=3,
                             qmin=0, qmax=255)
        assert got[0] == 8

    def test_end_to_end_layer_requant(self):
        """Integer-only layer scale application within 1 LSB of the
        paper's floating-point scale path."""
        rng = np.random.default_rng(4)
        acc = rng.integers(-5000, 5000, size=(8, 8))
        s_x, s_w, s_y = 0.02, 0.005, 0.04
        real = s_x * s_w / s_y
        fp = quantize_multiplier(real)
        integer = requantize_int(acc, fp, qmin=-128, qmax=127)
        reference = requantize_reference(acc, real, qmin=-128, qmax=127)
        assert np.abs(integer - reference).max() <= 1
