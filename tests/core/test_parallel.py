"""Multi-core Mix-GEMM tests (Section III-B scalability claim)."""

import numpy as np
import pytest

from repro.core.config import BlockingParams, MixGemmConfig
from repro.core.gemm import MixGemm
from repro.core.parallel import ParallelMixGemm, combined_pmu

SMALL = BlockingParams(mc=8, nc=8, kc=64)


def _operands(m=8, k=96, n=16, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.integers(-8, 8, size=(m, k)),
            rng.integers(-8, 8, size=(k, n)))


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("cores", [1, 2, 3, 4])
    def test_matches_single_core(self, cores):
        a, b = _operands()
        cfg = MixGemmConfig(bw_a=4, bw_b=4, blocking=SMALL)
        single = MixGemm(cfg, emulate_datapath=False).gemm(a, b)
        parallel = ParallelMixGemm(cfg, cores=cores).gemm(a, b)
        assert np.array_equal(parallel.c, single.c)

    def test_uneven_split(self):
        a, b = _operands(n=13)
        cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL)
        parallel = ParallelMixGemm(cfg, cores=4).gemm(a, b)
        assert np.array_equal(
            parallel.c, a.astype(np.int64) @ b
        )

    def test_more_cores_than_tiles(self):
        a, b = _operands(n=4)
        cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL)
        parallel = ParallelMixGemm(cfg, cores=8).gemm(a, b)
        assert np.array_equal(parallel.c, a.astype(np.int64) @ b)
        assert parallel.cores <= 8

    def test_shape_validation(self):
        cfg = MixGemmConfig(blocking=SMALL)
        with pytest.raises(Exception):
            ParallelMixGemm(cfg, cores=2).gemm(
                np.zeros((2, 3), dtype=int), np.zeros((4, 2), dtype=int)
            )

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            ParallelMixGemm(MixGemmConfig(), cores=0)


class TestTiming:
    def test_parallel_is_faster(self):
        a, b = _operands(m=8, k=192, n=32)
        cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL)
        one = ParallelMixGemm(cfg, cores=1, barrier_cycles=0).gemm(a, b)
        four = ParallelMixGemm(cfg, cores=4, barrier_cycles=0).gemm(a, b)
        assert four.cycles < one.cycles

    def test_near_linear_efficiency(self):
        # Paper: "retaining performance-per-core close to the
        # single-threaded implementation".
        a, b = _operands(m=8, k=192, n=64)
        cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL)
        result = ParallelMixGemm(cfg, cores=4, barrier_cycles=0).gemm(a, b)
        assert result.parallel_efficiency > 0.8

    def test_barrier_cost_included(self):
        a, b = _operands()
        cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL)
        free = ParallelMixGemm(cfg, cores=2, barrier_cycles=0).gemm(a, b)
        taxed = ParallelMixGemm(cfg, cores=2,
                                barrier_cycles=500).gemm(a, b)
        assert taxed.cycles == free.cycles + 500

    def test_gops_scale(self):
        rng = np.random.default_rng(1)
        a = rng.integers(-2, 2, size=(8, 192))
        b = rng.integers(-2, 2, size=(192, 64))
        cfg = MixGemmConfig(bw_a=2, bw_b=2, blocking=SMALL)
        one = ParallelMixGemm(cfg, cores=1, barrier_cycles=0).gemm(a, b)
        four = ParallelMixGemm(cfg, cores=4, barrier_cycles=0).gemm(a, b)
        assert four.gops() > 2.5 * one.gops()


class TestPmuAggregation:
    def test_combined_counters(self):
        a, b = _operands()
        cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL)
        result = ParallelMixGemm(cfg, cores=2).gemm(a, b)
        pmu = combined_pmu(result)
        assert pmu.macs == sum(r.pmu.macs for r in result.per_core)
        assert pmu.cycles_total == result.cycles
        assert pmu.ip_instructions > 0


class TestSharedPackingCache:
    """Every core consumes the same packed A through one shared cache."""

    def test_a_packed_exactly_once_across_cores(self):
        from repro.core.packcache import PackingCache

        a, b = _operands(m=8, k=96, n=32)
        cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL)
        cache = PackingCache()
        result = ParallelMixGemm(cfg, cores=4, backend="event",
                                 pack_cache=cache).gemm(a, b)
        a_entries = [key for key in cache._entries if key[0] == "A"]
        assert len(a_entries) == 1
        # Cores 2..4 hit the entry core 1 packed.
        assert cache.stats.hits >= result.cores - 1
        # The N-slices of B are distinct matrices: one pack each.
        b_entries = [key for key in cache._entries if key[0] == "B"]
        assert len(b_entries) == result.cores
        assert np.array_equal(result.c, a.astype(np.int64) @ b)

    def test_second_call_packs_nothing(self):
        from repro.core.packcache import PackingCache

        a, b = _operands(m=8, k=96, n=32)
        cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL)
        cache = PackingCache()
        executor = ParallelMixGemm(cfg, cores=4, backend="event",
                                   pack_cache=cache)
        executor.gemm(a, b)
        packs_before = cache.stats.packs
        executor.gemm(a, b)
        assert cache.stats.packs == packs_before


class TestMisalignedN:
    """N=13 with nr=4 leaves a ragged final slice; still bit-exact."""

    def test_n13_cores4_bit_exact_vs_single_core(self):
        a, b = _operands(m=8, k=96, n=13)
        cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL)
        single = MixGemm(cfg, emulate_datapath=False).gemm(a, b)
        parallel = ParallelMixGemm(cfg, cores=4).gemm(a, b)
        assert np.array_equal(parallel.c, single.c)
        assert np.array_equal(parallel.c, a.astype(np.int64) @ b)

    def test_n13_cores4_efficiency_accounting(self):
        a, b = _operands(m=8, k=96, n=13)
        cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL)
        result = ParallelMixGemm(cfg, cores=4, barrier_cycles=0).gemm(a, b)
        # 13 columns over nr=4 cores: three full nr-aligned slices plus
        # one single-column remainder, so all four cores engage.
        assert result.cores == 4
        serial = sum(r.cycles for r in result.per_core)
        expected = serial / (result.cycles * result.cores)
        assert result.parallel_efficiency == pytest.approx(expected)
        # The ragged split is imbalanced by construction: the remainder
        # core finishes early, so efficiency is strictly below 1 but
        # still bounded by the slowest-core model.
        assert 0.0 < result.parallel_efficiency < 1.0


class TestPerCallCores:
    """The tuner reuses one bank across candidates via gemm(cores=...)."""

    def test_subset_matches_full_bank(self):
        a, b = _operands(n=32)
        cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL)
        bank = ParallelMixGemm(cfg, cores=4)
        full = bank.gemm(a, b)
        for cores in (1, 2, 3, 4):
            restricted = bank.gemm(a, b, cores=cores)
            assert restricted.cores <= cores
            assert np.array_equal(restricted.c, full.c)

    def test_out_of_range_cores_rejected(self):
        from repro.core.binseg import BinSegError

        a, b = _operands()
        bank = ParallelMixGemm(
            MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL), cores=2)
        with pytest.raises(BinSegError, match="outside the constructed"):
            bank.gemm(a, b, cores=3)
        with pytest.raises(BinSegError, match="outside the constructed"):
            bank.gemm(a, b, cores=0)

    def test_default_uses_constructed_width(self):
        a, b = _operands(n=32)
        cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL)
        bank = ParallelMixGemm(cfg, cores=3)
        assert bank.gemm(a, b).cores == 3
