"""Differential tests: the fast path must equal the event backend.

The contract is not "close" -- it is exact: values bit-for-bit
(including two's-complement AccMem wraparound), cycles, every PMU
counter, and the instruction counts, on every guard-free run.  The
tests therefore always run both backends on the same inputs and
compare everything.
"""

import numpy as np
import pytest

from repro.core.backend import (
    AUTO,
    EVENT,
    FAST,
    BackendError,
    resolve_backend,
)
from repro.core.binseg import BinSegError
from repro.core.config import BlockingParams, MixGemmConfig
from repro.core.fastpath import (
    FastPathFallback,
    run_fastpath,
    wrap_signed_array,
)
from repro.core.gemm import KernelCosts, MixGemm
from repro.core.microengine import wrap_signed

# Small aligned blocking so the event oracle stays quick.
BLK = BlockingParams(mc=8, nc=8, kc=2, mr=4, nr=4)


def make_config(bw_a=8, bw_b=8, accmem_bits=16, **kw):
    kw.setdefault("blocking", BLK)
    return MixGemmConfig(bw_a=bw_a, bw_b=bw_b, accmem_bits=accmem_bits,
                         **kw)


def random_operands(config, m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.integers(-(1 << (config.bw_a - 1)), 1 << (config.bw_a - 1),
                     size=(m, k))
    b = rng.integers(-(1 << (config.bw_b - 1)), 1 << (config.bw_b - 1),
                     size=(k, n))
    return a, b


def run_both(config, m, k, n, seed=0, c_init=None):
    a, b = random_operands(config, m, k, n, seed=seed)
    kwargs = {"emulate_datapath": False}
    event = MixGemm(config, backend=EVENT, **kwargs).gemm(
        a, b, None if c_init is None else c_init.copy())
    fast = MixGemm(config, backend=FAST, **kwargs).gemm(
        a, b, None if c_init is None else c_init.copy())
    return event, fast


def assert_identical(event, fast):
    """The full exactness contract, field by field."""
    np.testing.assert_array_equal(event.c, fast.c)
    assert event.cycles == fast.cycles
    assert event.macs == fast.macs
    ep, fp = event.pmu, fast.pmu
    assert ep.cycles_total == fp.cycles_total
    assert ep.engine_busy_cycles == fp.engine_busy_cycles
    assert ep.buffer_full_stall_cycles == fp.buffer_full_stall_cycles
    assert ep.get_stall_cycles == fp.get_stall_cycles
    assert ep.macs == fp.macs
    assert ep.groups == fp.groups
    assert ep.ip_instructions == fp.ip_instructions
    assert ep.get_instructions == fp.get_instructions
    assert ep.set_instructions == fp.set_instructions
    assert event.instructions == fast.instructions


class TestValuesAndTiming:
    @pytest.mark.parametrize("bw_a,bw_b", [(8, 8), (8, 4), (6, 4),
                                           (4, 2), (3, 3), (2, 2)])
    def test_bitwidth_pairs_exact(self, bw_a, bw_b):
        config = make_config(bw_a, bw_b)
        event, fast = run_both(config, 5, 37, 6, seed=bw_a * 10 + bw_b)
        assert event.backend == EVENT
        assert fast.backend == FAST
        assert_identical(event, fast)

    @pytest.mark.parametrize("shape", [(1, 1, 1), (1, 5, 1), (7, 19, 9),
                                       (8, 64, 8), (4, 2, 12)])
    def test_ragged_shapes_exact(self, shape):
        m, k, n = shape
        event, fast = run_both(make_config(), m, k, n, seed=sum(shape))
        assert_identical(event, fast)

    @pytest.mark.parametrize("accmem_bits", [8, 12, 16, 33, 64])
    def test_accmem_wraparound_exact(self, accmem_bits):
        # Narrow accumulators wrap mid-block; both paths must agree.
        config = make_config(8, 8, accmem_bits=accmem_bits)
        event, fast = run_both(config, 6, 40, 6, seed=accmem_bits)
        assert_identical(event, fast)

    def test_c_accumulation_exact(self):
        config = make_config()
        rng = np.random.default_rng(3)
        c_init = rng.integers(-1000, 1000, size=(5, 6)).astype(np.int64)
        event, fast = run_both(config, 5, 12, 6, c_init=c_init)
        assert_identical(event, fast)

    def test_executor_reuse_stays_cumulative(self):
        # The engine clock never resets between gemm() calls; the fast
        # path folds its modelled cycles into the same cumulative state.
        config = make_config()
        a1, b1 = random_operands(config, 5, 12, 6, seed=1)
        a2, b2 = random_operands(config, 7, 8, 5, seed=2)
        ev = MixGemm(config, emulate_datapath=False, backend=EVENT)
        fa = MixGemm(config, emulate_datapath=False, backend=FAST)
        ev.gemm(a1, b1)
        fa.gemm(a1, b1)
        assert_identical(ev.gemm(a2, b2), fa.gemm(a2, b2))

    def test_interleaved_backends_one_executor(self):
        # fast-then-event on ONE executor equals all-event history.
        config = make_config()
        a1, b1 = random_operands(config, 5, 12, 6, seed=4)
        a2, b2 = random_operands(config, 5, 12, 6, seed=5)
        ref = MixGemm(config, emulate_datapath=False, backend=EVENT)
        mix = MixGemm(config, emulate_datapath=False, backend=FAST)
        ref.gemm(a1, b1)
        mix.gemm(a1, b1)
        mix.backend = EVENT
        assert_identical(ref.gemm(a2, b2), mix.gemm(a2, b2))

    def test_datapath_emulation_agrees_with_fast(self):
        # The binseg-emulated event path and the fast path are two
        # independent derivations of the same arithmetic.
        config = make_config(6, 4)
        a, b = random_operands(config, 5, 9, 6, seed=6)
        emulated = MixGemm(config, emulate_datapath=True,
                           backend=EVENT).gemm(a, b)
        fast = MixGemm(config, emulate_datapath=False,
                       backend=FAST).gemm(a, b)
        assert_identical(emulated, fast)


class TestDispatch:
    def test_unknown_backend_rejected(self):
        with pytest.raises(BackendError):
            resolve_backend("vector", make_config())
        with pytest.raises(ValueError):
            MixGemmConfig(backend="vector")

    def test_auto_guard_free_picks_fast(self):
        assert resolve_backend(AUTO, make_config()).is_fast

    def test_auto_with_emulation_picks_event(self):
        decision = resolve_backend(AUTO, make_config(),
                                   emulate_datapath=True)
        assert decision.backend == EVENT

    @pytest.mark.parametrize("hook", ["memory", "fault_hook",
                                      "pack_guard"])
    def test_fidelity_hooks_force_event(self, hook):
        # Even an explicit "fast" request loses to a fidelity hook.
        decision = resolve_backend(FAST, make_config(),
                                   **{hook: object()})
        assert decision.backend == EVENT

    def test_misaligned_blocking_forces_event(self):
        blk = BlockingParams(mc=10, nc=8, kc=2, mr=4, nr=4)
        decision = resolve_backend(FAST, make_config(blocking=blk))
        assert decision.backend == EVENT

    def test_executor_records_decision(self):
        config = make_config()
        executor = MixGemm(config, emulate_datapath=False, backend=AUTO)
        a, b = random_operands(config, 4, 4, 4)
        result = executor.gemm(a, b)
        assert result.backend == FAST
        assert executor.last_decision is not None
        assert executor.last_decision.is_fast

    def test_fault_hook_executor_runs_event(self):
        class Hook:
            def on_pack(self, operand, packed):
                return packed

            def on_accumulate(self, accmem, group_index):
                return None

        config = make_config()
        executor = MixGemm(config, emulate_datapath=False, backend=FAST,
                           fault_hook=Hook())
        a, b = random_operands(config, 4, 4, 4)
        assert executor.gemm(a, b).backend == EVENT


class TestErrorParity:
    @pytest.mark.parametrize("backend", [EVENT, FAST])
    def test_empty_k_raises_same_error(self, backend):
        executor = MixGemm(make_config(), emulate_datapath=False,
                           backend=backend)
        with pytest.raises(BinSegError,
                           match="cannot pack an empty k vector"):
            executor.gemm(np.zeros((3, 0), dtype=np.int64),
                          np.zeros((0, 4), dtype=np.int64))

    @pytest.mark.parametrize("backend", [EVENT, FAST])
    def test_out_of_range_raises_same_error(self, backend):
        executor = MixGemm(make_config(bw_a=4), emulate_datapath=False,
                           backend=backend)
        a = np.full((2, 2), 100)
        b = np.ones((2, 2), dtype=np.int64)
        with pytest.raises(BinSegError):
            executor.gemm(a, b)

    def test_run_fastpath_refuses_misaligned_blocking(self):
        blk = BlockingParams(mc=10, nc=8, kc=2, mr=4, nr=4)
        config = make_config(blocking=blk)
        a, b = random_operands(config, 4, 4, 4)
        with pytest.raises(FastPathFallback):
            run_fastpath(config, KernelCosts(), a, b)


class TestWrapSignedArray:
    @pytest.mark.parametrize("bits", [2, 5, 8, 16, 33, 63])
    def test_matches_scalar_wrap(self, bits):
        rng = np.random.default_rng(bits)
        values = rng.integers(-(1 << 62), 1 << 62, size=257)
        expected = [wrap_signed(int(v), bits) for v in values]
        np.testing.assert_array_equal(wrap_signed_array(values, bits),
                                      expected)

    def test_identity_at_64_bits(self):
        values = np.array([np.iinfo(np.int64).min, -1, 0,
                           np.iinfo(np.int64).max])
        np.testing.assert_array_equal(wrap_signed_array(values, 64),
                                      values)

    def test_boundary_values(self):
        values = np.array([(1 << 15) - 1, 1 << 15, -(1 << 15),
                           -(1 << 15) - 1])
        expected = [wrap_signed(int(v), 16) for v in values]
        np.testing.assert_array_equal(wrap_signed_array(values, 16),
                                      expected)


@pytest.mark.slow
class TestFullDifferentialSweep:
    """The acceptance sweep: every bitwidth pair, ragged shapes,
    several AccMem widths -- bit-exact values AND exact cycles/PMU."""

    @pytest.mark.parametrize("bw_a", range(2, 9))
    @pytest.mark.parametrize("bw_b", range(2, 9))
    def test_all_bitwidth_pairs(self, bw_a, bw_b):
        accmem_widths = (8, 12, 16, 32, 64)
        accmem = accmem_widths[(bw_a * 7 + bw_b) % len(accmem_widths)]
        config = make_config(bw_a, bw_b, accmem_bits=accmem)
        shapes = [(5, 37, 6), (1, 3, 11), (8, 64, 8)]
        m, k, n = shapes[(bw_a + bw_b) % len(shapes)]
        event, fast = run_both(config, m, k, n,
                               seed=bw_a * 100 + bw_b)
        assert_identical(event, fast)


class TestBlockingOverrideEquivalence:
    """The tuner swaps ``config.blocking`` per candidate; with the full
    64-bit container the kc split is a pure schedule choice -- every
    valid blocking produces the identical matrix."""

    @pytest.mark.parametrize("kc", [2, 16, 64, 1024])
    def test_full_container_values_invariant_under_kc(self, kc):
        from dataclasses import replace

        base = make_config(accmem_bits=64)
        a, b = random_operands(base, 8, 4096, 8, seed=3)
        reference = run_fastpath(base, KernelCosts(), a, b).c
        cfg = replace(base, blocking=BlockingParams(
            mc=8, nc=8, kc=kc, mr=4, nr=4))
        got = run_fastpath(cfg, KernelCosts(), a, b).c
        np.testing.assert_array_equal(got, reference)
        np.testing.assert_array_equal(got, a.astype(np.int64) @ b)

    def test_sub_container_wrap_points_move_with_kc(self):
        """The converse: with a narrow AccMem the split boundaries are
        semantic, which is exactly why the tuner's exactness gate
        exists (see repro.tuning.measure)."""
        from dataclasses import replace

        base = make_config(accmem_bits=20, blocking=BlockingParams(
            mc=16, nc=16, kc=16, mr=4, nr=4))
        a, b = random_operands(base, 4, 4096, 4, seed=9)
        small = run_fastpath(base, KernelCosts(), a, b).c
        big = run_fastpath(
            replace(base, blocking=BlockingParams(
                mc=16, nc=16, kc=1024, mr=4, nr=4)),
            KernelCosts(), a, b).c
        assert not np.array_equal(small, big)


class TestCostOracleToggle:
    """Satellite of the cost-model PR: ``COST_ORACLE`` substitutes the
    calibrated closed form for the per-tile engine run, and flipping it
    must never change a cycle -- including the cumulative folding an
    executor does across repeated ``gemm()`` calls."""

    @pytest.fixture(autouse=True)
    def _isolated_cost_cache(self, tmp_path, monkeypatch):
        from repro.analysis.cost import COST_CACHE_ENV
        from repro.analysis.cost.calibrate import clear_calibration_memo

        monkeypatch.setenv(COST_CACHE_ENV, str(tmp_path / "cost"))
        clear_calibration_memo()
        self._clear_caches()
        yield
        clear_calibration_memo()
        self._clear_caches()

    @staticmethod
    def _clear_caches():
        from repro.core import fastpath

        for fn in (fastpath._tile_timing, fastpath._tile_timing_engine,
                   fastpath.fastpath_timing):
            clear = getattr(fn, "cache_clear", None)
            if clear is not None:  # a test may have patched fn out
                clear()

    def _with_oracle(self, monkeypatch, enabled, fn):
        from repro.core import fastpath

        monkeypatch.setattr(fastpath, "COST_ORACLE", enabled)
        self._clear_caches()
        try:
            return fn()
        finally:
            monkeypatch.undo()
            self._clear_caches()

    @pytest.mark.parametrize("bw_a,bw_b", [(8, 8), (6, 4)])
    def test_oracle_on_off_identical_results(self, monkeypatch,
                                             bw_a, bw_b):
        config = make_config(bw_a, bw_b)
        a, b = random_operands(config, 5, 12, 6, seed=11)

        def run():
            return run_fastpath(config, KernelCosts(), a, b)

        on = self._with_oracle(monkeypatch, True, run)
        off = self._with_oracle(monkeypatch, False, run)
        np.testing.assert_array_equal(on.c, off.c)
        assert on.cycles == off.cycles
        assert on.pmu == off.pmu
        assert on.instructions == off.instructions

    def test_oracle_on_off_identical_fastpath_timing(self, monkeypatch):
        from repro.core.fastpath import fastpath_timing

        config = make_config(6, 4)
        shapes = [(5, 6, 12), (8, 8, 64), (1, 3, 11)]

        def time_all():
            return [fastpath_timing(config, KernelCosts(), m, n, k)
                    for m, n, k in shapes]

        on = self._with_oracle(monkeypatch, True, time_all)
        off = self._with_oracle(monkeypatch, False, time_all)
        assert on == off

    def test_cumulative_folding_identical_across_calls(self, monkeypatch):
        # The executor clock never resets between gemm() calls; the
        # oracle-substituted timing must fold into the same cumulative
        # state as the engine-seeded one, call after call.
        config = make_config()
        a1, b1 = random_operands(config, 5, 12, 6, seed=1)
        a2, b2 = random_operands(config, 7, 8, 5, seed=2)

        def run_sequence():
            executor = MixGemm(config, emulate_datapath=False,
                               backend=FAST)
            first = executor.gemm(a1, b1)
            second = executor.gemm(a2, b2)
            return (first.cycles, second.cycles,
                    second.pmu.cycles_total)

        on = self._with_oracle(monkeypatch, True, run_sequence)
        off = self._with_oracle(monkeypatch, False, run_sequence)
        assert on == off
        assert on[2] > on[0]  # folding really is cumulative

    def test_warm_oracle_never_runs_the_engine(self, monkeypatch):
        from repro.analysis.cost import get_tile_calibration
        from repro.core import fastpath

        config = make_config(8, 4)
        oracle = fastpath.replace(config, backend="event")
        get_tile_calibration(oracle)  # warm: the only engine touches
        self._clear_caches()
        monkeypatch.setattr(
            fastpath, "_tile_timing_engine",
            lambda *args, **kw: pytest.fail(
                "fast path ran the engine despite a warm calibration"))
        a, b = random_operands(config, 5, 12, 6, seed=7)
        result = run_fastpath(config, KernelCosts(), a, b)
        assert result.cycles > 0

    def test_inexact_calibration_falls_back_to_engine(self, monkeypatch):
        # exact_tile_timing returning None (model refused to vouch for
        # this config) must transparently route to the engine oracle.
        import repro.analysis.cost.calibrate as calibrate_mod

        config = make_config(6, 4)
        a, b = random_operands(config, 5, 12, 6, seed=13)

        def run():
            return run_fastpath(config, KernelCosts(), a, b)

        reference = self._with_oracle(monkeypatch, False, run)
        monkeypatch.setattr(calibrate_mod, "exact_tile_timing",
                            lambda *args, **kw: None)
        self._clear_caches()
        fallback = run()
        self._clear_caches()
        np.testing.assert_array_equal(fallback.c, reference.c)
        assert fallback.cycles == reference.cycles
        assert fallback.pmu == reference.pmu
