"""Error paths of the core layer: protocol violations and bad operands.

The happy paths are covered by the functional suites; these tests pin
the *failure* behaviour -- which exception, and that it carries enough
context to act on.
"""

import numpy as np
import pytest

from repro.core.binseg import BinSegError
from repro.core.config import MixGemmConfig
from repro.core.errors import ReproError
from repro.core.microengine import (
    MicroEngine,
    MicroEngineError,
    distribute_elements,
)
from repro.core.packing import (
    pack_kvector,
    pack_matrix_a,
    pack_matrix_b,
    pack_word,
    unpack_word,
)


class TestMicroEngineProtocol:
    def test_ip_before_set(self):
        engine = MicroEngine()
        with pytest.raises(MicroEngineError, match="bs.ip before bs.set"):
            engine.push_pair(0, 0)

    def test_get_before_set(self):
        engine = MicroEngine()
        with pytest.raises(MicroEngineError, match="bs.get before bs.set"):
            engine.read_slot(0)

    def test_accmem_slot_out_of_range(self):
        engine = MicroEngine(MixGemmConfig(bw_a=8, bw_b=8))
        n_slots = len(engine.accmem)
        with pytest.raises(MicroEngineError, match="out of range"):
            engine.read_slot(n_slots)
        with pytest.raises(MicroEngineError, match="out of range"):
            engine.read_slot(-1)

    def test_valid_slot_reads_cleanly_after_set(self):
        engine = MicroEngine(MixGemmConfig(bw_a=8, bw_b=8))
        value, _stall = engine.read_slot(0)
        assert value == 0

    def test_time_cannot_go_backwards(self):
        engine = MicroEngine(MixGemmConfig(bw_a=8, bw_b=8))
        with pytest.raises(ValueError):
            engine.advance(-1)

    def test_distribute_elements_overflow(self):
        with pytest.raises(MicroEngineError, match="cannot fit"):
            distribute_elements(100, 2, 8)

    def test_error_is_a_runtime_and_repro_error(self):
        assert issubclass(MicroEngineError, RuntimeError)
        assert issubclass(MicroEngineError, ReproError)


class TestPackingValidation:
    def test_pack_word_capacity(self):
        with pytest.raises(BinSegError, match="exceed u-vector capacity"):
            pack_word(list(range(9)), bw=8)

    def test_unpack_word_capacity(self):
        with pytest.raises(BinSegError, match="cannot unpack"):
            unpack_word(0, bw=8, count=9, signed=True)

    def test_pack_empty_kvector(self):
        with pytest.raises(BinSegError, match="empty k vector"):
            pack_kvector([], bw=8, ku=1, group_elements=8, signed=True)

    @pytest.mark.parametrize("packer", [pack_matrix_a, pack_matrix_b])
    def test_matrix_must_be_2d(self, packer):
        cfg = MixGemmConfig(bw_a=4, bw_b=4)
        with pytest.raises(BinSegError, match="must be 2-D"):
            packer(np.zeros(8, dtype=np.int64), cfg)

    @pytest.mark.parametrize("packer", [pack_matrix_a, pack_matrix_b])
    def test_matrix_must_be_integer(self, packer):
        cfg = MixGemmConfig(bw_a=4, bw_b=4)
        with pytest.raises(BinSegError, match="integer array"):
            packer(np.zeros((4, 8), dtype=np.float64), cfg)

    def test_matrix_values_must_fit_the_bitwidth(self):
        cfg = MixGemmConfig(bw_a=4, bw_b=4)
        too_big = np.full((2, 8), 8, dtype=np.int64)  # 4-bit max is 7
        with pytest.raises(BinSegError, match="outside the 4-bit"):
            pack_matrix_a(too_big, cfg)

    def test_error_is_a_value_and_repro_error(self):
        assert issubclass(BinSegError, ValueError)
        assert issubclass(BinSegError, ReproError)
