"""Unit tests for the u-engine: DSU schedule, timing, PMU, AccMem."""

import numpy as np
import pytest

from repro.core.config import (
    BlockingParams,
    MixGemmConfig,
    all_size_combinations,
)
from repro.core.isa import BsGet, BsIp, BsSet, InstructionStream
from repro.core.microengine import (
    MicroEngine,
    MicroEngineError,
    distribute_elements,
    dsu_walk,
    effective_macs_per_cycle,
    group_cycles,
    group_schedule,
)
from repro.core.packing import pack_word


class TestDistributeElements:
    def test_dense_fill(self):
        assert distribute_elements(30, 4, 8) == [8, 8, 8, 6]
        assert distribute_elements(30, 3, 10) == [10, 10, 10]
        assert distribute_elements(30, 2, 16) == [16, 14]

    def test_overflow_rejected(self):
        with pytest.raises(MicroEngineError):
            distribute_elements(33, 4, 8)

    def test_zero_tail(self):
        assert distribute_elements(8, 4, 8) == [8, 0, 0, 0]


class TestDsuWalk:
    @pytest.mark.parametrize(
        "bw_a, bw_b, expected_cycles",
        [
            (8, 8, 12),  # paper Section III-B: 12 accumulations
            (8, 6, 12),  # paper: 12 accumulations
            (6, 4, 9),   # paper: 9 accumulations
        ],
    )
    def test_paper_group_cycles(self, bw_a, bw_b, expected_cycles):
        cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
        assert group_cycles(cfg) == expected_cycles

    def test_chunks_sum_to_elements(self):
        for bw_a, bw_b in all_size_combinations():
            cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
            sched = group_schedule(cfg)
            assert sum(sched.chunks) == cfg.layout.group_elements

    def test_chunks_bounded_by_cluster_size(self):
        for bw_a, bw_b in all_size_combinations():
            cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
            ics = cfg.binseg.input_cluster_size
            sched = group_schedule(cfg)
            assert all(1 <= c <= ics for c in sched.chunks)

    def test_a2w2_five_cycles_per_uvector(self):
        # Paper Section IV-B: 32 elements at 7 MAC/cycle need 5 cycles per
        # u-vector, the source of the 15% penalty at a2-w2.
        sched = dsu_walk(32, 32, 1, 1, 7, 32)
        assert sched.cycles == 5

    def test_release_times_monotone(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=6)
        sched = group_schedule(cfg)
        assert list(sched.a_release) == sorted(sched.a_release)
        assert list(sched.b_release) == sorted(sched.b_release)
        assert sched.a_release[-1] <= sched.cycles
        assert sched.b_release[-1] <= sched.cycles

    def test_needed_times_before_release(self):
        for bw_a, bw_b in [(8, 8), (8, 6), (6, 4), (2, 2)]:
            cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
            sched = group_schedule(cfg)
            for need, rel in zip(sched.a_needed, sched.a_release):
                assert need < rel or rel == sched.cycles

    def test_partial_group(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        sched = group_schedule(cfg, n_elements=5)
        assert sum(sched.chunks) == 5
        assert sched.cycles == 2  # ceil(5 / 3)

    def test_effective_throughput_below_peak(self):
        for bw_a, bw_b in all_size_combinations():
            cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
            eff = effective_macs_per_cycle(cfg)
            assert 0 < eff <= cfg.macs_per_cycle

    def test_a8w8_effective_throughput(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        assert effective_macs_per_cycle(cfg) == pytest.approx(32 / 12)


def _make_group_words(cfg, a_elems, b_elems):
    """Pack logical element lists into the kua/kub words of one group."""
    lay = cfg.layout
    a_counts = distribute_elements(len(a_elems), lay.kua, lay.elems_a)
    b_counts = distribute_elements(len(b_elems), lay.kub, lay.elems_b)
    a_words, pos = [], 0
    for c in a_counts:
        a_words.append(pack_word(a_elems[pos:pos + c], cfg.bw_a))
        pos += c
    b_words, pos = [], 0
    for c in b_counts:
        b_words.append(pack_word(b_elems[pos:pos + c], cfg.bw_b))
        pos += c
    return a_words, b_words


class TestMicroEngineFunctional:
    def test_single_group_inner_product(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8,
                            kua=1, kub=1)
        rng = np.random.default_rng(0)
        a = [int(v) for v in rng.integers(-128, 128, size=8)]
        b = [int(v) for v in rng.integers(-128, 128, size=8)]
        engine = MicroEngine(cfg)
        engine.push_pair(pack_word(a, 8), pack_word(b, 8))
        value, _ = engine.read_slot(0)
        assert value == int(np.dot(a, b))

    def test_accumulation_across_kgroups(self):
        # Two k-groups targeting the same AccMem slot must accumulate.
        cfg = MixGemmConfig(bw_a=8, bw_b=8, kua=1, kub=1,
                            blocking=BlockingParams(mr=1, nr=1))
        engine = MicroEngine(cfg)
        a = [1] * 8
        b = [2] * 8
        engine.push_pair(pack_word(a, 8), pack_word(b, 8))
        engine.push_pair(pack_word(a, 8), pack_word(b, 8))
        value, _ = engine.read_slot(0)
        assert value == 2 * 8 * 2

    def test_read_clears_slot(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8, kua=1, kub=1)
        engine = MicroEngine(cfg)
        engine.push_pair(pack_word([1] * 8, 8), pack_word([1] * 8, 8))
        first, _ = engine.read_slot(0)
        second, _ = engine.read_slot(0)
        assert first == 8
        assert second == 0

    def test_datapath_matches_direct(self):
        rng = np.random.default_rng(3)
        for bw_a, bw_b in [(8, 8), (8, 6), (6, 4), (3, 2), (2, 2)]:
            cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
            n = cfg.layout.group_elements
            a = [int(v) for v in
                 rng.integers(-(1 << (bw_a - 1)), 1 << (bw_a - 1), size=n)]
            b = [int(v) for v in
                 rng.integers(-(1 << (bw_b - 1)), 1 << (bw_b - 1), size=n)]
            a_words, b_words = _make_group_words(cfg, a, b)
            results = []
            for datapath in (True, False):
                engine = MicroEngine(cfg, emulate_datapath=datapath)
                for ku in range(max(cfg.kua, cfg.kub)):
                    engine.push_pair(
                        a_words[ku] if ku < cfg.kua else 0,
                        b_words[ku] if ku < cfg.kub else 0,
                        push_a=ku < cfg.kua,
                        push_b=ku < cfg.kub,
                    )
                value, _ = engine.read_slot(0)
                results.append(value)
            assert results[0] == results[1] == int(np.dot(a, b)), \
                f"a{bw_a}-w{bw_b}"

    def test_protocol_violations(self):
        engine = MicroEngine()
        with pytest.raises(MicroEngineError):
            engine.push_pair(0, 0)
        with pytest.raises(MicroEngineError):
            engine.read_slot(0)
        cfg = MixGemmConfig()
        engine.set_config(cfg)
        with pytest.raises(MicroEngineError):
            engine.read_slot(99)


class TestMicroEngineTiming:
    def test_bs_instructions_cost_one_issue_cycle(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8, kua=1, kub=1)
        engine = MicroEngine(cfg)
        t0 = engine.now
        engine.push_pair(0, 0)
        assert engine.now == t0 + 1  # no buffer stall on an empty engine

    def test_buffer_fills_cause_stalls(self):
        # A tiny 2-deep buffer must stall a burst of pushes.
        cfg = MixGemmConfig(bw_a=2, bw_b=2, kua=1, kub=1,
                            source_buffer_depth=2)
        engine = MicroEngine(cfg)
        for _ in range(16):
            engine.push_pair(0, 0)
        assert engine.pmu.buffer_full_stall_cycles > 0

    def test_deeper_buffers_stall_less(self):
        # Section III-C: stall fraction decreases with buffer depth.
        stalls = {}
        for depth in (8, 16, 32):
            cfg = MixGemmConfig(bw_a=2, bw_b=2, kua=1, kub=1,
                                source_buffer_depth=depth)
            engine = MicroEngine(cfg)
            for _ in range(256):
                engine.push_pair(0, 0)
            stalls[depth] = engine.pmu.buffer_full_stall_cycles
        assert stalls[8] >= stalls[16] >= stalls[32]

    def test_get_stall_waits_for_drain(self):
        cfg = MixGemmConfig(bw_a=2, bw_b=2, kua=1, kub=1,
                            source_buffer_depth=32)
        engine = MicroEngine(cfg)
        for _ in range(8):
            engine.push_pair(0, 0)
        _, stall = engine.read_slot(0)
        assert stall > 0
        assert engine.pmu.get_stall_cycles == stall

    def test_engine_busy_cycles_track_groups(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        engine = MicroEngine(cfg)
        a = [pack_word([1] * 8, 8)] * 4
        for ku in range(4):
            engine.push_pair(a[ku], a[ku])
        engine.read_slot(0)
        assert engine.pmu.groups == 1
        assert engine.pmu.engine_busy_cycles == 12
        assert engine.pmu.macs == 32

    def test_advance_models_cpu_work(self):
        cfg = MixGemmConfig()
        engine = MicroEngine(cfg)
        t0 = engine.now
        engine.advance(10)
        assert engine.now == t0 + 10
        with pytest.raises(ValueError):
            engine.advance(-1)


class TestStreamExecution:
    def test_execute_stream(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8, kua=1, kub=1)
        stream = InstructionStream()
        stream.append(BsSet(payload=0))
        stream.append(BsIp(pack_word([2] * 8, 8), pack_word([3] * 8, 8)))
        stream.append(BsGet(slot=0))
        engine = MicroEngine()
        run = engine.execute(stream, config=cfg)
        assert run.values == [2 * 3 * 8]
        assert run.pmu.ip_instructions == 1
        assert run.pmu.cycles_total >= 3

    def test_execute_requires_config(self):
        stream = InstructionStream()
        stream.append(BsSet(payload=0))
        engine = MicroEngine()
        with pytest.raises(MicroEngineError):
            engine.execute(stream)
