"""Packing cache: pack once, reuse everywhere, invalidate on change."""

import numpy as np
import pytest

from repro.core.config import BlockingParams, MixGemmConfig
from repro.core.gemm import MixGemm
from repro.core.packcache import (
    PackCacheError,
    PackingCache,
)
from repro.core.packing import pack_matrix_a
from repro.core.parallel import ParallelMixGemm

BLK = BlockingParams(mc=8, nc=8, kc=2, mr=4, nr=4)


def make_config(**kw):
    kw.setdefault("blocking", BLK)
    return MixGemmConfig(**kw)


def operands(config, m=5, k=12, n=6, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.integers(-(1 << (config.bw_a - 1)), 1 << (config.bw_a - 1),
                     size=(m, k))
    b = rng.integers(-(1 << (config.bw_b - 1)), 1 << (config.bw_b - 1),
                     size=(k, n))
    return a, b


class TestCacheMechanics:
    def test_pack_happens_once(self):
        cache = PackingCache()
        config = make_config()
        a, _ = operands(config)
        first = cache.get_or_pack("A", a, config)
        second = cache.get_or_pack("A", a, config)
        assert first is second
        assert cache.stats.packs == 1
        assert cache.stats.hits == 1

    def test_content_fingerprint_invalidates_on_mutation(self):
        cache = PackingCache()
        config = make_config()
        a, _ = operands(config)
        cache.get_or_pack("A", a, config)
        a[0, 0] ^= 1
        cache.get_or_pack("A", a, config)
        assert cache.stats.packs == 2

    def test_equal_values_share_an_entry_across_objects(self):
        # Content hashing, not identity: the runtime re-quantizes into
        # a fresh (byte-identical) array each inference.
        cache = PackingCache()
        config = make_config()
        a, _ = operands(config)
        cache.get_or_pack("A", a, config)
        cache.get_or_pack("A", a.copy(), config)
        assert cache.stats.hits == 1

    def test_layout_key_separates_operand_sides(self):
        config = make_config(bw_a=4, bw_b=4)
        square = np.ones((8, 8), dtype=np.int64)
        cache = PackingCache()
        cache.get_or_pack("A", square, config)
        cache.get_or_pack("B", square, config)
        assert cache.stats.packs == 2

    def test_layout_key_separates_bitwidths(self):
        key4 = PackingCache.layout_key("A", make_config(bw_a=4))
        key8 = PackingCache.layout_key("A", make_config(bw_a=8))
        assert key4 != key8

    def test_blocking_not_in_layout_key(self):
        # Panels are cut from the packed matrix afterwards, so the
        # blocking must NOT invalidate the cache.
        small = PackingCache.layout_key("A", make_config())
        large = PackingCache.layout_key(
            "A", make_config(blocking=BlockingParams()))
        assert small == large

    def test_unknown_operand_rejected(self):
        with pytest.raises(PackCacheError):
            PackingCache.layout_key("C", make_config())

    def test_bad_capacity_rejected(self):
        with pytest.raises(PackCacheError):
            PackingCache(capacity=0)

    def test_lru_eviction(self):
        cache = PackingCache(capacity=2)
        config = make_config()
        mats = [np.full((4, 4), i, dtype=np.int64) for i in range(3)]
        cache.get_or_pack("A", mats[0], config)
        cache.get_or_pack("A", mats[1], config)
        cache.get_or_pack("A", mats[0], config)   # refresh 0
        cache.get_or_pack("A", mats[2], config)   # evicts 1
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        cache.get_or_pack("A", mats[0], config)   # still cached
        assert cache.stats.hits == 2

    def test_clear_keeps_statistics(self):
        cache = PackingCache()
        config = make_config()
        a, _ = operands(config)
        cache.get_or_pack("A", a, config)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.packs == 1

    def test_cached_pack_equals_direct_pack(self):
        cache = PackingCache()
        config = make_config()
        a, _ = operands(config)
        assert cache.get_or_pack("A", a, config) == pack_matrix_a(
            a, config)


class TestExecutorIntegration:
    def test_repeated_gemm_packs_static_weights_once(self):
        # The satellite fix: re-running GEMM over the same operands
        # must not re-pack them (event backend; the fast path never
        # materializes u-vectors at all).
        cache = PackingCache()
        config = make_config()
        a, b = operands(config)
        executor = MixGemm(config, emulate_datapath=False,
                           backend="event", pack_cache=cache)
        first = executor.gemm(a, b)
        assert cache.stats.packs == 2           # one A + one B
        second = executor.gemm(a, b)
        assert cache.stats.packs == 2           # no re-packing
        assert cache.stats.hits == 2
        np.testing.assert_array_equal(first.c, second.c)

    def test_cached_run_matches_uncached_run(self):
        config = make_config()
        a, b = operands(config, seed=3)
        plain = MixGemm(config, emulate_datapath=False,
                        backend="event").gemm(a, b)
        cached = MixGemm(config, emulate_datapath=False,
                         backend="event",
                         pack_cache=PackingCache()).gemm(a, b)
        np.testing.assert_array_equal(plain.c, cached.c)
        assert plain.cycles == cached.cycles

    def test_shared_cache_across_parallel_cores(self):
        # Every core consumes the same packed A; the second call over
        # identical operands packs nothing at all.
        cache = PackingCache()
        config = make_config()
        a, b = operands(config, m=8, k=8, n=16, seed=4)
        pool = ParallelMixGemm(config, cores=2, backend="event",
                               pack_cache=cache)
        pool.gemm(a, b)
        packs_first = cache.stats.packs
        pool.gemm(a, b)
        assert cache.stats.packs == packs_first
        assert cache.stats.hits >= packs_first


class TestRuntimeIntegration:
    def test_repeated_inference_does_not_repack_weights(self):
        from repro.robustness.faults import demo_graph, demo_input
        from repro.runtime.engine import InferenceEngine

        graph = demo_graph()
        engine = InferenceEngine(graph, backend="mixgemm",
                                 gemm_backend="event")
        x = demo_input()
        engine.run(x)
        packs_first = engine.pack_stats.packs
        assert packs_first > 0
        engine.run(x)
        # Identical input -> identical quantized activations -> every
        # operand (weights AND activations) hits the cache.
        assert engine.pack_stats.packs == packs_first
        assert engine.pack_stats.hits >= packs_first

    def test_fresh_activations_only_pack_the_activations(self):
        from repro.robustness.faults import demo_graph, demo_input
        from repro.runtime.engine import InferenceEngine

        graph = demo_graph()
        engine = InferenceEngine(graph, backend="mixgemm",
                                 gemm_backend="event")
        engine.run(demo_input(seed=0))
        packs_first = engine.pack_stats.packs
        engine.run(demo_input(seed=1))
        # New input repacks activations but never the static weights:
        # fewer new packs than the cold run, which packed both.
        new_packs = engine.pack_stats.packs - packs_first
        assert 0 < new_packs < packs_first

    def test_guard_free_auto_inference_skips_packing_entirely(self):
        from repro.robustness.faults import demo_graph, demo_input
        from repro.runtime.engine import InferenceEngine

        graph = demo_graph()
        engine = InferenceEngine(graph, backend="mixgemm",
                                 gemm_backend="auto")
        engine.run(demo_input())
        assert engine.pack_stats.packs == 0
