"""Unit tests for MixGemmConfig, u-vector layout and kua/kub selection."""

import pytest

from repro.core.binseg import BinSegError
from repro.core.config import (
    FIGURE6_CONFIGS,
    BlockingParams,
    MixGemmConfig,
    UVectorLayout,
    all_size_combinations,
    elements_per_uvector,
    select_ku,
)


class TestElementsPerUVector:
    @pytest.mark.parametrize(
        "bw, expected",
        [(8, 8), (7, 9), (6, 10), (5, 12), (4, 16), (3, 21), (2, 32)],
    )
    def test_capacity(self, bw, expected):
        assert elements_per_uvector(bw) == expected

    def test_paper_chunk_range(self):
        # Section III-A: "chunks ranging from 8 to 32 elements".
        assert elements_per_uvector(8) == 8
        assert elements_per_uvector(2) == 32

    def test_unsupported(self):
        with pytest.raises(BinSegError):
            elements_per_uvector(9)


class TestSelectKu:
    @pytest.mark.parametrize(
        "bw_a, bw_b, expected",
        [
            (8, 8, (4, 4)),  # Figure 4 / Table I
            (8, 6, (4, 3)),  # Figure 4
            (6, 4, (3, 2)),  # Figure 4
        ],
    )
    def test_paper_choices(self, bw_a, bw_b, expected):
        assert select_ku(bw_a, bw_b) == expected

    def test_respects_max_ku(self):
        for a, w in all_size_combinations():
            kua, kub = select_ku(a, w)
            assert 1 <= kua <= 4
            assert 1 <= kub <= 4

    def test_equal_widths_take_max_group(self):
        # Same width on both sides: zero padding, so prefer the biggest
        # group the register file allows.
        for bw in (8, 6, 4, 2):
            assert select_ku(bw, bw) == (4, 4)

    def test_symmetry_swaps(self):
        kua, kub = select_ku(8, 4)
        assert select_ku(4, 8) == (kub, kua)


class TestUVectorLayout:
    def test_a8w6_group_and_padding(self):
        lay = UVectorLayout(bw_a=8, bw_b=6, kua=4, kub=3)
        assert lay.slots_a == 32
        assert lay.slots_b == 30
        assert lay.group_elements == 30
        assert lay.padded_slots == 2
        assert lay.padding_fraction == pytest.approx(2 / 62)

    def test_equal_width_no_padding(self):
        lay = UVectorLayout(bw_a=4, bw_b=4, kua=4, kub=4)
        assert lay.padded_slots == 0
        assert lay.padding_fraction == 0.0

    def test_groups_for_k(self):
        lay = UVectorLayout(bw_a=8, bw_b=8, kua=4, kub=4)
        assert lay.groups_for_k(32) == 1
        assert lay.groups_for_k(33) == 2
        assert lay.groups_for_k(1) == 1

    def test_average_padding_near_paper(self):
        # Section III-C: padding overhead with kua = kub <= 4 is 2.4% on
        # average across supported configurations.  Our selection achieves
        # at most that (it optimizes padding directly).
        fractions = []
        for a, w in all_size_combinations():
            kua, kub = select_ku(a, w)
            lay = UVectorLayout(bw_a=a, bw_b=w, kua=kua, kub=kub)
            fractions.append(lay.padding_fraction)
        avg = sum(fractions) / len(fractions)
        assert avg <= 0.035  # paper: 2.4%; allow modest slack


class TestBlockingParams:
    def test_table1_defaults(self):
        blk = BlockingParams()
        assert (blk.mc, blk.nc, blk.kc) == (256, 256, 256)
        assert (blk.mr, blk.nr) == (4, 4)
        assert blk.accmem_slots == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockingParams(mc=0)
        with pytest.raises(ValueError):
            BlockingParams(mr=8, mc=4)
        with pytest.raises(ValueError):
            BlockingParams(nr=8, nc=4)


class TestMixGemmConfig:
    def test_defaults_resolve_ku(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=6)
        assert (cfg.kua, cfg.kub) == (4, 3)

    def test_explicit_ku_respected(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8, kua=2, kub=2)
        assert (cfg.kua, cfg.kub) == (2, 2)

    def test_name_notation(self):
        assert MixGemmConfig(bw_a=6, bw_b=4).name == "a6-w4"

    def test_macs_per_cycle(self):
        assert MixGemmConfig(bw_a=8, bw_b=8).macs_per_cycle == 3
        assert MixGemmConfig(bw_a=2, bw_b=2).macs_per_cycle == 7

    def test_compression(self):
        ca, cb = MixGemmConfig(bw_a=8, bw_b=2).compression_vs_fp64
        assert (ca, cb) == (8.0, 32.0)

    def test_with_sizes_resolves_new_ku(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        derived = cfg.with_sizes(6, 4)
        assert (derived.kua, derived.kub) == (3, 2)
        assert derived.blocking == cfg.blocking

    def test_describe(self):
        text = MixGemmConfig(bw_a=8, bw_b=6).describe()
        assert "a8-w6" in text
        assert "kua=4" in text

    def test_invalid_buffer_depth(self):
        with pytest.raises(ValueError):
            MixGemmConfig(source_buffer_depth=0)


class TestFigure6Configs:
    def test_twelve_configurations(self):
        assert len(FIGURE6_CONFIGS) == 12

    def test_all_within_supported_range(self):
        for a, w in FIGURE6_CONFIGS:
            assert 2 <= w <= a <= 8

    def test_endpoints_present(self):
        assert (8, 8) in FIGURE6_CONFIGS
        assert (2, 2) in FIGURE6_CONFIGS
        assert (4, 4) in FIGURE6_CONFIGS
