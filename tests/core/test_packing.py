"""Unit tests for u-vector packing and BLIS panel extraction."""

import numpy as np
import pytest

from repro.core.binseg import BinSegError
from repro.core.config import MixGemmConfig, all_size_combinations
from repro.core.packing import (
    aligned_kc,
    create_micro_panel,
    create_panel,
    pack_kvector,
    pack_matrix_a,
    pack_matrix_b,
    pack_word,
    unpack_word,
)


class TestWordPacking:
    def test_roundtrip_signed(self):
        values = [-8, 7, 0, -1, 3, 2, -5, 6]
        word = pack_word(values, 4)
        assert unpack_word(word, 4, 8, signed=True) == values

    def test_roundtrip_unsigned(self):
        values = [0, 255, 128, 1, 254, 3, 9, 100]
        word = pack_word(values, 8)
        assert unpack_word(word, 8, 8, signed=False) == values

    def test_element0_at_lsb(self):
        assert pack_word([5], 8) == 5
        assert pack_word([0, 5], 8) == 5 << 8

    def test_capacity_enforced(self):
        with pytest.raises(BinSegError):
            pack_word([0] * 9, 8)
        with pytest.raises(BinSegError):
            unpack_word(0, 8, 9, signed=True)

    def test_partial_word_padding_is_zero(self):
        word = pack_word([1, 2], 8)
        assert unpack_word(word, 8, 8, signed=True) == [1, 2, 0, 0, 0, 0, 0, 0]

    @pytest.mark.parametrize("bw", [2, 3, 4, 5, 6, 7, 8])
    def test_roundtrip_all_widths(self, bw):
        rng = np.random.default_rng(bw)
        capacity = 64 // bw
        values = list(
            rng.integers(-(1 << (bw - 1)), 1 << (bw - 1), size=capacity)
        )
        values = [int(v) for v in values]
        assert unpack_word(pack_word(values, bw), bw, capacity,
                           signed=True) == values


class TestKVector:
    def test_group_structure_a8w6(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=6)
        lay = cfg.layout
        values = list(range(-30, 30))  # k = 60, two groups of 30
        kv = pack_kvector(values, 8, lay.kua, lay.group_elements, signed=True)
        assert kv.n_groups == 2
        assert len(kv.words) == 2 * lay.kua
        assert kv.elements_in_group(0) == 30
        assert kv.elements_in_group(1) == 30
        assert kv.unpack() == values

    def test_partial_final_group(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        values = list(range(40))  # group = 32 -> groups of 32 + 8
        kv = pack_kvector(values, 8, cfg.kua, 32, signed=False)
        assert kv.n_groups == 2
        assert kv.elements_in_group(1) == 8
        assert kv.unpack() == values

    def test_empty_rejected(self):
        with pytest.raises(BinSegError):
            pack_kvector([], 8, 4, 32, signed=True)

    def test_group_out_of_range(self):
        kv = pack_kvector([1, 2, 3], 8, 4, 32, signed=True)
        with pytest.raises(IndexError):
            kv.elements_in_group(1)


class TestPackedMatrix:
    @pytest.mark.parametrize("bw_a, bw_b", [(8, 8), (8, 2), (6, 4), (3, 3)])
    def test_roundtrip_a(self, bw_a, bw_b):
        cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
        rng = np.random.default_rng(bw_a)
        a = rng.integers(-(1 << (bw_a - 1)), 1 << (bw_a - 1), size=(7, 45))
        packed = pack_matrix_a(a, cfg)
        assert np.array_equal(packed.to_dense(), a)

    @pytest.mark.parametrize("bw_a, bw_b", [(8, 8), (8, 2), (6, 4), (3, 3)])
    def test_roundtrip_b(self, bw_a, bw_b):
        cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
        rng = np.random.default_rng(bw_b)
        b = rng.integers(-(1 << (bw_b - 1)), 1 << (bw_b - 1), size=(45, 7))
        packed = pack_matrix_b(b, cfg)
        assert np.array_equal(packed.to_dense(), b)

    def test_memory_footprint_compression(self):
        # 2-bit data compress 32 elements per 64-bit word.
        cfg = MixGemmConfig(bw_a=2, bw_b=2)
        a = np.zeros((4, 128), dtype=np.int64)
        packed = pack_matrix_a(a, cfg)
        dense_bytes = a.size * 8  # as fp64/int64
        assert packed.memory_bytes == dense_bytes / 32

    def test_padding_overhead_mixed(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=6)
        # B at 6 bits: 10 elements per word, 60 of 64 bits used.
        b = np.zeros((30, 4), dtype=np.int64)
        packed = pack_matrix_b(b, cfg)
        assert packed.padding_overhead > 0

    def test_range_validation(self):
        cfg = MixGemmConfig(bw_a=4, bw_b=4)
        bad = np.full((2, 8), 100, dtype=np.int64)
        with pytest.raises(BinSegError):
            pack_matrix_a(bad, cfg)

    def test_requires_2d_integer(self):
        cfg = MixGemmConfig()
        with pytest.raises(BinSegError):
            pack_matrix_a(np.zeros(8), cfg)
        with pytest.raises(BinSegError):
            pack_matrix_a(np.zeros((2, 8), dtype=np.float64), cfg)


class TestPanels:
    def test_micro_panel_edge_zero_runs(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        a = np.arange(2 * 32, dtype=np.int64).reshape(2, 32) % 100 - 50
        packed = pack_matrix_a(a, cfg)
        up = create_micro_panel(packed, 0, 4, 0, 32)
        assert up.valid_runs == 2
        assert all(w == 0 for w in up.runs[2].words)
        assert all(w == 0 for w in up.runs[3].words)

    def test_micro_panel_k_slice(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        a = np.arange(4 * 64, dtype=np.int64).reshape(4, 64) % 100 - 50
        packed = pack_matrix_a(a, cfg)
        up = create_micro_panel(packed, 0, 4, 32, 64)
        assert up.k_offset == 32
        assert up.runs[0].unpack() == list(a[0, 32:64])

    def test_unaligned_k_slice_rejected(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        a = np.zeros((4, 64), dtype=np.int64)
        packed = pack_matrix_a(a, cfg)
        with pytest.raises(BinSegError):
            create_micro_panel(packed, 0, 4, 5, 37)

    def test_create_panel_covers_runs(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        a = np.zeros((10, 32), dtype=np.int64)
        packed = pack_matrix_a(a, cfg)
        panel = create_panel(packed, 0, 10, 4, 0, 32)
        assert len(panel.micro_panels) == 3  # ceil(10 / 4)
        assert panel.micro_panels[-1].valid_runs == 2


class TestAlignedKc:
    def test_rounds_down_to_group(self):
        assert aligned_kc(256, 30) == 240
        assert aligned_kc(256, 32) == 256

    def test_never_below_one_group(self):
        assert aligned_kc(10, 32) == 32


class TestPaddingAcrossAllConfigs:
    def test_every_config_roundtrips(self):
        rng = np.random.default_rng(7)
        for bw_a, bw_b in all_size_combinations():
            cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
            k = cfg.layout.group_elements + 3  # force a partial group
            a = rng.integers(-(1 << (bw_a - 1)), 1 << (bw_a - 1), size=(3, k))
            packed = pack_matrix_a(a, cfg)
            assert np.array_equal(packed.to_dense(), a), cfg.name
