"""Golden-vector suite tests (the RTL-verification artifact)."""

import numpy as np
import pytest

from repro.core.binseg import BinSegSpec
from repro.core.golden import (
    dump_suite,
    generate_suite,
    generate_vector,
    load_suite,
    verify_vector,
)


class TestGeneration:
    def test_suite_covers_all_49_configs(self):
        suite = generate_suite(vectors_per_config=2)
        configs = {(v.bw_a, v.bw_b) for v in suite}
        assert len(configs) == 49
        assert len(suite) == 98

    def test_every_vector_verifies(self):
        for vector in generate_suite(vectors_per_config=8, seed=3):
            assert verify_vector(vector), (vector.bw_a, vector.bw_b)

    def test_unsigned_suite_verifies(self):
        for vector in generate_suite(vectors_per_config=4, signed=False):
            assert verify_vector(vector)
            assert min(vector.a_elements) >= 0

    def test_expected_is_true_inner_product(self):
        rng = np.random.default_rng(0)
        spec = BinSegSpec(bw_a=5, bw_b=3)
        v = generate_vector(spec, rng)
        assert v.expected == int(np.dot(v.a_elements, v.b_elements))

    def test_fields_describe_datapath(self):
        rng = np.random.default_rng(1)
        spec = BinSegSpec(bw_a=8, bw_b=8)
        v = generate_vector(spec, rng)
        assert v.cluster_size == 3
        assert v.cw == 19
        assert v.slice_msb - v.slice_lsb + 1 == v.cw
        assert 0 <= v.a_cluster < (1 << 64)
        assert 0 <= v.product < (1 << 128)

    def test_deterministic_by_seed(self):
        a = generate_suite(vectors_per_config=1, seed=5)
        b = generate_suite(vectors_per_config=1, seed=5)
        assert a == b


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        suite = generate_suite(vectors_per_config=2, seed=7)
        path = tmp_path / "golden.json"
        dump_suite(str(path), suite)
        loaded = load_suite(str(path))
        assert loaded == suite

    def test_loaded_vectors_still_verify(self, tmp_path):
        suite = generate_suite(vectors_per_config=2, seed=9)
        path = tmp_path / "golden.json"
        dump_suite(str(path), suite)
        for vector in load_suite(str(path)):
            assert verify_vector(vector)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "other", "vectors": []}')
        with pytest.raises(ValueError):
            load_suite(str(path))

    def test_hex_encoding(self, tmp_path):
        suite = generate_suite(vectors_per_config=1, seed=2)[:1]
        path = tmp_path / "golden.json"
        dump_suite(str(path), suite)
        text = path.read_text()
        assert "mix-gemm-golden-v1" in text
