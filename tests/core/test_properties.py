"""Property-based tests (hypothesis) for the Mix-GEMM core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binseg import (
    cluster_inner_product,
    input_cluster_size,
    segmented_inner_product,
    value_range,
)
from repro.core.config import MixGemmConfig, elements_per_uvector, select_ku
from repro.core.gemm import MixGemm, reference_gemm
from repro.core.config import BlockingParams
from repro.core.microengine import dsu_walk
from repro.core.packing import pack_word, unpack_word

bitwidths = st.integers(min_value=2, max_value=8)


@st.composite
def vector_pair(draw, max_len=64):
    bw_a = draw(bitwidths)
    bw_b = draw(bitwidths)
    signed_a = draw(st.booleans())
    signed_b = draw(st.booleans())
    n = draw(st.integers(min_value=1, max_value=max_len))
    lo_a, hi_a = value_range(bw_a, signed_a)
    lo_b, hi_b = value_range(bw_b, signed_b)
    a = draw(st.lists(st.integers(lo_a, hi_a), min_size=n, max_size=n))
    b = draw(st.lists(st.integers(lo_b, hi_b), min_size=n, max_size=n))
    return a, b, bw_a, bw_b, signed_a, signed_b


@given(vector_pair())
@settings(max_examples=300, deadline=None)
def test_segmented_inner_product_equals_dot(case):
    """The segmented datapath is exact for every width/signedness combo."""
    a, b, bw_a, bw_b, signed_a, signed_b = case
    got = segmented_inner_product(
        a, b, bw_a, bw_b, signed_a=signed_a, signed_b=signed_b
    )
    expected = int(np.dot(np.asarray(a, dtype=np.int64), b))
    assert got == expected


@given(bitwidths, bitwidths, st.data())
@settings(max_examples=200, deadline=None)
def test_single_cluster_exact(bw_a, bw_b, data):
    """One multiplier pass computes an exact cluster inner product."""
    n = input_cluster_size(bw_a, bw_b)
    lo_a, hi_a = value_range(bw_a, True)
    lo_b, hi_b = value_range(bw_b, True)
    a = data.draw(st.lists(st.integers(lo_a, hi_a), min_size=n, max_size=n))
    b = data.draw(st.lists(st.integers(lo_b, hi_b), min_size=n, max_size=n))
    assert cluster_inner_product(a, b, bw_a, bw_b) == int(
        np.dot(np.asarray(a, dtype=np.int64), b)
    )


@given(bitwidths, st.booleans(), st.data())
@settings(max_examples=200, deadline=None)
def test_word_pack_roundtrip(bw, signed, data):
    """pack_word / unpack_word are inverse for any fill level."""
    capacity = 64 // bw
    n = data.draw(st.integers(min_value=0, max_value=capacity))
    lo, hi = value_range(bw, signed)
    values = data.draw(st.lists(st.integers(lo, hi), min_size=n, max_size=n))
    word = pack_word(values, bw)
    assert unpack_word(word, bw, n, signed=signed) == values
    assert 0 <= word < (1 << 64)


@given(bitwidths, bitwidths)
def test_select_ku_balances_streams(bw_a, bw_b):
    """Chosen kua/kub keep padding under 26% of slots for any pair."""
    kua, kub = select_ku(bw_a, bw_b)
    ea, eb = elements_per_uvector(bw_a), elements_per_uvector(bw_b)
    slots = kua * ea + kub * eb
    group = min(kua * ea, kub * eb)
    assert 1 - 2 * group / slots < 0.26


@given(bitwidths, bitwidths, st.integers(min_value=1, max_value=128))
@settings(max_examples=150, deadline=None)
def test_dsu_walk_invariants(bw_a, bw_b, n_scale):
    """DSU schedule: chunks cover all elements, never exceed the cluster."""
    cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
    lay = cfg.layout
    n = min(n_scale, lay.group_elements)
    sched = dsu_walk(lay.elems_a, lay.elems_b, lay.kua, lay.kub,
                     cfg.binseg.input_cluster_size, n)
    assert sum(sched.chunks) == n
    ics = cfg.binseg.input_cluster_size
    assert all(1 <= c <= ics for c in sched.chunks)
    # Lower bound: can't beat the cluster size; upper bound: one element
    # per cycle is the worst case.
    assert np.ceil(n / ics) <= sched.cycles <= n


@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=1, max_value=48),
    st.integers(min_value=1, max_value=10),
    bitwidths,
    bitwidths,
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_gemm_equals_numpy(m, k, n, bw_a, bw_b, seed):
    """Whole-GEMM exactness for random shapes and width pairs."""
    rng = np.random.default_rng(seed)
    a = rng.integers(-(1 << (bw_a - 1)), 1 << (bw_a - 1), size=(m, k))
    b = rng.integers(-(1 << (bw_b - 1)), 1 << (bw_b - 1), size=(k, n))
    cfg = MixGemmConfig(
        bw_a=bw_a, bw_b=bw_b,
        blocking=BlockingParams(mc=8, nc=8, kc=64, mr=4, nr=4),
    )
    result = MixGemm(cfg, emulate_datapath=False).gemm(a, b)
    assert np.array_equal(result.c, reference_gemm(a, b))
