"""Unit tests for the bs.* RISC-V ISA extension encoding."""

import pytest

from repro.core.isa import (
    CUSTOM0_OPCODE,
    BsFunct3,
    BsGet,
    BsIp,
    BsSet,
    InstructionStream,
    IsaError,
    SET_FIELDS,
    decode_rtype,
    encode_rtype,
    pack_set_payload,
    unpack_set_payload,
)


class TestRTypeEncoding:
    def test_roundtrip(self):
        word = encode_rtype(BsFunct3.IP, rd=0, rs1=10, rs2=11)
        f3, rd, rs1, rs2, funct7 = decode_rtype(word)
        assert f3 is BsFunct3.IP
        assert (rd, rs1, rs2, funct7) == (0, 10, 11, 0)

    def test_opcode_is_custom0(self):
        word = encode_rtype(BsFunct3.SET, 0, 5, 0)
        assert word & 0x7F == CUSTOM0_OPCODE

    def test_all_three_instructions_distinct(self):
        words = {
            encode_rtype(f3, 1, 2, 3)
            for f3 in (BsFunct3.SET, BsFunct3.IP, BsFunct3.GET)
        }
        assert len(words) == 3

    def test_register_bounds(self):
        with pytest.raises(IsaError):
            encode_rtype(BsFunct3.IP, rd=32, rs1=0, rs2=0)
        with pytest.raises(IsaError):
            encode_rtype(BsFunct3.IP, rd=0, rs1=-1, rs2=0)

    def test_funct7_bounds(self):
        with pytest.raises(IsaError):
            encode_rtype(BsFunct3.IP, 0, 0, 0, funct7=128)

    def test_decode_rejects_other_opcodes(self):
        with pytest.raises(IsaError):
            decode_rtype(0x00000033)  # plain RV add

    def test_decode_rejects_unknown_funct3(self):
        word = (0b111 << 12) | CUSTOM0_OPCODE
        with pytest.raises(IsaError):
            decode_rtype(word)

    def test_encoding_is_32bit(self):
        word = encode_rtype(BsFunct3.GET, 31, 31, 31, funct7=127)
        assert 0 <= word < (1 << 32)


class TestSetPayload:
    def test_roundtrip(self):
        fields = dict(
            bw_a=8, bw_b=2, signed_a=1, signed_b=1, cluster_size=4,
            cw=13, kua=4, kub=1, ip_length=32, slice_lsb=39,
        )
        word = pack_set_payload(**fields)
        assert unpack_set_payload(word) == fields

    def test_fields_do_not_overlap(self):
        spans = []
        for lsb, width in SET_FIELDS.values():
            spans.append((lsb, lsb + width))
        spans.sort()
        for (lo1, hi1), (lo2, _) in zip(spans, spans[1:]):
            assert hi1 <= lo2

    def test_fits_64_bits(self):
        assert max(lsb + w for lsb, w in SET_FIELDS.values()) <= 64

    def test_unknown_field(self):
        with pytest.raises(IsaError):
            pack_set_payload(bogus=1)

    def test_out_of_range_value(self):
        with pytest.raises(IsaError):
            pack_set_payload(bw_a=16)


class TestInstructionStream:
    def test_counts(self):
        stream = InstructionStream()
        stream.append(BsSet(payload=0))
        stream.extend([BsIp(a_word=1, b_word=2), BsIp(a_word=3, b_word=4)])
        stream.append(BsGet(slot=0))
        assert len(stream) == 4
        assert stream.count("bs.set") == 1
        assert stream.count("bs.ip") == 2
        assert stream.count("bs.get") == 1

    def test_iteration_preserves_order(self):
        stream = InstructionStream()
        instrs = [BsSet(0), BsIp(1, 2), BsGet(0)]
        stream.extend(instrs)
        assert list(stream) == instrs

    def test_push_flags_default_true(self):
        ip = BsIp(a_word=1, b_word=2)
        assert ip.push_a and ip.push_b
