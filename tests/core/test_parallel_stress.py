"""Contention stress: ParallelMixGemm + one shared PackingCache.

Eight client threads, each driving its own two-core ``ParallelMixGemm``
(so sixteen worker threads touch the cache), released together by a
barrier.  The invariants under load:

* every result is bit-exact against the integer reference;
* each distinct operand is packed exactly once -- the double-checked
  insert in :meth:`PackingCache.get_or_pack` counts a raced duplicate
  pack as a *hit*, so ``stats.misses`` equals the number of distinct
  keys no matter how the schedule interleaves;
* every lookup is accounted for (``hits + misses`` equals the total
  ``get_or_pack`` calls).
"""

import threading

import numpy as np
import pytest

from repro.core.config import BlockingParams, MixGemmConfig
from repro.core.packcache import PackingCache
from repro.core.parallel import ParallelMixGemm

pytestmark = pytest.mark.slow

THREADS = 8
ITERATIONS = 4
CORES = 2
SMALL = BlockingParams(mc=8, nc=8, kc=64)


def test_shared_cache_hammer_bit_exact_and_exactly_once():
    cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL)
    cache = PackingCache(capacity=256)
    rng = np.random.default_rng(7)
    a = rng.integers(-8, 8, size=(8, 96))
    b = rng.integers(-8, 8, size=(96, 32))
    expected = a.astype(np.int64) @ b

    barrier = threading.Barrier(THREADS)
    mismatches: list[int] = []
    errors: list[BaseException] = []

    def hammer(idx: int) -> None:
        # Executors are stateful, so each client owns its own bank;
        # only the PackingCache is shared -- that is the contended
        # object under test.
        executor = ParallelMixGemm(cfg, cores=CORES, backend="event",
                                   pack_cache=cache)
        try:
            barrier.wait(timeout=30)
            for _ in range(ITERATIONS):
                result = executor.gemm(a, b)
                if not np.array_equal(result.c, expected):
                    mismatches.append(idx)
        except BaseException as exc:  # surfaced after join
            errors.append(exc)

    clients = [threading.Thread(target=hammer, args=(idx,))
               for idx in range(THREADS)]
    for client in clients:
        client.start()
    for client in clients:
        client.join(timeout=120)
    assert not any(client.is_alive() for client in clients)
    assert errors == []
    assert mismatches == []

    # Distinct keys: one packed A + one packed B per N-slice.
    distinct = 1 + CORES
    assert len(cache) == distinct
    assert cache.stats.misses == distinct
    # Each parallel gemm performs one A and one B lookup per core.
    total_lookups = THREADS * ITERATIONS * CORES * 2
    assert cache.stats.hits + cache.stats.misses == total_lookups
    assert cache.stats.evictions == 0
