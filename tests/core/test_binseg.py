"""Unit tests for binary segmentation (paper Section II-B, Figure 1)."""

import math

import numpy as np
import pytest

from repro.core.binseg import (
    BinSegError,
    BinSegSpec,
    SUPPORTED_BITWIDTHS,
    arithmetic_reduction,
    cluster_inner_product,
    clustering_width,
    extract_inner_product,
    input_cluster_size,
    multiplications_required,
    pack_cluster,
    segmented_inner_product,
    slice_bounds,
    value_range,
)


class TestClusteringWidth:
    def test_equation3_formula(self):
        # cw >= 1 + bw_a + bw_b + ceil(log2(n + 1))
        assert clustering_width(3, 2, 2) == 1 + 3 + 2 + 2
        assert clustering_width(8, 8, 3) == 1 + 8 + 8 + 2
        assert clustering_width(2, 2, 7) == 1 + 2 + 2 + 3

    def test_grows_with_cluster_size(self):
        widths = [clustering_width(4, 4, n) for n in range(1, 20)]
        assert widths == sorted(widths)

    def test_invalid_cluster_size(self):
        with pytest.raises(BinSegError):
            clustering_width(4, 4, 0)


class TestInputClusterSize:
    def test_paper_figure1_example(self):
        # 3-bit x 2-bit on a 16-bit multiplier: cw = 8, 2 elements.
        assert input_cluster_size(3, 2, mul_width=16) == 2
        assert clustering_width(3, 2, 2) == 8

    @pytest.mark.parametrize(
        "bw_a, bw_b, expected",
        [
            (8, 8, 3),  # paper: a8-w8 performs up to 3 MAC/cycle
            (8, 6, 3),  # paper: a8-w6 performs up to 3 MAC/cycle
            (6, 4, 4),  # paper: a6-w4 features a cluster of 4 elements
            (2, 2, 7),  # paper: performance ranges up to 7 MAC/cycle
        ],
    )
    def test_paper_mac_per_cycle_points(self, bw_a, bw_b, expected):
        assert input_cluster_size(bw_a, bw_b) == expected

    def test_range_is_3_to_7_at_64bit(self):
        # Paper Section II-B: "from 3 MAC/cycle to 7 MAC/cycle".
        sizes = {
            input_cluster_size(a, b)
            for a in SUPPORTED_BITWIDTHS
            for b in SUPPORTED_BITWIDTHS
        }
        assert min(sizes) == 3
        assert max(sizes) == 7

    def test_monotone_in_bitwidth(self):
        # Narrower data can never reduce the cluster size.
        for bw in range(2, 8):
            assert input_cluster_size(bw, bw) >= input_cluster_size(
                bw + 1, bw + 1
            )

    def test_feasibility_constraint(self):
        # Equation 4 must hold for the returned size, and fail for size + 1.
        for a in SUPPORTED_BITWIDTHS:
            for b in SUPPORTED_BITWIDTHS:
                n = input_cluster_size(a, b)
                assert n * clustering_width(a, b, n) <= 64
                assert (n + 1) * clustering_width(a, b, n + 1) > 64

    def test_rejects_unsupported_widths(self):
        with pytest.raises(BinSegError):
            input_cluster_size(1, 8)
        with pytest.raises(BinSegError):
            input_cluster_size(8, 9)

    def test_tiny_multiplier_rejected(self):
        with pytest.raises(BinSegError):
            input_cluster_size(8, 8, mul_width=8)


class TestSliceBounds:
    def test_figure1_slice(self):
        # cluster of 2, cw = 8 -> slice [15:8].
        msb, lsb = slice_bounds(2, 8)
        assert (msb, lsb) == (15, 8)

    def test_width_always_cw(self):
        for n in range(1, 8):
            for cw in (8, 12, 19):
                msb, lsb = slice_bounds(n, cw)
                assert msb - lsb + 1 == cw


class TestPackCluster:
    def test_figure1_input_clusters(self):
        # The paper's example packs to 1031, 515, 774 and 256.
        assert pack_cluster([4, 7], 8, reverse=False) == 1031
        assert pack_cluster([3, 2], 8, reverse=True) == 515
        assert pack_cluster([3, 6], 8, reverse=False) == 774
        assert pack_cluster([0, 1], 8, reverse=True) == 256

    def test_negative_elements_pack_over_z(self):
        # Packing is over the integers: negatives subtract.
        assert pack_cluster([-1, 1], 8, reverse=False) == -256 + 1


class TestExtractInnerProduct:
    def test_figure1_partials(self):
        assert extract_inner_product(1031 * 515, 2, 8) == 26
        assert extract_inner_product(774 * 256, 2, 8) == 6

    def test_borrow_correction_negative_low_digits(self):
        # Construct a product whose low digit is negative: a=[1, -1],
        # b=[1, 1] -> digits of conv: [..., 1*1 + (-1)*1 = 0, low=-1].
        got = cluster_inner_product([1, -1], [1, 1], 3, 3)
        assert got == 0


class TestClusterInnerProduct:
    def test_figure1_full(self):
        total = segmented_inner_product(
            [4, 7, 3, 6], [3, 2, 0, 1], 3, 2,
            signed_a=False, signed_b=False, mul_width=16,
        )
        assert total == 32

    def test_length_mismatch(self):
        with pytest.raises(BinSegError):
            cluster_inner_product([1, 2], [1], 4, 4)

    def test_oversized_cluster(self):
        with pytest.raises(BinSegError):
            cluster_inner_product([1] * 8, [1] * 8, 8, 8)

    def test_out_of_range_element(self):
        with pytest.raises(BinSegError):
            cluster_inner_product([300], [1], 8, 8)
        with pytest.raises(BinSegError):
            cluster_inner_product([-1], [1], 8, 8, signed_a=False)

    def test_extreme_values_signed(self):
        # All elements at the signed extremes for every width combination.
        for bw_a in SUPPORTED_BITWIDTHS:
            for bw_b in SUPPORTED_BITWIDTHS:
                n = input_cluster_size(bw_a, bw_b)
                lo_a, hi_a = value_range(bw_a, True)
                lo_b, hi_b = value_range(bw_b, True)
                for a_val, b_val in [(lo_a, lo_b), (lo_a, hi_b),
                                     (hi_a, lo_b), (hi_a, hi_b)]:
                    a = [a_val] * n
                    b = [b_val] * n
                    assert cluster_inner_product(
                        a, b, bw_a, bw_b
                    ) == n * a_val * b_val

    def test_extreme_values_unsigned(self):
        for bw_a in SUPPORTED_BITWIDTHS:
            for bw_b in SUPPORTED_BITWIDTHS:
                n = input_cluster_size(bw_a, bw_b)
                hi_a = (1 << bw_a) - 1
                hi_b = (1 << bw_b) - 1
                got = cluster_inner_product(
                    [hi_a] * n, [hi_b] * n, bw_a, bw_b,
                    signed_a=False, signed_b=False,
                )
                assert got == n * hi_a * hi_b

    def test_mixed_signedness(self):
        # Unsigned activations with signed weights (typical in QAT).
        got = cluster_inner_product(
            [255, 255, 255], [-128, -128, -128], 8, 8,
            signed_a=False, signed_b=True,
        )
        assert got == 3 * 255 * -128


class TestSegmentedInnerProduct:
    @pytest.mark.parametrize("bw_a", SUPPORTED_BITWIDTHS)
    @pytest.mark.parametrize("bw_b", SUPPORTED_BITWIDTHS)
    def test_matches_numpy_all_width_pairs(self, bw_a, bw_b):
        rng = np.random.default_rng(bw_a * 10 + bw_b)
        for n in (1, 2, 7, 33, 64):
            a = rng.integers(-(1 << (bw_a - 1)), 1 << (bw_a - 1), size=n)
            b = rng.integers(-(1 << (bw_b - 1)), 1 << (bw_b - 1), size=n)
            got = segmented_inner_product(a, b, bw_a, bw_b)
            assert got == int(a.astype(np.int64) @ b)

    def test_empty_rejected(self):
        assert segmented_inner_product([], [], 8, 8) == 0

    def test_length_mismatch(self):
        with pytest.raises(BinSegError):
            segmented_inner_product([1, 2], [3], 4, 4)


class TestComplexityReduction:
    def test_figure1_claim(self):
        # 4-element 3x2-bit inner product: 2.33x reduction.
        assert arithmetic_reduction(4, 3, 2, mul_width=16) == pytest.approx(
            7 / 3, abs=1e-9
        )

    def test_multiplications_required(self):
        assert multiplications_required(4, 3, 2, mul_width=16) == 2
        assert multiplications_required(32, 2, 2) == math.ceil(32 / 7)

    def test_reduction_improves_with_narrow_data(self):
        r8 = arithmetic_reduction(1024, 8, 8)
        r2 = arithmetic_reduction(1024, 2, 2)
        assert r2 > r8 > 1.0


class TestBinSegSpec:
    def test_describe_mentions_config(self):
        spec = BinSegSpec(bw_a=8, bw_b=8)
        text = spec.describe()
        assert "a8-w8" in text
        assert "3 MAC/cycle" in text

    def test_macs_per_cycle_equals_cluster_size(self):
        for a in SUPPORTED_BITWIDTHS:
            spec = BinSegSpec(bw_a=a, bw_b=a)
            assert spec.macs_per_cycle == spec.input_cluster_size

    def test_slice_consistency(self):
        spec = BinSegSpec(bw_a=4, bw_b=4)
        assert spec.slice_msb - spec.slice_lsb + 1 == spec.cw

    def test_invalid_width_rejected_at_construction(self):
        with pytest.raises(BinSegError):
            BinSegSpec(bw_a=1, bw_b=8)
