"""Unit + integration tests for the Mix-GEMM library (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.binseg import BinSegError
from repro.core.config import BlockingParams, MixGemmConfig
from repro.core.gemm import (
    KernelCosts,
    MixGemm,
    macs_for,
    mix_gemm,
    reference_gemm,
    uvector_loads,
)


def _random_operands(rng, m, k, n, bw_a, bw_b):
    a = rng.integers(-(1 << (bw_a - 1)), 1 << (bw_a - 1), size=(m, k))
    b = rng.integers(-(1 << (bw_b - 1)), 1 << (bw_b - 1), size=(k, n))
    return a, b


SMALL_BLOCKING = BlockingParams(mc=8, nc=8, kc=64, mr=4, nr=4)


class TestFunctionalCorrectness:
    @pytest.mark.parametrize(
        "bw_a, bw_b",
        [(8, 8), (8, 6), (8, 4), (8, 2), (6, 4), (4, 4), (3, 3), (2, 2),
         (4, 8), (2, 8)],
    )
    def test_matches_reference_all_configs(self, bw_a, bw_b):
        rng = np.random.default_rng(bw_a * 16 + bw_b)
        cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b, blocking=SMALL_BLOCKING)
        a, b = _random_operands(rng, 12, 40, 9, bw_a, bw_b)
        result = MixGemm(cfg).gemm(a, b)
        assert np.array_equal(result.c, reference_gemm(a, b)), cfg.name

    def test_tiny_matrices(self):
        rng = np.random.default_rng(1)
        for m, k, n in [(1, 1, 1), (1, 5, 1), (2, 3, 4), (4, 4, 4)]:
            a, b = _random_operands(rng, m, k, n, 4, 4)
            result = mix_gemm(a, b, bw_a=4, bw_b=4)
            assert np.array_equal(result.c, reference_gemm(a, b))

    def test_non_multiple_of_blocking(self):
        rng = np.random.default_rng(2)
        cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL_BLOCKING)
        a, b = _random_operands(rng, 13, 67, 11, 8, 8)
        result = MixGemm(cfg).gemm(a, b)
        assert np.array_equal(result.c, reference_gemm(a, b))

    def test_k_smaller_than_group(self):
        rng = np.random.default_rng(3)
        a, b = _random_operands(rng, 4, 3, 4, 8, 8)  # group = 32 > k = 3
        result = mix_gemm(a, b, bw_a=8, bw_b=8)
        assert np.array_equal(result.c, reference_gemm(a, b))

    def test_c_accumulation_in_place(self):
        rng = np.random.default_rng(4)
        a, b = _random_operands(rng, 4, 8, 4, 4, 4)
        c = np.ones((4, 4), dtype=np.int64)
        result = mix_gemm_with_c(a, b, c)
        assert np.array_equal(result.c, reference_gemm(a, b) + 1)
        assert result.c is c

    def test_unsigned_operands(self):
        rng = np.random.default_rng(5)
        a = rng.integers(0, 256, size=(6, 20))
        b = rng.integers(0, 4, size=(20, 6))
        result = mix_gemm(a, b, bw_a=8, bw_b=2,
                          signed_a=False, signed_b=False)
        assert np.array_equal(result.c, reference_gemm(a, b))

    def test_datapath_and_direct_agree(self):
        rng = np.random.default_rng(6)
        a, b = _random_operands(rng, 8, 35, 8, 6, 4)
        cfg = MixGemmConfig(bw_a=6, bw_b=4, blocking=SMALL_BLOCKING)
        exact = MixGemm(cfg, emulate_datapath=True).gemm(a, b)
        fast = MixGemm(cfg, emulate_datapath=False).gemm(a, b)
        assert np.array_equal(exact.c, fast.c)
        assert exact.cycles == fast.cycles

    def test_shape_validation(self):
        with pytest.raises(BinSegError):
            mix_gemm(np.zeros((2, 3), dtype=int),
                     np.zeros((4, 2), dtype=int), bw_a=8, bw_b=8)
        with pytest.raises(BinSegError):
            mix_gemm(np.zeros(3, dtype=int),
                     np.zeros((3, 2), dtype=int), bw_a=8, bw_b=8)

    def test_wrong_c_shape(self):
        cfg = MixGemmConfig()
        with pytest.raises(BinSegError):
            MixGemm(cfg).gemm(
                np.zeros((2, 8), dtype=int),
                np.zeros((8, 2), dtype=int),
                c=np.zeros((3, 3), dtype=np.int64),
            )


def mix_gemm_with_c(a, b, c):
    cfg = MixGemmConfig(bw_a=4, bw_b=4, blocking=SMALL_BLOCKING)
    return MixGemm(cfg).gemm(a, b, c=c)


class TestInstructionAccounting:
    def test_instruction_counts_match_algorithm1(self):
        # One u-kernel tile, one k-group: nr*mr*max(kua,kub) bs.ip and
        # mr*nr bs.get.
        cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL_BLOCKING)
        a = np.zeros((4, 32), dtype=np.int64)
        b = np.zeros((32, 4), dtype=np.int64)
        result = MixGemm(cfg).gemm(a, b)
        assert result.instructions["bs.set"] == 1
        assert result.instructions["bs.ip"] == 16 * 4
        assert result.instructions["bs.get"] == 16

    def test_ip_count_scales_with_kgroups(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8, blocking=SMALL_BLOCKING)
        a = np.zeros((4, 64), dtype=np.int64)
        b = np.zeros((64, 4), dtype=np.int64)
        result = MixGemm(cfg).gemm(a, b)
        assert result.instructions["bs.ip"] == 2 * 16 * 4

    def test_macs_counted(self):
        cfg = MixGemmConfig(bw_a=4, bw_b=4, blocking=SMALL_BLOCKING)
        a = np.zeros((5, 17), dtype=np.int64)
        b = np.zeros((17, 3), dtype=np.int64)
        result = MixGemm(cfg).gemm(a, b)
        assert result.macs == macs_for(5, 3, 17)


class TestPerformanceShape:
    def test_narrow_data_is_faster(self):
        # The headline property: performance scales with decreasing size.
        rng = np.random.default_rng(7)
        m = n = 16
        k = 2 * 480  # multiple of every group size
        cycles = {}
        for bw in (8, 4, 2):
            a = rng.integers(-2, 2, size=(m, k))
            b = rng.integers(-2, 2, size=(k, n))
            cfg = MixGemmConfig(bw_a=bw, bw_b=bw,
                                blocking=BlockingParams(mc=16, nc=16, kc=960))
            result = MixGemm(cfg, emulate_datapath=False).gemm(a, b)
            cycles[bw] = result.cycles
        assert cycles[8] > cycles[4] > cycles[2]

    def test_steady_state_macs_per_cycle_a8w8(self):
        # Engine-bound steady state approaches 32/12 = 2.67 MAC/cycle.
        rng = np.random.default_rng(8)
        k = 32 * 16
        a = rng.integers(-8, 8, size=(16, k))
        b = rng.integers(-8, 8, size=(k, 16))
        cfg = MixGemmConfig(bw_a=8, bw_b=8,
                            blocking=BlockingParams(mc=16, nc=16, kc=512))
        result = MixGemm(cfg, emulate_datapath=False).gemm(a, b)
        assert result.macs_per_cycle == pytest.approx(32 / 12, rel=0.15)

    def test_gops_conversion(self):
        cfg = MixGemmConfig(blocking=SMALL_BLOCKING)
        a = np.zeros((4, 32), dtype=np.int64)
        b = np.zeros((32, 4), dtype=np.int64)
        result = MixGemm(cfg).gemm(a, b)
        assert result.gops(1.2) == pytest.approx(
            2 * result.macs_per_cycle * 1.2
        )


class TestKernelCosts:
    def test_costs_affect_cycle_count_when_cpu_bound(self):
        rng = np.random.default_rng(9)
        a, b = _random_operands(rng, 8, 64, 8, 8, 8)
        cheap = MixGemm(
            MixGemmConfig(blocking=SMALL_BLOCKING),
            emulate_datapath=False,
            costs=KernelCosts(load_cost=1, inner_loop_overhead=0),
        ).gemm(a, b)
        dear = MixGemm(
            MixGemmConfig(blocking=SMALL_BLOCKING),
            emulate_datapath=False,
            costs=KernelCosts(load_cost=4, inner_loop_overhead=8),
        ).gemm(a, b)
        assert dear.cycles > cheap.cycles

    def test_uvector_loads_formula(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        # 4x4 tile grid over 16x16, 2 k-groups of 32.
        loads = uvector_loads(16, 16, 64, cfg)
        assert loads == 4 * 4 * 2 * (4 * 4 + 4 * 4)
