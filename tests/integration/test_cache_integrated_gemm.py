"""Cache-integrated functional GEMM: exactness + cache-aware timing."""

import numpy as np
import pytest

from repro.core.config import BlockingParams, MixGemmConfig
from repro.core.gemm import MixGemm, reference_gemm
from repro.sim.cache import CacheHierarchy
from repro.sim.trace import GemmMemorySystem

SMALL = BlockingParams(mc=8, nc=8, kc=8)


def _case(m=12, k=96, n=12, bw=8, seed=0):
    rng = np.random.default_rng(seed)
    lo = -(1 << (bw - 1))
    a = rng.integers(lo, -lo, size=(m, k))
    b = rng.integers(lo, -lo, size=(k, n))
    cfg = MixGemmConfig(bw_a=bw, bw_b=bw, blocking=SMALL)
    return a, b, cfg


class TestCacheIntegratedGemm:
    def test_results_stay_exact(self):
        a, b, cfg = _case()
        memory = GemmMemorySystem(*a.shape, b.shape[1], cfg)
        result = MixGemm(cfg, emulate_datapath=False,
                         memory=memory).gemm(a, b)
        assert np.array_equal(result.c, reference_gemm(a, b))

    def test_cache_latencies_slow_the_run(self):
        a, b, cfg = _case()
        plain = MixGemm(cfg, emulate_datapath=False).gemm(a, b)
        memory = GemmMemorySystem(
            a.shape[0], b.shape[1], a.shape[1], cfg,
            CacheHierarchy(l1_size=1024, l2_size=8 * 1024),
        )
        cached = MixGemm(cfg, emulate_datapath=False,
                         memory=memory).gemm(a, b)
        # Constant-cost loads assume L1 hits; a tiny cache must be slower.
        assert cached.cycles > plain.cycles

    def test_bigger_caches_run_faster(self):
        a, b, cfg = _case(m=16, k=192, n=16)
        cycles = {}
        for name, (l1, l2) in {
            "small": (1024, 8 * 1024),
            "large": (32 * 1024, 512 * 1024),
        }.items():
            memory = GemmMemorySystem(
                a.shape[0], b.shape[1], a.shape[1], cfg,
                CacheHierarchy(l1_size=l1, l2_size=l2),
            )
            cycles[name] = MixGemm(cfg, emulate_datapath=False,
                                   memory=memory).gemm(a, b).cycles
        assert cycles["large"] < cycles["small"]

    def test_narrow_data_fewer_cache_misses(self):
        misses = {}
        for bw in (8, 2):
            a, b, cfg = _case(m=8, k=192, n=8, bw=bw)
            hierarchy = CacheHierarchy(l1_size=1024, l2_size=8 * 1024)
            memory = GemmMemorySystem(
                a.shape[0], b.shape[1], a.shape[1], cfg, hierarchy,
            )
            MixGemm(cfg, emulate_datapath=False, memory=memory).gemm(a, b)
            misses[bw] = hierarchy.l1.stats.misses
        # Compression: 2-bit streams touch 4x fewer lines than 8-bit.
        assert misses[2] < misses[8]

    def test_hierarchy_stats_populated(self):
        a, b, cfg = _case()
        hierarchy = CacheHierarchy()
        memory = GemmMemorySystem(
            a.shape[0], b.shape[1], a.shape[1], cfg, hierarchy,
        )
        MixGemm(cfg, emulate_datapath=False, memory=memory).gemm(a, b)
        assert hierarchy.l1.stats.accesses > 0
        assert hierarchy.l1.stats.hit_rate > 0.5  # blocking works
