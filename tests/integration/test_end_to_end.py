"""End-to-end integration tests: the whole stack in one flow.

These cross-module tests assert consistency properties no single unit
suite can: the Figure 3 pipeline (train -> calibrate -> QAT -> export ->
deploy -> verify), agreement between the evaluation harness and the
models underneath it, and whole-system invariants.
"""

import numpy as np
import pytest

from repro.core.config import BlockingParams, MixGemmConfig
from repro.core.gemm import MixGemm
from repro.core.parallel import ParallelMixGemm
from repro.eval.figures import figure7
from repro.eval.tables import table3
from repro.models.builders import build_tiny
from repro.models.inventory import get_network
from repro.nn.autograd import Tensor
from repro.nn.data import synthetic_image_dataset
from repro.nn.layers import (
    GlobalAvgPool2d,
    LayerQuantSpec,
    QuantConv2d,
    QuantLinear,
    ReLU,
    Sequential,
    seed_init,
)
from repro.quant.qat import (
    QatRecipe,
    calibrate_activations,
    evaluate,
    train_qat,
)
from repro.runtime import InferenceEngine, GraphModel, export_sequential
from repro.sim.energy import EnergyModel
from repro.sim.perf import MixGemmPerfModel


@pytest.fixture(scope="module")
def data():
    return synthetic_image_dataset(
        n_classes=4, n_samples=200, image_size=12, seed=5
    ).split(0.8)


class TestFigure3Workflow:
    """Train -> quantize -> export -> deploy, checked at every joint."""

    @pytest.fixture(scope="class")
    def trained(self, data):
        train, val = data
        seed_init(21)
        spec_in = LayerQuantSpec(act_bits=8, weight_bits=8,
                                 act_signed=True)
        spec = LayerQuantSpec(act_bits=5, weight_bits=4)
        model = Sequential(
            QuantConv2d(1, 8, 3, spec=spec_in, padding=1),
            ReLU(),
            QuantConv2d(8, 12, 3, spec=spec, padding=1, stride=2),
            ReLU(),
            GlobalAvgPool2d(),
            QuantLinear(12, 4, spec=spec),
        )
        calibrate_activations(model, train, batch_size=16, batches=4)
        recipe = QatRecipe(lr=0.05, epochs=6, lr_step=4, batch_size=32)
        history = train_qat(model, train, val, recipe, seed=0)
        model.eval()
        return model, history

    def test_training_learned(self, trained):
        _, history = trained
        assert history.best_val_accuracy > 0.5

    def test_export_import_preserves_predictions(self, trained, data,
                                                 tmp_path):
        model, _ = trained
        _, val = data
        x = val.images[:8]
        expected = model(Tensor(x)).data.argmax(axis=1)
        graph = export_sequential(model)
        path = tmp_path / "model.json"
        graph.save(str(path))
        loaded = GraphModel.load(str(path))
        preds = InferenceEngine(loaded).predict(x)
        assert np.array_equal(preds, expected)

    def test_deployed_accuracy_matches_framework(self, trained, data):
        model, _ = trained
        _, val = data
        framework_acc = evaluate(model, val)
        engine = InferenceEngine(export_sequential(model),
                                 backend="mixgemm")
        preds = engine.predict(val.images)
        deployed_acc = float((preds == val.labels).mean())
        assert deployed_acc == pytest.approx(framework_acc, abs=1e-9)

    def test_deployment_reports_cycles(self, trained, data):
        model, _ = trained
        _, val = data
        engine = InferenceEngine(export_sequential(model),
                                 backend="mixgemm")
        result = engine.run(val.images[:4])
        assert result.total_cycles > 0
        configs = {s.config for s in result.layer_stats}
        assert "a5-w4" in configs
        assert "a8-w8" in configs  # the pinned first layer


class TestHarnessModelConsistency:
    """The eval harness must agree with direct model queries."""

    def test_figure7_matches_perf_model(self):
        points = figure7(networks=("alexnet",))
        perf = MixGemmPerfModel()
        net = get_network("alexnet")
        for p in points:
            if p.config == "a8-w8":
                direct = perf.network(
                    net, MixGemmConfig(bw_a=8, bw_b=8)
                ).gops
                assert p.gops == pytest.approx(direct)

    def test_table3_matches_energy_model(self):
        measured = [r for r in table3() if r.measured][0]
        energy = EnergyModel()
        perf = MixGemmPerfModel()
        cfg = MixGemmConfig(bw_a=2, bw_b=2)
        direct = energy.from_perf(
            perf.network(get_network("alexnet"), cfg), cfg
        ).tops_per_watt
        assert measured.eff["alexnet"].hi == pytest.approx(direct,
                                                           abs=0.011)


class TestWholeStackInvariants:
    def test_parallel_and_serial_same_numerics_all_widths(self):
        rng = np.random.default_rng(11)
        for bw in (8, 4, 2):
            lo = -(1 << (bw - 1))
            a = rng.integers(lo, -lo, size=(8, 64))
            b = rng.integers(lo, -lo, size=(64, 12))
            cfg = MixGemmConfig(
                bw_a=bw, bw_b=bw,
                blocking=BlockingParams(mc=8, nc=8, kc=32),
            )
            serial = MixGemm(cfg, emulate_datapath=False).gemm(a, b)
            parallel = ParallelMixGemm(cfg, cores=3).gemm(a, b)
            assert np.array_equal(serial.c, parallel.c), bw

    def test_tiny_models_deploy_after_retargeting(self, data):
        """Every architecture family survives retarget -> run."""
        train, _ = data
        from repro.quant.qat import set_model_bits
        for name in ("alexnet", "vgg16"):  # Sequential-exportable ones
            model = build_tiny(name)
            set_model_bits(model, 4, 4)
            model.eval()
            graph = export_sequential(model)
            out = InferenceEngine(graph).run(train.images[:2])
            assert out.output.shape == (2, 4)

    def test_datapath_route_equals_fast_route_through_runtime(self, data):
        """emulate_datapath toggling never changes results end-to-end."""
        rng = np.random.default_rng(3)
        a = rng.integers(-8, 8, size=(6, 30))
        b = rng.integers(-8, 8, size=(30, 6))
        cfg = MixGemmConfig(bw_a=4, bw_b=4,
                            blocking=BlockingParams(mc=8, nc=8, kc=32))
        slow = MixGemm(cfg, emulate_datapath=True).gemm(a, b)
        fast = MixGemm(cfg, emulate_datapath=False).gemm(a, b)
        assert np.array_equal(slow.c, fast.c)
        assert slow.cycles == fast.cycles
