"""Inventory tests: MAC totals vs published figures, GEMM mappings."""

import pytest

from repro.models.inventory import (
    DISPLAY_NAMES,
    NETWORKS,
    get_network,
    table3_convolution,
)


#: Published MAC counts (multiply-accumulates per 224x224 inference).
PUBLISHED_GMACS = {
    "alexnet": 0.71,
    "vgg16": 15.5,
    "resnet18": 1.81,
    "mobilenet_v1": 0.57,
    "regnet_x_400mf": 0.41,
    "efficientnet_b0": 0.39,
}

#: Published parameter counts (millions).
PUBLISHED_MPARAMS = {
    "alexnet": 61.1,
    "vgg16": 138.4,
    "resnet18": 11.7,
    "mobilenet_v1": 4.2,
    "regnet_x_400mf": 5.5,
    "efficientnet_b0": 5.3,
}


class TestMacTotals:
    @pytest.mark.parametrize("name", sorted(NETWORKS))
    def test_total_macs_match_published(self, name):
        net = get_network(name)
        assert net.total_macs / 1e9 == pytest.approx(
            PUBLISHED_GMACS[name], rel=0.05
        ), name

    @pytest.mark.parametrize("name", sorted(NETWORKS))
    def test_weights_match_published(self, name):
        net = get_network(name)
        assert net.total_weights / 1e6 == pytest.approx(
            PUBLISHED_MPARAMS[name], rel=0.07
        ), name

    def test_conv_dominates_except_classifier_heavy_nets(self):
        # ResNet/MobileNet/RegNet/EfficientNet are conv-dominated.
        for name in ("resnet18", "mobilenet_v1", "regnet_x_400mf"):
            net = get_network(name)
            assert net.conv_macs / net.total_macs > 0.95


class TestLayerGeometry:
    def test_alexnet_conv1_shape(self):
        net = get_network("alexnet")
        conv1 = net.layers[0]
        assert conv1.out_size == 55
        assert conv1.gemm_dims == (55 * 55, 3 * 11 * 11, 64)

    def test_resnet18_structure(self):
        net = get_network("resnet18")
        downsamples = [l for l in net.layers if "downsample" in l.name]
        assert len(downsamples) == 3  # stages 2-4
        convs = [l for l in net.layers if l.kind == "conv"]
        assert len(convs) == 17  # stem + 16 block convs

    def test_mobilenet_depthwise_count(self):
        net = get_network("mobilenet_v1")
        dw = [l for l in net.layers if l.kind == "depthwise"]
        pw = [l for l in net.layers if l.kind == "pointwise"]
        assert len(dw) == 13
        assert len(pw) == 13
        for layer in dw:
            assert layer.groups == layer.in_channels

    def test_vgg16_has_13_convs_3_fcs(self):
        net = get_network("vgg16")
        assert len(net.conv_layers) == 13
        assert len(net.fc_layers) == 3

    def test_regnet_group_convs(self):
        net = get_network("regnet_x_400mf")
        grouped = [l for l in net.layers if l.groups > 1]
        assert grouped
        for layer in grouped:
            assert layer.out_channels // layer.groups == 16  # group width

    def test_efficientnet_se_blocks(self):
        net = get_network("efficientnet_b0")
        se = [l for l in net.layers if "se_" in l.name]
        assert len(se) == 2 * 16  # 16 MBConv blocks

    def test_final_spatial_size_is_7(self):
        for name in ("resnet18", "mobilenet_v1", "regnet_x_400mf",
                     "efficientnet_b0"):
            net = get_network(name)
            last_conv = [l for l in net.conv_layers if l.in_size > 1][-1]
            assert last_conv.out_size == 7, name


class TestRegistry:
    def test_all_six_networks(self):
        assert len(NETWORKS) == 6
        assert set(DISPLAY_NAMES) == set(NETWORKS)

    def test_unknown_network(self):
        with pytest.raises(KeyError):
            get_network("lenet")

    def test_macs_fraction_sums_to_one(self):
        net = get_network("resnet18")
        total = sum(net.macs_fraction(l) for l in net.layers)
        assert total == pytest.approx(1.0)


class TestTable3Convolution:
    def test_footnote_shapes(self):
        conv = table3_convolution()
        assert conv.in_channels == 32
        assert conv.out_channels == 64
        assert conv.kernel == 3
        assert conv.in_size == 16
        # 16x16x32 input, 64x3x3x32 filter, same padding.
        assert conv.macs == 16 * 16 * 32 * 9 * 64
