"""Tests for the trainable scaled-down model variants."""

import numpy as np
import pytest

from repro.models.builders import TINY_BUILDERS, build_tiny
from repro.nn.autograd import Tensor, softmax_cross_entropy
from repro.nn.layers import seed_init
from repro.quant.qat import quant_layers, set_model_bits


@pytest.fixture(autouse=True)
def _seed():
    seed_init(0)


def _run(model, image_size=12, channels=1, batch=2):
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(batch, channels, image_size, image_size)))
    return model(x)


class TestForwardShapes:
    @pytest.mark.parametrize("name", sorted(TINY_BUILDERS))
    def test_output_shape(self, name):
        model = build_tiny(name, n_classes=4)
        out = _run(model)
        assert out.shape == (2, 4)

    @pytest.mark.parametrize("name", sorted(TINY_BUILDERS))
    def test_all_gradients_flow(self, name):
        model = build_tiny(name, n_classes=4)
        model.train()
        out = _run(model)
        loss, _ = softmax_cross_entropy(out, np.array([0, 1]))
        loss.backward()
        missing = [
            pname for pname, p in model.named_parameters()
            if p.grad is None
        ]
        assert not missing, f"{name}: no grad for {missing}"


class TestQuantRetargeting:
    @pytest.mark.parametrize("name", sorted(TINY_BUILDERS))
    def test_set_model_bits_applies(self, name):
        model = build_tiny(name)
        set_model_bits(model, 3, 2)
        layers = quant_layers(model)
        assert layers[0].spec.weight_bits == 8  # first stays 8-bit
        assert layers[1].spec.weight_bits == 2

    def test_fp_variant(self):
        model = build_tiny("resnet18", act_bits=None, weight_bits=None)
        out = _run(model)
        assert np.isfinite(out.data).all()


class TestArchitecturalMotifs:
    def test_resnet_residual_identity(self):
        # With zeroed branch weights a residual block is the identity
        # (after ReLU), confirming the shortcut wiring.
        from repro.models.builders import BasicBlock
        from repro.nn.layers import LayerQuantSpec
        block = BasicBlock(4, 4, 1, LayerQuantSpec())
        block.eval()
        block.conv1.weight.data[:] = 0
        block.conv2.weight.data[:] = 0
        x = np.abs(np.random.default_rng(0).normal(size=(1, 4, 5, 5)))
        out = block(Tensor(x))
        assert np.allclose(out.data, x, atol=1e-6)

    def test_mbconv_residual_only_when_shapes_match(self):
        from repro.models.builders import MBConv
        from repro.nn.layers import LayerQuantSpec
        spec = LayerQuantSpec()
        assert MBConv(8, 8, expansion=1, kernel=3, stride=1,
                      spec=spec)._residual
        assert not MBConv(8, 16, expansion=1, kernel=3, stride=1,
                          spec=spec)._residual
        assert not MBConv(8, 8, expansion=1, kernel=3, stride=2,
                          spec=spec)._residual

    def test_squeeze_excite_rescales_channels(self):
        from repro.models.builders import SqueezeExcite
        from repro.nn.layers import LayerQuantSpec
        se = SqueezeExcite(4, 2, LayerQuantSpec())
        x = np.random.default_rng(1).normal(size=(2, 4, 3, 3))
        out = se(Tensor(x))
        assert out.shape == x.shape
        # Sigmoid gate is in (0, 1): output magnitude can't exceed input.
        assert (np.abs(out.data) <= np.abs(x) + 1e-12).all()

    def test_unknown_builder(self):
        with pytest.raises(KeyError):
            build_tiny("lenet")
