"""BERT workload model tests (the paper's NLP projection)."""

import pytest

from repro.core.config import MixGemmConfig
from repro.models.transformer import (
    bert_base,
    bert_encoder_layer,
    bert_tiny,
    project_gemm_workload,
)
from repro.sim.perf import MixGemmPerfModel


class TestBertStructure:
    def test_encoder_layer_gemms(self):
        items = bert_encoder_layer(128, 768, 12, 3072)
        names = [i.name.split(".")[-1] for i in items]
        assert names == ["qkv", "scores", "context", "proj",
                         "ffn_up", "ffn_down"]

    def test_bert_base_macs(self):
        # BERT-base at seq 128: ~11 GMAC per sequence (published figure
        # ~11.2 GFLOPs of MACs for the encoder stack).
        wl = bert_base(seq_len=128)
        assert wl.total_macs / 1e9 == pytest.approx(11.2, rel=0.1)
        assert len(wl) == 12 * 6

    def test_ffn_dominates(self):
        wl = bert_base(seq_len=128)
        ffn = sum(i.macs for i in wl if "ffn" in i.name)
        assert ffn / wl.total_macs > 0.5

    def test_weight_fraction(self):
        # Attention products (activation x activation) are a small MAC
        # share at short sequences.
        wl = bert_base(seq_len=128)
        assert wl.weight_macs_fraction > 0.85

    def test_attention_grows_with_sequence(self):
        short = bert_base(seq_len=64)
        long = bert_base(seq_len=512)
        assert long.weight_macs_fraction < short.weight_macs_fraction

    def test_tiny_variant(self):
        wl = bert_tiny()
        assert len(wl) == 2 * 6
        assert wl.total_macs < bert_base().total_macs


class TestBertProjection:
    @pytest.fixture(scope="class")
    def perf(self):
        return MixGemmPerfModel()

    def test_throughput_scales_with_narrowing(self, perf):
        wl = bert_tiny()
        gops = [
            project_gemm_workload(
                wl, perf, MixGemmConfig(bw_a=b, bw_b=b)
            ).gops
            for b in (8, 4, 2)
        ]
        assert gops[0] < gops[1] < gops[2]

    def test_bert_base_in_cnn_band(self, perf):
        # BERT's large square-ish GEMMs should run at least as fast as
        # the CNNs (paper's motivation: "compute expansive kernels").
        r = project_gemm_workload(
            bert_base(128), perf, MixGemmConfig(bw_a=8, bw_b=8)
        )
        assert 4.0 < r.gops < 8.0

    def test_latency_seconds(self, perf):
        r = project_gemm_workload(
            bert_base(128), perf, MixGemmConfig(bw_a=4, bw_b=4)
        )
        # ~11 GMAC at several GOPS: a few seconds per sequence on the
        # edge SoC.
        assert 0.5 < r.seconds < 10.0
