"""Related-work registry tests (Table III published rows)."""

import pytest

from repro.baselines.related import (
    PAPER_MIXGEMM_ROW,
    RELATED_WORK,
    BenchRange,
    get_related,
)


class TestBenchRange:
    def test_single_value(self):
        r = BenchRange(5.6)
        assert r.lo == r.hi == 5.6
        assert str(r) == "5.6"

    def test_range(self):
        r = BenchRange(0.4, 1.3)
        assert str(r) == "0.4-1.3"


class TestRegistry:
    def test_eleven_comparison_rows(self):
        # The FP32 baseline plus ten related systems (Table III).
        assert len(RELATED_WORK) == 11

    def test_lookup(self):
        assert get_related("eyeriss").tech_nm == 65
        with pytest.raises(KeyError):
            get_related("tpu")

    def test_baseline_fp32_everywhere_09(self):
        base = get_related("baseline_fp32")
        for name, value in base.perf.items():
            assert value.lo == 0.9, name

    def test_gemmlowp_published_band(self):
        gl = get_related("gemmlowp")
        values = [v.lo for v in gl.perf.values()]
        assert min(values) == 4.7
        assert max(values) == 5.8

    def test_mixed_precision_flags(self):
        # Only CMix-NN, Bruschi and Ottavi support mixed precision among
        # the related work (Table III).
        mixed = {k for k, w in RELATED_WORK.items() if w.mixed_precision}
        assert mixed == {"cmix_nn", "bruschi", "ottavi"}

    def test_decoupled_accelerators(self):
        for key in ("eyeriss", "unpu"):
            assert RELATED_WORK[key].soc == "Decoupled"

    def test_bison_e_smallest_area(self):
        areas = {k: w.area_mm2 for k, w in RELATED_WORK.items()
                 if w.area_mm2 is not None}
        assert min(areas, key=areas.get) == "bison_e"


class TestPaperRow:
    def test_covers_all_benchmarks(self):
        assert set(PAPER_MIXGEMM_ROW.perf) == {
            "convolution", "alexnet", "vgg16", "resnet18",
            "mobilenet_v1", "regnet_x_400mf", "efficientnet_b0",
        }

    def test_abstract_claims(self):
        # "from 4.8 GOPS to 13.6 GOPS" and "up to 1.3 TOPS/W".
        perf = [v for k, v in PAPER_MIXGEMM_ROW.perf.items()
                if k != "convolution"]
        assert min(v.lo for v in perf) == 4.8
        assert max(v.hi for v in perf) == 13.6
        assert max(v.hi for v in PAPER_MIXGEMM_ROW.eff.values()) == 1.3

    def test_area_is_table2_total(self):
        assert PAPER_MIXGEMM_ROW.area_mm2 == pytest.approx(0.0136,
                                                           abs=5e-4)
