"""Doc-rot guard: every code block in docs/TUTORIAL.md must execute."""

import pathlib
import re

import pytest

TUTORIAL = pathlib.Path(__file__).parent.parent / "docs" / "TUTORIAL.md"


def _blocks():
    text = TUTORIAL.read_text()
    return re.findall(r"```python\n(.*?)```", text, re.S)


@pytest.fixture(scope="module")
def namespace():
    """Blocks share one namespace (later sections build on earlier ones)."""
    return {}


def test_tutorial_exists():
    assert TUTORIAL.exists()
    assert len(_blocks()) >= 8


@pytest.mark.parametrize("index", range(len(_blocks())))
def test_tutorial_block_runs(index, namespace, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # blocks may write files (model.json)
    blocks = _blocks()
    exec(blocks[index], namespace)  # noqa: S102 - the point of the test
