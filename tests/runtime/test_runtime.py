"""Runtime tests: export round-trips and backend equivalence (Fig. 3)."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor
from repro.nn.layers import (
    Flatten,
    GlobalAvgPool2d,
    LayerQuantSpec,
    Linear,
    MaxPool2d,
    QuantConv2d,
    QuantLinear,
    ReLU,
    Sequential,
    seed_init,
)
from repro.runtime.engine import InferenceEngine
from repro.runtime.graph import (
    GraphError,
    GraphModel,
    export_sequential,
)


def make_model(act_bits=6, weight_bits=4):
    seed_init(11)
    spec_in = LayerQuantSpec(act_bits=act_bits, weight_bits=weight_bits,
                             act_signed=True)
    spec = LayerQuantSpec(act_bits=act_bits, weight_bits=weight_bits)
    return Sequential(
        QuantConv2d(1, 4, 3, spec=spec_in, padding=1),
        ReLU(),
        MaxPool2d(2),
        QuantConv2d(4, 8, 3, spec=spec, padding=1),
        ReLU(),
        GlobalAvgPool2d(),
        QuantLinear(8, 3, spec=spec),
    )


@pytest.fixture(scope="module")
def model_and_input():
    model = make_model()
    model.eval()
    rng = np.random.default_rng(0)
    x = rng.normal(size=(2, 1, 8, 8))
    return model, x


class TestExport:
    def test_node_list(self, model_and_input):
        model, _ = model_and_input
        graph = export_sequential(model, name="tiny")
        ops = [n.op for n in graph]
        assert ops == [
            "quant_conv2d", "relu", "max_pool2d", "quant_conv2d",
            "relu", "global_avg_pool2d", "quant_linear",
        ]
        assert len(graph.quantized_nodes()) == 3

    def test_quant_attrs_travel(self, model_and_input):
        model, _ = model_and_input
        graph = export_sequential(model)
        node = graph.nodes[0]
        assert node.attrs["act_bits"] == 6
        assert node.attrs["weight_bits"] == 4
        assert node.attrs["act_signed"] is True
        assert node.attrs["act_scale"] > 0

    def test_json_roundtrip(self, model_and_input, tmp_path):
        model, _ = model_and_input
        graph = export_sequential(model)
        path = tmp_path / "model.json"
        graph.save(str(path))
        loaded = GraphModel.load(str(path))
        assert len(loaded) == len(graph)
        assert np.allclose(loaded.nodes[0].tensors["weight"],
                           graph.nodes[0].tensors["weight"])

    def test_bad_version_rejected(self):
        with pytest.raises(GraphError):
            GraphModel.from_json('{"format_version": 99, "nodes": []}')

    def test_unsupported_layer(self):
        class Strange(Linear):
            pass

        # Unknown subclasses of Linear still export (isinstance), but a
        # truly unknown module fails.
        from repro.nn.layers import Module

        class Alien(Module):
            def forward(self, x):
                return x

        with pytest.raises(GraphError):
            export_sequential(Sequential(Alien()))

    def test_requires_sequential(self, model_and_input):
        with pytest.raises(GraphError):
            export_sequential(Linear(2, 2))  # type: ignore[arg-type]


class TestBackendEquivalence:
    def test_numpy_backend_matches_training_forward(self, model_and_input):
        """Integer pipeline == QAT fake-quant forward (bit-exact)."""
        model, x = model_and_input
        expected = model(Tensor(x)).data
        graph = export_sequential(model)
        engine = InferenceEngine(graph, backend="numpy")
        got = engine.run(x).output
        assert np.allclose(got, expected, atol=1e-9)

    def test_mixgemm_backend_matches_numpy(self, model_and_input):
        model, x = model_and_input
        graph = export_sequential(model)
        ref = InferenceEngine(graph, backend="numpy").run(x).output
        sim = InferenceEngine(graph, backend="mixgemm").run(x)
        assert np.allclose(sim.output, ref, atol=1e-9)

    def test_mixgemm_collects_stats(self, model_and_input):
        model, x = model_and_input
        graph = export_sequential(model)
        result = InferenceEngine(graph, backend="mixgemm").run(x)
        assert len(result.layer_stats) == 3
        assert result.total_cycles > 0
        assert result.total_macs > 0
        assert result.gops() > 0
        assert result.layer_stats[0].config == "a6-w4"

    def test_predict(self, model_and_input):
        model, x = model_and_input
        graph = export_sequential(model)
        preds = InferenceEngine(graph).predict(x)
        assert preds.shape == (2,)

    def test_unknown_backend(self, model_and_input):
        model, _ = model_and_input
        graph = export_sequential(model)
        with pytest.raises(GraphError):
            InferenceEngine(graph, backend="tpu")


class TestFloatGraph:
    def test_float_model_runs(self):
        seed_init(3)
        model = Sequential(
            Linear(6, 4), ReLU(), Linear(4, 2), Flatten(),
        )
        model.eval()
        x = np.random.default_rng(1).normal(size=(3, 6))
        graph = export_sequential(model)
        got = InferenceEngine(graph).run(x).output
        expected = model(Tensor(x)).data
        assert np.allclose(got, expected)


class TestActivationStability:
    """Stable sigmoid/silu: no overflow warnings at extreme inputs."""

    def _run_op(self, op, x):
        from repro.runtime.graph import GraphBuilder, NodeSpec

        b = GraphBuilder(op)
        b.add(NodeSpec(op=op), inputs=["input"])
        engine = InferenceEngine(b.build())
        return engine.run(x).output

    @pytest.mark.parametrize("op", ["sigmoid", "silu"])
    def test_no_overflow_at_extremes(self, op):
        x = np.array([[-1000.0, -50.0, 0.0, 50.0, 1000.0]])
        with np.errstate(over="raise"):
            out = self._run_op(op, x)
        assert np.all(np.isfinite(out))

    def test_sigmoid_saturates_correctly(self):
        out = self._run_op("sigmoid", np.array([[-1000.0, 1000.0]]))
        assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert out[0, 1] == pytest.approx(1.0)

    def test_silu_saturates_correctly(self):
        out = self._run_op("silu", np.array([[-1000.0, 1000.0]]))
        # x * sigmoid(x): -1000 * ~0 underflows to ~0; +1000 * ~1 = 1000.
        assert out[0, 0] == pytest.approx(0.0, abs=1e-12)
        assert out[0, 1] == pytest.approx(1000.0)

    def test_stable_form_matches_textbook_in_safe_range(self):
        from repro.runtime import ops

        x = np.linspace(0, 30, 151)
        # For x >= 0 the stable form *is* the textbook form: bit-exact.
        assert np.array_equal(ops.sigmoid(x), 1.0 / (1.0 + np.exp(-x)))
        neg = np.linspace(-30, 0, 151)
        assert np.allclose(ops.sigmoid(neg), 1.0 / (1.0 + np.exp(-neg)),
                           rtol=1e-15, atol=1e-300)
