"""Batched multi-worker serving: correctness, batching, stats, limits."""

import numpy as np
import pytest

from repro.robustness.faults import demo_graph, demo_input
from repro.runtime.engine import InferenceEngine
from repro.runtime.serving import (
    BatchedServer,
    ServingError,
    scaling_sweep,
)


@pytest.fixture(scope="module")
def graph():
    return demo_graph()


def _inputs(n, size=6, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((1, size, size)) for _ in range(n)]


class TestCorrectness:
    def test_outputs_match_direct_inference(self, graph):
        inputs = _inputs(12)
        engine = InferenceEngine(graph, backend="mixgemm")
        with BatchedServer(graph, workers=2, max_batch=4,
                           backend="mixgemm") as server:
            report = server.run_requests(inputs)
        for x, out in zip(inputs, report.outputs):
            expected = engine.run(x[None]).output[0]
            assert np.array_equal(out, expected)

    def test_batching_does_not_change_results(self, graph):
        """Batch of b identical samples == b independent runs."""
        inputs = [_inputs(1)[0]] * 6
        with BatchedServer(graph, workers=1, max_batch=6,
                           max_wait_ms=50.0) as server:
            report = server.run_requests(inputs)
        first = report.outputs[0]
        for out in report.outputs[1:]:
            assert np.array_equal(out, first)

    def test_uncompiled_mode_matches_compiled(self, graph):
        inputs = _inputs(8)
        with BatchedServer(graph, workers=2, compiled=True) as server:
            compiled = server.run_requests(inputs)
        with BatchedServer(graph, workers=2, compiled=False) as server:
            uncompiled = server.run_requests(inputs)
        for a, b in zip(compiled.outputs, uncompiled.outputs):
            assert np.array_equal(a, b)

    def test_mixed_shapes_split_into_subbatches(self):
        # Needs a size-agnostic head: global average pooling, not the
        # demo graph's fixed-size flatten -> linear.
        from repro.nn.layers import (
            GlobalAvgPool2d,
            LayerQuantSpec,
            QuantConv2d,
            QuantLinear,
            ReLU,
            Sequential,
            seed_init,
        )
        from repro.runtime.graph import export_sequential

        seed_init(3)
        spec = LayerQuantSpec(act_bits=8, weight_bits=8, act_signed=True)
        model = Sequential(
            QuantConv2d(1, 4, 3, spec=spec, padding=1), ReLU(),
            GlobalAvgPool2d(),
            QuantLinear(4, 3, spec=LayerQuantSpec(act_bits=8,
                                                  weight_bits=8)),
        )
        model.eval()
        fcn = export_sequential(model, name="fcn")
        inputs = _inputs(4, size=6) + _inputs(4, size=8)
        engine = InferenceEngine(fcn)
        with BatchedServer(fcn, workers=2, max_batch=8,
                           max_wait_ms=50.0) as server:
            report = server.run_requests(inputs)
        for x, out in zip(inputs, report.outputs):
            assert np.array_equal(out, engine.run(x[None]).output[0])

    def test_submit_future_api(self, graph):
        with BatchedServer(graph, workers=1) as server:
            future = server.submit(_inputs(1)[0])
            response = future.result(timeout=30)
        assert response.output.shape == (3,)
        assert response.latency_ms > 0
        assert not response.degraded
        assert response.breaker_state == "disabled"
        assert response.warnings == ()


class TestStats:
    def test_latency_and_throughput_populated(self, graph):
        with BatchedServer(graph, workers=2, max_batch=4) as server:
            report = server.run_requests(_inputs(16))
        s = report.stats
        assert s.requests == 16
        assert s.batches >= 1
        assert sum(k * v for k, v in s.batch_histogram.items()) == 16
        assert s.throughput_rps > 0
        assert 0 < s.latency_p50_ms <= s.latency_p95_ms \
            <= s.latency_p99_ms
        assert s.mean_batch_size >= 1.0
        assert s.max_queue_depth >= 0

    def test_max_batch_respected(self, graph):
        with BatchedServer(graph, workers=1, max_batch=3,
                           max_wait_ms=50.0) as server:
            report = server.run_requests(_inputs(9))
        assert max(report.stats.batch_histogram) <= 3

    def test_zero_wait_degenerates_gracefully(self, graph):
        with BatchedServer(graph, workers=1, max_batch=8,
                           max_wait_ms=0.0) as server:
            report = server.run_requests(_inputs(5))
        assert report.stats.requests == 5

    def test_stats_serialize(self, graph):
        with BatchedServer(graph, workers=1) as server:
            report = server.run_requests(_inputs(3))
        payload = report.stats.as_dict()
        assert payload["requests"] == 3
        assert isinstance(payload["batch_histogram"], dict)


class TestLifecycle:
    def test_submit_after_close_rejected(self, graph):
        server = BatchedServer(graph, workers=1)
        server.close()
        with pytest.raises(ServingError):
            server.submit(_inputs(1)[0])

    def test_close_is_idempotent(self, graph):
        server = BatchedServer(graph, workers=1)
        server.close()
        server.close()

    def test_invalid_parameters(self, graph):
        with pytest.raises(ServingError):
            BatchedServer(graph, workers=0)
        with pytest.raises(ServingError):
            BatchedServer(graph, max_batch=0)
        with pytest.raises(ServingError):
            BatchedServer(graph, max_wait_ms=-1.0)

    def test_worker_error_propagates_to_future(self, graph):
        with BatchedServer(graph, workers=1) as server:
            future = server.submit(np.zeros((7, 9, 9)))  # bad channels
            with pytest.raises(Exception):
                future.result(timeout=30)


class TestScalingSweep:
    def test_rows_cover_worker_counts(self, graph):
        rows = scaling_sweep(graph, _inputs(8), worker_counts=(1, 2),
                             max_batch=4)
        assert [r["workers"] for r in rows] == [1, 2]
        for row in rows:
            assert row["requests"] == 8
            assert row["throughput_rps"] > 0


@pytest.mark.slow
class TestHeavySweep:
    """Big request volumes across worker counts (CI: slow marker)."""

    def test_many_requests_all_exact(self, graph):
        inputs = _inputs(128, seed=5)
        engine = InferenceEngine(graph, backend="mixgemm")
        with BatchedServer(graph, workers=4, max_batch=8,
                           backend="mixgemm") as server:
            report = server.run_requests(inputs)
        assert report.stats.requests == 128
        for x, out in zip(inputs, report.outputs):
            assert np.array_equal(out, engine.run(x[None]).output[0])

    def test_worker_scaling_sweep(self, graph):
        rows = scaling_sweep(graph, _inputs(64, seed=9),
                             worker_counts=(1, 2, 4), max_batch=8,
                             backend="mixgemm")
        assert [r["workers"] for r in rows] == [1, 2, 4]
        for row in rows:
            assert row["throughput_rps"] > 0
