"""DAG runtime tests: residual / depthwise / SE topologies deploy."""

import numpy as np
import pytest

from repro.models.builders import build_tiny
from repro.nn.autograd import Tensor
from repro.nn.layers import seed_init
from repro.runtime import (
    GraphBuilder,
    GraphError,
    GraphModel,
    InferenceEngine,
    NodeSpec,
    export_model,
)


@pytest.fixture(autouse=True)
def _seed():
    seed_init(13)


def _input(batch=2, size=12):
    return np.random.default_rng(0).normal(size=(batch, 1, size, size))


ALL_ARCHES = ("alexnet", "vgg16", "resnet18", "mobilenet_v1",
              "regnet_x_400mf", "efficientnet_b0")


class TestAllArchitecturesDeploy:
    @pytest.mark.parametrize("name", ALL_ARCHES)
    def test_export_matches_forward(self, name):
        """Every zoo family deploys bit-exactly -- including residual,
        group-conv and squeeze-excite topologies."""
        model = build_tiny(name, act_bits=6, weight_bits=4)
        model.eval()
        x = _input()
        expected = model(Tensor(x)).data
        graph = export_model(model, name=name)
        got = InferenceEngine(graph).run(x).output
        assert np.allclose(got, expected, atol=1e-9), name

    @pytest.mark.parametrize("name", ("resnet18", "efficientnet_b0"))
    def test_mixgemm_backend_on_dag(self, name):
        model = build_tiny(name, act_bits=4, weight_bits=4)
        model.eval()
        x = _input()
        graph = export_model(model)
        ref = InferenceEngine(graph, backend="numpy").run(x)
        sim = InferenceEngine(graph, backend="mixgemm").run(x)
        assert np.allclose(sim.output, ref.output, atol=1e-9)
        assert sim.total_cycles > 0

    @pytest.mark.parametrize("name", ALL_ARCHES)
    def test_json_roundtrip_preserves_wiring(self, name, tmp_path):
        model = build_tiny(name)
        model.eval()
        x = _input()
        graph = export_model(model)
        path = tmp_path / "m.json"
        graph.save(str(path))
        loaded = GraphModel.load(str(path))
        a = InferenceEngine(graph).run(x).output
        b = InferenceEngine(loaded).run(x).output
        assert np.allclose(a, b)


class TestDagSemantics:
    def test_residual_add(self):
        b = GraphBuilder()
        t = b.add(NodeSpec(op="relu"), inputs=["input"])
        b.add(NodeSpec(op="add"), inputs=[t, "input"])
        x = np.array([[-1.0, 2.0]])
        out = InferenceEngine(b.build()).run(x).output
        assert np.allclose(out, [[-1.0, 4.0]])  # relu(x) + x

    def test_channel_scale(self):
        b = GraphBuilder()
        gates = b.add(NodeSpec(op="global_avg_pool2d"),
                      inputs=["input"])
        gates = b.add(NodeSpec(op="sigmoid"), inputs=[gates])
        b.add(NodeSpec(op="channel_scale"), inputs=["input", gates])
        x = np.ones((1, 2, 2, 2))
        out = InferenceEngine(b.build()).run(x).output
        gate = 1 / (1 + np.exp(-1.0))
        assert np.allclose(out, gate)

    def test_unknown_tensor_reference(self):
        b = GraphBuilder()
        b.add(NodeSpec(op="relu"), inputs=["ghost"])
        with pytest.raises(GraphError):
            InferenceEngine(b.build()).run(np.zeros((1, 2)))

    def test_add_arity_checked(self):
        b = GraphBuilder()
        b.add(NodeSpec(op="add"), inputs=["input"])
        with pytest.raises(GraphError):
            InferenceEngine(b.build()).run(np.zeros((1, 2)))

    def test_add_shape_checked(self):
        b = GraphBuilder()
        pooled = b.add(NodeSpec(op="global_avg_pool2d"),
                       inputs=["input"])
        b.add(NodeSpec(op="add"), inputs=["input", pooled])
        with pytest.raises(GraphError):
            InferenceEngine(b.build()).run(np.zeros((1, 2, 3, 3)))

    def test_channel_scale_shape_checked(self):
        b = GraphBuilder()
        b.add(NodeSpec(op="channel_scale"), inputs=["input", "input"])
        with pytest.raises(GraphError):
            InferenceEngine(b.build()).run(np.zeros((1, 2, 3, 3)))

    def test_chain_still_works_without_wiring(self):
        graph = GraphModel(nodes=[NodeSpec(op="relu"),
                                  NodeSpec(op="flatten")])
        x = np.array([[[-1.0, 2.0]]])
        out = InferenceEngine(graph).run(x).output
        assert np.allclose(out, [[0.0, 2.0]])
