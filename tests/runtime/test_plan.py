"""Compiled inference plans: bit-exactness, fusion, fallback, timing."""

import numpy as np
import pytest

from repro.models.builders import build_tiny
from repro.nn.layers import seed_init
from repro.robustness.faults import FaultPlan, demo_graph, demo_input
from repro.runtime.engine import InferenceEngine
from repro.runtime.export_modules import export_model
from repro.runtime.graph import GraphError
from repro.runtime.plan import compile_graph


def _stats_tuples(result):
    return [(s.layer, s.op, s.config, s.macs, s.cycles)
            for s in result.layer_stats]


@pytest.fixture(scope="module")
def resnet_graph():
    """A resnet18-style DAG: residual adds, batchnorms, fusable relus."""
    seed_init(13)
    model = build_tiny("resnet18", act_bits=8, weight_bits=8)
    model.eval()
    return export_model(model, name="resnet18")


@pytest.fixture(scope="module")
def resnet_input():
    rng = np.random.default_rng(7)
    return rng.standard_normal((2, 1, 12, 12))


class TestBitExactness:
    """The compiled plan must be indistinguishable from the engine."""

    @pytest.mark.parametrize("backend,gemm_backend", [
        ("numpy", "auto"),
        ("mixgemm", "auto"),
        ("mixgemm", "event"),
        ("mixgemm", "fast"),
    ])
    def test_demo_graph_outputs_and_stats(self, backend, gemm_backend):
        graph = demo_graph()
        x = demo_input()
        engine = InferenceEngine(graph, backend=backend,
                                 gemm_backend=gemm_backend)
        plan = compile_graph(graph, backend=backend,
                             gemm_backend=gemm_backend)
        ref = engine.run(x)
        got = plan.run(x)
        assert np.array_equal(got.output, ref.output)
        assert _stats_tuples(got) == _stats_tuples(ref)
        assert got.total_cycles == ref.total_cycles
        assert got.total_macs == ref.total_macs

    @pytest.mark.parametrize("backend,gemm_backend", [
        ("numpy", "auto"),
        ("mixgemm", "auto"),
    ])
    def test_resnet_dag_with_folds_and_fusion(self, resnet_graph,
                                              resnet_input, backend,
                                              gemm_backend):
        engine = InferenceEngine(resnet_graph, backend=backend,
                                 gemm_backend=gemm_backend)
        plan = compile_graph(resnet_graph, backend=backend,
                             gemm_backend=gemm_backend)
        assert plan.info.folded_batchnorms > 0
        assert plan.info.fused_activations > 0
        ref = engine.run(resnet_input)
        got = plan.run(resnet_input)
        assert np.array_equal(got.output, ref.output)
        assert _stats_tuples(got) == _stats_tuples(ref)
        assert got.total_cycles == ref.total_cycles

    def test_fusion_off_is_still_exact(self, resnet_graph, resnet_input):
        ref = compile_graph(resnet_graph, backend="mixgemm").run(
            resnet_input)
        plain = compile_graph(resnet_graph, backend="mixgemm",
                              fuse=False)
        assert plain.info.folded_batchnorms == 0
        assert plain.info.fused_activations == 0
        got = plain.run(resnet_input)
        assert np.array_equal(got.output, ref.output)
        assert got.total_cycles == ref.total_cycles

    def test_repeated_runs_are_stable(self):
        graph = demo_graph()
        x = demo_input()
        plan = compile_graph(graph, backend="mixgemm")
        first = plan.run(x)
        second = plan.run(x)
        assert np.array_equal(first.output, second.output)
        assert first.total_cycles == second.total_cycles

    def test_batch_size_change_between_runs(self):
        """Lowering scratch re-binds when the input shape changes."""
        graph = demo_graph()
        plan = compile_graph(graph, backend="mixgemm")
        engine = InferenceEngine(graph, backend="mixgemm")
        for batch in (1, 3, 2):
            x = demo_input(batch=batch)
            assert np.array_equal(plan.run(x).output,
                                  engine.run(x).output)

    def test_predict_matches_engine(self):
        graph = demo_graph()
        x = demo_input()
        plan = compile_graph(graph, backend="numpy")
        engine = InferenceEngine(graph, backend="numpy")
        assert np.array_equal(plan.predict(x), engine.predict(x))


class TestLayerStats:
    def test_layer_field_names_the_node(self):
        graph = demo_graph()
        x = demo_input()
        result = InferenceEngine(graph, backend="mixgemm").run(x)
        layers = [s.layer for s in result.layer_stats]
        assert all(layers)
        node_ids = {n.id or f"n{i}" for i, n in enumerate(graph)}
        assert set(layers) <= node_ids

    def test_plan_reports_same_layer_labels(self):
        graph = demo_graph()
        x = demo_input()
        ref = InferenceEngine(graph, backend="mixgemm").run(x)
        got = compile_graph(graph, backend="mixgemm").run(x)
        assert [s.layer for s in got.layer_stats] == \
            [s.layer for s in ref.layer_stats]


class TestEngineIntegration:
    def test_compiled_flag_serves_from_plan(self):
        graph = demo_graph()
        x = demo_input()
        baseline = InferenceEngine(graph, backend="mixgemm").run(x)
        engine = InferenceEngine(graph, backend="mixgemm", compiled=True)
        got = engine.run(x)
        assert engine._plan is not None
        assert np.array_equal(got.output, baseline.output)
        assert got.total_cycles == baseline.total_cycles

    def test_compile_returns_reused_plan(self):
        engine = InferenceEngine(demo_graph(), backend="mixgemm")
        plan = engine.compile()
        x = demo_input()
        got = engine.run(x)
        assert engine._plan is plan
        baseline = InferenceEngine(demo_graph(), backend="mixgemm").run(x)
        assert np.array_equal(got.output, baseline.output)

    def test_plan_shares_engine_pack_cache(self):
        engine = InferenceEngine(demo_graph(), backend="mixgemm",
                                 gemm_backend="event", compiled=True)
        engine.run(demo_input())
        # Prepacked weights + per-call activation packs all land in the
        # engine's own cache.
        assert engine.pack_stats.packs > 0


class TestRobustnessFallback:
    """Guards and fault injection transparently bypass the plan."""

    def test_guards_force_uncompiled_path(self):
        graph = demo_graph()
        x = demo_input()
        engine = InferenceEngine(graph, backend="mixgemm",
                                 guard_level="full", compiled=True)
        baseline = InferenceEngine(graph, backend="mixgemm",
                                   guard_level="full").run(x)
        got = engine.run(x)
        # The plan was never even built: the guarded path ran.
        assert engine._plan is None
        assert got.guard_level == "full"
        assert np.array_equal(got.output, baseline.output)

    def test_fault_plan_forces_uncompiled_path(self):
        graph = demo_graph()
        x = demo_input()
        plan = FaultPlan.generate(seed=3, n_faults=1, sites=("weight",))
        engine = InferenceEngine(graph, backend="mixgemm",
                                 fault_plan=plan, compiled=True)
        got = engine.run(x)
        assert engine._plan is None
        assert engine.injector is not None
        assert engine.injector.injected

    def test_guarded_compiled_detects_faults_like_uncompiled(self):
        """compiled=True must not weaken the PR-1 detection story."""
        graph = demo_graph()
        x = demo_input()
        plan = FaultPlan.generate(seed=5, n_faults=1, sites=("accmem",))
        engine = InferenceEngine(graph, backend="mixgemm",
                                 guard_level="full", fault_plan=plan,
                                 compiled=True)
        result = engine.run(x)
        reference = InferenceEngine(
            graph, backend="mixgemm", guard_level="full",
            fault_plan=FaultPlan.generate(seed=5, n_faults=1,
                                          sites=("accmem",))).run(x)
        assert len(result.fault_events) == len(reference.fault_events)


class TestPlanInfo:
    def test_info_counts(self, resnet_graph):
        plan = compile_graph(resnet_graph, backend="mixgemm",
                             gemm_backend="event")
        info = plan.info
        assert info.steps > 0
        assert info.backend == "mixgemm"
        assert info.gemm_backend == "event"
        assert info.bound_executors > 0
        assert info.prepacked_panels > 0
        assert len(info.fusions) == (info.folded_batchnorms
                                     + info.fused_activations)
        payload = info.as_dict()
        assert payload["steps"] == info.steps

    def test_describe_reports_fusions(self, resnet_graph):
        plan = compile_graph(resnet_graph, backend="numpy")
        payload = plan.describe()
        assert payload["folded_batchnorms"] == 6
        assert payload["fused_activations"] == 5

    def test_prepacked_weights_skip_first_run_packs(self):
        graph = demo_graph()
        plan = compile_graph(graph, backend="mixgemm",
                             gemm_backend="event")
        weight_packs = plan.pack_stats.packs
        assert plan.info.prepacked_panels == weight_packs
        plan.run(demo_input())
        # Running adds activation packs only; every weight panel was
        # already warm, so re-running adds the same activation count.
        after_first = plan.pack_stats.packs
        plan.run(demo_input())
        assert plan.pack_stats.packs == after_first


class TestValidation:
    def test_unknown_backend(self):
        with pytest.raises(GraphError):
            compile_graph(demo_graph(), backend="tpu")

    def test_unknown_gemm_backend(self):
        with pytest.raises(GraphError):
            compile_graph(demo_graph(), gemm_backend="warp")

    def test_unknown_op_rejected_at_compile_time(self):
        from repro.runtime.graph import GraphBuilder, NodeSpec

        b = GraphBuilder("bad")
        b.add(NodeSpec(op="teleport"), inputs=["input"])
        with pytest.raises(GraphError):
            compile_graph(b.build())

    def test_unknown_input_reference(self):
        from repro.runtime.graph import GraphBuilder, NodeSpec

        b = GraphBuilder("dangling")
        b.add(NodeSpec(op="relu"), inputs=["ghost"])
        graph = b.build()
        plan = compile_graph(graph)
        with pytest.raises(GraphError):
            plan.run(np.zeros((1, 2)))
