"""AsyncInferenceClient: event-loop bridging, backpressure, cancellation."""

import asyncio
import threading

import numpy as np
import pytest

from repro.robustness.errors import OverloadError
from repro.robustness.faults import demo_graph
from repro.runtime.async_client import AsyncInferenceClient
from repro.runtime.serving import BatchedServer, ServedResponse


@pytest.fixture(scope="module")
def graph():
    return demo_graph()


def _inputs(n, size=6, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((1, size, size)) for _ in range(n)]


class TestSubmit:
    def test_single_submit_resolves_response(self, graph):
        async def main():
            with BatchedServer(graph, workers=1) as server:
                client = AsyncInferenceClient(server)
                return await client.submit(_inputs(1)[0])

        response = asyncio.run(main())
        assert isinstance(response, ServedResponse)
        assert response.output.shape == (3,)
        assert response.latency_ms > 0

    def test_results_match_sync_path(self, graph):
        inputs = _inputs(6, seed=1)

        async def main(server):
            client = AsyncInferenceClient(server)
            return await client.map(inputs)

        with BatchedServer(graph, workers=2, max_batch=4) as server:
            async_results = asyncio.run(main(server))
            sync_report = server.run_requests(inputs)
        for got, expected in zip(async_results, sync_report.outputs):
            assert np.array_equal(got.output, expected)

    def test_invalid_max_in_flight(self, graph):
        with BatchedServer(graph, workers=1) as server:
            with pytest.raises(ValueError):
                AsyncInferenceClient(server, max_in_flight=0)


class TestBackpressure:
    def test_semaphore_bounds_in_flight(self, graph):
        """With max_in_flight=2 every request still completes; the
        semaphore serializes admission so a queue larger than the
        client window is never needed."""
        inputs = _inputs(12, seed=2)

        async def main():
            with BatchedServer(graph, workers=1, max_batch=2,
                               queue_capacity=2,
                               admission="reject") as server:
                client = AsyncInferenceClient(server, max_in_flight=2)
                return await client.map(inputs)

        results = asyncio.run(main())
        assert len(results) == 12
        assert all(isinstance(r, ServedResponse) for r in results)

    def test_overload_error_propagates(self, graph):
        async def main(tolerate):
            with BatchedServer(graph, workers=1, max_batch=1,
                               max_wait_ms=0.0, queue_capacity=1,
                               admission="reject") as server:
                client = AsyncInferenceClient(server, max_in_flight=64)
                return await client.map(_inputs(30, seed=3),
                                        tolerate_overload=tolerate)

        results = asyncio.run(main(True))
        errors = [r for r in results if isinstance(r, OverloadError)]
        served = [r for r in results if isinstance(r, ServedResponse)]
        assert errors and served
        assert all(e.reason == "queue-full" for e in errors)
        with pytest.raises(OverloadError):
            asyncio.run(main(False))


class TestCancellation:
    def test_cancelled_task_sheds_server_side(self, graph):
        """Cancelling the awaiting coroutine cancels the underlying
        server future, and the worker skips it without executing."""
        release = threading.Event()

        async def main(server):
            client = AsyncInferenceClient(server)
            blocker = asyncio.ensure_future(
                client.submit(_inputs(1)[0]))
            await asyncio.sleep(0.05)  # blocker reaches the worker
            victim = asyncio.ensure_future(
                client.submit(_inputs(1, seed=4)[0]))
            await asyncio.sleep(0.05)  # victim queued behind blocker
            victim.cancel()
            with pytest.raises(asyncio.CancelledError):
                await victim
            release.set()
            return await blocker

        server = BatchedServer(graph, workers=1, max_batch=1,
                               max_wait_ms=0.0)
        hook_batches = []

        def hook(route, live):
            hook_batches.append(len(live))
            release.wait(10)

        server._batch_hook = hook
        try:
            response = asyncio.run(main(server))
        finally:
            release.set()
            server.close()
        assert response.output.shape == (3,)
        snap = server.overload_snapshot()
        assert snap["counters"].get("cancelled", 0) >= 1
        # Only the blocker's batch ever reached a worker with live
        # members: the cancelled request never spent a GEMM slot.
        assert hook_batches == [1]
