"""Zero-copy shared-memory plan export/attach: exactness + lifecycle."""

import dataclasses
import multiprocessing as mp

import numpy as np
import pytest

from repro.analysis.ranges import verify_plan
from repro.core.packcache import PackingCache
from repro.robustness.faults import demo_graph, demo_input
from repro.runtime.graph import GraphModel
from repro.runtime.plan import (
    PlanShareError,
    attach_plan,
    compile_graph,
    export_plan,
    iter_plan_arrays,
    plan_share_stats,
)


@pytest.fixture(scope="module")
def graph():
    return demo_graph()


def _compile(graph, **kwargs):
    kwargs.setdefault("backend", "mixgemm")
    return compile_graph(graph, **kwargs)


def _run_stats(result):
    return [(s.op, s.config, s.macs, s.cycles, s.layer)
            for s in result.layer_stats]


def _attach_child(conn, handle, x):
    """Spawn-process entry: attach the shared plan and run one input."""
    try:
        with attach_plan(handle) as attached:
            stats = plan_share_stats(attached.plan, attached.buf)
            result = attached.plan.run(x)
            conn.send(("ok", result.output, result.total_cycles,
                       _run_stats(result), stats))
    except Exception as exc:  # pragma: no cover - failure reporting
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


class TestRoundTrip:
    @pytest.mark.parametrize("gemm_backend", ["fast", "event"])
    def test_attach_is_bit_and_cycle_exact(self, graph, gemm_backend):
        x = demo_input(batch=2, size=6, seed=3)
        reference = _compile(graph, gemm_backend=gemm_backend)
        want = reference.run(x)
        plan = _compile(graph, gemm_backend=gemm_backend)
        with export_plan(plan) as shared:
            with attach_plan(shared.handle) as attached:
                got = attached.plan.run(x)
                assert np.array_equal(got.output, want.output)
                assert got.total_cycles == want.total_cycles
                assert _run_stats(got) == _run_stats(want)

    def test_accmem_wrap_config_round_trips(self, graph):
        """A wrapping accumulator config survives the shm round-trip."""
        x = demo_input(batch=2, size=6, seed=5)
        want = _compile(graph, accmem_bits=12).run(x)
        plan = _compile(graph, accmem_bits=12)
        with export_plan(plan) as shared:
            assert shared.handle.accmem_bits == 12
            with attach_plan(shared.handle) as attached:
                got = attached.plan.run(x)
                assert np.array_equal(got.output, want.output)
                assert got.total_cycles == want.total_cycles

    def test_fresh_process_round_trip(self, graph):
        """Export here, attach in a spawned process: identical result."""
        x = demo_input(batch=1, size=6, seed=7)
        plan = _compile(graph)
        want = plan.run(x)  # exporter serves from the segment too
        with export_plan(plan) as shared:
            ctx = mp.get_context("spawn")
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_attach_child,
                               args=(child, shared.handle, x))
            proc.start()
            child.close()
            try:
                assert parent.poll(60.0), "child never reported"
                msg = parent.recv()
            finally:
                parent.close()
                proc.join(timeout=10.0)
        assert msg[0] == "ok", msg
        _, output, cycles, stats, share = msg
        assert np.array_equal(output, want.output)
        assert cycles == want.total_cycles
        assert stats == _run_stats(want)
        # the child held zero private plan bytes: one copy, N views
        assert share["plan_bytes_private"] == 0
        assert share["plan_bytes_shared"] == share["plan_bytes_total"]


class TestZeroCopyDiscipline:
    def test_exporter_rebinds_onto_segment(self, graph):
        plan = _compile(graph)
        with export_plan(plan) as shared:
            stats = plan_share_stats(plan, shared.buf)
            assert stats["plan_bytes_private"] == 0
            assert stats["plan_bytes_shared"] == stats["plan_bytes_total"]
            assert stats["plan_bytes_total"] > 0

    def test_views_are_read_only(self, graph):
        plan = _compile(graph)
        with export_plan(plan) as shared:
            with attach_plan(shared.handle) as attached:
                for _, arr, _ in iter_plan_arrays(attached.plan):
                    with pytest.raises(ValueError):
                        arr[(0,) * arr.ndim] = 1

    def test_manifest_digests_are_content_fingerprints(self, graph):
        plan = _compile(graph)
        with export_plan(plan) as shared:
            by_key = {key: arr for key, arr, _ in iter_plan_arrays(plan)}
            for spec in shared.handle.arrays:
                assert spec.digest == \
                    PackingCache.fingerprint(by_key[spec.key])


class TestRejection:
    def test_released_source_refuses_export(self, graph):
        plan = _compile(graph)
        plan.release_source()
        with pytest.raises(PlanShareError, match="released"):
            export_plan(plan)

    def test_unlinked_segment_refuses_attach(self, graph):
        plan = _compile(graph)
        shared = export_plan(plan)
        handle = shared.handle
        shared.close()
        shared.unlink()
        with pytest.raises(PlanShareError, match="does not exist"):
            attach_plan(handle)

    def test_tampered_segment_refuses_attach(self, graph):
        """A flipped payload byte fails the manifest fingerprint."""
        plan = _compile(graph)
        with export_plan(plan) as shared:
            spec = max(shared.handle.arrays,
                       key=lambda s: np.dtype(s.dtype).itemsize)
            shared.buf[spec.offset] ^= 0xFF
            with pytest.raises(PlanShareError, match="tampered"):
                attach_plan(shared.handle)

    def test_graph_skew_refuses_attach(self, graph):
        """A handle whose graph differs from the segment's is rejected."""
        plan = _compile(graph)
        with export_plan(plan) as shared:
            skewed = GraphModel.from_json(shared.handle.graph_json)
            node = next(n for n in skewed.nodes if "weight" in n.tensors)
            node.tensors["weight"] = node.tensors["weight"] + 0.5
            handle = dataclasses.replace(
                shared.handle, graph_json=skewed.to_json())
            with pytest.raises(PlanShareError, match="fingerprint"):
                attach_plan(handle)

    def test_tamper_after_attach_caught_by_verify_plan(self, graph):
        """Post-attach corruption trips the plan-equivalence verifier.

        attach_plan's fingerprints gate the *attach*; anything that
        scribbles on the segment afterwards (the views are read-only,
        but the owner's buffer is writable) diverges the baked integer
        panels from the source quantization, which is exactly what
        ``repro check --verify-plan`` (RANGE-EQUIV) proves against.
        """
        plan = _compile(graph)
        with export_plan(plan) as shared:
            with attach_plan(shared.handle) as attached:
                assert verify_plan(attached.plan) == []
                spec = next(s for s in shared.handle.arrays
                            if ".block" in s.key or s.key.endswith(".b"))
                # flip the first element's exponent byte: the baked
                # panel value changes by orders of magnitude, so the
                # int64 cast inside the verifier cannot mask it
                hi = spec.offset + np.dtype(spec.dtype).itemsize - 1
                shared.buf[hi] ^= 0x40
                diags = verify_plan(attached.plan)
                assert diags, "tamper went undetected"
                assert all(d.rule == "RANGE-EQUIV" for d in diags)


class TestLifecycle:
    def test_close_and_unlink_idempotent(self, graph):
        shared = export_plan(_compile(graph))
        shared.close()
        shared.close()
        shared.unlink()
        shared.unlink()

    def test_attached_close_does_not_unlink(self, graph):
        plan = _compile(graph)
        with export_plan(plan) as shared:
            attached = attach_plan(shared.handle)
            attached.close()
            attached.close()
            # the segment must still be attachable: owner unlinks
            attach_plan(shared.handle).close()
