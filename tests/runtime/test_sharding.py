"""Process-sharded serving: exactness, zero-copy, crash recovery."""

import os
import signal
import time
import warnings

import numpy as np
import pytest

from repro.robustness.errors import ReliabilityWarning
from repro.robustness.faults import demo_graph
from repro.robustness.recovery import BreakerPolicy
from repro.runtime.engine import InferenceEngine
from repro.runtime.serving import BatchedServer, ServingError, serve
from repro.runtime.sharding import ShardedServer, ShardingUnavailable


@pytest.fixture(scope="module")
def graph():
    return demo_graph()


def _inputs(n, size=6, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((1, size, size)) for _ in range(n)]


def _shm_entries():
    try:
        return set(os.listdir("/dev/shm"))
    except OSError:  # pragma: no cover - non-POSIX-shm platform
        return set()


class TestCorrectness:
    def test_outputs_bit_exact_vs_direct_inference(self, graph):
        inputs = _inputs(16, seed=1)
        engine = InferenceEngine(graph, backend="mixgemm")
        with ShardedServer(graph, workers=2, max_batch=4,
                           backend="mixgemm") as server:
            report = server.run_requests(inputs)
        for x, out in zip(inputs, report.outputs):
            assert np.array_equal(out, engine.run(x[None]).output[0])

    def test_matches_threaded_server(self, graph):
        inputs = _inputs(12, seed=2)
        with BatchedServer(graph, workers=2, backend="mixgemm") as server:
            threaded = server.run_requests(inputs)
        with ShardedServer(graph, workers=2, backend="mixgemm") as server:
            sharded = server.run_requests(inputs)
        for a, b in zip(threaded.outputs, sharded.outputs):
            assert np.array_equal(a, b)


class TestZeroCopy:
    def test_one_segment_no_private_plan_bytes(self, graph):
        with ShardedServer(graph, workers=2, backend="mixgemm") as server:
            report = server.plan_memory_report()
        assert report["segment_bytes"] > 0
        assert len(report["workers"]) == 2
        for row in report["workers"]:
            assert row["plan_bytes_private"] == 0
            assert row["plan_bytes_shared"] == row["plan_bytes_total"]
            assert row["rss_bytes"] > 0

    def test_distinct_worker_processes(self, graph):
        with ShardedServer(graph, workers=2, backend="mixgemm") as server:
            pids = server.worker_pids()
        assert len(set(pids)) == 2
        assert os.getpid() not in pids


class TestLifecycle:
    def test_no_leaked_segments_after_close(self, graph):
        before = _shm_entries()
        with ShardedServer(graph, workers=2, backend="mixgemm") as server:
            server.run_requests(_inputs(8, seed=3))
        assert _shm_entries() == before

    def test_close_idempotent(self, graph):
        server = ShardedServer(graph, workers=1, backend="mixgemm")
        server.run_requests(_inputs(4, seed=4))
        server.close()
        server.close()

    def test_guarded_configs_refused(self, graph):
        with pytest.raises(ServingError, match="threaded"):
            ShardedServer(graph, guard_level="full")
        with pytest.raises(ServingError, match="compiled"):
            ShardedServer(graph, compiled=False)


class TestCrashRecovery:
    def test_kill9_recovers_with_zero_lost_futures(self, graph):
        inputs = _inputs(32, seed=5)
        engine = InferenceEngine(graph, backend="mixgemm")
        with ShardedServer(
                graph, workers=2, max_batch=4, backend="mixgemm",
                breaker=BreakerPolicy(failure_threshold=3)) as server:
            victim = server.worker_pids()[0]
            futures = []
            for i, x in enumerate(inputs):
                futures.append(server.submit(x))
                if i == 7:
                    os.kill(victim, signal.SIGKILL)
                time.sleep(0.002)  # keep batches flowing past the kill
            responses = [f.result(timeout=60.0) for f in futures]
            pids = server.worker_pids()
        assert len(responses) == len(inputs)  # zero lost futures
        notes = [w for r in responses for w in r.warnings]
        assert any("respawned" in n for n in notes)
        assert victim not in pids  # the dead worker was replaced
        for x, r in zip(inputs, responses):
            assert np.array_equal(r.output,
                                  engine.run(x[None]).output[0])

    def test_kill9_leaves_no_segments_behind(self, graph):
        before = _shm_entries()
        with ShardedServer(graph, workers=1, backend="mixgemm",
                           breaker=BreakerPolicy(failure_threshold=3)
                           ) as server:
            os.kill(server.worker_pids()[0], signal.SIGKILL)
            report = server.run_requests(_inputs(6, seed=6))
        assert len(report.outputs) == 6
        assert _shm_entries() == before


class TestServeFactory:
    def test_processes_true_builds_sharded_server(self, graph):
        with serve(graph, processes=True, workers=1,
                   backend="mixgemm") as server:
            assert isinstance(server, ShardedServer)

    def test_processes_false_builds_threaded_server(self, graph):
        with serve(graph, workers=1) as server:
            assert type(server) is BatchedServer

    def test_fallback_when_shared_memory_unavailable(
            self, graph, monkeypatch):
        """shm failure degrades to threads with a ReliabilityWarning."""
        from repro.runtime import plan as plan_mod

        def _refuse(*args, **kwargs):
            raise OSError("shared memory disabled in this sandbox")

        monkeypatch.setattr(plan_mod.shared_memory, "SharedMemory",
                            _refuse)
        with pytest.warns(ReliabilityWarning, match="threaded"):
            server = serve(graph, processes=True, workers=2,
                           backend="mixgemm")
        try:
            assert type(server) is BatchedServer
            report = server.run_requests(_inputs(6, seed=7))
            assert len(report.outputs) == 6
        finally:
            server.close()

    def test_misuse_is_not_downgraded(self, graph):
        """ServingError (caller bug) must propagate, never fall back."""
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(ServingError):
                serve(graph, processes=True, compiled=False)

    def test_sharding_unavailable_direct_construction(
            self, graph, monkeypatch):
        """Without the factory, the environment failure is typed."""
        from repro.runtime import plan as plan_mod

        def _refuse(*args, **kwargs):
            raise OSError("no shm")

        monkeypatch.setattr(plan_mod.shared_memory, "SharedMemory",
                            _refuse)
        with pytest.raises(ShardingUnavailable):
            ShardedServer(graph, workers=1, backend="mixgemm")


class TestAnalyzerCoverage:
    def test_concurrency_analyzer_clean_over_sharding(self):
        from repro.analysis.concurrency import (
            annotated_targets,
            check_concurrency,
        )
        import repro.runtime.sharding as sharding

        targets = annotated_targets()
        assert sharding.__file__ in targets
        report = check_concurrency([sharding.__file__])
        assert report.errors == []
