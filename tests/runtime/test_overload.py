"""Overload resilience: admission control, deadlines, shedding, breaker.

The integration classes drive a real :class:`BatchedServer`; the unit
classes pin down :class:`AdmissionQueue` and :class:`CircuitBreaker`
with fake clocks and direct queue manipulation.  The shutdown-under-load
class runs under the ``lock_sanitizer`` fixture and cross-checks the
dynamic trace against the static lockset analysis.
"""

import threading
import time

import numpy as np
import pytest

from repro.robustness.errors import OverloadError
from repro.robustness.faults import FaultPlan, demo_graph, demo_input
from repro.robustness.recovery import BreakerPolicy
from repro.runtime.overload import (
    ADMISSION_POLICIES,
    AdmissionQueue,
    CircuitBreaker,
)
from repro.runtime.serving import BatchedServer, ServingError


@pytest.fixture(scope="module")
def graph():
    return demo_graph()


def _inputs(n, size=6, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((1, size, size)) for _ in range(n)]


# -- AdmissionQueue unit tests ------------------------------------------------


class TestAdmissionQueue:
    def test_reject_policy_raises_when_full(self):
        q = AdmissionQueue(2, policy="reject")
        q.put("a")
        q.put("b")
        with pytest.raises(OverloadError) as ei:
            q.put("c")
        assert ei.value.reason == "queue-full"
        assert ei.value.queue_depth == 2

    def test_block_policy_times_out(self):
        q = AdmissionQueue(1, policy="block", timeout_s=0.02)
        q.put("a")
        t0 = time.perf_counter()
        with pytest.raises(OverloadError) as ei:
            q.put("b")
        assert ei.value.reason == "admission-timeout"
        assert time.perf_counter() - t0 >= 0.02

    def test_block_policy_admits_when_slot_frees(self):
        q = AdmissionQueue(1, policy="block", timeout_s=5.0)
        q.put("a")
        threading.Timer(0.01, q.get).start()
        q.put("b")  # must not raise: the timer freed a slot
        assert q.get() == "b"

    def test_shed_oldest_evicts_head(self):
        shed = []
        q = AdmissionQueue(2, policy="shed-oldest", on_shed=shed.append)
        q.put("a")
        q.put("b")
        q.put("c")
        assert shed == ["a"]
        assert [q.get(), q.get()] == ["b", "c"]

    def test_shed_oldest_never_evicts_the_sentinel(self):
        stop = object()
        q = AdmissionQueue(1, policy="shed-oldest", sentinel=stop)
        q.put_sentinel(stop)
        with pytest.raises(OverloadError) as ei:
            q.put("late")
        assert ei.value.reason == "closed"
        assert q.get() is stop  # the sentinel survived the eviction

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)
        with pytest.raises(ValueError):
            AdmissionQueue(1, policy="drop-newest")
        with pytest.raises(ValueError):
            AdmissionQueue(1, timeout_s=-1.0)

    def test_policy_roster(self):
        assert ADMISSION_POLICIES == ("block", "reject", "shed-oldest")


# -- CircuitBreaker unit tests ------------------------------------------------


class TestCircuitBreaker:
    def _breaker(self, **kw):
        clock = {"t": 0.0}
        policy = BreakerPolicy(**{"failure_threshold": 2,
                                  "cooldown_s": 1.0, "backoff": 2.0,
                                  "max_cooldown_s": 3.0, **kw})
        return CircuitBreaker(policy, clock=lambda: clock["t"]), clock

    def test_starts_closed_and_routes_primary(self):
        br, _ = self._breaker()
        assert br.state() == "closed"
        assert br.route() == "primary"

    def test_trips_after_consecutive_failures(self):
        br, _ = self._breaker()
        br.record(True)
        assert br.state() == "closed"
        br.record(True)
        assert br.state() == "open"
        assert br.route() == "reference"
        assert br.trips == 1

    def test_success_resets_the_failure_streak(self):
        br, _ = self._breaker()
        br.record(True)
        br.record(False)
        br.record(True)
        assert br.state() == "closed"

    def test_half_open_allows_exactly_one_probe(self):
        br, clock = self._breaker()
        br.record(True)
        br.record(True)
        clock["t"] = 1.0
        assert br.route() == "probe"
        assert br.route() == "reference"  # probe slot already taken

    def test_clean_probe_closes_and_resets_cooldown(self):
        br, clock = self._breaker()
        br.record(True)
        br.record(True)
        clock["t"] = 1.0
        assert br.route() == "probe"
        br.record(False, probe=True)
        assert br.state() == "closed"
        assert br.route() == "primary"
        assert br.snapshot()["cooldown_s"] == 1.0

    def test_faulty_probe_reopens_with_backoff(self):
        br, clock = self._breaker()
        br.record(True)
        br.record(True)            # trip 1: cooldown 1.0
        clock["t"] = 1.0
        assert br.route() == "probe"
        br.record(True, probe=True)   # trip 2: cooldown 2.0
        assert br.state() == "open"
        assert br.trips == 2
        assert br.snapshot()["cooldown_s"] == 2.0
        clock["t"] = 2.5
        assert br.route() == "reference"   # still cooling down
        clock["t"] = 3.0
        assert br.route() == "probe"
        br.record(True, probe=True)   # trip 3: cooldown capped at 3.0
        assert br.snapshot()["cooldown_s"] == 3.0

    def test_cancel_probe_releases_the_slot(self):
        br, clock = self._breaker()
        br.record(True)
        br.record(True)
        clock["t"] = 1.0
        assert br.route() == "probe"
        br.cancel_probe()
        assert br.route() == "probe"  # slot available again

    def test_state_advances_open_to_half_open(self):
        br, clock = self._breaker()
        br.record(True)
        br.record(True)
        assert br.state() == "open"
        clock["t"] = 1.0
        assert br.state() == "half-open"

    def test_breaker_policy_validation(self):
        with pytest.raises(ValueError):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError):
            BreakerPolicy(cooldown_s=0.0)
        with pytest.raises(ValueError):
            BreakerPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            BreakerPolicy(cooldown_s=2.0, max_cooldown_s=1.0)


# -- server-level admission policies ------------------------------------------


class TestServerAdmission:
    def test_reject_policy_raises_structured_error(self, graph):
        # max_wait holds the first batch open so the queue backs up.
        with BatchedServer(graph, workers=1, max_batch=1,
                           max_wait_ms=0.0, queue_capacity=2,
                           admission="reject") as server:
            futures, errors = [], []
            for x in _inputs(40):
                try:
                    futures.append(server.submit(x))
                except OverloadError as exc:
                    errors.append(exc)
            for f in futures:
                f.result(timeout=30)
            assert errors, "40 bursts into a capacity-2 queue must reject"
            assert all(e.reason == "queue-full" for e in errors)

    def test_block_policy_times_out_under_pressure(self, graph):
        release = threading.Event()
        server = BatchedServer(graph, workers=1, max_batch=1,
                               max_wait_ms=0.0, queue_capacity=1,
                               admission="block",
                               admission_timeout_ms=20.0)
        server._batch_hook = lambda route, live: release.wait(10)
        try:
            futures = [server.submit(x) for x in _inputs(2)]
            # Worker is stalled, batcher holds a second batch waiting
            # for a runner, the queue slot is occupied: the next
            # submit must time out at admission.
            with pytest.raises(OverloadError) as ei:
                while True:
                    futures.append(server.submit(_inputs(1)[0]))
            assert ei.value.reason == "admission-timeout"
        finally:
            release.set()
            server.close()
        for f in futures:
            f.result(timeout=30)

    def test_shed_oldest_resolves_evicted_futures(self, graph):
        release = threading.Event()
        claimed = threading.Event()
        server = BatchedServer(graph, workers=1, max_batch=1,
                               max_wait_ms=0.0, queue_capacity=1,
                               admission="shed-oldest")

        def hook(route, live):
            claimed.set()
            release.wait(10)

        server._batch_hook = hook
        try:
            first = server.submit(_inputs(1)[0])   # stalls the worker
            assert claimed.wait(10)  # `first` is out of eviction reach
            victims = [server.submit(x) for x in _inputs(3, seed=1)]
        finally:
            release.set()
            server.close()
        first.result(timeout=30)
        shed = 0
        for f in victims:
            try:
                f.result(timeout=30)
            except OverloadError as exc:
                assert exc.reason == "shed"
                shed += 1
        assert shed >= 1


# -- per-request deadlines ----------------------------------------------------


class TestDeadlines:
    def test_expired_requests_are_shed_not_executed(self, graph):
        release = threading.Event()
        server = BatchedServer(graph, workers=1, max_batch=1,
                               max_wait_ms=0.0)
        hook_calls = []

        def hook(route, live):
            hook_calls.append(len(live))
            release.wait(10)

        server._batch_hook = hook
        try:
            blocker = server.submit(_inputs(1)[0])
            doomed = [server.submit(x, deadline_ms=20.0)
                      for x in _inputs(3, seed=2)]
            time.sleep(0.05)  # let every deadline lapse
        finally:
            release.set()
            server.close()
        blocker.result(timeout=30)
        for f in doomed:
            with pytest.raises(OverloadError) as ei:
                f.result(timeout=30)
            assert ei.value.reason == "deadline"
            assert ei.value.deadline_ms == 20.0
        # The stalled blocker batch is the only one that reached a
        # worker with live members: expired requests never spent a
        # GEMM slot.
        assert hook_calls.count(1) == 1

    def test_generous_deadline_is_met(self, graph):
        with BatchedServer(graph, workers=2, max_batch=4) as server:
            report = server.run_requests(_inputs(8),
                                         deadline_ms=30_000.0)
        assert report.stats.served == 8
        assert report.stats.shed_deadline == 0

    def test_invalid_deadline_rejected(self, graph):
        with BatchedServer(graph, workers=1) as server:
            with pytest.raises(ServingError):
                server.submit(_inputs(1)[0], deadline_ms=0.0)
            with pytest.raises(ServingError):
                server.submit(_inputs(1)[0], deadline_ms=-5.0)


# -- the 10x-capacity integration test ----------------------------------------


class TestOverloadIntegration:
    def test_ten_x_capacity_degrades_gracefully(self, graph):
        """Acceptance: at ~10x capacity with `reject`, every request
        resolves, admitted p99 stays within 2x the deadline, queue
        depth respects the bound, and no future is left unresolved."""
        capacity = 8
        deadline_ms = 500.0
        with BatchedServer(graph, workers=2, max_batch=4,
                           max_wait_ms=1.0, queue_capacity=capacity,
                           admission="reject") as server:
            report = server.run_requests(
                _inputs(160, seed=3), deadline_ms=deadline_ms,
                tolerate_overload=True)
        s = report.stats
        # Every request resolved to exactly one of response | error.
        assert len(report.responses) == len(report.errors) == 160
        for response, error in zip(report.responses, report.errors):
            assert (response is None) != (error is None)
            if error is not None:
                assert isinstance(error, OverloadError)
        assert s.served >= 1
        assert s.shed_total > 0, "10x capacity must shed"
        assert s.max_queue_depth <= capacity
        assert s.latency_p99_ms <= 2 * deadline_ms
        assert s.served + s.shed_total == 160


# -- circuit breaker through the server ---------------------------------------


class TestServingBreaker:
    @pytest.mark.filterwarnings("ignore::UserWarning")
    def test_faults_trip_degrade_and_reclose(self, graph):
        """Acceptance: faultsim-injected faults trip the breaker,
        responses carry degraded metadata, and clean half-open probes
        re-close the circuit."""
        x = demo_input()[0]
        plan = FaultPlan.generate(seed=1, n_faults=6,
                                  sites=("accmem", "uvector_a"))
        with BatchedServer(graph, workers=1, max_batch=1,
                           guard_level="full", fault_plan=plan,
                           backend="mixgemm",
                           breaker=BreakerPolicy(failure_threshold=1,
                                                 cooldown_s=0.05),
                           ) as server:
            faulty = server.submit(x).result(timeout=30)
            # The faulty batch recovered via fallback and carried its
            # reliability metadata on the response.
            assert faulty.fault_detections > 0
            assert faulty.recovered_layers
            assert any("fell back" in w for w in faulty.warnings)
            assert faulty.breaker_state == "open"

            degraded = server.submit(x).result(timeout=30)
            assert degraded.degraded
            assert degraded.breaker_state == "open"
            assert any("circuit breaker open" in w
                       for w in degraded.warnings)

            time.sleep(0.08)  # past the cooldown: next batch probes
            probed = server.submit(x).result(timeout=30)
            assert not probed.degraded
            assert probed.breaker_state == "closed"

            snap = server.overload_snapshot()
            assert snap["breaker"]["state"] == "closed"
            assert snap["breaker"]["trips"] == 1
            assert snap["counters"]["degraded_responses"] == 1

    def test_breaker_disabled_by_default(self, graph):
        with BatchedServer(graph, workers=1) as server:
            response = server.submit(_inputs(1)[0]).result(timeout=30)
            assert response.breaker_state == "disabled"
            assert server.overload_snapshot()["breaker"] is None


# -- shutdown under load (lock_sanitizer) -------------------------------------


class TestShutdownUnderLoad:
    def _crosscheck_clean(self, active):
        from repro.analysis.concurrency import (
            analyze_concurrency,
            annotated_targets,
            crosscheck,
        )
        result = crosscheck(active.trace,
                            analyze_concurrency(annotated_targets()))
        assert result.ok, result.render()

    def test_submit_after_close_raises(self, graph, lock_sanitizer):
        server = BatchedServer(graph, workers=1)
        server.close()
        with pytest.raises(ServingError):
            server.submit(_inputs(1)[0])
        self._crosscheck_clean(lock_sanitizer)

    def test_close_with_queued_requests_drains(self, graph,
                                               lock_sanitizer):
        """close() under load is a graceful drain: everything admitted
        before the sentinel still resolves (result, not exception)."""
        release = threading.Event()
        server = BatchedServer(graph, workers=1, max_batch=2,
                               max_wait_ms=0.0)
        server._batch_hook = lambda route, live: release.wait(10)
        futures = [server.submit(x) for x in _inputs(6, seed=4)]
        closer = threading.Thread(target=server.close)
        closer.start()
        release.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        for f in futures:
            assert f.result(timeout=30).output.shape == (3,)
        self._crosscheck_clean(lock_sanitizer)

    def test_deadline_expiry_during_drain(self, graph, lock_sanitizer):
        """Requests whose deadline lapses while close() drains are shed
        with reason 'deadline', not served late and not lost."""
        release = threading.Event()
        server = BatchedServer(graph, workers=1, max_batch=1,
                               max_wait_ms=0.0)
        server._batch_hook = lambda route, live: release.wait(10)
        blocker = server.submit(_inputs(1)[0])
        doomed = [server.submit(x, deadline_ms=25.0)
                  for x in _inputs(3, seed=5)]
        closer = threading.Thread(target=server.close)
        closer.start()
        time.sleep(0.06)  # deadlines lapse while the drain is blocked
        release.set()
        closer.join(timeout=30)
        assert not closer.is_alive()
        assert blocker.result(timeout=30).output.shape == (3,)
        for f in doomed:
            with pytest.raises(OverloadError) as ei:
                f.result(timeout=30)
            assert ei.value.reason == "deadline"
        self._crosscheck_clean(lock_sanitizer)

    def test_submit_racing_close_resolves_future(self, graph,
                                                 lock_sanitizer):
        """A submit that lands behind the shutdown sentinel must still
        resolve (reason 'closed') -- zero lost futures."""
        server = BatchedServer(graph, workers=1)
        original_put = server._admission.put
        in_put = threading.Event()
        close_done = threading.Event()

        def racing_put(item):
            in_put.set()
            assert close_done.wait(10)
            original_put(item)

        server._admission.put = racing_put
        holder = {}

        def do_submit():
            holder["future"] = server.submit(_inputs(1)[0])

        submitter = threading.Thread(target=do_submit)
        submitter.start()
        assert in_put.wait(10)
        server.close()
        close_done.set()
        submitter.join(timeout=30)
        assert not submitter.is_alive()
        with pytest.raises(OverloadError) as ei:
            holder["future"].result(timeout=30)
        assert ei.value.reason == "closed"
        self._crosscheck_clean(lock_sanitizer)


# -- observability ------------------------------------------------------------


class TestObservability:
    def test_stats_carry_overload_counters(self, graph):
        with BatchedServer(graph, workers=1, max_batch=1,
                           max_wait_ms=0.0, queue_capacity=2,
                           admission="reject") as server:
            report = server.run_requests(_inputs(30, seed=6),
                                         tolerate_overload=True)
        payload = report.stats.as_dict()
        for key in ("served", "shed_deadline", "shed_capacity",
                    "shed_closed", "rejected", "admit_timeouts",
                    "cancelled", "shed_total", "shed_rate",
                    "degraded_responses", "breaker_state",
                    "breaker_trips", "queue_capacity", "admission"):
            assert key in payload
        assert payload["admission"] == "reject"
        assert payload["queue_capacity"] == 2
        assert payload["rejected"] > 0
        assert payload["shed_rate"] > 0
        assert payload["served"] + payload["shed_total"] == 30

    def test_overload_snapshot_shape(self, graph):
        with BatchedServer(graph, workers=1, queue_capacity=5) as server:
            snap = server.overload_snapshot()
        assert snap["queue_capacity"] == 5
        assert snap["admission"] == "block"
        assert snap["queue_depth"] >= 0
        assert isinstance(snap["counters"], dict)
