"""Deserialization hardening and node-id collision detection.

A shipped model file is attacker-adjacent input: every malformed payload
must fail with a :class:`GraphError` naming the problem, never a numpy
broadcast error three layers deep or -- worse -- a silently wrong graph.
"""

import json

import numpy as np
import pytest

from repro.runtime.engine import InferenceEngine
from repro.runtime.graph import GraphError, GraphModel, NodeSpec


def tensor_payload(shape, data):
    return {"shape": shape, "data": data}


def node_payload(op="linear", **kwargs):
    payload = {"op": op}
    payload.update(kwargs)
    return payload


def model_text(nodes):
    return json.dumps({"format_version": 1, "name": "m", "nodes": nodes})


class TestTensorValidation:
    def test_roundtrip_of_a_valid_node(self):
        node = NodeSpec(op="linear",
                        tensors={"weight": np.arange(6.0).reshape(2, 3)})
        loaded = NodeSpec.from_json(node.to_json())
        assert np.array_equal(loaded.tensors["weight"],
                              node.tensors["weight"])

    def test_element_count_must_match_shape(self):
        payload = node_payload(tensors={
            "weight": tensor_payload([2, 2], [1.0, 2.0, 3.0])})
        with pytest.raises(GraphError, match="3 elements"):
            NodeSpec.from_json(payload)

    @pytest.mark.parametrize("shape", [[2, -1], [2, "x"], "2x2", 4])
    def test_malformed_shape_rejected(self, shape):
        payload = node_payload(tensors={
            "weight": {"shape": shape, "data": [1.0] * 4}})
        with pytest.raises(GraphError, match="shape"):
            NodeSpec.from_json(payload)

    @pytest.mark.parametrize("data", [["a", "b"], [[1.0], [2.0, 3.0]]])
    def test_non_numeric_or_ragged_data_rejected(self, data):
        payload = node_payload(tensors={
            "weight": tensor_payload([2], data)})
        with pytest.raises(GraphError):
            NodeSpec.from_json(payload)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     -float("inf")])
    def test_non_finite_values_rejected(self, bad):
        payload = node_payload(tensors={
            "weight": tensor_payload([2], [1.0, bad])})
        with pytest.raises(GraphError, match="non-finite"):
            NodeSpec.from_json(payload)

    def test_tensor_spec_must_be_a_dict(self):
        payload = node_payload(tensors={"weight": [1.0, 2.0]})
        with pytest.raises(GraphError, match="'shape' and 'data'"):
            NodeSpec.from_json(payload)

    def test_scalar_shape_means_one_element(self):
        payload = node_payload(tensors={
            "weight": tensor_payload([], [3.5])})
        node = NodeSpec.from_json(payload)
        assert node.tensors["weight"].shape == ()


class TestQuantAttrValidation:
    def _payload(self, **attrs):
        base = {"act_bits": 8, "weight_bits": 4, "act_signed": False,
                "act_scale": 0.05}
        base.update(attrs)
        return node_payload(op="quant_linear", attrs=base)

    def test_valid_attrs_accepted(self):
        node = NodeSpec.from_json(self._payload())
        assert node.attrs["act_bits"] == 8

    @pytest.mark.parametrize("bits", [1, 9, 0, -4, 4.0, "8"])
    def test_unsupported_bitwidths_rejected(self, bits):
        with pytest.raises(GraphError, match="bit range"):
            NodeSpec.from_json(self._payload(act_bits=bits))
        with pytest.raises(GraphError, match="bit range"):
            NodeSpec.from_json(self._payload(weight_bits=bits))

    def test_weight_only_quantization_allows_none_act_bits(self):
        payload = self._payload(act_bits=None)
        del payload["attrs"]["act_scale"]
        node = NodeSpec.from_json(payload)
        assert node.attrs["act_bits"] is None

    @pytest.mark.parametrize("scale", [0.0, -1.0, float("nan"),
                                       float("inf"), "0.05"])
    def test_bad_act_scale_rejected(self, scale):
        with pytest.raises(GraphError, match="act_scale"):
            NodeSpec.from_json(self._payload(act_scale=scale))

    def test_float_ops_skip_quant_validation(self):
        # A float linear node may carry arbitrary attrs untouched.
        node = NodeSpec.from_json(node_payload(op="linear",
                                               attrs={"act_bits": 99}))
        assert node.attrs["act_bits"] == 99


class TestNodePayloadValidation:
    @pytest.mark.parametrize("payload", [[], "relu", 7, None])
    def test_node_must_be_a_dict(self, payload):
        with pytest.raises(GraphError, match="must be a dict"):
            NodeSpec.from_json(payload)

    @pytest.mark.parametrize("op", [None, "", 3])
    def test_op_must_be_a_nonempty_string(self, op):
        payload = {"op": op} if op is not None else {}
        with pytest.raises(GraphError, match="'op'"):
            NodeSpec.from_json(payload)

    def test_tensors_must_be_a_dict(self):
        with pytest.raises(GraphError, match="'tensors'"):
            NodeSpec.from_json(node_payload(tensors=[1, 2]))


class TestModelPayloadValidation:
    def test_invalid_json_text(self):
        with pytest.raises(GraphError, match="not valid JSON"):
            GraphModel.from_json("{nope")

    def test_payload_must_be_an_object(self):
        with pytest.raises(GraphError, match="JSON object"):
            GraphModel.from_json("[1, 2]")

    def test_wrong_format_version(self):
        text = json.dumps({"format_version": 99, "nodes": []})
        with pytest.raises(GraphError, match="version"):
            GraphModel.from_json(text)

    def test_nodes_must_be_a_list(self):
        text = json.dumps({"format_version": 1, "nodes": {"op": "relu"}})
        with pytest.raises(GraphError, match="'nodes' list"):
            GraphModel.from_json(text)

    def test_valid_model_roundtrips(self):
        graph = GraphModel(nodes=[NodeSpec(op="relu")], name="tiny")
        loaded = GraphModel.from_json(model_text(
            [n.to_json() for n in graph.nodes]))
        assert len(loaded) == 1
        assert loaded.nodes[0].op == "relu"


class TestNodeIdCollisions:
    def _run(self, nodes):
        graph = GraphModel(nodes=nodes)
        return InferenceEngine(graph).run(np.ones((1, 4)))

    def test_reserved_input_id_rejected(self):
        with pytest.raises(GraphError, match="reserved id 'input'"):
            self._run([NodeSpec(op="relu", id="input")])

    def test_duplicate_explicit_ids_rejected(self):
        with pytest.raises(GraphError, match="duplicate node id 'a'"):
            self._run([NodeSpec(op="relu", id="a"),
                       NodeSpec(op="identity", id="a")])

    def test_explicit_id_colliding_with_auto_id_rejected(self):
        # Node 0 gets the implicit id "n0"; an explicit "n0" later would
        # silently overwrite its output tensor.
        with pytest.raises(GraphError, match="duplicate node id 'n0'"):
            self._run([NodeSpec(op="relu"),
                       NodeSpec(op="identity", id="n0")])

    def test_distinct_ids_run_fine(self):
        result = self._run([NodeSpec(op="relu", id="a"),
                            NodeSpec(op="identity", id="b")])
        assert result.output.shape == (1, 4)
