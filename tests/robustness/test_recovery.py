"""Engine-level recovery: shadow verification, retry, fallback, warnings.

The concrete fault specs used here come from the seed-0 campaign and are
pinned so each test exercises a known scenario: the u-vector and weight
specs corrupt the unguarded output silently, the AccMem spec escapes the
cheap guards and needs the shadow.
"""

import warnings

import numpy as np
import pytest

from repro.core.binseg import BinSegError
from repro.core.errors import ReproError
from repro.core.microengine import MicroEngineError
from repro.robustness.errors import (
    FaultPlanError,
    GuardError,
    ReliabilityWarning,
)
from repro.robustness.faults import (
    FaultPlan,
    FaultSpec,
    demo_graph,
    demo_input,
)
from repro.robustness.recovery import (
    FaultEvent,
    RecoveryPolicy,
    ReliabilityStats,
    ShadowVerifier,
)
from repro.runtime.engine import InferenceEngine
from repro.runtime.graph import GraphError

#: Seed-0 campaign specs with known behaviour on the demo model.
UVECTOR_SPEC = FaultSpec(site="uvector_a", index=55746, bit=41743)
ACCMEM_SPEC = FaultSpec(site="accmem", index=33005, bit=39756)
WEIGHT_SPEC = FaultSpec(site="weight", index=4930, bit=1083)


@pytest.fixture(scope="module")
def graph():
    return demo_graph()


@pytest.fixture(scope="module")
def x():
    return demo_input()


@pytest.fixture(scope="module")
def reference(graph, x):
    return InferenceEngine(graph, backend="numpy").run(x).output


def run_with_fault(graph, x, spec, *, guard_level, recovery=None):
    engine = InferenceEngine(
        graph, backend="mixgemm", guard_level=guard_level,
        fault_plan=FaultPlan(faults=(spec,)), recovery=recovery,
    )
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ReliabilityWarning)
            return engine.run(x), engine
    finally:
        engine.injector.restore()


class TestErrorHierarchy:
    def test_every_runtime_error_shares_the_base(self):
        for exc_type in (BinSegError, MicroEngineError, GraphError,
                         GuardError, FaultPlanError):
            assert issubclass(exc_type, ReproError)

    def test_legacy_bases_are_preserved(self):
        assert issubclass(BinSegError, ValueError)
        assert issubclass(GraphError, ValueError)
        assert issubclass(MicroEngineError, RuntimeError)
        assert issubclass(GuardError, RuntimeError)

    def test_one_except_clause_catches_them_all(self):
        caught = []
        for exc_type in (BinSegError, MicroEngineError, GraphError,
                         GuardError):
            try:
                raise exc_type("boom")
            except ReproError as exc:
                caught.append(exc)
        assert len(caught) == 4


class TestRecoveryPolicy:
    def test_defaults(self):
        policy = RecoveryPolicy()
        assert policy.max_retries == 1
        assert policy.fallback and policy.warn

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)


class TestShadowVerifier:
    def test_reference_is_exact_integer_matmul(self):
        shadow = ShadowVerifier()
        x_q = np.array([[1, -2], [3, 4]])
        w_q = np.array([[5, 6], [7, -8]])
        assert np.array_equal(shadow.reference(x_q, w_q), x_q @ w_q)

    def test_match_counters(self):
        shadow = ShadowVerifier()
        ref = np.array([[1, 2]])
        assert shadow.matches(ref.copy(), ref)
        assert not shadow.matches(ref + 1, ref)
        assert shadow.checked == 2
        assert shadow.mismatched == 1


class TestReliabilityStats:
    def test_by_guard_counts(self):
        stats = ReliabilityStats(events=[
            FaultEvent("n0", "quant_linear", "checksum", "retried"),
            FaultEvent("n1", "quant_conv2d", "checksum", "fallback"),
            FaultEvent("n2", "quant_conv2d", "shadow", "retried"),
        ])
        assert stats.detections == 3
        assert stats.by_guard() == {"checksum": 2, "shadow": 1}


class TestEngineConstruction:
    def test_unknown_backend_rejected(self, graph):
        with pytest.raises(GraphError):
            InferenceEngine(graph, backend="tpu")

    def test_unknown_guard_level_rejected(self, graph):
        with pytest.raises(GuardError):
            InferenceEngine(graph, guard_level="maximum")


class TestGuardedInference:
    def test_clean_guarded_run_matches_reference(self, graph, x, reference):
        result = InferenceEngine(
            graph, backend="mixgemm", guard_level="full").run(x)
        assert np.array_equal(result.output, reference)
        assert result.fault_events == []
        assert result.recovered_layers == []
        assert result.guard_level == "full"

    def test_guards_off_lets_corruption_through(self, graph, x, reference):
        result, engine = run_with_fault(graph, x, UVECTOR_SPEC,
                                        guard_level="off")
        assert engine.injector.injected
        assert result.fault_events == []
        assert not np.array_equal(result.output, reference)

    def test_checksum_detects_and_retry_recovers(self, graph, x, reference):
        result, engine = run_with_fault(graph, x, UVECTOR_SPEC,
                                        guard_level="full")
        assert engine.injector.injected
        assert result.fault_events
        assert result.fault_events[0].detected_by == "checksum"
        assert result.fault_events[0].action == "retried"
        assert result.recovered_layers
        assert np.array_equal(result.output, reference)

    def test_shadow_catches_accmem_fault(self, graph, x, reference):
        result, _ = run_with_fault(graph, x, ACCMEM_SPEC, guard_level="full")
        assert result.fault_events
        assert {e.detected_by for e in result.fault_events} <= {
            "shadow", "range"}
        assert np.array_equal(result.output, reference)

    def test_vault_restores_corrupted_weights(self, x, reference):
        # Fresh graph: weight faults mutate tensors in place.
        result, _ = run_with_fault(demo_graph(), x, WEIGHT_SPEC,
                                   guard_level="standard")
        assert any(e.detected_by == "weight" and e.action == "restored"
                   for e in result.fault_events)
        assert np.array_equal(result.output, reference)

    def test_numpy_backend_never_sees_datapath_faults(self, graph, x,
                                                      reference):
        engine = InferenceEngine(
            graph, backend="numpy", guard_level="full",
            fault_plan=FaultPlan(faults=(UVECTOR_SPEC,)),
        )
        result = engine.run(x)
        assert not engine.injector.injected
        assert np.array_equal(result.output, reference)

    def test_reliability_report_structure(self, graph, x):
        result, _ = run_with_fault(graph, x, UVECTOR_SPEC,
                                   guard_level="full")
        report = result.reliability_report()
        assert report["guard_level"] == "full"
        assert report["detections"] == len(result.fault_events)
        assert sum(report["by_guard"].values()) == report["detections"]
        assert report["recovered_layers"] == result.recovered_layers


class TestEscalation:
    def test_exhausted_retries_fall_back_with_warning(self, graph, x,
                                                      reference):
        engine = InferenceEngine(
            graph, backend="mixgemm", guard_level="full",
            fault_plan=FaultPlan(faults=(UVECTOR_SPEC,)),
            recovery=RecoveryPolicy(max_retries=0),
        )
        with pytest.warns(ReliabilityWarning):
            result = engine.run(x)
        assert result.fault_events[0].action == "fallback"
        assert result.recovered_layers
        assert np.array_equal(result.output, reference)

    def test_fallback_can_be_silenced(self, graph, x, reference):
        engine = InferenceEngine(
            graph, backend="mixgemm", guard_level="full",
            fault_plan=FaultPlan(faults=(UVECTOR_SPEC,)),
            recovery=RecoveryPolicy(max_retries=0, warn=False),
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", ReliabilityWarning)
            result = engine.run(x)
        assert np.array_equal(result.output, reference)

    def test_disabled_fallback_raises(self, graph, x):
        engine = InferenceEngine(
            graph, backend="mixgemm", guard_level="full",
            fault_plan=FaultPlan(faults=(UVECTOR_SPEC,)),
            recovery=RecoveryPolicy(max_retries=0, fallback=False,
                                    warn=False),
        )
        with pytest.raises(GuardError) as err:
            engine.run(x)
        assert err.value.guard == "recovery"
