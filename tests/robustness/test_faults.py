"""Fault model: specs, plans, the injector, and campaign scoring."""

import numpy as np
import pytest

from repro.core.config import BlockingParams, MixGemmConfig
from repro.core.gemm import MixGemm, reference_gemm
from repro.core.packing import pack_matrix_a, pack_matrix_b
from repro.robustness.errors import FaultPlanError
from repro.robustness.faults import (
    FAULT_SITES,
    CampaignReport,
    FaultCampaign,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    TrialResult,
    demo_graph,
    demo_input,
)
from repro.robustness.guards import packed_checksum


def small_config():
    return MixGemmConfig(bw_a=4, bw_b=4,
                         blocking=BlockingParams(mc=8, nc=8, kc=64))


def small_operands(seed=1, m=8, k=40, n=8):
    rng = np.random.default_rng(seed)
    return (rng.integers(-8, 8, size=(m, k)),
            rng.integers(-8, 8, size=(k, n)))


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(site="register_file", index=0, bit=0)

    def test_negative_entropy_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultSpec(site="accmem", index=-1, bit=0)
        with pytest.raises(FaultPlanError):
            FaultSpec(site="accmem", index=0, bit=-1)

    def test_layer_restriction_is_optional(self):
        spec = FaultSpec(site="weight", index=3, bit=7)
        assert spec.layer is None


class TestFaultPlan:
    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(seed=42, n_faults=6)
        b = FaultPlan.generate(seed=42, n_faults=6)
        assert a == b

    def test_different_seeds_differ(self):
        a = FaultPlan.generate(seed=0, n_faults=4)
        b = FaultPlan.generate(seed=1, n_faults=4)
        assert a != b

    def test_sites_cycle(self):
        plan = FaultPlan.generate(seed=0, n_faults=len(FAULT_SITES) * 2)
        sites = [f.site for f in plan.faults]
        assert sites[:len(FAULT_SITES)] == list(FAULT_SITES)
        assert sites[len(FAULT_SITES):] == list(FAULT_SITES)

    def test_invalid_parameters(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.generate(seed=0, n_faults=0)
        with pytest.raises(FaultPlanError):
            FaultPlan.generate(seed=0, sites=())

    def test_layers_restrict_specs(self):
        plan = FaultPlan.generate(seed=0, n_faults=4, layers=[0, 2])
        assert all(f.layer in (0, 2) for f in plan.faults)


class TestFaultInjectorPack:
    def test_on_pack_flips_a_bit(self):
        cfg = small_config()
        a, _ = small_operands()
        packed = pack_matrix_a(a, cfg)
        spec = FaultSpec(site="uvector_a", index=5, bit=3)
        inj = FaultInjector(FaultPlan(faults=(spec,)))
        flipped = inj.on_pack("A", packed)
        assert packed_checksum(flipped) != packed_checksum(packed)
        assert len(inj.injected) == 1
        assert inj.injected[0].spec is spec
        assert inj.exhausted

    def test_each_spec_fires_once(self):
        cfg = small_config()
        a, _ = small_operands()
        packed = pack_matrix_a(a, cfg)
        inj = FaultInjector(FaultPlan(
            faults=(FaultSpec(site="uvector_a", index=5, bit=3),)))
        inj.on_pack("A", packed)
        again = inj.on_pack("A", packed)
        assert packed_checksum(again) == packed_checksum(packed)
        assert len(inj.injected) == 1

    def test_operand_b_untouched_by_a_fault(self):
        cfg = small_config()
        _, b = small_operands()
        packed = pack_matrix_b(b, cfg)
        inj = FaultInjector(FaultPlan(
            faults=(FaultSpec(site="uvector_a", index=5, bit=3),)))
        same = inj.on_pack("B", packed)
        assert packed_checksum(same) == packed_checksum(packed)
        assert not inj.injected

    def test_flip_targets_payload_not_padding(self):
        # The flipped word must decode to different logical elements;
        # padding flips would be architecturally invisible.
        cfg = small_config()
        a, _ = small_operands()
        packed = pack_matrix_a(a, cfg)
        for index in range(12):
            inj = FaultInjector(FaultPlan(
                faults=(FaultSpec(site="uvector_a", index=index, bit=1),)))
            flipped = inj.on_pack("A", packed)
            assert not np.array_equal(flipped.to_dense(), packed.to_dense())

    def test_layer_scoped_spec_waits_for_its_layer(self):
        cfg = small_config()
        a, _ = small_operands()
        packed = pack_matrix_a(a, cfg)
        inj = FaultInjector(FaultPlan(
            faults=(FaultSpec(site="uvector_a", index=0, bit=0, layer=2),)))
        inj.begin_layer(0)
        assert packed_checksum(inj.on_pack("A", packed)) \
            == packed_checksum(packed)
        inj.begin_layer(2)
        assert packed_checksum(inj.on_pack("A", packed)) \
            != packed_checksum(packed)


class TestFaultInjectorAccMem:
    def test_fires_on_trigger_group(self):
        inj = FaultInjector(FaultPlan(
            faults=(FaultSpec(site="accmem", index=0, bit=5),)))
        accmem = [0] * 16
        inj.on_accumulate(accmem, group_index=0)
        assert accmem[0] == 1 << 5
        assert inj.exhausted

    def test_ignores_other_groups(self):
        inj = FaultInjector(FaultPlan(
            faults=(FaultSpec(site="accmem", index=0, bit=5),)))
        accmem = [0] * 16
        inj.on_accumulate(accmem, group_index=3)
        assert accmem == [0] * 16
        assert not inj.injected

    def test_slot_and_bit_wrap_to_geometry(self):
        # index 8 -> trigger group 0, slot 1; bit wraps into the low 40.
        inj = FaultInjector(FaultPlan(
            faults=(FaultSpec(site="accmem", index=8, bit=41),)))
        accmem = [0] * 4
        inj.on_accumulate(accmem, group_index=0)
        assert accmem[1] == 1 << 1


class TestFaultInjectorWeights:
    def test_corrupt_and_restore(self):
        graph = demo_graph()
        spec = FaultSpec(site="weight", index=7, bit=3)
        inj = FaultInjector(FaultPlan(faults=(spec,)))
        originals = [n.tensors["weight"].copy()
                     for n in graph.quantized_nodes()]
        inj.corrupt_weights(graph)
        assert len(inj.injected) == 1
        after = [n.tensors["weight"] for n in graph.quantized_nodes()]
        assert any(not np.array_equal(o, a)
                   for o, a in zip(originals, after))
        inj.restore()
        assert all(np.array_equal(o, a)
                   for o, a in zip(originals, after))

    def test_no_quant_nodes_is_a_noop(self):
        from repro.runtime.graph import GraphModel, NodeSpec
        graph = GraphModel(nodes=[NodeSpec(op="relu")])
        inj = FaultInjector(FaultPlan(
            faults=(FaultSpec(site="weight", index=0, bit=0),)))
        inj.corrupt_weights(graph)
        assert not inj.injected
        assert not inj.exhausted


class TestGemmLevelInjection:
    def test_uvector_fault_corrupts_unguarded_gemm(self):
        cfg = small_config()
        a, b = small_operands()
        inj = FaultInjector(FaultPlan(
            faults=(FaultSpec(site="uvector_a", index=0, bit=0),)))
        result = MixGemm(cfg, emulate_datapath=False,
                         fault_hook=inj).gemm(a, b)
        assert len(inj.injected) == 1
        assert not np.array_equal(result.c, reference_gemm(a, b))

    def test_clean_injector_leaves_gemm_exact(self):
        cfg = small_config()
        a, b = small_operands()
        inj = FaultInjector(FaultPlan(
            faults=(FaultSpec(site="uvector_a", index=0, bit=0, layer=5),)))
        inj.begin_layer(0)  # spec is scoped to layer 5: never fires
        result = MixGemm(cfg, emulate_datapath=False,
                         fault_hook=inj).gemm(a, b)
        assert np.array_equal(result.c, reference_gemm(a, b))


class TestTrialResult:
    def test_silent_needs_undetected_corruption(self):
        spec = FaultSpec(site="accmem", index=0, bit=0)
        silent = TrialResult(spec, injected=True, detected=False,
                             corrupted=True)
        noticed = TrialResult(spec, injected=True, detected=True,
                              corrupted=True)
        masked = TrialResult(spec, injected=True, detected=False,
                             corrupted=False)
        assert silent.silent
        assert not noticed.silent
        assert not masked.silent

    def test_recovered_needs_exact_output(self):
        spec = FaultSpec(site="accmem", index=0, bit=0)
        good = TrialResult(spec, injected=True, detected=True,
                           corrupted=False)
        bad = TrialResult(spec, injected=True, detected=True,
                          corrupted=True)
        crashed = TrialResult(spec, injected=True, detected=True,
                              corrupted=False, failed=True)
        assert good.recovered
        assert not bad.recovered
        assert not crashed.recovered


class TestCampaignReport:
    def _report(self):
        spec = FaultSpec(site="uvector_a", index=0, bit=0)
        return CampaignReport(guard_level="full", seed=0, trials=[
            TrialResult(spec, injected=True, detected=True, corrupted=False),
            TrialResult(spec, injected=True, detected=False, corrupted=True),
            TrialResult(spec, injected=False, detected=False,
                        corrupted=False),
        ])

    def test_rates_over_injected_only(self):
        r = self._report()
        assert r.n_trials == 3
        assert r.n_injected == 2
        assert r.detection_rate == 0.5
        assert r.recovery_rate == 0.5
        assert r.silent_rate == 0.5

    def test_render_mentions_the_headline_numbers(self):
        text = self._report().render()
        assert "guard_level=full" in text
        assert "silent" in text
        assert "uvector_a" in text


class TestDemoModel:
    def test_demo_graph_is_deterministic(self):
        a, b = demo_graph(), demo_graph()
        wa = a.quantized_nodes()[0].tensors["weight"]
        wb = b.quantized_nodes()[0].tensors["weight"]
        assert np.array_equal(wa, wb)

    def test_demo_input_matches_graph(self):
        from repro.runtime.engine import InferenceEngine
        out = InferenceEngine(demo_graph()).run(demo_input()).output
        assert out.shape == (2, 3)


class TestFaultCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return FaultCampaign(seed=0, n_trials=8)

    @pytest.fixture(scope="class")
    def off_report(self, campaign):
        return campaign.run(guard_level="off")

    @pytest.fixture(scope="class")
    def full_report(self, campaign):
        return campaign.run(guard_level="full")

    def test_specs_derive_from_seed(self):
        a = FaultCampaign(seed=7, n_trials=6)
        b = FaultCampaign(seed=7, n_trials=6)
        assert a.specs == b.specs
        assert FaultCampaign(seed=8, n_trials=6).specs != a.specs

    def test_rejects_empty_campaign(self):
        with pytest.raises(FaultPlanError):
            FaultCampaign(seed=0, n_trials=0)

    def test_guards_off_shows_silent_corruption(self, off_report):
        assert off_report.n_injected == 8
        assert off_report.n_silent > 0
        assert off_report.n_detected == 0

    def test_full_guards_detect_and_recover_everything(self, full_report):
        assert full_report.n_injected == 8
        assert full_report.detection_rate == 1.0
        assert full_report.recovery_rate == 1.0
        assert full_report.n_silent == 0

    def test_campaign_is_reproducible(self, campaign, off_report):
        again = FaultCampaign(seed=0, n_trials=8).run(guard_level="off")
        assert again.trials == off_report.trials

    def test_trials_leave_the_graph_clean(self, campaign, off_report,
                                          full_report):
        # Weight corruption is rolled back after every trial, so the
        # shared graph still produces the clean reference output.
        from repro.runtime.engine import InferenceEngine
        ref = InferenceEngine(campaign.graph, backend="numpy")
        out = ref.run(campaign.x).output
        fresh = FaultCampaign(seed=0, n_trials=8)
        clean = InferenceEngine(fresh.graph, backend="numpy")
        assert np.array_equal(out, clean.run(fresh.x).output)
