"""Integrity guards: checksums, range guard, finite fence, weight vault."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import BlockingParams, MixGemmConfig
from repro.core.packing import pack_matrix_a
from repro.robustness.errors import GuardError
from repro.robustness.faults import demo_graph, demo_input
from repro.robustness.guards import (
    GUARD_LEVELS,
    PackGuard,
    TensorVault,
    accumulator_bound,
    check_finite,
    checksum_words,
    guard_rank,
    measure_guard_overhead,
    packed_checksum,
)


def small_config():
    return MixGemmConfig(bw_a=4, bw_b=4,
                         blocking=BlockingParams(mc=8, nc=8, kc=64))


def packed_operand():
    rng = np.random.default_rng(3)
    return pack_matrix_a(rng.integers(-8, 8, size=(4, 20)), small_config())


def flip_one_bit(packed, run=0, word=0, bit=0):
    kv = packed.kvectors[run]
    words = list(kv.words)
    words[word] ^= 1 << bit
    kvectors = list(packed.kvectors)
    kvectors[run] = replace(kv, words=tuple(words))
    return replace(packed, kvectors=tuple(kvectors))


class TestGuardLevels:
    def test_levels_are_ordered(self):
        ranks = [guard_rank(level) for level in GUARD_LEVELS]
        assert ranks == sorted(ranks)
        assert guard_rank("off") == 0

    def test_unknown_level_rejected(self):
        with pytest.raises(GuardError) as err:
            guard_rank("paranoid")
        assert err.value.guard == "config"


class TestChecksums:
    def test_single_bit_flip_changes_digest(self):
        words = [0x0123456789ABCDEF, 0xFEDCBA9876543210, 0]
        base = checksum_words(words)
        for i in range(len(words)):
            for bit in (0, 17, 63):
                flipped = list(words)
                flipped[i] ^= 1 << bit
                assert checksum_words(flipped) != base

    def test_word_order_matters(self):
        assert checksum_words([1, 2]) != checksum_words([2, 1])

    def test_packed_checksum_sees_every_word(self):
        packed = packed_operand()
        base = packed_checksum(packed)
        last_run = packed.n_runs - 1
        last_word = packed.words_per_run - 1
        assert packed_checksum(
            flip_one_bit(packed, run=last_run, word=last_word, bit=63)
        ) != base


class TestPackGuard:
    def test_verify_accepts_clean_operand(self):
        guard = PackGuard(small_config())
        packed = packed_operand()
        guard.verify(packed, guard.checksum(packed), "A")

    def test_verify_detects_corruption(self):
        guard = PackGuard(small_config())
        packed = packed_operand()
        digest = guard.checksum(packed)
        with pytest.raises(GuardError) as err:
            guard.verify(flip_one_bit(packed), digest, "A")
        assert err.value.guard == "checksum"
        assert "operand A" in str(err.value)

    def test_accumulator_bound_is_algebraic(self):
        # 4-bit signed operands reach |v| = 8, so k * 64 bounds |C|.
        assert accumulator_bound(10, small_config()) == 10 * 8 * 8

    def test_range_guard_accepts_legal_accumulators(self):
        guard = PackGuard(small_config())
        k = 10
        bound = accumulator_bound(k, small_config())
        guard.check_result(np.array([[bound, -bound]]), k)

    def test_range_guard_rejects_impossible_values(self):
        guard = PackGuard(small_config())
        k = 10
        bound = accumulator_bound(k, small_config())
        with pytest.raises(GuardError) as err:
            guard.check_result(np.array([[0, bound + 1]]), k)
        assert err.value.guard == "range"

    def test_empty_result_passes(self):
        PackGuard(small_config()).check_result(np.empty((0, 0)), 10)


class TestFiniteFence:
    def test_finite_tensor_passes(self):
        check_finite("n0", np.zeros((2, 2)))

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_tensor_rejected(self, bad):
        arr = np.zeros((2, 2))
        arr[1, 1] = bad
        with pytest.raises(GuardError) as err:
            check_finite("conv1", arr)
        assert err.value.guard == "finite"
        assert "conv1" in str(err.value)


class TestTensorVault:
    def test_restores_corrupted_tensor(self):
        graph = demo_graph()
        vault = TensorVault.snapshot(graph)
        index, node = next(
            (i, n) for i, n in enumerate(graph) if "weight" in n.tensors)
        original = node.tensors["weight"].copy()
        node.tensors["weight"][0] += 1.0
        restored = vault.verify_and_restore(index, node)
        assert restored == ["weight"]
        assert np.array_equal(node.tensors["weight"], original)

    def test_clean_tensors_left_alone(self):
        graph = demo_graph()
        vault = TensorVault.snapshot(graph)
        for i, node in enumerate(graph):
            assert vault.verify_and_restore(i, node) == []

    def test_unknown_node_is_ignored(self):
        from repro.runtime.graph import NodeSpec
        vault = TensorVault.snapshot(demo_graph())
        stranger = NodeSpec(op="linear",
                            tensors={"weight": np.ones((2, 2))})
        assert vault.verify_and_restore(99, stranger) == []


class TestOverheadMeasurement:
    def test_reports_every_requested_level(self):
        timings = measure_guard_overhead(
            demo_graph(), demo_input(), backend="numpy",
            levels=("off", "standard"), repeats=1,
        )
        assert set(timings) == {"off", "standard"}
        assert all(t > 0 for t in timings.values())
