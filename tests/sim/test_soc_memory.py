"""SoC composition, cache-sensitivity, and memory-traffic tests."""

import pytest

from repro.core.config import MixGemmConfig
from repro.models.inventory import get_network
from repro.sim.memory import gemm_traffic
from repro.sim.params import (
    DEFAULT_MEMORY_COSTS,
    PAPER_SOC,
    SMALL_CACHE_SOC,
)
from repro.sim.soc import (
    MixGemmSoc,
    ScalabilityProjection,
    cache_sensitivity,
)


def traffic(m, n, k, *, a_bytes=1.0, b_bytes=1.0, soc=PAPER_SOC):
    return gemm_traffic(
        m, n, k,
        a_bytes_per_element=a_bytes, b_bytes_per_element=b_bytes,
        acc_bytes=4, mc=256, nc=256, kc=2048, mr=4, nr=4,
        soc=soc, costs=DEFAULT_MEMORY_COSTS, out_bytes_per_element=1.0,
    )


class TestTrafficModel:
    def test_cache_resident_reads_once(self):
        t = traffic(64, 64, 64)
        # Fits L1: one A + B pass from DRAM plus the requantized output.
        assert t.dram_bytes == pytest.approx(2 * 64 * 64 + 64 * 64)
        assert t.l2_bytes == pytest.approx(2 * 64 * 64 + 2 * 64 * 64 * 4)

    def test_large_problem_restreams_a(self):
        t = traffic(2048, 2048, 2048)
        a_bytes = 2048 * 2048
        # A re-read from DRAM ceil(n/nc) = 8 times.
        assert t.dram_bytes > 8 * a_bytes

    def test_narrow_data_move_less(self):
        wide = traffic(1024, 1024, 1024, a_bytes=8.0, b_bytes=8.0)
        narrow = traffic(1024, 1024, 1024, a_bytes=0.25, b_bytes=0.25)
        assert narrow.dram_bytes < wide.dram_bytes
        assert narrow.l2_bytes < wide.l2_bytes

    def test_smaller_caches_increase_traffic(self):
        big = traffic(1024, 1024, 1024, soc=PAPER_SOC)
        small = traffic(1024, 1024, 1024, soc=SMALL_CACHE_SOC)
        assert small.dram_bytes + small.l2_bytes >= \
            big.dram_bytes + big.l2_bytes

    def test_stall_cycles_positive(self):
        t = traffic(512, 512, 512)
        assert t.stall_cycles(DEFAULT_MEMORY_COSTS) > 0


class TestMixGemmSoc:
    def test_network_runs(self):
        soc = MixGemmSoc()
        r = soc.network(get_network("resnet18"),
                        MixGemmConfig(bw_a=8, bw_b=8))
        assert 4.0 < r.gops < 7.0

    def test_adapted_blocking_on_small_soc(self):
        small = MixGemmSoc(SMALL_CACHE_SOC)
        big = MixGemmSoc(PAPER_SOC)
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        slow = small.gemm(1024, 1024, 1024, cfg).total_cycles
        fast = big.gemm(1024, 1024, 1024, cfg).total_cycles
        assert slow > fast

    def test_uengine_overhead_one_percent(self):
        assert MixGemmSoc().uengine_area_overhead == pytest.approx(
            0.01, rel=0.01
        )

    def test_efficiency_api(self):
        soc = MixGemmSoc()
        eff = soc.network_efficiency(get_network("alexnet"),
                                     MixGemmConfig(bw_a=2, bw_b=2))
        assert eff.gops_per_watt > 800


class TestCacheSensitivity:
    @pytest.fixture(scope="class")
    def penalties(self):
        workload = [(256, 256, 256), (1024, 1024, 1024)]
        configs = [MixGemmConfig(bw_a=a, bw_b=w)
                   for a, w in ((8, 8), (4, 4), (2, 2))]
        return cache_sensitivity(
            sizes=[
                (16 * 1024, 512 * 1024),   # shrink L1 only
                (32 * 1024, 64 * 1024),    # shrink L2 only
                (16 * 1024, 64 * 1024),    # shrink both
            ],
            workload=workload,
            configs=configs,
        )

    def test_small_penalties(self, penalties):
        # Paper Section IV-B: 5.2% / 7% / 11.8% average penalties -- in
        # all cases the slowdown is positive and modest.
        for value in penalties.values():
            assert 0.0 <= value < 0.30

    def test_both_worse_than_l1_only(self, penalties):
        l1_only = penalties[(16 * 1024, 512 * 1024)]
        both = penalties[(16 * 1024, 64 * 1024)]
        assert both >= l1_only - 0.01


class TestScalability:
    def test_multicore_projection(self):
        p = ScalabilityProjection(cores=8)
        assert 6.0 < p.throughput_scale() <= 8.0

    def test_single_core_identity(self):
        p = ScalabilityProjection()
        assert p.throughput_scale() == 1.0
        assert p.area_overhead_scale() == 1.0

    def test_simd_widening(self):
        p = ScalabilityProjection(simd_multipliers=2)
        assert p.throughput_scale() == 2.0
        assert p.area_overhead_scale() == 2.0
