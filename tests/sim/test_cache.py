"""Cache model unit tests."""

import pytest

from repro.sim.cache import Cache, CacheError, CacheHierarchy


class TestCacheBasics:
    def test_geometry(self):
        c = Cache(32 * 1024, line_bytes=64, associativity=8)
        assert c.n_sets == 64

    def test_invalid_geometry(self):
        with pytest.raises(CacheError):
            Cache(1000, line_bytes=64, associativity=8)
        with pytest.raises(CacheError):
            Cache(1024, line_bytes=63, associativity=1)

    def test_cold_miss_then_hit(self):
        c = Cache(1024, line_bytes=64, associativity=2)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)          # same line
        assert not c.access(64)      # next line

    def test_lru_eviction(self):
        c = Cache(256, line_bytes=64, associativity=2)  # 2 sets x 2 ways
        # Lines 0, 2, 4 map to set 0 (line % 2 == 0).
        c.access(0)
        c.access(2 * 64)
        c.access(4 * 64)             # evicts line 0 (LRU)
        assert c.stats.evictions == 1
        assert not c.access(0)       # line 0 is gone

    def test_lru_order_updated_on_hit(self):
        c = Cache(256, line_bytes=64, associativity=2)
        c.access(0)
        c.access(2 * 64)
        c.access(0)                  # line 0 becomes MRU
        c.access(4 * 64)             # evicts line 2, not 0
        assert c.access(0)

    def test_writeback_counted(self):
        c = Cache(256, line_bytes=64, associativity=2)
        c.access(0, write=True)
        c.access(2 * 64)
        c.access(4 * 64)             # evicts dirty line 0
        assert c.stats.writebacks == 1

    def test_access_range_counts_lines(self):
        c = Cache(4096, line_bytes=64, associativity=4)
        misses = c.access_range(0, 256)
        assert misses == 4

    def test_flush(self):
        c = Cache(1024, line_bytes=64, associativity=2)
        c.access(0)
        c.flush()
        assert not c.access(0)

    def test_hit_rate(self):
        c = Cache(1024, line_bytes=64, associativity=2)
        c.access(0)
        c.access(0)
        assert c.stats.hit_rate == pytest.approx(0.5)


class TestHierarchy:
    def test_latencies(self):
        h = CacheHierarchy(l1_size=1024, l2_size=8192)
        assert h.load(0) == h.dram_latency          # cold
        assert h.load(0) == h.l1_latency            # L1 hit
        # Evict from tiny L1 but keep in L2.
        for i in range(1, 64):
            h.load(i * 64)
        assert h.load(0) == h.l2_latency

    def test_miss_propagates_to_l2(self):
        h = CacheHierarchy(l1_size=1024, l2_size=8192)
        h.load(0)
        assert h.l2.stats.misses == 1
        assert h.l1.stats.misses == 1

    def test_working_set_behaviour(self):
        # A loop over a set fitting L1 should have near-perfect reuse.
        h = CacheHierarchy(l1_size=32 * 1024, l2_size=512 * 1024)
        for _ in range(4):
            for addr in range(0, 16 * 1024, 8):
                h.load(addr)
        assert h.l1.stats.hit_rate > 0.95

    def test_store_latency(self):
        h = CacheHierarchy(l1_size=1024, l2_size=8192)
        assert h.store(0) == h.dram_latency
        assert h.store(0) == h.l1_latency

    def test_reset(self):
        h = CacheHierarchy(l1_size=1024, l2_size=8192)
        h.load(0)
        h.reset()
        assert h.l1.stats.accesses == 0
        assert h.load(0) == h.dram_latency
