"""DSE tests: Table I, padding overhead, buffer-depth study."""

import pytest

from repro.sim.dse import (
    average_padding_overhead,
    buffer_depth_study,
    optimal_blocking,
    optimal_register_tile,
    padding_overheads,
    table1,
)
from repro.sim.params import PAPER_SOC


class TestTable1:
    def test_reproduces_paper_values(self):
        t1 = table1()
        assert (t1.mc, t1.nc, t1.kc) == (256, 256, 256)
        assert (t1.mr, t1.nr) == (4, 4)
        assert (t1.kua, t1.kub) == (4, 4)
        assert t1.accmem == 16
        assert t1.source_buffers == 16

    def test_register_tile_from_rf(self):
        assert optimal_register_tile(32) == (4, 4)
        assert optimal_register_tile(8) == (2, 2)

    def test_blocking_respects_budgets(self):
        dse = optimal_blocking(PAPER_SOC)
        assert dse.l1_bytes_used <= PAPER_SOC.l1_bytes / 2
        assert dse.l2_bytes_used <= PAPER_SOC.l2_bytes

    def test_blocking_shrinks_with_caches(self):
        small = optimal_blocking(PAPER_SOC.with_caches(16 * 1024,
                                                       64 * 1024))
        assert small.blocking.kc < 256
        assert small.blocking.mc < 256


class TestPadding:
    def test_average_near_paper(self):
        # Paper Section III-C: 2.4% on average (our selection: <= 3.5%).
        avg = average_padding_overhead()
        assert 0.0 < avg < 0.035

    def test_equal_widths_zero_padding(self):
        overheads = padding_overheads()
        for bw in (8, 6, 4, 2):
            assert overheads[(bw, bw)] == 0.0

    def test_all_49_combinations_present(self):
        assert len(padding_overheads()) == 49

    def test_no_combination_exceeds_bound(self):
        assert max(padding_overheads().values()) < 0.26


class TestBufferDepthStudy:
    @pytest.fixture(scope="class")
    def results(self):
        return buffer_depth_study(
            depths=(8, 16, 32),
            configs=[(8, 8), (4, 4), (2, 2)],
            gemm_size=(16, 16, 768),
        )

    def test_stalls_decrease_with_depth(self, results):
        # Paper: 17.8% / 14.3% / 11.2% for depths 8 / 16 / 32.
        fractions = [r.buffer_stall_fraction for r in results]
        assert fractions[0] >= fractions[1] >= fractions[2]

    def test_stall_magnitudes_plausible(self, results):
        # The shape matches the paper; our leaner modelled inner loop
        # keeps the core more engine-bound, so magnitudes run higher
        # (documented in EXPERIMENTS.md).
        for r in results:
            assert 0.0 <= r.buffer_stall_fraction < 0.45

    def test_get_stalls_grow_with_depth(self, results):
        # Paper: bs.get stalls appear only for the deepest buffers.
        assert results[2].get_stall_fraction >= \
            results[0].get_stall_fraction

    def test_depths_recorded(self, results):
        assert [r.depth for r in results] == [8, 16, 32]
        assert all(r.cycles > 0 for r in results)
