"""Scalability models + trace-driven cache validation."""

import pytest

from repro.core.config import BlockingParams, MixGemmConfig
from repro.sim.cache import CacheHierarchy
from repro.sim.memory import gemm_traffic
from repro.sim.params import DEFAULT_MEMORY_COSTS, PAPER_SOC
from repro.sim.scalability import (
    MultiCorePerfModel,
    WideSimdPerfModel,
    wide_simd_area,
)
from repro.sim.trace import trace_gemm


class TestMultiCore:
    def test_speedup_grows_with_cores(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        speedups = [
            MultiCorePerfModel(c).gemm(512, 512, 512, cfg).speedup
            for c in (1, 2, 4, 8)
        ]
        assert speedups == sorted(speedups)
        assert speedups[0] == pytest.approx(1.0, rel=0.01)

    def test_efficiency_near_one_for_few_cores(self):
        # Paper: per-core performance close to single-threaded.
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        r = MultiCorePerfModel(4).gemm(1024, 1024, 1024, cfg)
        assert r.efficiency > 0.75

    def test_contention_limits_scaling(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        r16 = MultiCorePerfModel(16).gemm(1024, 1024, 1024, cfg)
        assert r16.efficiency < 1.0

    def test_gops_reaches_multicore_scale(self):
        # 8 cores at ~5 GOPS each: comparable to XpulpNN's 8-core range.
        cfg = MixGemmConfig(bw_a=2, bw_b=2)
        r = MultiCorePerfModel(8).gemm(1024, 1024, 1024, cfg)
        assert r.gops() > 50.0

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            MultiCorePerfModel(0)


class TestWideSimd:
    def test_two_lanes_nearly_double(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        one = WideSimdPerfModel(1).gemm(1024, 1024, 1024, cfg)
        two = WideSimdPerfModel(2).gemm(1024, 1024, 1024, cfg)
        assert 1.5 < one.total_cycles / two.total_cycles <= 2.0

    def test_area_scales_sublinearly_overall(self):
        # Control Unit is shared, so 2 lanes cost < 2x area.
        design = wide_simd_area(2)
        assert 1.8 < design.area_overhead_vs_baseline < 2.0

    def test_identity_lane(self):
        cfg = MixGemmConfig(bw_a=4, bw_b=4)
        base = WideSimdPerfModel(1).gemm(256, 256, 256, cfg)
        from repro.sim.perf import MixGemmPerfModel
        ref = MixGemmPerfModel().gemm(256, 256, 256, cfg)
        assert base.total_cycles == ref.total_cycles

    def test_invalid_lanes(self):
        with pytest.raises(ValueError):
            WideSimdPerfModel(0)
        with pytest.raises(ValueError):
            wide_simd_area(0)


class TestTraceValidation:
    """The analytic traffic model vs the set-associative simulator."""

    @pytest.fixture(scope="class")
    def small_cfg(self):
        return MixGemmConfig(
            bw_a=8, bw_b=8, blocking=BlockingParams(mc=32, nc=32, kc=16),
        )

    def _analytic(self, m, n, k, cfg, soc=PAPER_SOC):
        from repro.core.packing import aligned_kc
        lay = cfg.layout
        kc_eff = aligned_kc(cfg.blocking.kc * lay.elems_a,
                            lay.group_elements)
        return gemm_traffic(
            m, n, k,
            a_bytes_per_element=cfg.bw_a / 8,
            b_bytes_per_element=cfg.bw_b / 8,
            acc_bytes=4,
            mc=cfg.blocking.mc, nc=cfg.blocking.nc, kc=kc_eff,
            mr=cfg.blocking.mr, nr=cfg.blocking.nr,
            soc=soc, costs=DEFAULT_MEMORY_COSTS,
            out_bytes_per_element=1.0,
        )

    def test_magnitudes_agree(self, small_cfg):
        m = n = k = 128
        hierarchy = CacheHierarchy(l1_size=4 * 1024, l2_size=32 * 1024)
        trace = trace_gemm(m, n, k, small_cfg, hierarchy)
        soc = PAPER_SOC.with_caches(4 * 1024, 32 * 1024)
        analytic = self._analytic(m, n, k, small_cfg, soc)
        # Order-of-magnitude agreement between the two models.
        assert trace.l2_bytes == pytest.approx(analytic.l2_bytes,
                                               rel=1.5)
        assert trace.dram_bytes <= 4 * max(analytic.dram_bytes, 1)

    def test_narrow_data_less_traffic(self):
        blocking = BlockingParams(mc=32, nc=32, kc=16)
        wide = trace_gemm(64, 64, 64,
                          MixGemmConfig(bw_a=8, bw_b=8, blocking=blocking),
                          CacheHierarchy(l1_size=2048, l2_size=16 * 1024))
        narrow = trace_gemm(64, 64, 64,
                            MixGemmConfig(bw_a=2, bw_b=2,
                                          blocking=blocking),
                            CacheHierarchy(l1_size=2048,
                                           l2_size=16 * 1024))
        assert narrow.loads < wide.loads
        assert narrow.l2_bytes <= wide.l2_bytes

    def test_smaller_caches_more_misses(self, small_cfg):
        big = trace_gemm(96, 96, 96, small_cfg,
                         CacheHierarchy(l1_size=32 * 1024,
                                        l2_size=256 * 1024))
        small = trace_gemm(96, 96, 96, small_cfg,
                           CacheHierarchy(l1_size=2 * 1024,
                                          l2_size=16 * 1024))
        assert small.l1_miss_lines >= big.l1_miss_lines
        assert small.l2_miss_lines >= big.l2_miss_lines

    def test_load_count_matches_formula(self, small_cfg):
        from repro.core.gemm import uvector_loads
        m, n, k = 32, 32, 64
        trace = trace_gemm(m, n, k, small_cfg, CacheHierarchy())
        expected_uvec = uvector_loads(m, n, k, small_cfg)
        c_updates = m * n  # one k-block at this size
        assert trace.loads == expected_uvec + c_updates
