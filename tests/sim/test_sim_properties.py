"""Property-based tests for the performance/traffic models."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MixGemmConfig
from repro.sim.memory import gemm_traffic
from repro.sim.params import DEFAULT_MEMORY_COSTS, PAPER_SOC
from repro.sim.perf import MixGemmPerfModel

bits_strategy = st.sampled_from([2, 3, 4, 5, 6, 7, 8])
dim_strategy = st.integers(min_value=1, max_value=512)

_model = MixGemmPerfModel()


@given(dim_strategy, dim_strategy, dim_strategy, bits_strategy,
       bits_strategy)
@settings(max_examples=150, deadline=None)
def test_cycles_positive_and_bounded(m, n, k, bw_a, bw_b):
    """Total cycles are finite, positive, and at least the ideal bound."""
    cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
    r = _model.gemm(m, n, k, cfg)
    assert r.total_cycles > 0
    # Never faster than the peak MAC rate of the configuration.
    ideal = m * n * k / cfg.macs_per_cycle
    assert r.total_cycles >= ideal * 0.999


@given(dim_strategy, dim_strategy, dim_strategy, bits_strategy)
@settings(max_examples=100, deadline=None)
def test_macs_per_cycle_below_peak(m, n, k, bw):
    cfg = MixGemmConfig(bw_a=bw, bw_b=bw)
    r = _model.gemm(m, n, k, cfg)
    assert 0 < r.macs_per_cycle <= cfg.macs_per_cycle


@given(dim_strategy, dim_strategy, st.integers(min_value=1, max_value=256),
       bits_strategy)
@settings(max_examples=80, deadline=None)
def test_cycles_monotone_in_k(m, n, k, bw):
    """More work never takes fewer cycles."""
    cfg = MixGemmConfig(bw_a=bw, bw_b=bw)
    r1 = _model.gemm(m, n, k, cfg)
    r2 = _model.gemm(m, n, 2 * k, cfg)
    assert r2.total_cycles >= r1.total_cycles


@given(dim_strategy, dim_strategy, dim_strategy,
       st.floats(min_value=0.25, max_value=8.0),
       st.floats(min_value=0.25, max_value=8.0))
@settings(max_examples=150, deadline=None)
def test_traffic_nonnegative_and_scales(m, n, k, esa, esb):
    """Traffic is non-negative and at least one full operand read."""
    t = gemm_traffic(
        m, n, k,
        a_bytes_per_element=esa, b_bytes_per_element=esb,
        acc_bytes=4, mc=256, nc=256, kc=2048, mr=4, nr=4,
        soc=PAPER_SOC, costs=DEFAULT_MEMORY_COSTS,
        out_bytes_per_element=1.0,
    )
    assert t.dram_bytes >= m * k * esa + k * n * esb - 1e-9
    assert t.l2_bytes >= 0
    assert t.stall_cycles(DEFAULT_MEMORY_COSTS) >= 0


@given(dim_strategy, bits_strategy)
@settings(max_examples=60, deadline=None)
def test_square_speedup_over_baseline_positive(n, bw):
    """Every configuration beats the fp64 baseline at every size."""
    from repro.baselines.scalar import ScalarGemmModel, blis_dgemm_kernel

    cfg = MixGemmConfig(bw_a=bw, bw_b=bw)
    base = ScalarGemmModel(blis_dgemm_kernel()).gemm(n, n, n)
    mix = _model.gemm(n, n, n, cfg)
    assert base.total_cycles / mix.total_cycles > 1.0


@given(st.integers(min_value=1, max_value=16))
@settings(max_examples=30, deadline=None)
def test_multicore_speedup_bounded_by_cores(cores):
    from repro.sim.scalability import MultiCorePerfModel

    cfg = MixGemmConfig(bw_a=8, bw_b=8)
    r = MultiCorePerfModel(cores).gemm(512, 512, 512, cfg)
    assert 0 < r.speedup <= cores * 1.01
