"""Energy and area model tests against Section IV-C / Table II."""

import pytest

from repro.core.config import MixGemmConfig
from repro.models.inventory import get_network
from repro.sim.area import (
    SOC_DIE_MM2,
    TABLE2_AREAS_UM2,
    UENGINE_TOTAL_UM2,
    SocArea,
    UEngineArea,
    scale_area,
)
from repro.sim.energy import EnergyModel
from repro.sim.perf import MixGemmPerfModel


class TestTable2:
    def test_component_sum_matches_total(self):
        assert sum(TABLE2_AREAS_UM2.values()) == pytest.approx(
            UENGINE_TOTAL_UM2, abs=0.1
        )

    def test_default_engine_reproduces_table(self):
        engine = UEngineArea()
        assert engine.total_um2 == pytest.approx(UENGINE_TOTAL_UM2,
                                                 abs=0.1)
        breakdown = engine.breakdown()
        assert breakdown["source_buffers"][0] == pytest.approx(4934.63)
        assert breakdown["dsu"][0] == pytest.approx(1094.45)

    def test_one_percent_soc_overhead(self):
        assert UEngineArea().soc_overhead() == pytest.approx(0.01,
                                                             rel=0.01)

    def test_source_buffers_dominate(self):
        engine = UEngineArea()
        areas = {n: engine.component_area(n)
                 for n in TABLE2_AREAS_UM2}
        assert max(areas, key=areas.get) == "source_buffers"

    def test_doubling_buffers_adds_67_percent(self):
        # Paper Section III-C: +67.6% u-engine area from 16 to 32 entries.
        u16 = UEngineArea(source_buffer_depth=16)
        u32 = UEngineArea(source_buffer_depth=32)
        assert u32.total_um2 / u16.total_um2 - 1 == pytest.approx(
            0.676, abs=0.005
        )

    def test_accmem_scales_linearly(self):
        u = UEngineArea(accmem_slots=32)
        assert u.component_area("accmem") == pytest.approx(
            2 * TABLE2_AREAS_UM2["accmem"]
        )


class TestSocArea:
    def test_default_die_area(self):
        assert SocArea().total_mm2 == pytest.approx(SOC_DIE_MM2, rel=0.01)

    def test_small_cache_saving_near_53_percent(self):
        small = SocArea(l1d_kb=16, l1i_kb=16, l2_kb=64)
        assert small.area_saving_vs_default() == pytest.approx(0.53,
                                                               abs=0.05)


class TestTechScaling:
    def test_eyeriss_comparison(self):
        # Section V: Mix-GEMM needs 96.8x less area than scaled Eyeriss.
        scaled = scale_area(12.25, from_nm=65)
        ratio = scaled / UEngineArea().total_mm2
        assert ratio == pytest.approx(96.8, rel=0.02)

    def test_unpu_comparison(self):
        scaled = scale_area(16.0, from_nm=65)
        ratio = scaled / UEngineArea().total_mm2
        assert ratio == pytest.approx(126.5, rel=0.02)

    def test_identity(self):
        assert scale_area(1.0, 22, 22) == 1.0

    def test_unknown_node(self):
        with pytest.raises(ValueError):
            scale_area(1.0, 14)


class TestEnergyModel:
    #: Paper Section IV-C efficiency ranges (GOPS/W).
    PAPER_EFF = {
        "alexnet": (522.1, 1300),
        "vgg16": (524.3, 1300),
        "resnet18": (509, 1200),
        "mobilenet_v1": (477.5, 944.1),
        "regnet_x_400mf": (503.3, 982),
    }

    @pytest.fixture(scope="class")
    def models(self):
        return EnergyModel(), MixGemmPerfModel()

    @pytest.mark.parametrize("name", sorted(PAPER_EFF))
    def test_a8w8_efficiency_near_paper_low(self, models, name):
        em, pm = models
        eff = em.network_efficiency(
            get_network(name), MixGemmConfig(bw_a=8, bw_b=8), pm
        )
        lo, _ = self.PAPER_EFF[name]
        assert eff.gops_per_watt == pytest.approx(lo, rel=0.2), name

    @pytest.mark.parametrize("name", sorted(PAPER_EFF))
    def test_a2w2_efficiency_near_paper_high(self, models, name):
        em, pm = models
        eff = em.network_efficiency(
            get_network(name), MixGemmConfig(bw_a=2, bw_b=2), pm
        )
        _, hi = self.PAPER_EFF[name]
        assert eff.gops_per_watt == pytest.approx(hi, rel=0.25), name

    def test_peak_efficiency_reaches_1_3_tops(self, models):
        # Abstract: "up to 1.3 TOPS/W".
        em, pm = models
        best = max(
            em.network_efficiency(
                get_network(n), MixGemmConfig(bw_a=2, bw_b=2), pm
            ).tops_per_watt
            for n in self.PAPER_EFF
        )
        assert 1.1 < best < 1.5

    def test_narrow_configs_more_efficient(self, models):
        em, pm = models
        net = get_network("resnet18")
        effs = [
            em.network_efficiency(
                net, MixGemmConfig(bw_a=b, bw_b=b), pm
            ).gops_per_watt
            for b in (8, 4, 2)
        ]
        assert effs[0] < effs[1] < effs[2]

    def test_power_in_milliwatt_range(self, models):
        # The u-engine + multiplier subsystem draws ~10 mW at 1.2 GHz.
        em, pm = models
        eff = em.network_efficiency(
            get_network("resnet18"), MixGemmConfig(bw_a=8, bw_b=8), pm
        )
        assert 0.005 < eff.watts < 0.02
