"""Performance-model tests: paper anchors and internal consistency."""

import numpy as np
import pytest

from repro.baselines.scalar import (
    ScalarGemmModel,
    blis_dgemm_kernel,
    blis_int8_kernel,
    gemmlowp_a53_kernel,
    openblas_fp32_u740_kernel,
)
from repro.core.config import (
    BlockingParams,
    FIGURE6_CONFIGS,
    MixGemmConfig,
)
from repro.core.gemm import MixGemm
from repro.models.inventory import get_network
from repro.sim.perf import MixGemmPerfModel, combine


@pytest.fixture(scope="module")
def mix():
    return MixGemmPerfModel()


@pytest.fixture(scope="module")
def dgemm():
    return ScalarGemmModel(blis_dgemm_kernel())


def speedup(mix, dgemm, n, bw_a, bw_b):
    cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
    base = dgemm.gemm(n, n, n).total_cycles
    return base / mix.gemm(n, n, n, cfg).total_cycles


class TestSteadyStateAnchors:
    """Section IV-B: steady-state speedups over the DGEMM baseline."""

    def test_a8w8_near_10x(self, mix, dgemm):
        # Paper: 10.2x (8x compression + 21.6% from the AccMem).
        assert speedup(mix, dgemm, 2048, 8, 8) == pytest.approx(10.2,
                                                                rel=0.12)

    def test_a4w4_near_16x(self, mix, dgemm):
        assert speedup(mix, dgemm, 2048, 4, 4) == pytest.approx(16.0,
                                                                rel=0.12)

    def test_a2w2_near_27x(self, mix, dgemm):
        # Paper: 27.2x (32x bound minus ~15% u-vector drain penalty).
        assert speedup(mix, dgemm, 2048, 2, 2) == pytest.approx(27.2,
                                                                rel=0.15)

    def test_a2w2_below_theoretical_bound(self, mix, dgemm):
        assert speedup(mix, dgemm, 2048, 2, 2) < 32.0

    def test_a8w8_above_compression_bound(self, mix, dgemm):
        # The AccMem pushes a8-w8 above the plain 8x problem-size ratio.
        assert speedup(mix, dgemm, 2048, 8, 8) > 8.0

    def test_int8_blis_gains_far_below_compression(self, dgemm):
        # Paper: BLIS-int8 reaches only ~2.5x, far below the 8x memory
        # reduction -- quantization alone is not enough.
        int8 = ScalarGemmModel(blis_int8_kernel())
        ratio = dgemm.gemm(2048, 2048, 2048).total_cycles \
            / int8.gemm(2048, 2048, 2048).total_cycles
        assert 1.3 < ratio < 3.0


class TestScalingShape:
    def test_monotone_in_uniform_ladder(self, mix):
        """Performance scales with decreasing data size (the headline).

        Strict monotonicity holds along the uniform ladder; mixed
        configurations sit near their uniform neighbours but can dip
        slightly below the wider one (e.g. a8-w6 packs 30 elements into
        the same 12-cycle schedule as a8-w8's 32 -- the paper's own
        Figure 4 numbers).
        """
        order = [(8, 8), (6, 6), (4, 4), (3, 3), (2, 2)]
        gops = [
            mix.gemm(1024, 1024, 1024,
                     MixGemmConfig(bw_a=a, bw_b=w)).gops
            for a, w in order
        ]
        assert all(g2 > g1 for g1, g2 in zip(gops, gops[1:]))

    def test_all_figure6_configs_beat_baseline(self, mix, dgemm):
        for a, w in FIGURE6_CONFIGS:
            assert speedup(mix, dgemm, 1024, a, w) > 5.0, (a, w)

    def test_speedup_grows_then_saturates(self, mix, dgemm):
        s = [speedup(mix, dgemm, n, 4, 4) for n in (64, 256, 1024, 2048)]
        assert s[-1] >= s[0]
        assert abs(s[-1] - s[-2]) / s[-1] < 0.1  # steady state reached

    def test_mixed_precision_between_uniform(self, mix):
        cfg86 = MixGemmConfig(bw_a=8, bw_b=6)
        cfg88 = MixGemmConfig(bw_a=8, bw_b=8)
        cfg66 = MixGemmConfig(bw_a=6, bw_b=6)
        g86 = mix.gemm(1024, 1024, 1024, cfg86).gops
        g88 = mix.gemm(1024, 1024, 1024, cfg88).gops
        g66 = mix.gemm(1024, 1024, 1024, cfg66).gops
        # a8-w6 trades 2 padded slots per group (Figure 4), so it lands
        # near a8-w8 and clearly below a6-w6.
        assert g88 * 0.90 <= g86 <= g66


class TestAnalyticVsEventDriven:
    """The analytic model must agree with the bit-exact simulator."""

    @pytest.mark.parametrize("bw_a, bw_b", [(8, 8), (6, 4), (2, 2)])
    def test_compute_cycles_agree(self, mix, bw_a, bw_b):
        rng = np.random.default_rng(0)
        m = n = 16
        k = 960  # multiple of 30 and 32 group sizes
        cfg = MixGemmConfig(
            bw_a=bw_a, bw_b=bw_b,
            blocking=BlockingParams(mc=16, nc=16, kc=256),
        )
        a = rng.integers(-2, 2, size=(m, k))
        b = rng.integers(-2, 2, size=(k, n))
        functional = MixGemm(cfg, emulate_datapath=False).gemm(a, b)
        analytic = mix.gemm(m, n, k, cfg)
        # Compare compute-side cycles (the functional sim has no memory
        # stall model); agreement within 15%.
        assert functional.cycles == pytest.approx(
            analytic.compute_cycles, rel=0.15
        ), f"a{bw_a}-w{bw_b}"


class TestNetworkLevel:
    """Table III / Figure 7 throughput rows."""

    PAPER_RANGES = {
        "alexnet": (5.2, 13.6),
        "vgg16": (5.3, 13.1),
        "resnet18": (5.1, 12.4),
        "mobilenet_v1": (4.8, 9.5),
        "regnet_x_400mf": (5.1, 9.9),
    }

    @pytest.mark.parametrize("name", sorted(PAPER_RANGES))
    def test_a8w8_matches_paper_low_end(self, mix, name):
        lo, _ = self.PAPER_RANGES[name]
        net = get_network(name)
        gops = mix.network(net, MixGemmConfig(bw_a=8, bw_b=8)).gops
        assert gops == pytest.approx(lo, rel=0.15), name

    @pytest.mark.parametrize("name", sorted(PAPER_RANGES))
    def test_a2w2_matches_paper_high_end(self, mix, name):
        _, hi = self.PAPER_RANGES[name]
        net = get_network(name)
        gops = mix.network(net, MixGemmConfig(bw_a=2, bw_b=2)).gops
        assert gops == pytest.approx(hi, rel=0.20), name

    def test_efficientnet_qualitative(self, mix):
        # EfficientNet is dominated by skinny-k expansions; the model is
        # pessimistic there (documented in EXPERIMENTS.md) but the config
        # ordering must still hold.
        net = get_network("efficientnet_b0")
        g8 = mix.network(net, MixGemmConfig(bw_a=8, bw_b=8)).gops
        g2 = mix.network(net, MixGemmConfig(bw_a=2, bw_b=2)).gops
        assert 2.0 < g8 < g2 < 13.1

    def test_paper_gops_global_band(self, mix):
        # Abstract: "performance ranging from 4.8 GOPS to 13.6 GOPS".
        values = []
        for name in self.PAPER_RANGES:
            net = get_network(name)
            for a, w in ((8, 8), (2, 2)):
                values.append(
                    mix.network(net, MixGemmConfig(bw_a=a, bw_b=w)).gops
                )
        assert min(values) > 3.5
        assert max(values) < 15.0


class TestBaselines:
    def test_openblas_near_09_gops(self):
        model = ScalarGemmModel(openblas_fp32_u740_kernel())
        for name in ("alexnet", "vgg16", "resnet18"):
            gops = model.network(get_network(name)).gops
            assert gops == pytest.approx(0.9, rel=0.2), name

    def test_gemmlowp_in_published_band(self):
        # Table III row [33]: 4.7 - 5.8 GOPS across the six CNNs.
        model = ScalarGemmModel(gemmlowp_a53_kernel())
        for name in ("alexnet", "vgg16", "resnet18"):
            gops = model.network(get_network(name)).gops
            assert 3.5 < gops < 6.5, name

    def test_mix_a8w8_comparable_to_gemmlowp(self):
        # Section V: "GEMMLowp performance are comparable with Mix-GEMM
        # ... considering its a8-w8 configuration".
        mixm = MixGemmPerfModel()
        glm = ScalarGemmModel(gemmlowp_a53_kernel())
        for name in ("alexnet", "resnet18"):
            net = get_network(name)
            mix_gops = mixm.network(net,
                                    MixGemmConfig(bw_a=8, bw_b=8)).gops
            gl_gops = glm.network(net).gops
            assert 0.6 < mix_gops / gl_gops < 1.7, name


class TestPerfResultApi:
    def test_combine(self, mix):
        cfg = MixGemmConfig()
        r1 = mix.gemm(64, 64, 64, cfg)
        r2 = mix.gemm(128, 128, 128, cfg)
        both = combine([r1, r2])
        assert both.macs == r1.macs + r2.macs
        assert both.total_cycles == pytest.approx(
            r1.total_cycles + r2.total_cycles
        )

    def test_combine_empty(self):
        with pytest.raises(ValueError):
            combine([])

    def test_degenerate_gemm_rejected(self, mix):
        with pytest.raises(ValueError):
            mix.gemm(0, 4, 4, MixGemmConfig())

    def test_scaled(self, mix):
        r = mix.gemm(64, 64, 64, MixGemmConfig())
        s = r.scaled(4)
        assert s.macs == 4 * r.macs
        assert s.macs_per_cycle == pytest.approx(r.macs_per_cycle)

    def test_seconds_and_gops(self, mix):
        r = mix.gemm(256, 256, 256, MixGemmConfig())
        assert r.seconds == pytest.approx(
            r.total_cycles / 1.2e9
        )
        assert r.gops == pytest.approx(
            2 * r.macs / r.seconds / 1e9, rel=1e-9
        )
