"""Runtime lock sanitizer and the static/dynamic cross-check.

The integration contract under test: every *dynamically* observed
unguarded access of an annotated attribute corresponds to a *static*
CONC-UNGUARDED verdict -- the analyzer has no false negatives on any
traced path.
"""

import textwrap
import threading

import numpy as np
import pytest

from repro.analysis.concurrency import (
    analyze_concurrency,
    crosscheck,
    sanitized_session,
    sanitizer,
)
from repro.analysis.concurrency.checker import ConcurrencyAnalysis
from repro.analysis.concurrency.sanitizer import (
    SanitizedLock,
    SanitizerError,
    watch_from_analysis,
)
from repro.core.locks import make_lock, make_rlock


class TestSanitizedLock:
    def test_factory_returns_raw_lock_when_inactive(self):
        assert not isinstance(make_lock("T.raw"), SanitizedLock)

    def test_factory_returns_wrapper_when_active(self):
        with sanitized_session(watch_defaults=False):
            lock = make_lock("T.wrapped")
            assert isinstance(lock, SanitizedLock)
        assert not isinstance(make_lock("T.raw"), SanitizedLock)

    def test_double_activation_raises(self):
        with sanitized_session(watch_defaults=False):
            with pytest.raises(SanitizerError):
                sanitizer.activate()

    def test_acquisitions_record_held_stack(self):
        with sanitized_session(watch_defaults=False) as active:
            a = make_lock("T.a")
            b = make_lock("T.b")
            with a:
                with b:
                    assert active.locks_held() == ("T.a", "T.b")
            assert active.locks_held() == ()
        acquires = active.trace.acquisitions()
        assert [e.lock for e in acquires] == ["T.a", "T.b"]
        assert acquires[0].held_before == ()
        assert acquires[1].held_before == ("T.a",)

    def test_rlock_reentry_and_release_order(self):
        with sanitized_session(watch_defaults=False) as active:
            lock = make_rlock("T.r")
            with lock:
                with lock:
                    assert active.locks_held() == ("T.r", "T.r")
                assert active.locks_held() == ("T.r",)
            assert active.locks_held() == ()

    def test_held_stack_is_per_thread(self):
        observed = {}
        with sanitized_session(watch_defaults=False) as active:
            lock = make_lock("T.main")

            def probe():
                observed["worker"] = active.locks_held()

            with lock:
                worker = threading.Thread(target=probe)
                worker.start()
                worker.join()
                observed["main"] = active.locks_held()
        assert observed["main"] == ("T.main",)
        assert observed["worker"] == ()


class TestWatch:
    class Victim:
        def __init__(self):
            self.data = 0

    def test_watched_accesses_recorded_and_restored(self):
        with sanitized_session(watch_defaults=False) as active:
            active.watch(self.Victim, {"data": "Victim._lock"})
            victim = self.Victim()       # in_init write
            victim.data = 5
            _ = victim.data
            events = active.trace.accesses()
        kinds = [(e.kind, e.in_init) for e in events
                 if e.attr == "data"]
        assert ("write", True) in kinds
        assert ("write", False) in kinds
        assert ("read", False) in kinds
        # Deactivation restored the class: no further recording.
        baseline = len(sanitizer.trace.accesses())
        victim = self.Victim()
        victim.data = 7
        assert len(sanitizer.trace.accesses()) == baseline


RACY_MODULE = textwrap.dedent("""
    from repro.core.locks import make_lock


    class Racy:
        def __init__(self):
            self._lock = make_lock("Racy._lock")
            self._items = []            # repro: guarded-by(_lock)

        def add(self, item):
            with self._lock:
                self._items.append(item)

        def drain(self):
            return list(self._items)
""")


def _load_racy(tmp_path):
    import importlib.util

    path = tmp_path / "racy_mod.py"
    path.write_text(RACY_MODULE)
    spec = importlib.util.spec_from_file_location("racy_mod", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module, path


class TestCrosscheck:
    def test_dynamic_violation_matches_static_verdict(self, tmp_path):
        module, path = _load_racy(tmp_path)
        analysis = analyze_concurrency([path])
        assert ("Racy", "_items") in analysis.unguarded_sites
        with sanitized_session(watch_defaults=False) as active:
            watch_from_analysis(analysis, {"Racy": module.Racy})
            racy = module.Racy()
            racy.add(1)                  # guarded: not a violation
            racy.drain()                 # the seeded dynamic race
        result = crosscheck(active.trace, analysis)
        assert result.events_checked >= 2
        assert len(result.violations) == 1
        assert result.violations[0].attr == "_items"
        assert result.violations[0].matched
        assert result.ok                 # predicted by statics: no FN

    def test_unpredicted_violation_is_a_false_negative(self, tmp_path):
        module, _path = _load_racy(tmp_path)
        with sanitized_session(watch_defaults=False) as active:
            active.watch(module.Racy, {"_items": "Racy._lock"})
            racy = module.Racy()
            racy.drain()
        # Cross-check against an *empty* analysis: the dynamic
        # violation has no static counterpart and must be surfaced.
        result = crosscheck(active.trace, ConcurrencyAnalysis())
        assert not result.ok
        assert len(result.unmatched) == 1
        assert "FALSE NEGATIVE" in result.render()

    def test_init_accesses_are_exempt(self, tmp_path):
        module, path = _load_racy(tmp_path)
        analysis = analyze_concurrency([path])
        with sanitized_session(watch_defaults=False) as active:
            watch_from_analysis(analysis, {"Racy": module.Racy})
            module.Racy()                # only the in_init write
        result = crosscheck(active.trace, analysis)
        assert result.events_checked == 0
        assert result.ok


class TestServingIntegration:
    """The tentpole integration bar: real workloads, zero unmatched."""

    def _workload(self):
        from repro.robustness.faults import demo_graph, demo_input
        from repro.runtime.serving import BatchedServer

        graph = demo_graph()
        inputs = [demo_input(batch=1, size=6, seed=seed)[0]
                  for seed in range(12)]
        with BatchedServer(graph, workers=2, max_batch=4,
                           max_wait_ms=1.0, backend="mixgemm") as server:
            report = server.run_requests(inputs)
        return report

    def test_served_traffic_has_no_unmatched_violations(
            self, lock_sanitizer):
        report = self._workload()
        assert len(report.outputs) == 12
        from repro.analysis.concurrency.checker import annotated_targets
        analysis = analyze_concurrency(annotated_targets())
        result = crosscheck(lock_sanitizer.trace, analysis)
        # The trace is non-trivial: annotated attrs were exercised
        # from more than one thread, and statics predicted every
        # dynamic unguarded access (there are none on this path).
        assert result.events_checked > 0
        assert len(lock_sanitizer.trace.threads()) > 1
        assert result.violations == []
        assert result.ok

    def test_parallel_gemm_with_shared_cache(self, lock_sanitizer):
        from repro.core.config import BlockingParams, MixGemmConfig
        from repro.core.packcache import PackingCache
        from repro.core.parallel import ParallelMixGemm

        cfg = MixGemmConfig(
            bw_a=8, bw_b=8, blocking=BlockingParams(mc=8, nc=8, kc=64))
        cache = PackingCache()
        rng = np.random.default_rng(3)
        a = rng.integers(-8, 8, size=(8, 96))
        b = rng.integers(-8, 8, size=(96, 32))
        result = ParallelMixGemm(cfg, cores=2, backend="event",
                                 pack_cache=cache).gemm(a, b)
        assert np.array_equal(result.c, a.astype(np.int64) @ b)
        from repro.analysis.concurrency.checker import annotated_targets
        check = crosscheck(lock_sanitizer.trace,
                           analyze_concurrency(annotated_targets()))
        cache_events = [e for e in lock_sanitizer.trace.accesses()
                        if e.cls == "PackingCache"]
        assert cache_events
        assert check.ok and not check.violations

    def test_serve_cli_sanitize_flag(self, capsys):
        from repro.cli import main

        assert main(["serve", "--sanitize", "--requests", "8",
                     "--workers", "2", "--max-batch", "4"]) == 0
        out = capsys.readouterr().out
        assert "sanitizer cross-check" in out
        assert "0 unmatched" in out
