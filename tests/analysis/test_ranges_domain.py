"""Interval/affine domain primitives: exactness, soundness, wrap."""

import numpy as np
import pytest

from repro.analysis.diagnostics import AnalysisError
from repro.analysis.ranges import (
    AffineChannelMap,
    TensorRange,
    bits_required_interval,
    signed_contributions,
    silu_range,
    wrap_interval,
)
from repro.core.config import ACCMEM_CONTAINER_BITS
from repro.core.fastpath import wrap_signed_array
from repro.runtime import ops


class TestTensorRange:
    def test_scalar_and_per_channel_shapes(self):
        s = TensorRange.scalar(-1.0, 2.0)
        assert s.is_scalar and s.channels is None
        c = TensorRange.per_channel([-1.0, 0.0], [1.0, 3.0])
        assert not c.is_scalar and c.channels == 2

    def test_validation(self):
        with pytest.raises(AnalysisError):
            TensorRange.scalar(1.0, -1.0)
        with pytest.raises(AnalysisError):
            TensorRange.scalar(float("nan"), 1.0)
        with pytest.raises(AnalysisError):
            TensorRange(np.zeros(2), np.zeros(3))
        with pytest.raises(AnalysisError):
            TensorRange(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_collapse_is_hull(self):
        c = TensorRange.per_channel([-5.0, 1.0], [0.0, 7.0])
        hull = c.collapse()
        assert float(hull.lo) == -5.0 and float(hull.hi) == 7.0

    def test_widen_to_include_zero(self):
        r = TensorRange.scalar(3.0, 9.0).widen_to_include(0.0)
        assert float(r.lo) == 0.0 and float(r.hi) == 9.0

    def test_contains_scalar(self):
        r = TensorRange.per_channel([-2.0, -1.0], [1.0, 4.0])
        assert r.contains_scalar(-2.0, 4.0)
        assert not r.contains_scalar(-2.1, 4.0)
        assert not r.contains_scalar(-2.0, 4.1)

    def test_map_monotone_decreasing_is_exact(self):
        r = TensorRange.scalar(-3.0, 2.0)
        neg = r.map_monotone(lambda x: -2.0 * x)
        assert float(neg.lo) == -4.0 and float(neg.hi) == 6.0

    def test_add_and_mul_four_corner(self):
        a = TensorRange.scalar(-1.0, 2.0)
        b = TensorRange.scalar(-3.0, 1.0)
        s = a + b
        assert (float(s.lo), float(s.hi)) == (-4.0, 3.0)
        p = a.mul(b)
        # corners: 3, -1, -6, 2 -> [-6, 3]
        assert (float(p.lo), float(p.hi)) == (-6.0, 3.0)

    def test_mul_zero_times_inf_is_zero(self):
        zero = TensorRange.scalar(0.0, 0.0)
        inf = TensorRange.scalar(-np.inf, np.inf)
        p = zero.mul(inf)
        assert (float(p.lo), float(p.hi)) == (0.0, 0.0)


class TestSiluRange:
    def test_straddling_interval_includes_global_min(self):
        r = silu_range(TensorRange.scalar(-6.0, 6.0))
        xs = np.linspace(-6.0, 6.0, 20001)
        ys = ops.silu(xs)
        assert float(r.lo) <= ys.min()
        assert float(r.hi) >= ys.max()
        # and the bound is tight: the interior minimum, not a guess
        assert float(r.lo) == pytest.approx(ys.min(), abs=1e-6)

    @pytest.mark.parametrize("lo,hi", [(-8.0, -4.0), (0.5, 3.0),
                                       (-1.0, -0.5)])
    def test_monotone_pieces_use_endpoints(self, lo, hi):
        r = silu_range(TensorRange.scalar(lo, hi))
        xs = np.linspace(lo, hi, 10001)
        ys = ops.silu(xs)
        assert float(r.lo) <= ys.min() and float(r.hi) >= ys.max()


class TestAffineChannelMap:
    def test_compose_equals_sequential_apply(self):
        f = AffineChannelMap(np.array([2.0, -1.0]), np.array([1.0, 0.0]))
        g = AffineChannelMap(np.array([-3.0, 0.5]), np.array([0.0, 2.0]))
        r = TensorRange.per_channel([-1.0, 0.0], [1.0, 4.0])
        chained = f.then(g).apply(r)
        stepwise = g.apply(f.apply(r))
        assert np.array_equal(chained.lo, stepwise.lo)
        assert np.array_equal(chained.hi, stepwise.hi)

    def test_negative_scale_flips_endpoints(self):
        m = AffineChannelMap(np.float64(-2.0), np.float64(1.0))
        r = m.apply(TensorRange.scalar(0.0, 3.0))
        assert (float(r.lo), float(r.hi)) == (-5.0, 1.0)

    def test_matches_is_bitwise(self):
        a = AffineChannelMap(np.array([1.0, 2.0]), np.float64(0.0))
        b = AffineChannelMap(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
        c = AffineChannelMap(np.array([1.0, 2.0 + 1e-12]), np.float64(0.0))
        assert a.matches(b)
        assert not a.matches(c)


class TestSignedContributions:
    def test_brute_force_per_entry(self):
        rng = np.random.default_rng(5)
        w = rng.integers(-7, 8, size=(6, 4)).astype(np.int64)
        a_lo = rng.integers(-9, 0, size=6).astype(np.int64)
        a_hi = a_lo + rng.integers(0, 9, size=6).astype(np.int64)
        lo, hi = signed_contributions(w, a_lo, a_hi)
        for k in range(6):
            for f in range(4):
                vals = [w[k, f] * a for a in (a_lo[k], a_hi[k])]
                assert lo[k, f] == min(vals)
                assert hi[k, f] == max(vals)

    def test_zero_weight_kills_infinite_activation(self):
        w = np.zeros((2, 1))
        lo, hi = signed_contributions(w, np.array([-np.inf, -np.inf]),
                                      np.array([np.inf, np.inf]))
        assert (lo == 0).all() and (hi == 0).all()


class TestWrapInterval:
    def test_fitting_interval_passes_through(self):
        lo = np.array([-100], dtype=np.int64)
        hi = np.array([100], dtype=np.int64)
        wlo, whi, wrapped = wrap_interval(lo, hi, 12)
        assert not wrapped
        assert wlo[0] == -100 and whi[0] == 100

    def test_escaping_interval_widens_to_full_range(self):
        lo = np.array([0], dtype=np.int64)
        hi = np.array([5000], dtype=np.int64)
        wlo, whi, wrapped = wrap_interval(lo, hi, 8)
        assert wrapped
        assert wlo[0] == -128 and whi[0] == 127

    def test_container_width_is_identity(self):
        lo = np.array([np.iinfo(np.int64).min], dtype=np.int64)
        hi = np.array([np.iinfo(np.int64).max], dtype=np.int64)
        wlo, whi, wrapped = wrap_interval(lo, hi,
                                          ACCMEM_CONTAINER_BITS)
        assert not wrapped
        assert wlo[0] == lo[0] and whi[0] == hi[0]

    @pytest.mark.parametrize("bits", [4, 8, 11, 16])
    def test_contains_runtime_wrap_of_every_member(self, bits):
        # soundness against the engine's own wrap kernel
        lo, hi = np.array([-3000], dtype=np.int64), \
            np.array([2500], dtype=np.int64)
        wlo, whi, _ = wrap_interval(lo, hi, bits)
        members = np.arange(-3000, 2501, dtype=np.int64)
        wrapped = wrap_signed_array(members, bits)
        assert wrapped.min() >= wlo[0]
        assert wrapped.max() <= whi[0]


class TestBitsRequired:
    @pytest.mark.parametrize("lo,hi,bits", [
        (0, 0, 1),
        (-1, 0, 1),
        (-2, 1, 2),
        (0, 127, 8),
        (-128, 0, 8),
        (-129, 0, 9),
        (0, 128, 9),
    ])
    def test_boundaries(self, lo, hi, bits):
        assert bits_required_interval(np.array([lo]),
                                      np.array([hi])) == bits
