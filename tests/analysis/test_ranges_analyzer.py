"""Abstract interpreter over graphs: tightness, soundness, im2col, wrap."""

import math

import numpy as np
import pytest

from repro.analysis.diagnostics import AnalysisError
from repro.analysis.ranges import analyze_graph
from repro.models.builders import build_tiny
from repro.nn.layers import seed_init
from repro.robustness.faults import demo_graph, demo_input
from repro.runtime.engine import InferenceEngine
from repro.runtime.export_modules import export_model
from repro.runtime.graph import GraphModel, NodeSpec


@pytest.fixture(scope="module")
def demo():
    return demo_graph()


@pytest.fixture(scope="module")
def resnet_graph():
    seed_init(13)
    model = build_tiny("resnet18", act_bits=8, weight_bits=8)
    model.eval()
    return export_model(model, name="resnet18")


def _quant_linear_node(weight, act_bits=8, weight_bits=8,
                       act_scale=0.05, bias=None, node_id=""):
    tensors = {"weight": weight}
    if bias is not None:
        tensors["bias"] = bias
    return NodeSpec(op="quant_linear", id=node_id,
                    attrs={"act_scale": act_scale, "act_bits": act_bits,
                           "act_signed": True,
                           "weight_bits": weight_bits},
                    tensors=tensors)


class TestBasics:
    def test_every_node_gets_a_range(self, demo):
        analysis = analyze_graph(demo)
        labels = demo.effective_ids()
        for label in labels:
            assert label in analysis.node_ranges

    def test_records_cover_quant_layers_only(self, demo):
        analysis = analyze_graph(demo)
        ops_by_label = dict(zip(demo.effective_ids(),
                                (n.op for n in demo)))
        for label, rec in analysis.records.items():
            assert ops_by_label[label] in ("quant_conv2d",
                                           "quant_linear")
        n_quant = sum(op.startswith("quant")
                      for op in ops_by_label.values())
        assert len(analysis.records) == n_quant

    def test_invalid_input_range_rejected(self, demo):
        with pytest.raises(AnalysisError):
            analyze_graph(demo, input_range=(2.0, -2.0))
        with pytest.raises(AnalysisError):
            analyze_graph(demo, input_range=(math.nan, 1.0))

    def test_unknown_input_still_finite_after_quantizer(self, demo):
        analysis = analyze_graph(demo)  # (-inf, inf) input
        for rec in analysis.records.values():
            assert np.isfinite(rec.act.lo).all()
            assert np.isfinite(rec.act.hi).all()

    def test_table_and_render(self, demo):
        analysis = analyze_graph(demo)
        rows = analysis.table()
        assert len(rows) == len(analysis.records)
        for row in rows:
            assert row["derived_bits"] <= row["worst_case_bits"]
        text = analysis.render_table()
        assert "derived" in text and "worst" in text


class TestTightness:
    def test_resnet18_every_layer_tighter_than_eq5(self, resnet_graph):
        """The acceptance bar: derived bits strictly below Eq. 5."""
        analysis = analyze_graph(resnet_graph, input_range=(-4.0, 4.0))
        assert analysis.records, "no quantized layers analyzed"
        tighter = [r for r in analysis.records.values()
                   if r.derived_bits < r.worst_bits]
        assert tighter, "no layer proved tighter than the worst case"
        # on this seed, *every* layer tightens
        assert len(tighter) == len(analysis.records)

    def test_narrow_input_range_tightens_first_layer(self, demo):
        wide = analyze_graph(demo)
        narrow = analyze_graph(demo, input_range=(-0.1, 0.1))
        first = next(iter(wide.records))
        assert (narrow.records[first].derived_bits
                <= wide.records[first].derived_bits)
        w_rec, n_rec = wide.records[first], narrow.records[first]
        assert n_rec.acc_hi.max() <= w_rec.acc_hi.max()


class TestSoundnessDifferential:
    """Static intervals must contain everything the engine computes."""

    @pytest.mark.parametrize("accmem_bits", [64, 16, 12])
    def test_demo_engine_values_inside_intervals(self, demo,
                                                 accmem_bits):
        x = demo_input()
        analysis = analyze_graph(
            demo, accmem_bits=accmem_bits,
            input_range=(float(x.min()), float(x.max())))
        engine = InferenceEngine(demo, backend="mixgemm",
                                 accmem_bits=accmem_bits)
        result = engine.run(x)
        out = result.output if hasattr(result, "output") else result
        final = demo.effective_ids()[-1]
        r = analysis.node_ranges[final].collapse()
        arr = np.asarray(out)
        assert arr.min() >= float(r.lo) - 1e-9
        assert arr.max() <= float(r.hi) + 1e-9

    def test_padding_widens_act_codes_to_zero(self):
        # input range excludes 0 -> codes would too, but the conv pads
        w = np.full((1, 1, 3, 3), 0.5)
        graph = GraphModel(nodes=[NodeSpec(
            op="quant_conv2d",
            attrs={"act_scale": 0.1, "act_bits": 8, "act_signed": True,
                   "weight_bits": 8, "stride": 1, "padding": 1,
                   "groups": 1},
            tensors={"weight": w},
        )])
        analysis = analyze_graph(graph, input_range=(1.0, 2.0))
        rec = next(iter(analysis.records.values()))
        assert float(rec.act.lo) == 0.0  # padded halo contributes 0
        no_pad = GraphModel(nodes=[NodeSpec(
            op="quant_conv2d",
            attrs={"act_scale": 0.1, "act_bits": 8, "act_signed": True,
                   "weight_bits": 8, "stride": 1, "padding": 0,
                   "groups": 1},
            tensors={"weight": w},
        )])
        rec2 = next(iter(analyze_graph(
            no_pad, input_range=(1.0, 2.0)).records.values()))
        assert float(rec2.act.lo) == 10.0  # round(1.0 / 0.1)


class TestWrapSemantics:
    def test_narrow_accmem_flags_wrap_and_widens(self, demo):
        analysis = analyze_graph(demo, accmem_bits=8)
        wrapping = [r for r in analysis.records.values() if r.may_wrap]
        assert wrapping
        for rec in wrapping:
            # post-wrap accumulator sums of full-range blocks
            n_blocks = len(rec.blocks[0])
            assert rec.acc_lo.min() >= -n_blocks * 128
            assert rec.acc_hi.max() <= n_blocks * 127

    def test_derived_bits_reported_pre_wrap(self, demo):
        """The first layer's derived bits ignore the configured width.

        (Only the first: once a layer wraps, its *output* interval is
        the wrapped one, so downstream layers legitimately see
        different -- often narrower -- input ranges.)
        """
        wide = analyze_graph(demo, accmem_bits=64)
        narrow = analyze_graph(demo, accmem_bits=8)
        first = next(iter(wide.records))
        assert (narrow.records[first].derived_bits
                == wide.records[first].derived_bits)

    def test_exactly_enough_bits_does_not_wrap(self):
        w = np.full((2, 8), 1.0)
        graph = GraphModel(nodes=[_quant_linear_node(w)])
        probe = analyze_graph(graph)
        need = next(iter(probe.records.values())).derived_bits
        at = analyze_graph(graph, accmem_bits=need)
        below = analyze_graph(graph, accmem_bits=need - 1)
        assert not next(iter(at.records.values())).may_wrap
        assert next(iter(below.records.values())).may_wrap


class TestStructuralRobustness:
    def test_broken_weight_layer_is_skipped_not_fatal(self):
        graph = GraphModel(nodes=[
            NodeSpec(op="quant_linear",
                     attrs={"act_scale": -1.0, "act_bits": 8,
                            "act_signed": True, "weight_bits": 8},
                     tensors={"weight": np.ones((2, 4))}),
        ])
        analysis = analyze_graph(graph)
        assert not analysis.records  # bad act_scale -> contract's job

    def test_unknown_op_propagates_unknown(self):
        graph = GraphModel(nodes=[
            NodeSpec(op="mystery_op", attrs={}, tensors={}),
        ])
        analysis = analyze_graph(graph, input_range=(-1.0, 1.0))
        label = graph.effective_ids()[0]
        assert math.isinf(float(analysis.node_ranges[label].lo))

    def test_bias_shifts_output_interval(self):
        w = np.full((2, 4), 1.0)
        bias = np.array([10.0, -10.0])
        g_bias = GraphModel(nodes=[_quant_linear_node(w, bias=bias)])
        g_plain = GraphModel(nodes=[_quant_linear_node(w)])
        rb = next(iter(analyze_graph(g_bias).records.values()))
        rp = next(iter(analyze_graph(g_plain).records.values()))
        assert np.array_equal(rb.out.lo, rp.out.lo + bias)
        assert np.array_equal(rb.out.hi, rp.out.hi + bias)
