"""Calibration-cache robustness: damage degrades to recalibration.

Satellite guarantee: corrupt, version-skewed, or digest-mismatched
cache entries are ignored with a structured ``ReliabilityWarning`` and
trigger recalibration -- never a crash, never a silently wrong
calibration.
"""

import dataclasses
import json
import os

import pytest

from repro.analysis.cost import (
    COST_CACHE_ENV,
    COST_SCHEMA_VERSION,
    CostCache,
    calibrate_tile,
    get_tile_calibration,
)
from repro.analysis.cost.calibrate import clear_calibration_memo
from repro.core.config import BlockingParams, MixGemmConfig
from repro.robustness.errors import ReliabilityWarning

CONFIG = MixGemmConfig(bw_a=4, bw_b=4,
                       blocking=BlockingParams(mc=16, nc=16, kc=64))


@pytest.fixture(autouse=True)
def _isolated(tmp_path, monkeypatch):
    monkeypatch.setenv(COST_CACHE_ENV, str(tmp_path / "unused"))
    clear_calibration_memo()
    yield
    clear_calibration_memo()


def _entry_file(cache: CostCache):
    files = list(cache.path.glob("*.json"))
    assert len(files) == 1
    return files[0]


def _warm(tmp_path) -> tuple[CostCache, "os.PathLike"]:
    cache = CostCache(tmp_path / "cost")
    calibration = calibrate_tile(CONFIG)
    cache.put(calibration)
    return cache, _entry_file(cache)


class TestRoundTrip:
    def test_put_then_get_round_trips(self, tmp_path):
        cache, _ = _warm(tmp_path)
        entry = cache.get(CONFIG)
        assert entry is not None
        assert entry.exact
        assert cache.hits == 1

    def test_publish_is_atomic_no_tmp_left_behind(self, tmp_path):
        cache, final = _warm(tmp_path)
        assert final.suffix == ".json"
        assert not list(cache.path.glob("*.tmp"))

    def test_clear_removes_entries(self, tmp_path):
        cache, _ = _warm(tmp_path)
        assert cache.clear() == 1
        assert cache.get(CONFIG) is None


class TestDamage:
    def test_corrupt_json_warns_and_reads_as_miss(self, tmp_path):
        cache, final = _warm(tmp_path)
        final.write_text("{not json at all")
        with pytest.warns(ReliabilityWarning, match="ignoring"):
            assert cache.get(CONFIG) is None

    def test_truncated_payload_warns_and_reads_as_miss(self, tmp_path):
        cache, final = _warm(tmp_path)
        payload = json.loads(final.read_text())
        del payload["slope"]
        final.write_text(json.dumps(payload))
        with pytest.warns(ReliabilityWarning):
            assert cache.get(CONFIG) is None

    def test_version_skew_warns_and_reads_as_miss(self, tmp_path):
        cache, final = _warm(tmp_path)
        payload = json.loads(final.read_text())
        payload["schema"] = COST_SCHEMA_VERSION + 1
        final.write_text(json.dumps(payload))
        with pytest.warns(ReliabilityWarning):
            assert cache.get(CONFIG) is None

    def test_digest_mismatch_warns_and_reads_as_miss(self, tmp_path):
        cache, final = _warm(tmp_path)
        payload = json.loads(final.read_text())
        payload["cost_digest"] = "0" * len(payload["cost_digest"])
        final.write_text(json.dumps(payload))
        with pytest.warns(ReliabilityWarning, match="digest"):
            assert cache.get(CONFIG) is None

    def test_signature_mismatch_warns_and_reads_as_miss(self, tmp_path):
        """An entry whose body describes a different tile is rejected
        even if it landed under this tile's file name."""
        cache, final = _warm(tmp_path)
        other = calibrate_tile(
            dataclasses.replace(CONFIG, bw_a=8, bw_b=8))
        final.write_text(json.dumps(other.as_dict()))
        with pytest.warns(ReliabilityWarning):
            assert cache.get(CONFIG) is None

    def test_damage_triggers_recalibration(self, tmp_path):
        cache, final = _warm(tmp_path)
        final.write_text("{corrupt")
        with pytest.warns(ReliabilityWarning):
            calibration = get_tile_calibration(CONFIG, cache=cache)
        assert calibration.exact
        # The recalibrated entry was re-published and now reads clean.
        fresh = CostCache(cache.path)
        assert fresh.get(CONFIG) is not None

    def test_unreadable_entry_warns_and_reads_as_miss(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root reads through permission bits")
        cache, final = _warm(tmp_path)
        final.chmod(0)
        try:
            with pytest.warns(ReliabilityWarning):
                assert cache.get(CONFIG) is None
        finally:
            final.chmod(0o644)


class TestMemo:
    def test_memo_serves_without_touching_disk(self, tmp_path):
        cache = CostCache(tmp_path / "cost")
        get_tile_calibration(CONFIG, cache=cache)
        for path in cache.path.glob("*.json"):
            path.unlink()
        # Memo hit: no disk read, no recalibration.
        assert get_tile_calibration(CONFIG, cache=cache).exact

    def test_clear_memo_forces_disk_path(self, tmp_path):
        cache = CostCache(tmp_path / "cost")
        get_tile_calibration(CONFIG, cache=cache)
        clear_calibration_memo()
        before = cache.misses
        get_tile_calibration(CONFIG, cache=cache)
        assert cache.hits >= 1
        assert cache.misses == before
