"""Runtime range sanitizer: observed extrema never escape static bounds."""

import threading

import numpy as np
import pytest

from repro.analysis.ranges import (
    RangeTrace,
    analyze_graph,
    crosscheck_ranges,
    observing_ranges,
)
from repro.models.builders import build_tiny
from repro.nn.layers import seed_init
from repro.robustness.faults import demo_graph, demo_input
from repro.runtime.engine import InferenceEngine
from repro.runtime.export_modules import export_model
from repro.runtime.observe import observe_range, set_range_hook
from repro.runtime.plan import compile_graph


@pytest.fixture(scope="module")
def demo():
    return demo_graph()


@pytest.fixture(scope="module")
def demo_x():
    return demo_input()


def _hull(x):
    return float(np.asarray(x).min()), float(np.asarray(x).max())


class TestObserveHook:
    def test_no_hook_is_noop(self):
        assert set_range_hook(None) is None
        observe_range("layer", "act", np.array([1, 2]))  # must not raise

    def test_install_and_restore(self):
        trace = RangeTrace()
        with observing_ranges(trace) as got:
            assert got is trace
            observe_range("l", "act", np.array([-4, 9]))
        observe_range("l", "act", np.array([-100, 100]))  # not recorded
        obs = trace.observations[("l", "act")]
        assert obs.lo == -4.0 and obs.hi == 9.0 and obs.count == 1

    def test_running_extrema_and_counts(self):
        trace = RangeTrace()
        trace("l", "acc", np.array([0, 5]))
        trace("l", "acc", np.array([-7, 3]))
        trace("l", "acc", np.array([]))  # empty: ignored
        obs = trace.observations[("l", "acc")]
        assert obs.lo == -7.0 and obs.hi == 5.0 and obs.count == 2

    def test_thread_safety_exact_extrema(self):
        trace = RangeTrace()
        rng = np.random.default_rng(0)
        chunks = [rng.integers(-1000, 1000, size=64) for _ in range(64)]

        def feed(part):
            for c in part:
                trace("l", "act", c)

        threads = [threading.Thread(target=feed, args=(chunks[i::4],))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        obs = trace.observations[("l", "act")]
        allv = np.concatenate(chunks)
        assert obs.lo == allv.min() and obs.hi == allv.max()
        assert obs.count == 64


class TestCrosscheck:
    def test_plan_run_has_zero_escapes(self, demo, demo_x):
        analysis = analyze_graph(demo, input_range=_hull(demo_x))
        plan = compile_graph(demo, backend="mixgemm")
        with observing_ranges() as trace:
            plan.run(demo_x)
        result = crosscheck_ranges(trace, analysis)
        assert result.ok, result.render()
        assert result.checked > 0
        assert not result.unmatched

    def test_engine_run_has_zero_escapes(self, demo, demo_x):
        analysis = analyze_graph(demo, input_range=_hull(demo_x))
        engine = InferenceEngine(demo, backend="mixgemm")
        with observing_ranges() as trace:
            engine.run(demo_x)
        result = crosscheck_ranges(trace, analysis)
        assert result.ok, result.render()
        assert result.checked > 0

    def test_unbounded_input_analysis_also_contains(self, demo, demo_x):
        analysis = analyze_graph(demo)  # (-inf, inf)
        plan = compile_graph(demo, backend="mixgemm")
        with observing_ranges() as trace:
            plan.run(demo_x)
        assert crosscheck_ranges(trace, analysis).ok

    def test_escape_is_reported_with_diagnostic(self, demo, demo_x):
        analysis = analyze_graph(demo, input_range=_hull(demo_x))
        trace = RangeTrace()
        label = next(iter(analysis.records))
        hi = float(analysis.records[label].acc_hi.max())
        trace(label, "acc", np.array([hi + 1.0]))
        result = crosscheck_ranges(trace, analysis)
        assert not result.ok
        [diag] = result.diagnostics(path="m.json")
        assert diag.rule == "RANGE-OBSERVED" and diag.node == label
        assert "ESCAPE" in result.render()

    def test_unmatched_streams_listed_not_failed(self, demo):
        analysis = analyze_graph(demo)
        trace = RangeTrace()
        trace("no-such-layer", "acc", np.array([1]))
        result = crosscheck_ranges(trace, analysis)
        assert result.ok
        assert result.unmatched == [("no-such-layer", "acc")]

    def test_numpy_backend_is_not_observed(self, demo, demo_x):
        # numpy backend does not wrap; observing it would false-positive
        engine = InferenceEngine(demo, backend="numpy")
        with observing_ranges() as trace:
            engine.run(demo_x)
        assert not trace.observations


@pytest.mark.slow
class TestDifferentialSweep:
    """No false negatives across the full 2..8-bit operand space."""

    def test_demo_full_bitwidth_sweep(self):
        rng = np.random.default_rng(42)
        for act_bits in range(2, 9):
            for weight_bits in range(2, 9):
                graph = demo_graph(act_bits=act_bits,
                                   weight_bits=weight_bits)
                x = demo_input()
                analysis = analyze_graph(graph, input_range=_hull(x))
                plan = compile_graph(graph, backend="mixgemm")
                with observing_ranges() as trace:
                    plan.run(x)
                    plan.run(rng.uniform(-2.3, 1.9, size=x.shape))
                result = crosscheck_ranges(trace, analysis)
                assert result.ok, (
                    f"a{act_bits}/w{weight_bits}: {result.render()}")
                assert result.checked > 0

    @pytest.mark.parametrize("accmem_bits", [8, 10, 12, 16, 24, 64])
    def test_demo_accmem_sweep_with_wrap(self, accmem_bits):
        graph = demo_graph()
        x = demo_input()
        analysis = analyze_graph(graph, accmem_bits=accmem_bits,
                                 input_range=_hull(x))
        plan = compile_graph(graph, backend="mixgemm",
                             accmem_bits=accmem_bits)
        engine = InferenceEngine(graph, backend="mixgemm",
                                 accmem_bits=accmem_bits)
        with observing_ranges() as trace:
            plan.run(x)
            engine.run(x)
        result = crosscheck_ranges(trace, analysis)
        assert result.ok, result.render()

    def test_resnet18_differential_crosscheck(self):
        seed_init(13)
        model = build_tiny("resnet18", act_bits=8, weight_bits=8)
        model.eval()
        graph = export_model(model, name="resnet18")
        rng = np.random.default_rng(7)
        xs = [rng.standard_normal((2, 1, 12, 12)) for _ in range(3)]
        lo = min(float(x.min()) for x in xs)
        hi = max(float(x.max()) for x in xs)
        analysis = analyze_graph(graph, input_range=(lo, hi))
        plan = compile_graph(graph, backend="mixgemm")
        engine = InferenceEngine(graph, backend="mixgemm")
        with observing_ranges() as trace:
            for x in xs:
                plan.run(x)
            engine.run(xs[0])
        result = crosscheck_ranges(trace, analysis)
        assert result.ok, result.render()
        assert result.checked >= len(analysis.records) * 2
