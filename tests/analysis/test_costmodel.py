"""Closed-form cost model: calibration, differential accuracy, API.

The tentpole guarantee under test: for any supported
``(MixGemmConfig, shape)`` the calibrated model predicts the event
engine's cycle count in closed form -- median error < 1%, max < 5%
across the bitwidth sweep (in practice the probed configurations are
bit-exact) -- and the prediction path executes **zero** event-engine
runs once the calibration is warm.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.cost import (
    COST_CACHE_ENV,
    CostCache,
    get_tile_calibration,
    predict_gemm,
    predict_graph_cycles,
)
from repro.analysis.cost import calibrate as calibrate_mod
from repro.analysis.cost.calibrate import (
    HOLDOUT_GROUPS,
    PROBE_GROUPS,
    clear_calibration_memo,
)
from repro.core.config import BlockingParams, MixGemmConfig
from repro.core.fastpath import _tile_timing_engine
from repro.core.gemm import KernelCosts, MixGemm


@pytest.fixture(autouse=True)
def _isolated_cost_cache(tmp_path, monkeypatch):
    """Point the calibration cache at a throwaway directory."""
    monkeypatch.setenv(COST_CACHE_ENV, str(tmp_path / "cost"))
    clear_calibration_memo()
    yield
    clear_calibration_memo()


def _cfg(bw_a, bw_b, kc=64):
    return MixGemmConfig(bw_a=bw_a, bw_b=bw_b,
                         blocking=BlockingParams(mc=16, nc=16, kc=kc))


def _operands(config, m, n, k, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.integers(-(1 << (config.bw_a - 1)), 1 << (config.bw_a - 1),
                     size=(m, k))
    b = rng.integers(-(1 << (config.bw_b - 1)), 1 << (config.bw_b - 1),
                     size=(k, n))
    return a, b


class TestCalibration:
    @pytest.mark.parametrize("bw_a,bw_b",
                             [(8, 8), (8, 4), (6, 4), (5, 3), (2, 2)])
    def test_supported_configs_calibrate_exact(self, bw_a, bw_b):
        calibration = get_tile_calibration(_cfg(bw_a, bw_b))
        assert calibration.exact

    def test_timing_matches_engine_beyond_probes_and_holdouts(self):
        config = _cfg(6, 4)
        costs = KernelCosts()
        calibration = get_tile_calibration(config, costs)
        probed = set(PROBE_GROUPS) | set(HOLDOUT_GROUPS)
        for g in sorted(probed | {7, 20, 50}):
            assert calibration.timing(g) == \
                _tile_timing_engine(
                    dataclasses.replace(config, backend="event"),
                    costs, g), f"g={g}"


class TestPredictGemm:
    @pytest.mark.parametrize("bw_a,bw_b", [(8, 8), (6, 4), (5, 3)])
    @pytest.mark.parametrize("shape", [(16, 16, 96), (12, 8, 128)])
    def test_prediction_matches_event_engine(self, bw_a, bw_b, shape):
        m, n, k = shape
        config = _cfg(bw_a, bw_b)
        a, b = _operands(config, m, n, k)
        measured = MixGemm(config, emulate_datapath=False,
                           backend="event").gemm(a, b)
        breakdown = predict_gemm(config, None, m, n, k)
        assert breakdown.cycles == measured.cycles

    def test_phase_identity_and_instruction_counters(self):
        config = _cfg(6, 4)
        m, n, k = 12, 8, 128
        a, b = _operands(config, m, n, k)
        pmu = MixGemm(config, emulate_datapath=False,
                      backend="event").gemm(a, b).pmu
        bd = predict_gemm(config, None, m, n, k)
        assert bd.phase_identity_holds()
        assert bd.ip_instructions == pmu.ip_instructions
        assert bd.get_instructions == pmu.get_instructions
        assert bd.set_instructions == pmu.set_instructions
        assert bd.macs_issued == pmu.macs
        assert bd.groups == pmu.groups
        assert bd.engine_busy_cycles == pmu.engine_busy_cycles
        assert bd.buffer_full_stall_cycles == pmu.buffer_full_stall_cycles
        assert bd.get_stall_cycles == pmu.get_stall_cycles

    def test_kc_block_structure_is_modelled(self):
        """Deep K crossing several kc blocks still predicts exactly."""
        config = _cfg(8, 8, kc=8)
        m, n, k = 8, 8, 520
        a, b = _operands(config, m, n, k)
        measured = MixGemm(config, emulate_datapath=False,
                           backend="event").gemm(a, b)
        assert predict_gemm(config, None, m, n, k).cycles == \
            measured.cycles

    def test_prediction_runs_zero_engine_executions_when_warm(
            self, monkeypatch):
        config = _cfg(8, 4)
        get_tile_calibration(config)  # warm: the only engine touch
        monkeypatch.setattr(
            calibrate_mod, "_tile_timing_engine",
            lambda *a, **k: pytest.fail(
                "prediction path executed the event engine"))
        bd = predict_gemm(config, None, 32, 16, 256)
        assert bd.cycles > 0

    @pytest.mark.slow
    def test_full_bitwidth_blocking_sweep_within_bounds(self):
        """The tentpole gate: 2..8-bit sweep x kc grid, <1% / <5%."""
        errors = []
        for bw_a in range(2, 9):
            for bw_b in range(2, 9):
                for kc in (8, 64, 256):
                    config = _cfg(bw_a, bw_b, kc=kc)
                    m, n, k = 12, 8, 96
                    a, b = _operands(config, m, n, k)
                    measured = MixGemm(
                        config, emulate_datapath=False,
                        backend="event").gemm(a, b).cycles
                    predicted = predict_gemm(config, None, m, n, k).cycles
                    errors.append(
                        abs(predicted - measured) / max(measured, 1))
        errors.sort()
        assert errors[len(errors) // 2] < 0.01
        assert errors[-1] < 0.05


class TestPredictGraphCycles:
    def test_matches_compiled_plan_execution(self):
        from repro.robustness.faults import demo_graph, demo_input
        from repro.runtime.plan import compile_graph

        graph = demo_graph()
        x = demo_input(batch=1, size=6, seed=0)
        plan = compile_graph(graph, backend="mixgemm")
        run = plan.run(x)
        layer_rows = {}
        per_layer = {}
        for s in run.layer_stats:
            per_layer[s.layer] = per_layer.get(s.layer, 0) + s.cycles
        from repro.analysis.cost.graph import iter_plan_gemms
        for label, _op, gemms in iter_plan_gemms(plan):
            g = gemms[0]
            macs = next(s.macs for s in run.layer_stats
                        if s.layer == label)
            layer_rows[label] = macs // (g.n * g.k)
        cost = predict_graph_cycles(plan, layer_rows=layer_rows)
        assert cost.total_cycles == sum(per_layer.values())
        for layer in cost.layers:
            assert layer.cycles == per_layer[layer.label], layer.label

    def test_layers_partition_total(self):
        from repro.robustness.faults import demo_graph
        from repro.runtime.plan import compile_graph

        plan = compile_graph(demo_graph(), backend="mixgemm")
        cost = predict_graph_cycles(plan)
        assert cost.layers
        assert cost.total_cycles == sum(lc.cycles for lc in cost.layers)
        for layer in cost.layers:
            assert layer.breakdown.phase_identity_holds()

    def test_explicit_cache_instance_is_honoured(self, tmp_path):
        cache = CostCache(tmp_path / "elsewhere")
        calibration = get_tile_calibration(_cfg(4, 4), cache=cache)
        assert calibration.exact
        assert list((tmp_path / "elsewhere").glob("*.json"))
