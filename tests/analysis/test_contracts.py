"""Graph/packing/overflow contracts: one known-bad graph per class."""

import numpy as np
import pytest

from repro.analysis import check_config, check_graph, check_graph_file
from repro.core.config import MixGemmConfig, UVectorLayout
from repro.robustness.faults import demo_graph
from repro.runtime.graph import GraphModel, NodeSpec


def quant_linear(out_features=4, in_features=64, *, act_bits=8,
                 weight_bits=8, act_scale=1.0, weight=None, **attrs):
    if weight is None:
        weight = np.ones((out_features, in_features))
    return NodeSpec(
        op="quant_linear",
        attrs={"act_scale": act_scale, "act_bits": act_bits,
               "act_signed": True, "weight_bits": weight_bits, **attrs},
        tensors={"weight": weight},
    )


def rule_set(report):
    return {d.rule for d in report}


class TestCleanGraphs:
    def test_shipped_demo_graph_is_clean(self):
        report = check_graph(demo_graph())
        assert list(report) == []
        assert report.exit_code() == 0

    def test_default_width_linear_is_clean(self):
        report = check_graph(GraphModel(nodes=[quant_linear()]))
        assert list(report) == []


class TestOverflowContract:
    def test_acc_overflow_on_narrow_accmem(self):
        graph = GraphModel(nodes=[quant_linear(in_features=64)])
        report = check_graph(graph, accmem_bits=20)
        assert "ACC-OVERFLOW" in rule_set(report)
        (diag,) = [d for d in report if d.rule == "ACC-OVERFLOW"]
        assert diag.severity == "error"
        assert diag.node == "n0"
        assert "accmem_bits" in diag.hint

    def test_acc_margin_warning_band(self):
        # K=64, 8x8 signed: worst = 64 * 2^14 = 2^20, needs 22 bits
        # (sign included); at exactly 22 the headroom is under one bit.
        graph = GraphModel(nodes=[quant_linear(in_features=64)])
        report = check_graph(graph, accmem_bits=22)
        assert rule_set(report) == {"ACC-MARGIN"}
        assert report.exit_code() == 0  # warnings don't gate by default

    def test_k_capped_by_cache_block(self):
        # Beyond kc_logical the scalar core folds partials outside
        # AccMem, so doubling K past the block does not change the
        # verdict width.
        small = GraphModel(nodes=[quant_linear(in_features=512)])
        large = GraphModel(nodes=[quant_linear(in_features=1024)])
        for accmem_bits in (24, 25, 26):
            assert (
                "ACC-OVERFLOW" in rule_set(
                    check_graph(small, accmem_bits=accmem_bits))
            ) == (
                "ACC-OVERFLOW" in rule_set(
                    check_graph(large, accmem_bits=accmem_bits))
            )

    def test_conv_k_is_im2col_lowered(self):
        # K = C_in * kh * kw = 8 * 3 * 3 = 72, not C_in alone.
        node = NodeSpec(
            op="quant_conv2d",
            attrs={"act_scale": 1.0, "act_bits": 8, "act_signed": True,
                   "weight_bits": 8, "stride": 1, "padding": 1,
                   "groups": 1},
            tensors={"weight": np.ones((4, 8, 3, 3))},
        )
        assert node.gemm_k() == 72
        report = check_graph(GraphModel(nodes=[node]), accmem_bits=20)
        assert "ACC-OVERFLOW" in rule_set(report)


class TestPackingContract:
    def test_consistent_config_clean(self):
        assert check_config(MixGemmConfig(bw_a=8, bw_b=4)) == []

    def test_out_of_band_ku_is_layout_error(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8, kua=99, kub=1)
        diags = check_config(cfg)
        assert {d.rule for d in diags} == {"PACK-LAYOUT"}
        assert all(d.severity == "error" for d in diags)

    def test_shallow_source_buffer_deadlocks(self):
        cfg = MixGemmConfig(bw_a=8, bw_b=8, kua=2, kub=2,
                            source_buffer_depth=1)
        diags = check_config(cfg)
        assert {d.rule for d in diags} == {"PACK-DEPTH"}

    def test_unbalanced_ku_warns(self):
        cfg = MixGemmConfig(bw_a=2, bw_b=8, kua=1, kub=1)
        diags = check_config(cfg)
        assert {d.rule for d in diags} == {"PACK-PAD"}
        assert all(d.severity == "warning" for d in diags)

    def test_layout_problems_short_circuit_derived_checks(self):
        # A broken layout must not evaluate (or raise on) derived
        # quantities; only PACK-LAYOUT comes back.
        cfg = MixGemmConfig(bw_a=8, bw_b=8, kua=99, kub=99,
                            source_buffer_depth=1)
        assert {d.rule for d in check_config(cfg)} == {"PACK-LAYOUT"}

    def test_layout_consistency_problems_direct(self):
        bad = UVectorLayout(bw_a=8, bw_b=8, kua=1, kub=1, word_bits=4)
        assert any("word_bits" in p for p in bad.consistency_problems())


class TestStructureContract:
    def test_unsupported_op(self):
        graph = GraphModel(nodes=[NodeSpec(op="softmax")])
        assert rule_set(check_graph(graph)) == {"GRF-OP"}

    def test_duplicate_and_reserved_ids(self):
        graph = GraphModel(nodes=[
            NodeSpec(op="relu", id="a"),
            NodeSpec(op="relu", id="a"),
            NodeSpec(op="relu", id="input"),
        ])
        report = check_graph(graph)
        assert rule_set(report) == {"GRF-DUP"}
        assert len(report.errors) == 2

    def test_dangling_reference(self):
        graph = GraphModel(nodes=[
            NodeSpec(op="relu", inputs=["ghost"]),
        ])
        assert rule_set(check_graph(graph)) == {"GRF-DANGLING"}

    def test_forward_reference_is_dangling(self):
        graph = GraphModel(nodes=[
            NodeSpec(op="relu", inputs=["later"], id="first"),
            NodeSpec(op="relu", id="later"),
        ])
        assert "GRF-DANGLING" in rule_set(check_graph(graph))

    def test_arity_violation(self):
        graph = GraphModel(nodes=[
            NodeSpec(op="add", inputs=["input"]),
        ])
        assert rule_set(check_graph(graph)) == {"GRF-ARITY"}

    def test_channel_mismatch_across_edge(self):
        conv = NodeSpec(
            op="conv2d", id="c1",
            attrs={"stride": 1, "padding": 1, "groups": 1},
            tensors={"weight": np.ones((8, 3, 3, 3))},
        )
        # Expects 8 input channels, fed 8-channel conv's... wire a
        # second conv expecting 16.
        conv2 = NodeSpec(
            op="conv2d", id="c2",
            attrs={"stride": 1, "padding": 1, "groups": 1},
            tensors={"weight": np.ones((4, 16, 3, 3))},
        )
        report = check_graph(GraphModel(nodes=[conv, conv2]))
        assert rule_set(report) == {"GRF-SHAPE"}

    def test_bias_size_mismatch(self):
        node = NodeSpec(
            op="linear",
            tensors={"weight": np.ones((4, 8)), "bias": np.ones(5)},
        )
        assert rule_set(check_graph(GraphModel(nodes=[node]))) == {
            "GRF-SHAPE"}


class TestQuantMetadataContract:
    def test_bad_bitwidths(self):
        graph = GraphModel(nodes=[quant_linear(act_bits=16)])
        assert "QNT-BITS" in rule_set(check_graph(graph))

    def test_missing_bits_attr(self):
        node = quant_linear()
        del node.attrs["weight_bits"]
        assert "QNT-BITS" in rule_set(
            check_graph(GraphModel(nodes=[node])))

    def test_bad_scale(self):
        for scale in (0.0, -2.0, float("nan"), float("inf"), None):
            graph = GraphModel(nodes=[quant_linear(act_scale=scale)])
            assert "QNT-SCALE" in rule_set(check_graph(graph)), scale

    def test_missing_weight_tensor(self):
        node = quant_linear()
        del node.tensors["weight"]
        assert "QNT-TENSOR" in rule_set(
            check_graph(GraphModel(nodes=[node])))

    def test_nonfinite_weights(self):
        w = np.ones((4, 64))
        w[0, 0] = np.nan
        graph = GraphModel(nodes=[quant_linear(weight=w)])
        assert "QNT-TENSOR" in rule_set(check_graph(graph))


class TestGraphFileEntry:
    def test_load_and_check(self, tmp_path):
        path = tmp_path / "model.json"
        demo_graph().save(str(path))
        report = check_graph_file(str(path))
        assert report.exit_code() == 0

    def test_unparseable_file_is_grf_parse(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        report = check_graph_file(str(path))
        assert rule_set(report) == {"GRF-PARSE"}
        assert report.exit_code() == 1

    def test_missing_file_is_grf_parse(self, tmp_path):
        report = check_graph_file(str(tmp_path / "nope.json"))
        assert rule_set(report) == {"GRF-PARSE"}
