"""Edge cases of the Eq. 5 overflow contract (``contracts/overflow.py``).

Boundary geometry the integration tests never hit: K=1 layers, cache
blocks deeper than K, strongly asymmetric operand widths, and AccMem
widths sitting exactly on / one below the provable requirement.
"""

import numpy as np
import pytest

from repro.analysis.contracts.overflow import check_overflow, node_config
from repro.core.binseg import accumulator_bits_required
from repro.core.config import BlockingParams
from repro.core.packing import aligned_kc
from repro.runtime.engine import SIM_BLOCKING
from repro.runtime.graph import GraphModel, NodeSpec


def _linear_graph(k, act_bits=8, weight_bits=8):
    return GraphModel(nodes=[NodeSpec(
        op="quant_linear",
        attrs={"act_scale": 1.0, "act_bits": act_bits,
               "act_signed": True, "weight_bits": weight_bits},
        tensors={"weight": np.ones((4, k))},
    )])


def _kc_logical(graph, accmem_bits=64):
    node = graph.nodes[0]
    config = node_config(node, accmem_bits=accmem_bits,
                         blocking=SIM_BLOCKING)
    return aligned_kc(SIM_BLOCKING.kc * config.layout.elems_a,
                      config.layout.group_elements)


def _rules(diags):
    return [d.rule for d in diags]


class TestKEdgeCases:
    def test_k_equals_one_uses_single_product_bound(self):
        graph = _linear_graph(1)
        need = accumulator_bits_required(1, 8, 8)
        at = check_overflow(graph, accmem_bits=need,
                            blocking=SIM_BLOCKING)
        assert "ACC-OVERFLOW" not in _rules(at)
        below = check_overflow(graph, accmem_bits=need - 1,
                               blocking=SIM_BLOCKING)
        assert "ACC-OVERFLOW" in _rules(below)

    def test_kc_deeper_than_k_clamps_to_k(self):
        """kc > K: accumulation depth is K, not the cache block."""
        graph = _linear_graph(4)
        kc = _kc_logical(graph)
        assert kc > 4  # the premise of the test
        need_k = accumulator_bits_required(4, 8, 8)
        need_kc = accumulator_bits_required(kc, 8, 8)
        assert need_k < need_kc
        diags = check_overflow(graph, accmem_bits=need_k,
                               blocking=SIM_BLOCKING)
        assert "ACC-OVERFLOW" not in _rules(diags)

    def test_k_deeper_than_kc_clamps_to_kc(self):
        """K > kc: the scalar core folds blocks outside AccMem."""
        small = BlockingParams(mc=16, nc=16, kc=2)
        graph = _linear_graph(100000)
        kc = aligned_kc(
            small.kc * node_config(graph.nodes[0], accmem_bits=64,
                                   blocking=small).layout.elems_a,
            node_config(graph.nodes[0], accmem_bits=64,
                        blocking=small).layout.group_elements)
        assert kc < 100000
        need_block = accumulator_bits_required(kc, 8, 8)
        diags = check_overflow(graph, accmem_bits=need_block,
                               blocking=small)
        assert "ACC-OVERFLOW" not in _rules(diags)


class TestAsymmetricWidths:
    @pytest.mark.parametrize("act_bits,weight_bits", [(2, 8), (8, 2)])
    def test_two_by_eight_pairs(self, act_bits, weight_bits):
        graph = _linear_graph(64, act_bits=act_bits,
                              weight_bits=weight_bits)
        k_eff = min(64, _kc_logical(graph))
        need = accumulator_bits_required(k_eff, act_bits, weight_bits)
        ok = check_overflow(graph, accmem_bits=need,
                            blocking=SIM_BLOCKING)
        assert "ACC-OVERFLOW" not in _rules(ok)
        bad = check_overflow(graph, accmem_bits=need - 1,
                             blocking=SIM_BLOCKING)
        assert "ACC-OVERFLOW" in _rules(bad)

    def test_asymmetry_is_symmetric_in_required_bits(self):
        # Eq. 5 depends on ba + bw only; 2x8 and 8x2 need the same width
        assert (accumulator_bits_required(64, 2, 8)
                == accumulator_bits_required(64, 8, 2))


class TestBoundaryWidths:
    def test_exactly_required_bits_is_clean_or_margin(self):
        graph = _linear_graph(64)
        k_eff = min(64, _kc_logical(graph))
        need = accumulator_bits_required(k_eff, 8, 8)
        diags = check_overflow(graph, accmem_bits=need,
                               blocking=SIM_BLOCKING)
        rules = _rules(diags)
        assert "ACC-OVERFLOW" not in rules
        # sitting exactly at the bound leaves < 1 spare bit
        assert "ACC-MARGIN" in rules

    def test_one_bit_below_required_overflows(self):
        graph = _linear_graph(64)
        k_eff = min(64, _kc_logical(graph))
        need = accumulator_bits_required(k_eff, 8, 8)
        diags = check_overflow(graph, accmem_bits=need - 1,
                               blocking=SIM_BLOCKING)
        assert "ACC-OVERFLOW" in _rules(diags)
        [overflow] = [d for d in diags if d.rule == "ACC-OVERFLOW"]
        assert f"accmem_bits >= {need}" in overflow.hint

    def test_one_bit_above_required_has_no_margin_warning(self):
        graph = _linear_graph(64)
        k_eff = min(64, _kc_logical(graph))
        need = accumulator_bits_required(k_eff, 8, 8)
        diags = check_overflow(graph, accmem_bits=need + 1,
                               blocking=SIM_BLOCKING)
        assert _rules(diags) == []
