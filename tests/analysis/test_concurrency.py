"""Lockset / lock-order / escape analyzer: units, CLI formats, and the
before/after regressions for the races this PR fixed."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.concurrency import (
    analyze_concurrency,
    check_concurrency,
    default_targets,
    extract_module,
)
from repro.analysis.concurrency.escape import check_escapes
from repro.analysis.concurrency.lockorder import (
    build_lock_order_graph,
    check_lock_order,
)
from repro.analysis.concurrency.lockset import (
    check_locksets,
    entry_locksets,
    init_only_methods,
)
from repro.cli import main

FIXTURES = Path(__file__).parent / "conc_fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def classes_of(source):
    return extract_module(textwrap.dedent(source), "mod.py").classes


def rules_of(source, tmp_path, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return [d.rule for d in check_concurrency([path])]


GUARDED_OK = """
    import threading

    class Box:
        def __init__(self):
            self._lock = threading.Lock()
            self._data = []    # repro: guarded-by(_lock)

        def put(self, item):
            with self._lock:
                self._data.append(item)
"""

HELPER_INHERITS = GUARDED_OK + """
        def extend(self, items):
            with self._lock:
                self._append_all(items)

        def _append_all(self, items):
            for item in items:
                self._data.append(item)
"""


class TestLockset:
    def test_guarded_access_clean(self, tmp_path):
        assert rules_of(GUARDED_OK, tmp_path) == []

    def test_unguarded_access_flagged(self, tmp_path):
        src = GUARDED_OK + """
        def peek(self):
            return list(self._data)
        """
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent(src))
        report = check_concurrency([path])
        assert [d.rule for d in report] == ["CONC-UNGUARDED"]
        diag = list(report)[0]
        assert diag.severity == "error"
        assert "Box._data" in diag.message
        assert "peek" in diag.message
        assert "_lock" in diag.message

    def test_helper_inherits_lock_from_sole_call_site(self, tmp_path):
        assert rules_of(HELPER_INHERITS, tmp_path) == []

    def test_helper_meet_over_mixed_call_sites(self, tmp_path):
        src = HELPER_INHERITS + """
        def sneak(self, items):
            self._append_all(items)
        """
        assert rules_of(src, tmp_path) == ["CONC-UNGUARDED"]

    def test_init_accesses_exempt(self, tmp_path):
        # __init__ populates the guarded list bare: thread-confined.
        src = GUARDED_OK.replace(
            "self._data = []    # repro: guarded-by(_lock)",
            "self._data = []    # repro: guarded-by(_lock)\n"
            "            self._data.append(0)")
        assert rules_of(src, tmp_path) == []

    def test_init_only_helper_exempt(self, tmp_path):
        src = """
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._data = []    # repro: guarded-by(_lock)
                self._seed()

            def _seed(self):
                self._data.append(0)

            def put(self, item):
                with self._lock:
                    self._data.append(item)
        """
        assert rules_of(src, tmp_path) == []

    def test_noqa_suppresses_but_site_is_still_indexed(self, tmp_path):
        src = GUARDED_OK + """
        def peek(self):
            return list(self._data)  # repro: noqa CONC-UNGUARDED
        """
        path = tmp_path / "mod.py"
        path.write_text(textwrap.dedent(src))
        analysis = analyze_concurrency([path])
        assert list(analysis.report) == []
        # Pre-noqa index: the cross-check must still see the verdict.
        assert ("Box", "_data") in analysis.unguarded_sites

    def test_entry_locksets_fixpoint(self):
        cls = classes_of(HELPER_INHERITS)[0]
        entry = entry_locksets(cls)
        assert entry["put"] == frozenset()
        assert entry["_append_all"] == frozenset({"_lock"})

    def test_init_only_methods(self):
        cls = classes_of("""
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._seed()

                def _seed(self):
                    pass

                def api(self):
                    self._seed()
        """)[0]
        # _seed is also called from a public method: not init-only.
        assert init_only_methods(cls) == {"__init__"}


class TestLockOrder:
    def test_fixture_cycle_reports_both_paths(self):
        report = check_concurrency(
            [FIXTURES / "seeded_lockorder.py"])
        diags = list(report)
        assert [d.rule for d in diags] == ["CONC-LOCK-ORDER"]
        message = diags[0].message
        assert ("InvertedOrder._accounts_lock -> "
                "InvertedOrder._journal_lock") in message
        assert ("InvertedOrder._journal_lock -> "
                "InvertedOrder._accounts_lock") in message
        assert "transfer" in message and "audit" in message

    def test_consistent_order_clean(self, tmp_path):
        src = """
        import threading

        class Ordered:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def one(self):
                with self._a:
                    with self._b:
                        return 1

            def two(self):
                with self._a:
                    with self._b:
                        return 2
        """
        assert rules_of(src, tmp_path) == []

    def test_interprocedural_cycle(self, tmp_path):
        src = """
        import threading

        class Chained:
            def __init__(self):
                self._a = threading.Lock()
                self._b = threading.Lock()

            def outer(self):
                with self._a:
                    self._inner()

            def _inner(self):
                with self._b:
                    return 0

            def flipped(self):
                with self._b:
                    with self._a:
                        return 1
        """
        assert "CONC-LOCK-ORDER" in rules_of(src, tmp_path)

    def test_graph_edges_and_witnesses(self):
        classes = []
        module = extract_module(
            (FIXTURES / "seeded_lockorder.py").read_text(),
            str(FIXTURES / "seeded_lockorder.py"))
        classes.extend(module.classes)
        graph = build_lock_order_graph(classes)
        assert graph.successors("InvertedOrder._accounts_lock") == [
            "InvertedOrder._journal_lock"]
        assert len(graph.cycles()) == 1
        assert check_lock_order(classes)[0].line > 0


class TestEscape:
    def test_fixture_mutation_after_handoff(self):
        report = check_concurrency([FIXTURES / "seeded_escape.py"])
        diags = list(report)
        assert [d.rule for d in diags] == ["CONC-ESCAPED-MUTATION"]
        assert "request.deadline" in diags[0].message
        assert "submit" in diags[0].message

    def test_build_then_publish_clean(self, tmp_path):
        src = """
        def dispatch(pool, request):
            request.deadline = 5.0
            return pool.submit(process, request)
        """
        assert rules_of(src, tmp_path) == []

    def test_rebinding_unescapes(self, tmp_path):
        src = """
        def dispatch(pool, request):
            pool.submit(process, request)
            request = fresh()
            request.deadline = 5.0
            return request
        """
        assert rules_of(src, tmp_path) == []

    def test_thread_args_escape(self, tmp_path):
        src = """
        import threading

        def spawn(task):
            thread = threading.Thread(target=run, args=(task,))
            thread.start()
            task.state = "running"
        """
        assert rules_of(src, tmp_path) == ["CONC-ESCAPED-MUTATION"]


class TestSharedUnannotated:
    def test_fixture_warns(self):
        report = check_concurrency([FIXTURES / "seeded_shared.py"])
        diags = list(report)
        assert [d.rule for d in diags] == ["CONC-SHARED-UNANNOTATED"]
        assert diags[0].severity == "warning"
        assert "SharedCounter._count" in diags[0].message


class TestAnnotatedRepoClean:
    """The tentpole acceptance bar: the annotated repo is diagnostic-free."""

    def test_default_targets_clean(self):
        report = check_concurrency(default_targets())
        assert list(report) == []

    def test_guarded_contract_covers_the_serving_stack(self):
        analysis = analyze_concurrency(default_targets())
        assert analysis.guarded[("PackingCache", "_entries")] == "_lock"
        assert analysis.guarded[
            ("BatchedServer", "_closed")] == "_state_lock"
        assert analysis.guarded[
            ("ParallelMixGemm", "_executors")] == "_gemm_lock"


class TestBugFixRegressions:
    """Each satellite race fix, shown as before (flagged) / after (clean)."""

    LEN_BEFORE = """
    import threading
    from collections import OrderedDict

    class PackingCache:
        def __init__(self):
            self._lock = threading.RLock()
            self._entries = OrderedDict()  # repro: guarded-by(_lock)

        def get_or_pack(self, key, packed):
            with self._lock:
                self._entries[key] = packed

        def __len__(self):
            return len(self._entries)
    """

    SUBMIT_BEFORE = """
    import threading

    class BatchedServer:
        def __init__(self):
            self._state_lock = threading.Lock()
            self._closed = False  # repro: guarded-by(_state_lock)

        def submit(self, x):
            if self._closed:
                raise RuntimeError("closed")

        def close(self):
            with self._state_lock:
                self._closed = True
    """

    def test_packcache_len_before_was_unguarded(self, tmp_path):
        assert rules_of(self.LEN_BEFORE, tmp_path) == ["CONC-UNGUARDED"]

    def test_packcache_after_is_clean(self):
        assert list(check_concurrency(
            [REPO_SRC / "core" / "packcache.py"])) == []

    def test_serving_submit_before_raced_close(self, tmp_path):
        assert rules_of(self.SUBMIT_BEFORE, tmp_path) == [
            "CONC-UNGUARDED"]

    def test_serving_after_is_clean(self):
        assert list(check_concurrency(
            [REPO_SRC / "runtime" / "serving.py"])) == []

    def test_parallel_after_is_clean(self):
        assert list(check_concurrency(
            [REPO_SRC / "core" / "parallel.py"])) == []


class TestCli:
    def test_parser_defaults(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["check", "--lint", "src"])
        assert args.concurrency is None
        args = build_parser().parse_args(["check", "--concurrency"])
        assert args.concurrency == []

    def test_default_run_is_clean(self, capsys):
        assert main(["check", "--concurrency"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_unguarded_fixture_text(self, capsys):
        code = main(["check", "--concurrency",
                     str(FIXTURES / "seeded_unguarded.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "CONC-UNGUARDED" in out
        assert "DroppedWith._items" in out

    def test_lockorder_fixture_json(self, capsys):
        code = main(["check", "--concurrency",
                     str(FIXTURES / "seeded_lockorder.py"),
                     "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 1
        assert payload["diagnostics"][0]["rule"] == "CONC-LOCK-ORDER"

    def test_escape_fixture_sarif(self, tmp_path, capsys):
        out_file = tmp_path / "conc.sarif"
        code = main(["check", "--concurrency",
                     str(FIXTURES / "seeded_escape.py"),
                     "--format", "sarif", "--output", str(out_file)])
        assert code == 1
        log = json.loads(out_file.read_text())
        results = log["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == [
            "CONC-ESCAPED-MUTATION"]
        assert results[0]["level"] == "error"
        rule_ids = {r["id"] for r
                    in log["runs"][0]["tool"]["driver"]["rules"]}
        assert {"CONC-UNGUARDED", "CONC-LOCK-ORDER",
                "CONC-ESCAPED-MUTATION"} <= rule_ids

    @pytest.mark.parametrize("fmt", ["text", "json", "sarif"])
    def test_every_fixture_in_every_format(self, fmt, capsys):
        # Each seeded bug survives every output format round-trip.
        expected = {
            "seeded_unguarded.py": "CONC-UNGUARDED",
            "seeded_lockorder.py": "CONC-LOCK-ORDER",
            "seeded_escape.py": "CONC-ESCAPED-MUTATION",
        }
        for name, rule in expected.items():
            main(["check", "--concurrency", str(FIXTURES / name),
                  "--format", fmt])
            assert rule in capsys.readouterr().out

    def test_warning_fixture_gates_on_fail_on(self, capsys):
        target = str(FIXTURES / "seeded_shared.py")
        assert main(["check", "--concurrency", target]) == 0
        assert main(["check", "--concurrency", target,
                     "--fail-on", "warning"]) == 1

    def test_combines_with_lint(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = np.random.rand(2)\n")
        code = main(["check", "--lint", str(bad), "--concurrency",
                     str(FIXTURES / "seeded_unguarded.py")])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP002" in out and "CONC-UNGUARDED" in out

    def test_parse_failure_reported(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        assert main(["check", "--concurrency", str(bad)]) == 1
        assert "CONC-PARSE" in capsys.readouterr().out
