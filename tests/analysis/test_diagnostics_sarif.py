"""Diagnostic/report plumbing and the SARIF 2.1.0 emitter."""

import json

import pytest

from repro.analysis import ALL_RULES
from repro.analysis.diagnostics import (
    AnalysisError,
    Diagnostic,
    DiagnosticReport,
    severity_rank,
)
from repro.analysis.sarif import (
    LEVEL_FOR_SEVERITY,
    SARIF_SCHEMA,
    to_sarif,
    to_sarif_json,
)


def _sample_report() -> DiagnosticReport:
    report = DiagnosticReport()
    report.add(Diagnostic(rule="REP002", severity="error",
                          message="unseeded rng", path="src/x.py",
                          line=12, col=5, hint="seed it"))
    report.add(Diagnostic(rule="ACC-MARGIN", severity="warning",
                          message="thin headroom", node="n3",
                          path="model.json"))
    report.add(Diagnostic(rule="PACK-PAD", severity="info",
                          message="observation"))
    return report


class TestDiagnostic:
    def test_severity_validated_eagerly(self):
        with pytest.raises(AnalysisError):
            Diagnostic(rule="X", severity="fatal", message="m")

    def test_severity_rank_ordering(self):
        assert severity_rank("error") < severity_rank("warning")
        assert severity_rank("warning") < severity_rank("info")

    def test_location_lint_style(self):
        d = Diagnostic(rule="R", severity="error", message="m",
                       path="a.py", line=3, col=7)
        assert d.location() == "a.py:3:7"

    def test_location_graph_style(self):
        d = Diagnostic(rule="R", severity="error", message="m",
                       node="conv1", path="model.json")
        assert d.location() == "model.json:node 'conv1'"

    def test_render_includes_rule_and_hint(self):
        d = Diagnostic(rule="REP004", severity="error", message="bad",
                       hint="fix it")
        assert "[REP004]" in d.render()
        assert "fix it" in d.render()

    def test_to_json_omits_empty_fields(self):
        d = Diagnostic(rule="R", severity="info", message="m")
        assert set(d.to_json()) == {"rule", "severity", "message"}


class TestReport:
    def test_counts_and_accessors(self):
        report = _sample_report()
        assert report.counts() == {"error": 1, "warning": 1, "info": 1}
        assert len(report.errors) == 1
        assert len(report.warnings) == 1

    def test_sorted_severity_first(self):
        severities = [d.severity for d in _sample_report().sorted()]
        assert severities == ["error", "warning", "info"]

    def test_exit_code_thresholds(self):
        report = _sample_report()
        assert report.exit_code(fail_on="error") == 1
        empty = DiagnosticReport()
        assert empty.exit_code() == 0
        warn_only = DiagnosticReport()
        warn_only.add(Diagnostic(rule="R", severity="warning",
                                 message="m"))
        assert warn_only.exit_code(fail_on="error") == 0
        assert warn_only.exit_code(fail_on="warning") == 1

    def test_json_roundtrip(self):
        payload = json.loads(_sample_report().to_json())
        assert payload["counts"]["error"] == 1
        assert payload["diagnostics"][0]["rule"] == "REP002"


class TestSarif:
    def test_top_level_shape(self):
        log = to_sarif(_sample_report())
        assert log["version"] == "2.1.0"
        assert log["$schema"] == SARIF_SCHEMA
        assert len(log["runs"]) == 1
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-check"

    def test_every_rule_registered(self):
        rules = to_sarif(DiagnosticReport())["runs"][0]["tool"][
            "driver"]["rules"]
        ids = {r["id"] for r in rules}
        assert ids == set(ALL_RULES)
        for r in rules:
            assert r["shortDescription"]["text"]

    def test_results_levels_and_locations(self):
        results = to_sarif(_sample_report())["runs"][0]["results"]
        assert [r["level"] for r in results] == [
            "error", "warning", "note"]
        lint = results[0]
        region = lint["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 12, "startColumn": 5}
        graph = results[1]
        logical = graph["locations"][0]["logicalLocations"][0]
        assert logical["name"] == "n3"

    def test_rule_index_consistent(self):
        log = to_sarif(_sample_report())
        run = log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_hint_folded_into_message(self):
        results = to_sarif(_sample_report())["runs"][0]["results"]
        assert "seed it" in results[0]["message"]["text"]

    def test_json_rendering_parses(self):
        parsed = json.loads(to_sarif_json(_sample_report(),
                                          tool_version="1.0.0"))
        assert parsed["runs"][0]["tool"]["driver"]["version"] == "1.0.0"

    def test_level_map_complete(self):
        assert set(LEVEL_FOR_SEVERITY) == {"error", "warning", "info"}


class TestSarifSchemaValidation:
    """Validate against the SARIF 2.1.0 core subset with jsonschema."""

    SCHEMA = {
        "type": "object",
        "required": ["version", "runs"],
        "properties": {
            "version": {"const": "2.1.0"},
            "runs": {
                "type": "array",
                "minItems": 1,
                "items": {
                    "type": "object",
                    "required": ["tool", "results"],
                    "properties": {
                        "tool": {
                            "type": "object",
                            "required": ["driver"],
                            "properties": {
                                "driver": {
                                    "type": "object",
                                    "required": ["name"],
                                    "properties": {
                                        "name": {"type": "string"},
                                        "rules": {"type": "array"},
                                    },
                                },
                            },
                        },
                        "results": {
                            "type": "array",
                            "items": {
                                "type": "object",
                                "required": ["ruleId", "message",
                                             "level"],
                                "properties": {
                                    "ruleId": {"type": "string"},
                                    "level": {
                                        "enum": ["error", "warning",
                                                 "note", "none"],
                                    },
                                    "message": {
                                        "type": "object",
                                        "required": ["text"],
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    }

    def test_validates(self):
        jsonschema = pytest.importorskip("jsonschema")
        jsonschema.validate(to_sarif(_sample_report()), self.SCHEMA)


class TestRuleDedup:
    """Shared rule ids appear exactly once in the SARIF driver."""

    def test_driver_rule_ids_unique(self):
        sarif = to_sarif(_sample_report())
        ids = [r["id"] for r in
               sarif["runs"][0]["tool"]["driver"]["rules"]]
        assert len(ids) == len(set(ids))

    def test_registry_union_has_no_duplicate_ids(self):
        from repro.analysis.astlint import LINT_RULES
        from repro.analysis.concurrency import CONC_RULES
        from repro.analysis.contracts import CONTRACT_RULES
        from repro.analysis.cost import COST_RULES
        from repro.analysis.ranges import RANGES_RULES
        merged = {}
        for registry in (CONTRACT_RULES, LINT_RULES, CONC_RULES,
                         RANGES_RULES, COST_RULES):
            for rid, description in registry.items():
                merged.setdefault(rid, description)
        assert set(merged) == set(ALL_RULES)

    def test_shared_grf_parse_registered_once(self):
        from repro.analysis.contracts import CONTRACT_RULES
        from repro.analysis.ranges import RANGES_RULES
        assert "GRF-PARSE" in CONTRACT_RULES
        assert "GRF-PARSE" in RANGES_RULES
        report = DiagnosticReport()
        report.add(Diagnostic(rule="GRF-PARSE", severity="error",
                              message="m", path="a.json"))
        report.add(Diagnostic(rule="GRF-PARSE", severity="error",
                              message="m", path="b.json"))
        rules = to_sarif(report)["runs"][0]["tool"]["driver"]["rules"]
        matches = [r for r in rules if r["id"] == "GRF-PARSE"]
        assert len(matches) == 1
        # first registration (contracts) supplies the description
        assert matches[0]["shortDescription"]["text"] \
            == CONTRACT_RULES["GRF-PARSE"]

    def test_ranges_rules_present_in_driver(self):
        sarif = to_sarif(_sample_report())
        ids = {r["id"] for r in
               sarif["runs"][0]["tool"]["driver"]["rules"]}
        assert {"RANGE-OVERFLOW", "RANGE-NARROWABLE", "RANGE-EQUIV",
                "RANGE-OBSERVED"} <= ids

    def test_unregistered_rule_gets_synthesized_entry(self):
        report = DiagnosticReport()
        report.add(Diagnostic(rule="X-UNKNOWN", severity="warning",
                              message="mystery"))
        sarif = to_sarif(report)
        rules = sarif["runs"][0]["tool"]["driver"]["rules"]
        [entry] = [r for r in rules if r["id"] == "X-UNKNOWN"]
        assert entry["shortDescription"]["text"] \
            == "(no registered description)"
        [result] = sarif["runs"][0]["results"]
        assert rules[result["ruleIndex"]]["id"] == "X-UNKNOWN"
