"""RANGE-* diagnostics, node noqa, bounds table, and the --ranges CLI."""

import json

import numpy as np
import pytest

from repro.analysis.ranges import (
    analyze_graph,
    check_ranges,
    check_ranges_file,
    node_noqa_rules,
    table_json,
)
from repro.cli import main
from repro.robustness.faults import demo_graph
from repro.runtime.graph import GraphModel, NodeSpec


def _quant_linear(k=64, accmem_noqa=None):
    attrs = {"act_scale": 1.0, "act_bits": 8, "act_signed": True,
             "weight_bits": 8}
    if accmem_noqa is not None:
        attrs["noqa"] = accmem_noqa
    return NodeSpec(op="quant_linear", attrs=attrs,
                    tensors={"weight": np.ones((4, k))})


@pytest.fixture()
def clean_model(tmp_path):
    path = tmp_path / "model.json"
    demo_graph().save(str(path))
    return str(path)


class TestCheckRanges:
    def test_clean_width_reports_narrowable_info(self):
        graph = GraphModel(nodes=[_quant_linear()])
        diags = check_ranges(graph, accmem_bits=64)
        assert [d.rule for d in diags] == ["RANGE-NARROWABLE"]
        assert diags[0].severity == "info"
        assert "Eq. 5" in diags[0].message

    def test_narrow_width_reports_overflow_error(self):
        graph = GraphModel(nodes=[_quant_linear()])
        diags = check_ranges(graph, accmem_bits=8)
        assert [d.rule for d in diags] == ["RANGE-OVERFLOW"]
        assert diags[0].severity == "error"
        assert "reachable inputs wrap" in diags[0].message

    def test_hint_quotes_derived_and_worst_case(self):
        graph = GraphModel(nodes=[_quant_linear()])
        analysis = analyze_graph(graph, accmem_bits=8)
        rec = next(iter(analysis.records.values()))
        [diag] = check_ranges(graph, accmem_bits=8, analysis=analysis)
        assert f"accmem_bits >= {rec.derived_bits}" in diag.hint
        assert str(rec.worst_bits) in diag.hint

    def test_shared_analysis_not_recomputed(self):
        graph = GraphModel(nodes=[_quant_linear()])
        analysis = analyze_graph(graph, accmem_bits=8)
        diags = check_ranges(graph, accmem_bits=64, analysis=analysis)
        # the provided analysis wins over the keyword
        assert [d.rule for d in diags] == ["RANGE-OVERFLOW"]


class TestNodeNoqa:
    def test_no_attr_means_no_suppression(self):
        assert node_noqa_rules(_quant_linear()) is None

    def test_true_suppresses_all(self):
        node = _quant_linear(accmem_noqa=True)
        assert node_noqa_rules(node) == frozenset()
        graph = GraphModel(nodes=[node])
        assert check_ranges(graph, accmem_bits=8) == []

    def test_named_rule_suppresses_only_that_rule(self):
        node = _quant_linear(accmem_noqa=["RANGE-NARROWABLE"])
        graph = GraphModel(nodes=[node])
        assert check_ranges(graph, accmem_bits=64) == []
        # the error rule is NOT suppressed by the info rule's noqa
        assert [d.rule for d in check_ranges(graph, accmem_bits=8)] \
            == ["RANGE-OVERFLOW"]

    def test_string_form_accepted(self):
        node = _quant_linear(accmem_noqa="RANGE-OVERFLOW")
        graph = GraphModel(nodes=[node])
        assert check_ranges(graph, accmem_bits=8) == []

    def test_noqa_survives_serialization(self, tmp_path):
        node = _quant_linear(accmem_noqa=True)
        path = tmp_path / "m.json"
        GraphModel(nodes=[node]).save(str(path))
        diags, analysis = check_ranges_file(str(path), accmem_bits=8)
        assert diags == [] and analysis is not None


class TestCheckRangesFile:
    def test_missing_file_is_grf_parse(self, tmp_path):
        diags, analysis = check_ranges_file(str(tmp_path / "no.json"))
        assert analysis is None
        assert [d.rule for d in diags] == ["GRF-PARSE"]

    def test_corrupt_file_is_grf_parse(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        diags, analysis = check_ranges_file(str(path))
        assert analysis is None and diags[0].rule == "GRF-PARSE"

    def test_verify_plan_flag_runs_equivalence(self, clean_model):
        diags, analysis = check_ranges_file(clean_model,
                                            verify_plan=True)
        assert analysis is not None
        assert not [d for d in diags if d.rule == "RANGE-EQUIV"]


class TestTableJson:
    def test_strict_json_with_unbounded_input(self):
        graph = GraphModel(nodes=[_quant_linear()])
        analysis = analyze_graph(graph)
        payload = json.loads(table_json(analysis))  # must be strict
        assert payload["input_range"] == [None, None]
        [row] = payload["layers"]
        assert row["derived_bits"] <= row["worst_case_bits"]
        assert row["accmem_bits"] == analysis.accmem_bits

    def test_bounded_input_round_trips(self):
        graph = GraphModel(nodes=[_quant_linear()])
        analysis = analyze_graph(graph, input_range=(-2.0, 2.0))
        payload = json.loads(table_json(analysis))
        assert payload["input_range"] == [-2.0, 2.0]


class TestRangesCli:
    def test_clean_model_exits_zero(self, clean_model, capsys):
        assert main(["check", "--ranges", clean_model]) == 0
        assert "RANGE-NARROWABLE" in capsys.readouterr().out

    def test_narrow_accmem_fails(self, clean_model, capsys):
        code = main(["check", "--ranges", clean_model,
                     "--accmem-bits", "10"])
        assert code == 1
        assert "RANGE-OVERFLOW" in capsys.readouterr().out

    def test_fail_on_info_gates_narrowable(self, clean_model):
        assert main(["check", "--ranges", clean_model,
                     "--fail-on", "info"]) == 1

    def test_input_range_and_table(self, clean_model, tmp_path,
                                   capsys):
        table = tmp_path / "table.json"
        code = main(["check", "--ranges", clean_model,
                     "--input-range", "-3", "3",
                     "--ranges-table", str(table)])
        assert code == 0
        payload = json.loads(table.read_text())
        assert payload["input_range"] == [-3.0, 3.0]
        assert payload["layers"]

    def test_verify_plan_flag(self, clean_model):
        assert main(["check", "--ranges", clean_model,
                     "--verify-plan"]) == 0

    def test_sarif_format(self, clean_model, capsys):
        assert main(["check", "--ranges", clean_model,
                     "--format", "sarif"]) == 0
        log = json.loads(capsys.readouterr().out)
        ids = [r["id"] for r in
               log["runs"][0]["tool"]["driver"]["rules"]]
        assert "RANGE-NARROWABLE" in ids
        assert len(ids) == len(set(ids))

    def test_missing_model_is_parse_error_exit(self, tmp_path,
                                               capsys):
        code = main(["check", "--ranges",
                     str(tmp_path / "missing.json")])
        assert code == 1  # GRF-PARSE is an error diagnostic
        assert "GRF-PARSE" in capsys.readouterr().out
