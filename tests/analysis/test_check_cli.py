"""``repro check`` end to end: targets, formats, exit-code gates."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.robustness.faults import demo_graph
from repro.runtime.graph import GraphModel, NodeSpec


@pytest.fixture()
def clean_model(tmp_path):
    path = tmp_path / "model.json"
    demo_graph().save(str(path))
    return str(path)


@pytest.fixture()
def overflowing_model(tmp_path):
    graph = GraphModel(nodes=[NodeSpec(
        op="quant_linear",
        attrs={"act_scale": 1.0, "act_bits": 8, "act_signed": True,
               "weight_bits": 8},
        tensors={"weight": np.ones((4, 64))},
    )])
    path = tmp_path / "overflow.json"
    graph.save(str(path))
    return str(path)


class TestParser:
    def test_check_registered(self):
        args = build_parser().parse_args(["check", "--lint", "src"])
        assert callable(args.func)
        assert args.lint == ["src"]

    def test_defaults(self):
        args = build_parser().parse_args(["check", "--graph", "m.json"])
        assert args.format == "text"
        assert args.fail_on == "error"
        assert args.accmem_bits is None


class TestCheckCommand:
    def test_no_targets_is_usage_error(self, capsys):
        assert main(["check"]) == 2
        assert "nothing to check" in capsys.readouterr().err

    def test_clean_graph_exits_zero(self, clean_model, capsys):
        assert main(["check", "--graph", clean_model]) == 0
        assert "clean" in capsys.readouterr().out

    def test_overflow_graph_fails_with_acc_overflow(
            self, overflowing_model, capsys):
        code = main(["check", "--graph", overflowing_model,
                     "--accmem-bits", "20"])
        out = capsys.readouterr().out
        assert code == 1
        assert "ACC-OVERFLOW" in out

    def test_same_graph_passes_at_default_width(self, overflowing_model):
        assert main(["check", "--graph", overflowing_model]) == 0

    def test_lint_repo_src_passes(self, capsys):
        src = str(Path(__file__).resolve().parents[2] / "src")
        assert main(["check", "--lint", src]) == 0

    def test_lint_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("class E(ValueError):\n    pass\n")
        assert main(["check", "--lint", str(bad)]) == 1
        assert "REP001" in capsys.readouterr().out

    def test_missing_lint_target_is_usage_error(self, capsys):
        assert main(["check", "--lint", "/no/such/path"]) == 2

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = np.random.rand(2)\n")
        assert main(["check", "--lint", str(bad),
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 1
        assert payload["diagnostics"][0]["rule"] == "REP002"

    def test_sarif_output_file(self, tmp_path, clean_model, capsys):
        out_file = tmp_path / "report.sarif"
        assert main(["check", "--graph", clean_model,
                     "--format", "sarif",
                     "--output", str(out_file)]) == 0
        log = json.loads(out_file.read_text())
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"] == []
        assert str(out_file) in capsys.readouterr().out

    def test_sarif_records_findings(self, tmp_path, overflowing_model):
        out_file = tmp_path / "report.sarif"
        main(["check", "--graph", overflowing_model,
              "--accmem-bits", "20", "--format", "sarif",
              "--output", str(out_file)])
        results = json.loads(out_file.read_text())["runs"][0]["results"]
        assert any(r["ruleId"] == "ACC-OVERFLOW"
                   and r["level"] == "error" for r in results)

    def test_fail_on_warning_gates_warnings(self, tmp_path):
        graph = GraphModel(nodes=[NodeSpec(
            op="quant_linear",
            attrs={"act_scale": 1.0, "act_bits": 8, "act_signed": True,
                   "weight_bits": 8},
            tensors={"weight": np.ones((4, 64))},
        )])
        path = tmp_path / "margin.json"
        graph.save(str(path))
        # 22 bits: fits, but with <1 bit of headroom -> ACC-MARGIN.
        assert main(["check", "--graph", str(path),
                     "--accmem-bits", "22"]) == 0
        assert main(["check", "--graph", str(path),
                     "--accmem-bits", "22",
                     "--fail-on", "warning"]) == 1

    def test_combined_graph_and_lint(self, clean_model, tmp_path,
                                     capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("try:\n    f()\nexcept:\n    pass\n")
        assert main(["check", "--graph", clean_model,
                     "--lint", str(bad)]) == 1
        assert "REP004" in capsys.readouterr().out

    def test_unparseable_model_reported(self, tmp_path, capsys):
        path = tmp_path / "corrupt.json"
        path.write_text("]")
        assert main(["check", "--graph", str(path)]) == 1
        assert "GRF-PARSE" in capsys.readouterr().out


class TestExitCodeConsistency:
    """--fail-on and usage errors behave the same across every pass."""

    def test_missing_lint_target_is_usage_error(self, capsys):
        assert main(["check", "--lint", "/nonexistent/path.py"]) == 2
        err = capsys.readouterr().err
        assert "nonexistent" in err and "Traceback" not in err

    def test_missing_concurrency_target_is_usage_error(self, capsys):
        assert main(["check",
                     "--concurrency", "/nonexistent/path.py"]) == 2
        err = capsys.readouterr().err
        assert "nonexistent" in err and "Traceback" not in err

    def test_usage_error_still_renders_other_findings(
            self, clean_model, capsys):
        """A broken target in one pass must not swallow findings
        from the passes that did run."""
        code = main(["check", "--lint", "/nonexistent/path.py",
                     "--ranges", clean_model,
                     "--accmem-bits", "10"])
        captured = capsys.readouterr()
        assert code == 2  # usage error outranks the findings gate
        assert "RANGE-OVERFLOW" in captured.out

    def test_fail_on_uniform_across_combined_passes(
            self, clean_model, tmp_path):
        quiet = tmp_path / "quiet.py"
        quiet.write_text("x = 1\n")
        argv = ["check", "--graph", clean_model,
                "--lint", str(quiet),
                "--ranges", clean_model]
        # RANGE-NARROWABLE info findings exist in the merged report:
        # gated out at the default threshold, fatal under --fail-on info
        assert main(argv) == 0
        assert main(argv + ["--fail-on", "info"]) == 1

    def test_fail_on_error_ignores_range_infos(self, clean_model):
        assert main(["check", "--ranges", clean_model,
                     "--fail-on", "error"]) == 0

    def test_nothing_to_check_mentions_ranges(self, capsys):
        main(["check"])
        assert "--ranges" in capsys.readouterr().err


class TestRep011Fixture:
    """The seeded SharedMemory-leak fixture fires in every format."""

    @pytest.fixture()
    def leaky_runtime_file(self, tmp_path):
        fixture = (Path(__file__).parent / "lint_fixtures"
                   / "seeded_shm_leak.py")
        runtime_dir = tmp_path / "runtime"
        runtime_dir.mkdir()
        target = runtime_dir / "shm_leak.py"
        target.write_text(fixture.read_text())
        return str(target)

    def test_text_format(self, leaky_runtime_file, capsys):
        assert main(["check", "--lint", leaky_runtime_file]) == 1
        out = capsys.readouterr().out
        assert "REP011" in out
        assert "close()/unlink()" in out

    def test_json_format(self, leaky_runtime_file, capsys):
        assert main(["check", "--lint", leaky_runtime_file,
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 1
        diag = payload["diagnostics"][0]
        assert diag["rule"] == "REP011"
        assert diag["path"] == leaky_runtime_file

    def test_sarif_format(self, leaky_runtime_file, tmp_path):
        out_file = tmp_path / "report.sarif"
        assert main(["check", "--lint", leaky_runtime_file,
                     "--format", "sarif",
                     "--output", str(out_file)]) == 1
        run = json.loads(out_file.read_text())["runs"][0]
        results = run["results"]
        assert any(r["ruleId"] == "REP011" and r["level"] == "error"
                   for r in results)
        rule_ids = {r["id"] for r in
                    run["tool"]["driver"]["rules"]}
        assert "REP011" in rule_ids

    def test_fixture_in_place_is_exempt(self):
        """Under tests/ the fixture itself must not fail the lint."""
        fixture = (Path(__file__).parent / "lint_fixtures"
                   / "seeded_shm_leak.py")
        assert main(["check", "--lint", str(fixture)]) == 0


class TestRep012Fixture:
    """The seeded non-atomic cache writer fires in every format."""

    @pytest.fixture()
    def torn_cache_file(self, tmp_path):
        fixture = (Path(__file__).parent / "lint_fixtures"
                   / "seeded_nonatomic_cache.py")
        tuning_dir = tmp_path / "tuning"
        tuning_dir.mkdir()
        target = tuning_dir / "cache.py"
        target.write_text(fixture.read_text())
        return str(target)

    def test_text_format(self, torn_cache_file, capsys):
        assert main(["check", "--lint", torn_cache_file]) == 1
        out = capsys.readouterr().out
        assert "REP012" in out
        assert "os.replace" in out

    def test_json_format(self, torn_cache_file, capsys):
        assert main(["check", "--lint", torn_cache_file,
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 1
        diag = payload["diagnostics"][0]
        assert diag["rule"] == "REP012"
        assert diag["path"] == torn_cache_file

    def test_sarif_format(self, torn_cache_file, tmp_path):
        out_file = tmp_path / "report.sarif"
        assert main(["check", "--lint", torn_cache_file,
                     "--format", "sarif",
                     "--output", str(out_file)]) == 1
        run = json.loads(out_file.read_text())["runs"][0]
        assert any(r["ruleId"] == "REP012" and r["level"] == "error"
                   for r in run["results"])
        rule_ids = {r["id"] for r in
                    run["tool"]["driver"]["rules"]}
        assert "REP012" in rule_ids

    def test_fixture_in_place_is_exempt(self):
        """Under tests/ the fixture itself must not fail the lint."""
        fixture = (Path(__file__).parent / "lint_fixtures"
                   / "seeded_nonatomic_cache.py")
        assert main(["check", "--lint", str(fixture)]) == 0

    def test_shipped_tuning_cache_is_clean(self):
        cache_mod = (Path(__file__).resolve().parents[2]
                     / "src" / "repro" / "tuning" / "cache.py")
        assert main(["check", "--lint", str(cache_mod)]) == 0


class TestCostPass:
    """``--cost``: standalone, combined, all three formats, --fail-on."""

    @pytest.fixture(autouse=True)
    def _isolated_cost_cache(self, tmp_path, monkeypatch):
        from repro.analysis.cost import COST_CACHE_ENV
        from repro.analysis.cost.calibrate import clear_calibration_memo

        monkeypatch.setenv(COST_CACHE_ENV, str(tmp_path / "costcache"))
        clear_calibration_memo()
        yield
        clear_calibration_memo()

    @pytest.fixture()
    def narrow_model(self, tmp_path):
        """One quant_linear whose N=4 cannot feed 4 workers."""
        graph = GraphModel(nodes=[NodeSpec(
            op="quant_linear",
            attrs={"act_scale": 0.05, "act_bits": 8, "act_signed": True,
                   "weight_bits": 8},
            tensors={"weight": np.ones((4, 256)) * 0.05},
        )])
        path = tmp_path / "narrow.json"
        graph.save(str(path))
        return str(path)

    def test_clean_model_exits_zero(self, clean_model, capsys):
        assert main(["check", "--cost", clean_model]) == 0
        assert "clean" in capsys.readouterr().out

    def test_imbalance_is_warning_gated_by_fail_on(self, narrow_model):
        assert main(["check", "--cost", narrow_model,
                     "--cost-workers", "4"]) == 0
        assert main(["check", "--cost", narrow_model,
                     "--cost-workers", "4",
                     "--fail-on", "warning"]) == 1

    def test_json_format(self, narrow_model, capsys):
        main(["check", "--cost", narrow_model, "--cost-workers", "4",
              "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert any(d["rule"] == "COST-IMBALANCE"
                   for d in payload["diagnostics"])

    def test_sarif_format_registers_cost_rules(self, narrow_model,
                                               tmp_path):
        out_file = tmp_path / "cost.sarif"
        main(["check", "--cost", narrow_model, "--cost-workers", "4",
              "--format", "sarif", "--output", str(out_file)])
        run = json.loads(out_file.read_text())["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        rule_ids = [r["id"] for r in rules]
        for rid in ("COST-MODEL-DRIFT", "COST-BLOCKING-INEFFICIENT",
                    "COST-IMBALANCE"):
            assert rid in rule_ids
        # ruleIndex convention: every result resolves into the
        # driver's rule array at the id it names.
        for result in run["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]
        assert any(r["ruleId"] == "COST-IMBALANCE"
                   and r["level"] == "warning" for r in run["results"])

    def test_combined_with_other_passes(self, clean_model, narrow_model,
                                        tmp_path, capsys):
        quiet = tmp_path / "quiet.py"
        quiet.write_text("x = 1\n")
        assert main(["check", "--graph", clean_model,
                     "--lint", str(quiet),
                     "--ranges", clean_model,
                     "--cost", narrow_model,
                     "--cost-workers", "4",
                     "--fail-on", "warning"]) == 1
        assert "COST-IMBALANCE" in capsys.readouterr().out

    def test_missing_model_is_grf_parse(self, tmp_path, capsys):
        assert main(["check",
                     "--cost", str(tmp_path / "nope.json")]) == 1
        assert "GRF-PARSE" in capsys.readouterr().out

    def test_nothing_to_check_mentions_cost(self, capsys):
        main(["check"])
        assert "--cost" in capsys.readouterr().err


class TestRep013Fixture:
    """The seeded cycle-cost fixture fires in every format."""

    @pytest.fixture()
    def costly_file(self, tmp_path):
        fixture = (Path(__file__).parent / "lint_fixtures"
                   / "seeded_cycle_cost.py")
        target = tmp_path / "sched" / "cycle_cost.py"
        target.parent.mkdir()
        target.write_text(fixture.read_text())
        return str(target)

    def test_text_format(self, costly_file, capsys):
        assert main(["check", "--lint", costly_file]) == 1
        out = capsys.readouterr().out
        assert "REP013" in out
        assert "ISA cost table" in out

    def test_json_format(self, costly_file, capsys):
        assert main(["check", "--lint", costly_file,
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        rep013 = [d for d in payload["diagnostics"]
                  if d["rule"] == "REP013"]
        assert len(rep013) == 3
        assert all(d["path"] == costly_file for d in rep013)

    def test_sarif_format(self, costly_file, tmp_path):
        out_file = tmp_path / "report.sarif"
        assert main(["check", "--lint", costly_file,
                     "--format", "sarif",
                     "--output", str(out_file)]) == 1
        run = json.loads(out_file.read_text())["runs"][0]
        assert any(r["ruleId"] == "REP013" and r["level"] == "error"
                   for r in run["results"])
        assert "REP013" in {r["id"] for r in
                            run["tool"]["driver"]["rules"]}

    def test_noqa_respected_end_to_end(self, tmp_path):
        target = tmp_path / "pkg" / "timing.py"
        target.parent.mkdir()
        target.write_text(
            "wakeup_latency = 9  # repro: noqa REP013\n")
        assert main(["check", "--lint", str(target)]) == 0
