"""Seeded REP011 violation: SharedMemory created, never cleaned up.

The check-CLI tests copy this file under a ``runtime/`` directory (the
rule is scoped to the serving runtime; everything under ``tests/`` is
exempt in place) and assert the finding renders in text, JSON and
SARIF.  Intentionally broken -- do not "fix" it.
"""

from multiprocessing import shared_memory


def publish_plan(payload: bytes):
    # Bug on purpose: no close()/unlink() pairing anywhere -- on any
    # exit path this segment stays behind in /dev/shm.
    shm = shared_memory.SharedMemory(create=True, size=len(payload))
    shm.buf[:len(payload)] = payload
    return shm.name
