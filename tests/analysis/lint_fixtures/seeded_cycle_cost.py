"""Seeded REP013 fixture: hard-coded cycle costs outside the ISA table.

Every latency/cost literal below must be reported when this file is
linted from a non-test path; in place under ``tests/`` it is exempt.
"""


def dispatch(queue, issue_latency=3):          # REP013: default
    return queue.pop(issue_latency)


def schedule(run):
    stall_cycles = 17                          # REP013: assignment
    run(drain_cost=2)                          # REP013: keyword
    return stall_cycles
