"""Seeded REP012 violation: cache entry written without os.replace.

The check-CLI tests copy this file to ``<tmp>/tuning/cache.py`` (the
rule is scoped to the persistent tuning cache; everything under
``tests/`` is exempt in place) and assert the finding renders in text,
JSON and SARIF.  Intentionally broken -- do not "fix" it.
"""

import json


def save_entry(path, payload: dict):
    # Bug on purpose: writes the final file in place.  A reader racing
    # this writer (or a crash mid-dump) sees a torn JSON file.
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
