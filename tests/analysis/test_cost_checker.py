"""COST-* diagnostics: drift, blocking inefficiency, slice imbalance."""

import numpy as np
import pytest

from repro.analysis.cost import COST_CACHE_ENV, check_cost, check_cost_file
from repro.analysis.cost.calibrate import clear_calibration_memo
from repro.core.config import BlockingParams
from repro.runtime.graph import GraphModel, NodeSpec


@pytest.fixture(autouse=True)
def _isolated_cost_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(COST_CACHE_ENV, str(tmp_path / "cost"))
    clear_calibration_memo()
    yield
    clear_calibration_memo()


def _linear_graph(n_out=16, k=256, bits=8):
    rng = np.random.default_rng(0)
    node = NodeSpec(op="quant_linear", attrs={
        "act_bits": bits, "weight_bits": bits,
        "act_signed": True, "act_scale": 0.05})
    node.tensors["weight"] = rng.standard_normal((n_out, k)) * 0.05
    return GraphModel(nodes=[node], name="one-linear")


class TestCleanGraph:
    def test_default_deployment_is_clean(self):
        report = check_cost(_linear_graph())
        assert not report.diagnostics

    def test_non_quant_nodes_are_skipped(self):
        graph = GraphModel(nodes=[NodeSpec(op="relu", attrs={})])
        assert not check_cost(graph).diagnostics


class TestBlockingInefficient:
    def test_tiny_kc_on_deep_layer_fires(self):
        # kc=1 forces a kc-block (and its C-update epilogue) per
        # handful of K elements: far off the analytic optimum.
        report = check_cost(
            _linear_graph(k=2048),
            blocking=BlockingParams(mc=16, nc=16, kc=1))
        rules = [d.rule for d in report.diagnostics]
        assert "COST-BLOCKING-INEFFICIENT" in rules
        (diag,) = [d for d in report.diagnostics
                   if d.rule == "COST-BLOCKING-INEFFICIENT"]
        assert "tune toward" in diag.hint

    def test_reasonable_blocking_does_not_fire(self):
        report = check_cost(
            _linear_graph(k=2048),
            blocking=BlockingParams(mc=16, nc=16, kc=256))
        assert "COST-BLOCKING-INEFFICIENT" not in \
            [d.rule for d in report.diagnostics]


class TestImbalance:
    def test_idle_workers_fire(self):
        # N=4 with nr=4: one slice, three idle workers.
        report = check_cost(_linear_graph(n_out=4), workers=4)
        diags = [d for d in report.diagnostics
                 if d.rule == "COST-IMBALANCE"]
        assert diags and "no columns" in diags[0].message

    def test_ragged_tail_slice_fires(self):
        # N=36, nr=4, 4 workers -> nr-aligned chunk 12: slices of
        # 12/12/12 would balance, but N=20 gives 12+8: 33% skew.
        report = check_cost(_linear_graph(n_out=20), workers=2)
        diags = [d for d in report.diagnostics
                 if d.rule == "COST-IMBALANCE"]
        assert diags and "lighter than the slowest" in diags[0].message

    def test_balanced_partition_is_silent(self):
        report = check_cost(_linear_graph(n_out=32), workers=2)
        assert "COST-IMBALANCE" not in \
            [d.rule for d in report.diagnostics]

    def test_single_worker_never_fires(self):
        report = check_cost(_linear_graph(n_out=4), workers=1)
        assert "COST-IMBALANCE" not in \
            [d.rule for d in report.diagnostics]


class TestDrift:
    def test_inexact_calibration_reports_drift_once_per_config(
            self, monkeypatch):
        import repro.analysis.cost.checker as checker_mod

        real = checker_mod.get_tile_calibration

        def inexact(config, costs=None, cache=None):
            import dataclasses
            return dataclasses.replace(real(config, costs, cache),
                                       exact=False)

        monkeypatch.setattr(checker_mod, "get_tile_calibration", inexact)
        graph = GraphModel(nodes=[_linear_graph().nodes[0],
                                  _linear_graph().nodes[0]],
                           name="two-linears")
        report = check_cost(graph)
        drift = [d for d in report.diagnostics
                 if d.rule == "COST-MODEL-DRIFT"]
        assert len(drift) == 1
        assert drift[0].severity == "error"
        assert "cost cache" in drift[0].hint


class TestFileEntry:
    def test_missing_file_is_grf_parse(self, tmp_path):
        report = check_cost_file(str(tmp_path / "nope.json"))
        (diag,) = report.diagnostics
        assert diag.rule == "GRF-PARSE"

    def test_good_file_round_trips(self, tmp_path):
        path = tmp_path / "m.json"
        _linear_graph(n_out=4).save(str(path))
        report = check_cost_file(str(path), workers=4)
        assert any(d.rule == "COST-IMBALANCE" for d in report.diagnostics)
        assert all(d.path == str(path) for d in report.diagnostics)
