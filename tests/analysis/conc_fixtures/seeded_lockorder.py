"""Seeded bug: transfer() and audit() take the two locks in opposite
order -- one thread in each and both block forever."""

import threading


class InvertedOrder:
    def __init__(self):
        self._accounts_lock = threading.Lock()
        self._journal_lock = threading.Lock()
        self._balance = 0           # repro: guarded-by(_accounts_lock)
        self._entries = []          # repro: guarded-by(_journal_lock)

    def transfer(self, amount):
        with self._accounts_lock:
            self._balance -= amount
            with self._journal_lock:
                self._entries.append(amount)

    def audit(self):
        with self._journal_lock:
            count = len(self._entries)
            with self._accounts_lock:
                return (count, self._balance)
