"""Seeded bug: the parent keeps mutating a request it already handed
to a worker thread -- the worker may observe either state."""


def dispatch(pool, request):
    future = pool.submit(process, request)
    request.deadline = 5.0
    return future


def process(request):
    return request.deadline
