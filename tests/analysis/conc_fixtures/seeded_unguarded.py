"""Seeded bug: the ``with self._lock:`` around drain() was removed.

``add()`` shows the correct discipline; ``drain()`` reads the
annotated list bare -- the analyzer must flag exactly that access.
"""

import threading


class DroppedWith:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = []            # repro: guarded-by(_lock)

    def add(self, item):
        with self._lock:
            self._items.append(item)

    def drain(self):
        items = list(self._items)
        return items
