"""Seeded smell: a counter mutated from both the worker callable and a
public method, with no guarded-by contract to check."""

from concurrent.futures import ThreadPoolExecutor


class SharedCounter:
    def __init__(self):
        self._pool = ThreadPoolExecutor(max_workers=2)
        self._count = 0

    def kick(self):
        self._pool.submit(self._work)

    def _work(self):
        self._count += 1

    def reset(self):
        self._count = 0
