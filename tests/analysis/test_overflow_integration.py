"""The static ACC-OVERFLOW verdict matches runtime truth.

The acceptance criterion for the checker: on a graph the checker
condemns, the dynamic engine *really wraps* (simulated output diverges
from the exact integer reference); on a graph the checker clears at the
default 64-bit width, the engine is bit-exact.  Static analysis here is
a proof about the simulator, not a lint heuristic.
"""

import numpy as np
import pytest

from repro.analysis import check_graph
from repro.core.binseg import (
    accumulator_bits_required,
    worst_case_inner_product,
)
from repro.robustness.errors import GuardError
from repro.robustness.faults import FaultPlan, FaultSpec
from repro.robustness.recovery import RecoveryPolicy
from repro.runtime.engine import InferenceEngine
from repro.runtime.graph import GraphModel, NodeSpec

K = 64  # inner dimension; well inside one SIM_BLOCKING cache block


def hot_graph():
    """A quant_linear whose worst case is *achievable* at runtime.

    act_scale=1 with inputs at 127 quantizes activations to the int8
    max; all-equal positive weights absmax-quantize to exactly +127.
    The K=64 accumulation then reaches 64*127*127 = 1,032,256 -- above
    what a 20-bit AccMem register can hold (2^19 - 1 = 524,287).
    """
    return GraphModel(nodes=[NodeSpec(
        op="quant_linear", id="fc",
        attrs={"act_scale": 1.0, "act_bits": 8, "act_signed": True,
               "weight_bits": 8},
        tensors={"weight": np.full((4, K), 127.0)},
    )])


def hot_input():
    return np.full((2, K), 127.0)


def run_both(accmem_bits):
    graph = hot_graph()
    x = hot_input()
    reference = InferenceEngine(graph, backend="numpy").run(x).output
    simulated = InferenceEngine(
        graph, backend="mixgemm", accmem_bits=accmem_bits).run(x).output
    return reference, simulated


class TestStaticVerdictMatchesRuntime:
    def test_checker_condemns_narrow_accmem(self):
        report = check_graph(hot_graph(), accmem_bits=20)
        rules = {d.rule for d in report}
        assert "ACC-OVERFLOW" in rules
        assert report.exit_code() == 1

    def test_engine_really_wraps_at_condemned_width(self):
        reference, simulated = run_both(accmem_bits=20)
        # Exact worst case: every slot accumulates 64 * 127 * 127,
        # wrapped into 20-bit two's complement.
        total = K * 127 * 127
        wrapped = ((total + (1 << 19)) % (1 << 20)) - (1 << 19)
        assert np.all(reference == total)
        assert np.all(simulated == wrapped)
        assert wrapped != total  # the wrap actually corrupted the output

    def test_checker_clears_default_width(self):
        report = check_graph(hot_graph())
        assert list(report) == []

    def test_engine_exact_at_cleared_width(self):
        reference, simulated = run_both(accmem_bits=64)
        assert np.array_equal(reference, simulated)

    def test_static_bound_brackets_the_achieved_value(self):
        # worst_case_inner_product is an upper bound on what the run
        # achieved, and the achieved value already overflows -- so the
        # static verdict is neither vacuous nor overly conservative
        # here.
        bound = worst_case_inner_product(K, 8, 8)
        achieved = K * 127 * 127
        assert achieved <= bound
        assert achieved > (1 << 19) - 1

    def test_required_bits_hint_is_sufficient(self):
        need = accumulator_bits_required(K, 8, 8)
        reference, simulated = run_both(accmem_bits=need)
        assert np.array_equal(reference, simulated)
        assert check_graph(hot_graph(),
                           accmem_bits=need).errors == []


class TestRangeGuardSeesTheWrap:
    def test_guarded_run_degrades_instead_of_lying(self):
        # The 'standard' range guard bounds |C| by k*max|a|*max|w|; a
        # wrapped accumulator lands inside that bound here, so guards
        # alone cannot catch it -- which is exactly why the *static*
        # checker exists.  Full shadow verification, however, must
        # detect the divergence and fall back to the exact reference.
        graph = hot_graph()
        x = hot_input()
        import warnings

        from repro.robustness.errors import ReliabilityWarning

        engine = InferenceEngine(graph, backend="mixgemm",
                                 guard_level="full", accmem_bits=20)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", ReliabilityWarning)
            result = engine.run(x)
        reference = InferenceEngine(graph, backend="numpy").run(x).output
        assert np.array_equal(result.output, reference)
        assert any(e.detected_by == "shadow"
                   for e in result.fault_events)


class TestFaultInjectionPrecheck:
    def plan(self):
        return FaultPlan(faults=(
            FaultSpec(site="accmem", index=3, bit=5),))

    def test_precheck_rejects_condemned_graph(self):
        engine = InferenceEngine(
            hot_graph(), backend="mixgemm", accmem_bits=20,
            fault_plan=self.plan())
        with pytest.raises(GuardError) as exc_info:
            engine.run(hot_input())
        assert exc_info.value.guard == "static"
        assert "ACC-OVERFLOW" in str(exc_info.value)

    def test_precheck_optout(self):
        engine = InferenceEngine(
            hot_graph(), backend="mixgemm", accmem_bits=20,
            fault_plan=self.plan(),
            recovery=RecoveryPolicy(static_precheck=False,
                                    warn=False))
        # Runs (and wraps) rather than raising: the opt-out is honored.
        engine.run(hot_input())

    def test_precheck_passes_clean_graph(self):
        engine = InferenceEngine(
            hot_graph(), backend="mixgemm", fault_plan=self.plan())
        engine.run(hot_input())  # default 64-bit width: no error
