"""Plan-equivalence verifier: clean plans prove out, seeded bugs don't."""

import json

import numpy as np
import pytest

from repro.analysis.diagnostics import DiagnosticReport
from repro.analysis.ranges import (
    analyze_graph,
    verify_graph_plans,
    verify_plan,
)
from repro.analysis.sarif import to_sarif
from repro.models.builders import build_tiny
from repro.nn.layers import seed_init
from repro.robustness.faults import demo_graph
from repro.runtime.export_modules import export_model
from repro.runtime.plan import compile_graph


@pytest.fixture(scope="module")
def resnet_graph():
    seed_init(13)
    model = build_tiny("resnet18", act_bits=8, weight_bits=8)
    model.eval()
    return export_model(model, name="resnet18")


@pytest.fixture(scope="module")
def resnet_analysis(resnet_graph):
    return analyze_graph(resnet_graph, input_range=(-4.0, 4.0))


def _corrupt_first_bn_fold(plan):
    """Seeded bug: scale the first fused batchnorm's output by 1.0001."""
    for step in plan.steps:
        if "batchnorm2d" in step.fused:
            idx = step.fused.index("batchnorm2d")
            original = step.epilogue[idx]
            step.epilogue[idx] = \
                lambda y, fn=original: fn(y) * 1.0001
            return step.label
    raise AssertionError("no fused batchnorm in plan")


class TestCleanPlansVerify:
    @pytest.mark.parametrize("fuse", [True, False])
    def test_resnet_plan_preserves_ranges(self, resnet_graph,
                                          resnet_analysis, fuse):
        plan = compile_graph(resnet_graph, backend="mixgemm",
                             gemm_backend="auto", fuse=fuse)
        assert verify_plan(plan, analysis=resnet_analysis) == []

    def test_demo_plans_preserve_ranges(self):
        graph = demo_graph()
        diags = verify_graph_plans(graph, accmem_bits=64,
                                   input_range=(-3.0, 3.0))
        assert diags == []

    @pytest.mark.parametrize("accmem_bits", [64, 16, 12])
    def test_verifies_across_accmem_widths(self, resnet_graph,
                                           accmem_bits):
        """Wrap semantics must line up even when layers do wrap."""
        diags = verify_graph_plans(resnet_graph,
                                   accmem_bits=accmem_bits,
                                   input_range=(-4.0, 4.0))
        assert diags == []

    def test_every_compiled_suite_plan_verifies(self, resnet_graph):
        """All deployment-shape plans in the test suite prove out."""
        for graph in (resnet_graph, demo_graph()):
            for fuse in (True, False):
                plan = compile_graph(graph, backend="mixgemm",
                                     gemm_backend="auto", fuse=fuse)
                assert verify_plan(plan) == []


class TestSeededBugs:
    def test_broken_bn_fold_caught(self, resnet_graph,
                                   resnet_analysis):
        plan = compile_graph(resnet_graph, backend="mixgemm", fuse=True)
        label = _corrupt_first_bn_fold(plan)
        diags = verify_plan(plan, analysis=resnet_analysis)
        assert any(d.rule == "RANGE-EQUIV" and d.node == label
                   for d in diags)

    def test_broken_bn_fold_in_text_json_sarif(self, resnet_graph,
                                               resnet_analysis):
        plan = compile_graph(resnet_graph, backend="mixgemm", fuse=True)
        _corrupt_first_bn_fold(plan)
        report = DiagnosticReport()
        report.extend(verify_plan(plan, analysis=resnet_analysis,
                                  path="resnet18.json"))
        text = report.render_text()
        assert "RANGE-EQUIV" in text
        payload = json.loads(report.to_json())
        diags = payload.get("diagnostics", payload)
        assert "RANGE-EQUIV" in json.dumps(diags)
        sarif = to_sarif(report)
        results = sarif["runs"][0]["results"]
        assert any(r["ruleId"] == "RANGE-EQUIV" for r in results)
        rules = sarif["runs"][0]["tool"]["driver"]["rules"]
        assert any(r["id"] == "RANGE-EQUIV" for r in rules)

    def test_tampered_panel_caught(self, resnet_graph,
                                   resnet_analysis):
        plan = compile_graph(resnet_graph, backend="mixgemm", fuse=True)
        for step in plan.steps:
            gemms = getattr(step, "gemms", None)
            if gemms and gemms[0].mode == "fast":
                sl, blk, exact = gemms[0]._blocks[0]
                blk = blk.copy()
                blk.flat[0] += 1  # one integer off
                gemms[0]._blocks[0] = (sl, blk, exact)
                break
        else:
            pytest.skip("no fast-mode conv step")
        diags = verify_plan(plan, analysis=resnet_analysis)
        assert any("panel" in d.message for d in diags)

    def test_wrong_accmem_width_caught(self, resnet_graph,
                                       resnet_analysis):
        plan = compile_graph(resnet_graph, backend="mixgemm",
                             accmem_bits=32)
        diags = verify_plan(plan, analysis=resnet_analysis)
        assert diags and "accmem_bits" in diags[0].message

    def test_dropped_bn_epilogue_caught(self, resnet_graph,
                                        resnet_analysis):
        plan = compile_graph(resnet_graph, backend="mixgemm", fuse=True)
        for step in plan.steps:
            if "batchnorm2d" in step.fused:
                step.epilogue.pop(step.fused.index("batchnorm2d"))
                break
        diags = verify_plan(plan, analysis=resnet_analysis)
        assert any(d.rule == "RANGE-EQUIV" for d in diags)
