"""REP001-REP011 linter: every rule fires, every rule suppresses."""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.astlint import (
    KERNEL_MODULE_SUFFIXES,
    is_test_path,
    lint_paths,
    lint_source,
)
from repro.analysis.diagnostics import AnalysisError


def rules(source, path="src/repro/pkg/mod.py"):
    return [d.rule for d in lint_source(textwrap.dedent(source), path)]


KERNEL_PATH = "src/repro/core/binseg.py"


class TestRep001:
    def test_stdlib_only_base_flagged(self):
        assert rules("class FooError(ValueError):\n    pass\n") == [
            "REP001"]

    def test_repro_error_base_passes(self):
        assert rules(
            "class FooError(ReproError, ValueError):\n    pass\n") == []

    def test_derived_repro_error_passes(self):
        # Subclassing another repo error type inherits the lineage.
        assert rules("class SubError(BinSegError):\n    pass\n") == []

    def test_non_exception_class_ignored(self):
        assert rules("class Widget(Base):\n    pass\n") == []

    def test_warning_classes_exempt(self):
        assert rules(
            "class SlowWarning(UserWarning):\n    pass\n") == []

    def test_suppressed(self):
        src = "class FooError(ValueError):  # repro: noqa REP001\n    pass\n"
        assert rules(src) == []


class TestRep002:
    def test_global_numpy_rng_flagged(self):
        assert rules("x = np.random.rand(3)\n") == ["REP002"]

    def test_seeded_default_rng_passes(self):
        assert rules("rng = np.random.default_rng(7)\n") == []

    def test_unseeded_default_rng_flagged(self):
        assert rules("rng = np.random.default_rng()\n") == ["REP002"]

    def test_stdlib_random_flagged(self):
        assert rules("import random\nx = random.random()\n") == [
            "REP002"]

    def test_test_files_exempt(self):
        assert rules("x = np.random.rand(3)\n",
                     path="tests/core/test_x.py") == []

    def test_suppressed(self):
        assert rules(
            "x = np.random.rand(3)  # repro: noqa REP002\n") == []


class TestRep003:
    def test_float_literal_in_kernel_flagged(self):
        assert rules("SCALE = 1.5\n", path=KERNEL_PATH) == ["REP003"]

    def test_true_division_in_kernel_flagged(self):
        assert rules("def f(a, b):\n    return a / b\n",
                     path=KERNEL_PATH) == ["REP003"]

    def test_float_call_in_kernel_flagged(self):
        assert rules("def f(a):\n    return float(a)\n",
                     path=KERNEL_PATH) == ["REP003"]

    def test_allowed_inside_float_annotated_function(self):
        src = "def ratio(a: int, b: int) -> float:\n    return a / b\n"
        assert rules(src, path=KERNEL_PATH) == []

    def test_floor_division_passes(self):
        assert rules("def f(a, b):\n    return a // b\n",
                     path=KERNEL_PATH) == []

    def test_rule_scoped_to_kernel_modules(self):
        assert rules("SCALE = 1.5\n", path="src/repro/sim/perf.py") == []

    def test_suppressed(self):
        assert rules("SCALE = 1.5  # repro: noqa REP003\n",
                     path=KERNEL_PATH) == []

    def test_kernel_suffixes_cover_the_four_modules(self):
        assert len(KERNEL_MODULE_SUFFIXES) == 4


class TestRep004:
    def test_bare_except_flagged(self):
        src = "try:\n    f()\nexcept:\n    pass\n"
        assert rules(src) == ["REP004"]

    def test_except_exception_pass_flagged(self):
        src = "try:\n    f()\nexcept Exception:\n    pass\n"
        assert rules(src) == ["REP004"]

    def test_except_exception_with_handling_passes(self):
        src = "try:\n    f()\nexcept Exception as e:\n    log(e)\n"
        assert rules(src) == []

    def test_narrow_except_passes(self):
        src = "try:\n    f()\nexcept ValueError:\n    pass\n"
        assert rules(src) == []

    def test_suppressed(self):
        src = "try:\n    f()\nexcept:  # repro: noqa REP004\n    pass\n"
        assert rules(src) == []


class TestRep005:
    COST_PATH = "src/repro/sim/energy.py"

    def test_missing_units_flagged(self):
        src = "def total_cycles(self):\n    return 4\n"
        assert rules(src, path=self.COST_PATH) == ["REP005"]

    def test_docstring_with_units_passes(self):
        src = ('def total_cycles(self):\n'
               '    """Latency in clock cycles."""\n    return 4\n')
        assert rules(src, path=self.COST_PATH) == []

    def test_non_cost_names_ignored(self):
        src = "def helper(self):\n    return 4\n"
        assert rules(src, path=self.COST_PATH) == []

    def test_private_functions_ignored(self):
        src = "def _cycles(self):\n    return 4\n"
        assert rules(src, path=self.COST_PATH) == []

    def test_rule_scoped_to_cost_models(self):
        src = "def total_cycles(self):\n    return 4\n"
        assert rules(src, path="src/repro/core/gemm.py") == []

    def test_suppressed(self):
        src = ("def watts(self):  # repro: noqa REP005\n"
               "    return 4\n")
        assert rules(src, path=self.COST_PATH) == []


class TestRep006:
    SRC = ("def drive(engine, pairs):\n"
           "    for pa, pb in pairs:\n"
           "        engine.push_pair(pa, pb)\n")

    def test_push_pair_outside_core_flagged(self):
        assert rules(self.SRC, path="src/repro/sim/custom.py") == [
            "REP006"]

    def test_push_pair_inside_core_passes(self):
        assert rules(self.SRC, path="src/repro/core/gemm.py") == []

    def test_push_pair_in_tests_exempt(self):
        assert rules(self.SRC, path="tests/sim/test_custom.py") == []

    def test_other_attribute_calls_pass(self):
        assert rules("engine.read_slot(0)\n",
                     path="src/repro/sim/custom.py") == []

    def test_hint_steers_to_dispatch(self):
        diags = lint_source(self.SRC, "src/repro/sim/custom.py")
        assert "MixGemm" in diags[0].hint

    def test_suppressed(self):
        src = ("engine.push_pair(pa, pb)  # repro: noqa REP006\n")
        assert rules(src, path="src/repro/sim/custom.py") == []


class TestRep007:
    DIRECT = textwrap.dedent("""
        class InferenceEngine:
            def _op_quant_conv2d(self, node, x, result):
                return quantize(node.tensors["weight"], qp)
    """)
    VIA_NAME = textwrap.dedent("""
        class InferenceEngine:
            def _op_quant_linear(self, node, x, result):
                w = node.tensors["weight"]
                return affine.quantize(w, qp)
    """)

    def test_direct_weight_quantize_flagged(self):
        assert rules(self.DIRECT) == ["REP007"]

    def test_quantize_of_assigned_weight_name_flagged(self):
        assert rules(self.VIA_NAME) == ["REP007"]

    def test_helper_call_passes(self):
        src = """
            class InferenceEngine:
                def _op_quant_conv2d(self, node, x, result):
                    return self._quant_weights(node, qp)
        """
        assert rules(src) == []

    def test_activation_quantize_passes(self):
        src = """
            class InferenceEngine:
                def _op_quant_conv2d(self, node, x, result):
                    return quantize(x, act_qp)
        """
        assert rules(src) == []

    def test_weight_quantize_outside_handler_passes(self):
        src = """
            class InferenceEngine:
                def _quant_weights(self, node, qp):
                    return quantize(node.tensors["weight"], qp)
        """
        assert rules(src) == []

    def test_weight_quantize_outside_engine_passes(self):
        src = """
            class OtherRunner:
                def _op_quant_conv2d(self, node, x, result):
                    return quantize(node.tensors["weight"], qp)
        """
        assert rules(src) == []

    def test_hint_steers_to_helper(self):
        diags = lint_source(self.DIRECT, "src/repro/runtime/engine.py")
        assert "_quant_weights" in diags[0].hint

    def test_suppressed(self):
        src = textwrap.dedent("""
            class InferenceEngine:
                def _op_quant_conv2d(self, node, x, result):
                    w = node.tensors["weight"]
                    return quantize(w, qp)  # repro: noqa REP007
        """)
        assert rules(src) == []


class TestRep008:
    def test_bare_lock_flagged(self):
        assert rules("lock = threading.Lock()\n") == ["REP008"]

    def test_bare_rlock_flagged(self):
        assert rules("lock = threading.RLock()\n") == ["REP008"]

    def test_imported_name_flagged(self):
        src = "from threading import Lock\nlock = Lock()\n"
        assert rules(src) == ["REP008"]

    def test_aliased_import_flagged(self):
        src = "from threading import RLock as RL\nlock = RL()\n"
        assert rules(src) == ["REP008"]

    def test_factory_calls_pass(self):
        src = ("lock = make_lock('C._lock')\n"
               "rlock = make_rlock('C._rlock')\n")
        assert rules(src) == []

    def test_other_threading_primitives_pass(self):
        # Only the two raw mutex constructors are factory-gated.
        src = ("event = threading.Event()\n"
               "cond = threading.Condition()\n")
        assert rules(src) == []

    @pytest.mark.parametrize("path", [
        "src/repro/core/locks.py",
        "src/repro/analysis/concurrency/sanitizer.py",
        "src/repro/core/packcache.py",
        "src/repro/runtime/serving.py",
    ])
    def test_allowlisted_modules_exempt(self, path):
        assert rules("lock = threading.Lock()\n", path=path) == []

    def test_tests_exempt(self):
        assert rules("lock = threading.Lock()\n",
                     path="tests/core/test_x.py") == []

    def test_hint_names_the_factory(self):
        diags = lint_source("lock = threading.Lock()\n",
                            "src/repro/pkg/mod.py")
        assert "make_lock" in diags[0].hint

    def test_suppressed(self):
        src = "lock = threading.Lock()  # repro: noqa REP008\n"
        assert rules(src) == []


RUNTIME_PATH = "src/repro/runtime/mod.py"


class TestRep009:
    def test_unbounded_queue_flagged(self):
        assert rules("q = queue.Queue()\n",
                     path=RUNTIME_PATH) == ["REP009"]

    def test_simple_queue_flagged(self):
        assert rules("q = queue.SimpleQueue()\n",
                     path=RUNTIME_PATH) == ["REP009"]

    def test_imported_names_flagged(self):
        src = ("from queue import Queue, SimpleQueue\n"
               "a = Queue()\n"
               "b = SimpleQueue()\n")
        assert rules(src, path=RUNTIME_PATH) == ["REP009", "REP009"]

    def test_aliased_import_flagged(self):
        src = "from queue import Queue as Q\nq = Q()\n"
        assert rules(src, path=RUNTIME_PATH) == ["REP009"]

    def test_zero_maxsize_flagged(self):
        # The stdlib treats maxsize <= 0 as "infinite", which silently
        # voids the bound the rule exists to guarantee.
        assert rules("q = queue.Queue(maxsize=0)\n",
                     path=RUNTIME_PATH) == ["REP009"]
        assert rules("q = queue.Queue(0)\n",
                     path=RUNTIME_PATH) == ["REP009"]

    def test_explicit_maxsize_passes(self):
        src = ("a = queue.Queue(maxsize=8)\n"
               "b = queue.Queue(capacity)\n"
               "c = queue.LifoQueue(maxsize=4)\n")
        assert rules(src, path=RUNTIME_PATH) == []

    def test_rule_scoped_to_runtime(self):
        assert rules("q = queue.Queue()\n",
                     path="src/repro/core/mod.py") == []

    def test_tests_exempt(self):
        assert rules("q = queue.Queue()\n",
                     path="tests/runtime/test_x.py") == []

    def test_hint_steers_to_admission_control(self):
        diags = lint_source("q = queue.Queue()\n", RUNTIME_PATH)
        assert "admission control" in diags[0].hint

    def test_suppressed(self):
        src = "q = queue.Queue()  # repro: noqa REP009\n"
        assert rules(src, path=RUNTIME_PATH) == []


class TestNoqaEngine:
    def test_blanket_noqa_suppresses_everything(self):
        assert rules("x = np.random.rand(3)  # repro: noqa\n") == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        assert rules(
            "x = np.random.rand(3)  # repro: noqa REP004\n") == [
            "REP002"]

    def test_multi_rule_noqa(self):
        src = ("SCALE = float(1.5)  # repro: noqa REP003,REP002\n")
        assert rules(src, path=KERNEL_PATH) == []


class TestInfrastructure:
    def test_syntax_error_becomes_rep000(self):
        diags = lint_source("def broken(:\n", "bad.py")
        assert [d.rule for d in diags] == ["REP000"]

    def test_is_test_path(self):
        assert is_test_path("tests/core/test_binseg.py")
        assert is_test_path("conftest.py")
        assert not is_test_path("src/repro/core/binseg.py")

    def test_lint_paths_missing_target(self):
        with pytest.raises(AnalysisError):
            lint_paths(["/no/such/dir"])

    def test_lint_paths_walks_directory(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        (tmp_path / "bad.py").write_text(
            "class E(ValueError):\n    pass\n")
        report = lint_paths([tmp_path])
        assert [d.rule for d in report] == ["REP001"]

    def test_repo_src_tree_is_clean(self):
        # The satellite guarantee: zero error-severity findings on src/.
        src = Path(__file__).resolve().parents[2] / "src"
        report = lint_paths([src])
        assert report.errors == []


class TestRep010AccmemLiterals:
    def test_keyword_literal_flagged(self):
        assert rules("run(accmem_bits=32)\n") == ["REP010"]

    def test_assignment_literal_flagged(self):
        assert rules("accmem_bits = 16\n") == ["REP010"]
        assert rules("self.accmem_bits = 24\n") == ["REP010"]

    def test_default_arg_literal_flagged(self):
        assert rules("def f(accmem_bits=48):\n    pass\n") == ["REP010"]
        assert rules("def f(*, accmem_bits=48):\n    pass\n") \
            == ["REP010"]

    def test_comparison_against_literal_flagged(self):
        assert rules("ok = accmem_bits >= 24\n") == ["REP010"]
        assert rules("ok = cfg.accmem_bits == 64\n") == ["REP010"]

    def test_bits_vs_container_width_flagged(self):
        assert rules("if bits >= 64:\n    pass\n") == ["REP010"]
        assert rules("if 64 > acc_bits:\n    pass\n") == ["REP010"]

    def test_named_constants_pass(self):
        src = textwrap.dedent("""
            run(accmem_bits=DEFAULT_ACCMEM_BITS)
            accmem_bits = config.accmem_bits
            if bits >= ACCMEM_CONTAINER_BITS:
                pass
        """)
        assert rules(src) == []

    def test_other_bit_comparisons_pass(self):
        # operand widths against non-container literals are fine
        assert rules("if weight_bits == 8:\n    pass\n") == []
        assert rules("if act_bits <= 8:\n    pass\n") == []

    def test_config_module_exempt(self):
        src = "DEFAULT_ACCMEM_BITS = 64\nself.accmem_bits = 64\n"
        assert rules(src, path="src/repro/core/config.py") == []

    def test_test_files_exempt(self):
        assert rules("run(accmem_bits=12)\n",
                     path="tests/core/test_gemm.py") == []

    def test_noqa_suppresses(self):
        assert rules("run(accmem_bits=12)  # repro: noqa REP010\n") \
            == []


class TestRep011SharedMemoryCleanup:
    def test_unpaired_creation_flagged(self):
        src = """
        from multiprocessing import shared_memory

        def leak():
            return shared_memory.SharedMemory(create=True, size=64)
        """
        assert rules(src, path=RUNTIME_PATH) == ["REP011"]

    def test_assignment_without_cleanup_flagged(self):
        src = """
        from multiprocessing import shared_memory

        def leak():
            shm = shared_memory.SharedMemory(create=True, size=64)
            shm.buf[0] = 1
        """
        assert rules(src, path=RUNTIME_PATH) == ["REP011"]

    def test_context_manager_passes(self):
        src = """
        from multiprocessing import shared_memory

        def ok():
            with shared_memory.SharedMemory(create=True, size=64) as s:
                return bytes(s.buf[:4])
        """
        assert rules(src, path=RUNTIME_PATH) == []

    def test_try_finally_close_passes(self):
        src = """
        from multiprocessing import shared_memory

        def ok():
            shm = None
            try:
                shm = shared_memory.SharedMemory(create=True, size=64)
                return bytes(shm.buf[:4])
            finally:
                if shm is not None:
                    shm.close()
                    shm.unlink()
        """
        assert rules(src, path=RUNTIME_PATH) == []

    def test_finally_without_cleanup_still_flagged(self):
        src = """
        from multiprocessing import shared_memory

        def leak():
            try:
                shm = shared_memory.SharedMemory(create=True, size=64)
            finally:
                log("done")
        """
        assert rules(src, path=RUNTIME_PATH) == ["REP011"]

    def test_attach_by_name_needs_cleanup_too(self):
        # attaching maps the segment: an unclosed mapping pins memory
        src = "s = SharedMemory(name='seg')\n"
        assert rules(src, path=RUNTIME_PATH) == ["REP011"]

    def test_rule_scoped_to_runtime(self):
        src = "s = shared_memory.SharedMemory(create=True, size=8)\n"
        assert rules(src, path="src/repro/core/mod.py") == []

    def test_tests_exempt(self):
        src = "s = shared_memory.SharedMemory(create=True, size=8)\n"
        assert rules(src, path="tests/runtime/test_x.py") == []

    def test_hint_mentions_dev_shm(self):
        diags = lint_source(
            "s = shared_memory.SharedMemory(create=True, size=8)\n",
            RUNTIME_PATH)
        assert "/dev/shm" in diags[0].hint

    def test_suppressed(self):
        src = ("s = shared_memory.SharedMemory(create=True, size=8)"
               "  # repro: noqa REP011\n")
        assert rules(src, path=RUNTIME_PATH) == []


TUNE_CACHE_PATH = "src/repro/tuning/cache.py"


class TestRep012AtomicWrites:
    def test_plain_write_flagged(self):
        src = """
        import json

        def save(path, payload):
            with open(path, "w") as fh:
                json.dump(payload, fh)
        """
        assert rules(src, path=TUNE_CACHE_PATH) == ["REP012"]

    def test_temp_plus_replace_passes(self):
        src = """
        import json, os

        def save(path, payload):
            tmp = str(path) + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        """
        assert rules(src, path=TUNE_CACHE_PATH) == []

    def test_read_mode_open_ignored(self):
        src = """
        import json

        def load(path):
            with open(path, encoding="utf-8") as fh:
                return json.load(fh)
        """
        assert rules(src, path=TUNE_CACHE_PATH) == []

    def test_append_and_exclusive_modes_flagged(self):
        src = """
        def log(path):
            open(path, "a").write("x")

        def create(path):
            open(path, "x").write("y")
        """
        assert rules(src, path=TUNE_CACHE_PATH) == [
            "REP012", "REP012"]

    def test_write_text_flagged(self):
        src = """
        def save(path, text):
            path.write_text(text)
        """
        assert rules(src, path=TUNE_CACHE_PATH) == ["REP012"]

    def test_keyword_mode_flagged(self):
        src = """
        def save(path):
            with open(path, mode="wb") as fh:
                fh.write(b"x")
        """
        assert rules(src, path=TUNE_CACHE_PATH) == ["REP012"]

    def test_nested_writer_not_blessed_by_outer_replace(self):
        # The inner function is its own publication unit: the outer
        # os.replace cannot vouch for a write it never sees.
        src = """
        import os

        def outer(path):
            def inner(p):
                with open(p, "w") as fh:
                    fh.write("x")
            inner(path)
            os.replace(path, path)
        """
        assert rules(src, path=TUNE_CACHE_PATH) == ["REP012"]

    def test_rule_scoped_to_tuning_cache(self):
        src = """
        def save(path):
            open(path, "w").write("x")
        """
        assert rules(src, path="src/repro/runtime/plan.py") == []

    def test_tests_exempt(self):
        src = """
        def save(path):
            open(path, "w").write("x")
        """
        assert rules(src, path="tests/tuning/test_cache.py") == []

    def test_hint_mentions_torn_file(self):
        diags = lint_source(
            textwrap.dedent("""
            def save(path):
                open(path, "w").write("x")
            """), TUNE_CACHE_PATH)
        assert "torn" in diags[0].hint

    def test_suppressed(self):
        src = """
        def save(path):
            open(path, "w").write("x")  # repro: noqa REP012
        """
        assert rules(src, path=TUNE_CACHE_PATH) == []

    def test_real_cache_module_is_clean(self):
        real = (Path(__file__).resolve().parents[2]
                / "src" / "repro" / "tuning" / "cache.py")
        assert [d.rule for d in lint_paths([str(real)])
                .diagnostics] == []


class TestRep013CycleCostLiterals:
    def test_assignment_literal_flagged(self):
        assert rules("dispatch_latency = 7\n") == ["REP013"]
        assert rules("self.kgroup_overhead = 4\n") == ["REP013"]

    def test_annotated_assignment_flagged(self):
        assert rules("stall_cycles: int = 3\n") == ["REP013"]

    def test_keyword_literal_flagged(self):
        assert rules("run(load_cost=2)\n") == ["REP013"]

    def test_default_arg_literal_flagged(self):
        assert rules("def f(inner_loop_overhead=4):\n    pass\n") \
            == ["REP013"]
        assert rules("def f(*, get_cost=1):\n    pass\n") == ["REP013"]

    def test_zero_initializer_passes(self):
        # accumulators start at zero everywhere; only nonzero literals
        # encode an actual cost.
        assert rules("cycles = 0\n") == []
        assert rules("total_cost = 0\n") == []

    def test_named_constants_pass(self):
        src = textwrap.dedent("""
            latency = BS_IP_COST
            run(load_cost=costs.load_cost)
            barrier_cycles = DEFAULT_BARRIER_CYCLES
        """)
        assert rules(src) == []

    def test_unrelated_names_pass(self):
        assert rules("cost_estimate = 5\n") == []
        assert rules("latency_bins = 8\n") == []

    def test_isa_and_config_homes_exempt(self):
        src = "BS_IP_COST = 1\nload_cost = 1\n"
        assert rules(src, path="src/repro/core/isa.py") == []
        assert rules(src, path="src/repro/core/config.py") == []

    def test_cost_package_exempt(self):
        assert rules("intercept_cycles = 57\n",
                     path="src/repro/analysis/cost/calibrate.py") == []

    def test_test_files_exempt(self):
        assert rules("stall_cycles = 17\n",
                     path="tests/core/test_gemm.py") == []

    def test_noqa_suppresses(self):
        assert rules(
            "dram_latency = 80  # repro: noqa REP013\n") == []

    def test_seeded_fixture_fires_in_place_exempt(self):
        fixture = (Path(__file__).parent / "lint_fixtures"
                   / "seeded_cycle_cost.py")
        assert [d.rule for d in lint_paths([str(fixture)])
                .diagnostics] == []

    def test_shipped_sim_and_parallel_modules_are_clean(self):
        src_root = Path(__file__).resolve().parents[2] / "src"
        for mod in ("repro/sim/cache.py", "repro/core/parallel.py"):
            assert [d.rule for d in
                    lint_paths([str(src_root / mod)]).diagnostics] \
                == [], mod
