"""Tests for the experiment drivers and the consolidated report."""

import pytest

from repro.eval.experiments import (
    cache_sensitivity_study,
    energy_efficiency_ranges,
    qat_bitwidth_sweep,
)
from repro.eval.full_report import generate_report, write_full_report


class TestExperimentDrivers:
    def test_cache_study_shape(self):
        results = cache_sensitivity_study()
        assert len(results) == 3
        assert {(r.l1_kb, r.l2_kb) for r in results} == {
            (16, 512), (32, 64), (16, 64),
        }
        for r in results:
            assert r.penalty >= 0
            assert 0 <= r.area_saving < 1

    def test_energy_ranges_cover_six_networks(self):
        results = energy_efficiency_ranges()
        assert len(results) == 6
        for r in results:
            assert r.gops_per_watt_lo < r.gops_per_watt_hi

    def test_qat_sweep_minimal(self):
        results = qat_bitwidth_sweep(
            network="alexnet", bit_ladder=(8,), epochs=2, n_samples=80,
        )
        assert len(results) == 1
        assert results[0].bits == 8
        assert 0 <= results[0].top1 <= 100


class TestFullReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report()

    def test_all_sections_present(self, report):
        for section in (
            "Figure 6", "Figure 7", "Table I", "Table II", "Table III",
            "Section III-C", "Section IV-B", "Section IV-C",
            "Extensions",
        ):
            assert section in report, section

    def test_key_numbers_present(self, report):
        assert "a2-w2" in report
        assert "GOPS/W" in report
        assert "BERT-base" in report

    def test_write_to_disk(self, tmp_path):
        path = tmp_path / "out.md"
        written = write_full_report(str(path))
        assert written == str(path)
        assert path.read_text().startswith("# Mix-GEMM")
