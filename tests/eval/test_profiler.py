"""Per-layer profiler tests."""

import pytest

from repro.core.config import MixGemmConfig
from repro.eval.profiler import profile_network, render_profile
from repro.models.inventory import get_network


@pytest.fixture(scope="module")
def mobilenet_profile():
    return profile_network(get_network("mobilenet_v1"),
                           MixGemmConfig(bw_a=8, bw_b=8))


class TestProfile:
    def test_shares_sum_to_one(self, mobilenet_profile):
        total = sum(l.time_share for l in mobilenet_profile.layers)
        assert total == pytest.approx(1.0)

    def test_covers_all_conv_layers(self, mobilenet_profile):
        net = get_network("mobilenet_v1")
        assert len(mobilenet_profile.layers) == len(net.conv_layers)

    def test_gemm_dims_recorded(self, mobilenet_profile):
        pw1 = [l for l in mobilenet_profile.layers if l.name == "pw1"][0]
        assert (pw1.gemm_m, pw1.gemm_k, pw1.gemm_n) == (12544, 32, 64)

    def test_hotspots_sorted(self, mobilenet_profile):
        hot = mobilenet_profile.hotspots(5)
        shares = [l.time_share for l in hot]
        assert shares == sorted(shares, reverse=True)

    def test_kind_shares(self, mobilenet_profile):
        shares = mobilenet_profile.share_by_kind()
        assert set(shares) == {"conv", "depthwise", "pointwise"}
        assert sum(shares.values()) == pytest.approx(1.0)
        # MobileNet's time is dominated by pointwise convs.
        assert shares["pointwise"] > 0.5

    def test_gops_consistent_with_perf_model(self, mobilenet_profile):
        from repro.sim.perf import MixGemmPerfModel
        direct = MixGemmPerfModel().network(
            get_network("mobilenet_v1"), MixGemmConfig(bw_a=8, bw_b=8)
        )
        assert mobilenet_profile.gops == pytest.approx(direct.gops,
                                                       rel=0.01)

    def test_render(self, mobilenet_profile):
        text = render_profile(mobilenet_profile, top=3)
        assert "mobilenet_v1" in text
        assert "GEMM" in text
        assert text.count("\n") < 10  # top-3 only

    def test_full_render_has_all_layers(self, mobilenet_profile):
        text = render_profile(mobilenet_profile)
        assert "dw13" in text

    def test_cli_profile(self, capsys):
        from repro.cli import main
        assert main(["profile", "mobilenet_v1", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "time by layer kind" in out
