"""Accuracy-registry tests against the Section IV-B loss statements."""

import pytest

from repro.eval.accuracy import (
    CONFIG_LADDER,
    FP32_TOP1,
    accuracy_ladder,
    accuracy_loss,
    max_loss_above_4bit,
    top1_accuracy,
)
from repro.eval.workloads import NETWORK_ORDER


class TestRegistryStructure:
    def test_all_networks_covered(self):
        assert set(FP32_TOP1) == set(NETWORK_ORDER)

    def test_ladder_has_nine_configs(self):
        assert len(CONFIG_LADDER) == 9
        assert CONFIG_LADDER[0] == (8, 8)
        assert CONFIG_LADDER[-1] == (2, 2)

    def test_unknown_network(self):
        with pytest.raises(KeyError):
            accuracy_loss("lenet", 8, 8)

    def test_off_ladder_config(self):
        with pytest.raises(KeyError):
            accuracy_loss("resnet18", 5, 2)


class TestPaperStatements:
    @pytest.mark.parametrize("network", NETWORK_ORDER)
    def test_above_4bit_loss_below_1_5(self, network):
        # Section IV-B: "accuracy losses below 1.5%" above 4 bits.
        assert max_loss_above_4bit(network) < 1.5

    def test_4bit_extremes(self):
        # "losses ranging from 0.01% for AlexNet, up to 4.2% on
        # EfficientNet-B0" at the 4-bit point.
        assert accuracy_loss("alexnet", 4, 4) == pytest.approx(0.01)
        assert accuracy_loss("efficientnet_b0", 4, 4) == pytest.approx(4.2)

    @pytest.mark.parametrize("network, lo, hi", [
        ("alexnet", 0.5, 5.1),
        ("vgg16", 1.2, 6.5),
        ("resnet18", 2.2, 8.6),
        ("mobilenet_v1", 7.6, 34.5),
        ("regnet_x_400mf", 2.6, 13.0),
        ("efficientnet_b0", 10.3, 32.8),
    ])
    def test_sub4bit_ranges(self, network, lo, hi):
        # The 3-/2-bit loss range endpoints of Section IV-B.
        losses = [accuracy_loss(network, a, w)
                  for a, w in ((4, 3), (3, 3), (3, 2), (2, 2))]
        assert min(losses) == pytest.approx(lo)
        assert max(losses) == pytest.approx(hi)

    @pytest.mark.parametrize("network", NETWORK_ORDER)
    def test_loss_monotone_down_ladder(self, network):
        losses = [accuracy_loss(network, a, w) for a, w in CONFIG_LADDER]
        assert losses == sorted(losses)

    def test_depthwise_networks_degrade_most(self):
        # MobileNet/EfficientNet collapse at 2 bits (paper: 34.5%/32.8%).
        fragile = accuracy_loss("mobilenet_v1", 2, 2)
        robust = accuracy_loss("alexnet", 2, 2)
        assert fragile > 4 * robust


class TestDerivedViews:
    def test_top1_is_baseline_minus_loss(self):
        assert top1_accuracy("resnet18", 8, 8) == pytest.approx(
            FP32_TOP1["resnet18"]
        )

    def test_ladder_points(self):
        ladder = accuracy_ladder("vgg16")
        assert len(ladder) == len(CONFIG_LADDER)
        assert ladder[0].config_name == "a8-w8"
        assert ladder[0].loss_vs_fp32 == pytest.approx(0.0)
        assert ladder[-1].top1 < ladder[0].top1
