"""Roofline analysis tests."""

import pytest

from repro.core.config import MixGemmConfig
from repro.eval.roofline import (
    Roofline,
    analyze_network,
    bound_fractions,
    layer_intensity,
    machine_roofline,
)
from repro.models.inventory import get_network, table3_convolution


class TestRoofline:
    def test_knee(self):
        roof = Roofline(peak_macs_per_cycle=4.0, dram_bytes_per_cycle=0.8)
        assert roof.knee_intensity == pytest.approx(5.0)
        assert roof.attainable(1.0) == pytest.approx(0.8)
        assert roof.attainable(100.0) == pytest.approx(4.0)

    def test_machine_peak_follows_config(self):
        r8 = machine_roofline(MixGemmConfig(bw_a=8, bw_b=8))
        r2 = machine_roofline(MixGemmConfig(bw_a=2, bw_b=2))
        assert r2.peak_macs_per_cycle > r8.peak_macs_per_cycle
        assert r8.peak_macs_per_cycle == pytest.approx(32 / 12)

    def test_narrowing_raises_intensity(self):
        layer = table3_convolution()
        i8 = layer_intensity(layer, MixGemmConfig(bw_a=8, bw_b=8))
        i2 = layer_intensity(layer, MixGemmConfig(bw_a=2, bw_b=2))
        assert i2 > i8

    def test_large_gemms_compute_bound(self):
        # VGG's big conv layers sit far right of the knee.
        points = analyze_network(get_network("vgg16"),
                                 MixGemmConfig(bw_a=8, bw_b=8))
        big = [p for p in points if p.name == "conv5"][0]
        assert big.bound == "compute"

    def test_attained_below_roofline(self):
        cfg = MixGemmConfig(bw_a=4, bw_b=4)
        roof = machine_roofline(cfg)
        for p in analyze_network(get_network("resnet18"), cfg):
            assert p.attained_macs_per_cycle <= \
                roof.peak_macs_per_cycle * 1.001, p.name

    def test_bound_fractions_sum_to_one(self):
        points = analyze_network(get_network("mobilenet_v1"),
                                 MixGemmConfig(bw_a=8, bw_b=8))
        fractions = bound_fractions(points)
        assert fractions["compute"] + fractions["memory"] == \
            pytest.approx(1.0)

    def test_empty_points(self):
        assert bound_fractions([]) == {"compute": 0.0, "memory": 0.0}

    def test_most_cnn_layers_compute_bound(self):
        # The paper's SoC keeps conv inference largely compute-bound at
        # 8-bit (that is what makes the u-engine worthwhile).
        points = analyze_network(get_network("resnet18"),
                                 MixGemmConfig(bw_a=8, bw_b=8))
        assert bound_fractions(points)["compute"] > 0.7


class TestBatching:
    def test_batching_amortizes_small_layers(self):
        from repro.sim.perf import MixGemmPerfModel

        perf = MixGemmPerfModel()
        cfg = MixGemmConfig(bw_a=8, bw_b=8)
        net = get_network("efficientnet_b0")
        single = perf.network(net, cfg, batch=1)
        batched = perf.network(net, cfg, batch=8)
        assert batched.macs_per_cycle >= single.macs_per_cycle

    def test_invalid_batch(self):
        from repro.sim.perf import MixGemmPerfModel

        perf = MixGemmPerfModel()
        layer = get_network("alexnet").conv_layers[0]
        with pytest.raises(ValueError):
            perf.conv_layer(layer, MixGemmConfig(), batch=0)


class TestDisassembler:
    def test_roundtrip(self):
        from repro.core.isa import assemble, disassemble

        word = assemble("bs.ip", rd=0, rs1=10, rs2=11)
        assert disassemble(word) == "bs.ip x0, x10, x11"

    def test_all_mnemonics(self):
        from repro.core.isa import assemble, disassemble

        for mnemonic in ("bs.set", "bs.ip", "bs.get"):
            word = assemble(mnemonic, rd=1, rs1=2, rs2=3)
            assert disassemble(word).startswith(mnemonic)

    def test_unknown_mnemonic(self):
        from repro.core.isa import IsaError, assemble

        with pytest.raises(IsaError):
            assemble("bs.frobnicate")
