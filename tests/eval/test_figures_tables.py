"""Figure/table generator tests: structure + paper-shape assertions."""

import pytest

from repro.eval.figures import (
    figure6,
    figure6_steady_state,
    figure7,
    figure7_speedup_ranges,
    int8_blis_speedup,
)
from repro.eval.pareto import ParetoPoint, dominates, pareto_frontier
from repro.eval.reporting import (
    render_figure6,
    render_figure7,
    render_table2,
    render_table3,
)
from repro.eval.tables import paper_mixgemm_row, table1, table2, table3
from repro.eval.workloads import (
    FIGURE6_CONFIG_PAIRS,
    FIGURE6_SIZES,
    NETWORK_ORDER,
    assert_registry_consistent,
    conv_microbenchmark,
    square_gemm_sweep,
)


@pytest.fixture(scope="module")
def fig6_points():
    return figure6(sizes=(64, 256, 2048))


@pytest.fixture(scope="module")
def fig7_points():
    return figure7()


class TestFigure6:
    def test_full_grid(self, fig6_points):
        assert len(fig6_points) == 3 * len(FIGURE6_CONFIG_PAIRS)

    def test_steady_state_range(self, fig6_points):
        steady = figure6_steady_state(fig6_points)
        # Paper: from 10.2x (a8-w8) to 27.2x (a2-w2).
        assert steady["a8-w8"] == pytest.approx(10.2, rel=0.12)
        assert steady["a2-w2"] == pytest.approx(27.2, rel=0.12)
        assert min(steady.values()) > 8.0
        assert max(steady.values()) < 32.0

    def test_a2w2_fastest_at_steady_state(self, fig6_points):
        steady = figure6_steady_state(fig6_points)
        assert max(steady, key=steady.get) == "a2-w2"

    def test_int8_blis_modest(self):
        # Paper: int8 BLIS only ~2.5x over DGEMM -- far below 8x.
        assert 1.3 < int8_blis_speedup() < 3.0

    def test_render(self, fig6_points):
        text = render_figure6(fig6_points)
        assert "a8-w8" in text
        assert "n=2048" in text


class TestFigure7:
    def test_covers_all_networks(self, fig7_points):
        assert {p.network for p in fig7_points} == set(NETWORK_ORDER)

    def test_speedup_ranges_match_paper_band(self, fig7_points):
        # Paper: Mix-GEMM outperforms FP32 by 5.3x to 15.1x.
        ranges = figure7_speedup_ranges(fig7_points)
        for name, (lo, hi) in ranges.items():
            assert lo > 4.0, name
            assert hi < 19.0, name

    def test_every_network_has_a_frontier(self, fig7_points):
        for name in NETWORK_ORDER:
            frontier = [p for p in fig7_points
                        if p.network == name and p.on_frontier]
            assert frontier, name

    def test_a2w2_always_fastest(self, fig7_points):
        for name in NETWORK_ORDER:
            pts = [p for p in fig7_points if p.network == name]
            fastest = max(pts, key=lambda p: p.gops)
            assert fastest.config == "a2-w2", name

    def test_a8w8_most_accurate(self, fig7_points):
        for name in NETWORK_ORDER:
            pts = [p for p in fig7_points if p.network == name]
            best = max(pts, key=lambda p: p.top1)
            assert best.config in ("a8-w8", "a7-w7"), name

    def test_a5w5_speedup_over_a8w8(self, fig7_points):
        # Paper: a5-w5 gives ~60% more performance than a8-w8 at similar
        # accuracy.
        for name in ("alexnet", "resnet18"):
            pts = {p.config: p for p in fig7_points if p.network == name}
            gain = pts["a5-w5"].gops / pts["a8-w8"].gops - 1
            assert 0.3 < gain < 0.9, name
            assert pts["a8-w8"].top1 - pts["a5-w5"].top1 < 0.5

    def test_render(self, fig7_points):
        text = render_figure7(fig7_points)
        assert "[alexnet]" in text
        assert "Pareto" in text


class TestPareto:
    def test_dominates(self):
        a = ParetoPoint("a", 2.0, 70.0)
        b = ParetoPoint("b", 1.0, 69.0)
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_incomparable(self):
        fast = ParetoPoint("fast", 5.0, 60.0)
        accurate = ParetoPoint("acc", 1.0, 75.0)
        assert not dominates(fast, accurate)
        assert not dominates(accurate, fast)

    def test_frontier(self):
        pts = [
            ParetoPoint("a", 1.0, 75.0),
            ParetoPoint("b", 2.0, 74.0),
            ParetoPoint("c", 1.5, 73.0),   # dominated by b
            ParetoPoint("d", 3.0, 60.0),
        ]
        labels = [p.label for p in pareto_frontier(pts)]
        assert labels == ["a", "b", "d"]

    def test_duplicates_survive(self):
        pts = [ParetoPoint("x", 1.0, 1.0), ParetoPoint("y", 1.0, 1.0)]
        assert len(pareto_frontier(pts)) == 2


class TestTables:
    def test_table1(self):
        t1 = table1()
        assert (t1.mc, t1.nc, t1.kc, t1.mr, t1.nr) == (256, 256, 256, 4, 4)

    def test_table2_matches_paper(self):
        rows = table2()
        total = [r for r in rows if r.component.startswith("Total")][0]
        assert total.area_um2 == pytest.approx(13641.14, abs=0.1)
        assert total.soc_overhead_pct == pytest.approx(1.0, rel=0.01)
        text = render_table2(rows)
        assert "Src Buffers" in text

    def test_table3_contains_measured_and_published(self):
        rows = table3()
        keys = {r.key for r in rows}
        assert "mix_gemm" in keys
        assert "gemmlowp" in keys
        assert "eyeriss" in keys
        measured = [r for r in rows if r.measured]
        assert len(measured) == 1

    def test_measured_row_within_paper_ranges(self):
        measured = [r for r in table3() if r.measured][0]
        paper = paper_mixgemm_row()
        for bench in ("alexnet", "vgg16", "resnet18", "mobilenet_v1"):
            got = measured.perf[bench]
            want = paper.perf[bench]
            assert got.lo == pytest.approx(want.lo, rel=0.2), bench
            assert got.hi == pytest.approx(want.hi, rel=0.2), bench

    def test_measured_conv_microbenchmark(self):
        # Paper Table III: convolution 4.2 - 7.9 GOPS.
        measured = [r for r in table3() if r.measured][0]
        conv = measured.perf["convolution"]
        assert 2.5 < conv.lo < 6.5
        assert conv.hi > conv.lo

    def test_render_table3(self):
        text = render_table3(table3())
        assert "This work (measured)" in text
        assert "Decoupled" in text


class TestWorkloads:
    def test_sweep_size(self):
        assert len(list(square_gemm_sweep())) == \
            len(FIGURE6_SIZES) * len(FIGURE6_CONFIG_PAIRS)

    def test_conv_microbenchmark(self):
        conv = conv_microbenchmark()
        assert conv.gemm_dims == (256, 288, 64)

    def test_registry_consistent(self):
        assert_registry_consistent()
