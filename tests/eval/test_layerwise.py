"""Per-layer mixed-precision optimizer tests."""

import pytest

from repro.eval.accuracy import accuracy_loss
from repro.eval.layerwise import (
    BIT_CHOICES,
    LayerwiseOptimizer,
    LayerwiseSensitivity,
    layer_fragility,
)
from repro.models.inventory import get_network


@pytest.fixture(scope="module")
def resnet_opt():
    return LayerwiseOptimizer("resnet18", get_network("resnet18"))


@pytest.fixture(scope="module")
def mobilenet_opt():
    return LayerwiseOptimizer("mobilenet_v1", get_network("mobilenet_v1"))


class TestSensitivityModel:
    def test_uniform_matches_registry(self, resnet_opt):
        """With uniform bits the loss equals the Figure 7 registry."""
        for bits in BIT_CHOICES:
            uniform = resnet_opt.uniform(bits)
            expected = accuracy_loss("resnet18", bits, bits)
            assert uniform.predicted_loss == pytest.approx(expected)

    def test_weights_normalized(self):
        sens = LayerwiseSensitivity("resnet18", get_network("resnet18"))
        assert sum(sens.weights.values()) == pytest.approx(1.0)

    def test_depthwise_more_fragile(self):
        net = get_network("mobilenet_v1")
        dw = [l for l in net.conv_layers if l.kind == "depthwise"][0]
        pw = [l for l in net.conv_layers
              if l.kind == "pointwise" and
              l.weight_elements == dw.weight_elements * 4][:1]
        # Compare per-parameter fragility: dw layers carry the 3x factor.
        assert layer_fragility(dw) > layer_fragility(dw) / 3

    def test_small_layers_more_fragile(self):
        net = get_network("resnet18")
        small = min(net.conv_layers, key=lambda l: l.weight_elements)
        large = max(net.conv_layers, key=lambda l: l.weight_elements)
        assert layer_fragility(small) > layer_fragility(large)


class TestOptimizer:
    def test_respects_budget(self, resnet_opt):
        for budget in (0.5, 1.5, 4.0):
            result = resnet_opt.optimize(budget)
            assert result.predicted_loss <= budget + 1e-9

    def test_mixed_dominates_uniform(self, resnet_opt):
        """The paper's flexibility claim: per-layer assignment beats the
        best uniform configuration at the same accuracy budget."""
        for budget in (1.0, 2.0):
            mixed = resnet_opt.optimize(budget)
            uniform = resnet_opt.best_uniform_within(budget)
            assert mixed.total_cycles <= uniform.total_cycles

    def test_tighter_budget_means_wider_bits(self, resnet_opt):
        tight = resnet_opt.optimize(0.3)
        loose = resnet_opt.optimize(5.0)
        assert tight.mean_bits >= loose.mean_bits

    def test_zero_budget_goes_wide(self, resnet_opt):
        result = resnet_opt.optimize(0.0)
        assert result.mean_bits == pytest.approx(8.0)

    def test_huge_budget_stays_narrow(self, resnet_opt):
        result = resnet_opt.optimize(100.0)
        assert result.mean_bits == pytest.approx(2.0)

    def test_mobilenet_keeps_depthwise_wide(self, mobilenet_opt):
        """Fragile depthwise layers get more bits than robust pointwise
        ones under a moderate budget."""
        result = mobilenet_opt.optimize(3.0)
        net = get_network("mobilenet_v1")
        dw_bits = [result.bits[l.name] for l in net.conv_layers
                   if l.kind == "depthwise"]
        pw_bits = [result.bits[l.name] for l in net.conv_layers
                   if l.kind == "pointwise"]
        assert sum(dw_bits) / len(dw_bits) >= sum(pw_bits) / len(pw_bits)

    def test_assignment_covers_all_layers(self, resnet_opt):
        result = resnet_opt.optimize(1.0)
        net = get_network("resnet18")
        assert set(result.bits) == {l.name for l in net.conv_layers}

    def test_throughput_api(self, resnet_opt):
        result = resnet_opt.optimize(1.0)
        assert result.throughput_gops() > 0
