"""A guided tour of the u-engine microarchitecture (Sections II-B, III-B).

Walks through each hardware concept with live models: binary segmentation
packing, the DSU selection schedules of Figure 4, the PMU counters under
different Source Buffer depths, and the area/energy breakdown of the
physical design.

Run:  python examples/hardware_tour.py
"""

import numpy as np

from repro.core.binseg import (
    BinSegSpec,
    cluster_inner_product,
    pack_cluster,
)
from repro.core.config import MixGemmConfig
from repro.core.gemm import MixGemm
from repro.core.config import BlockingParams
from repro.core.microengine import group_schedule
from repro.sim.area import SocArea, UEngineArea
from repro.sim.energy import DEFAULT_ENERGY


def tour_binary_segmentation() -> None:
    print("=" * 64)
    print("1. Binary segmentation (Figure 1)")
    print("=" * 64)
    spec = BinSegSpec(bw_a=3, bw_b=2, signed_a=False, signed_b=False,
                      mul_width=16)
    a, b = [4, 7], [3, 2]
    pa = pack_cluster(a, spec.cw, reverse=False)
    pb = pack_cluster(b, spec.cw, reverse=True)
    print(f"  pack {a} -> {pa}; pack(reversed) {b} -> {pb}")
    print(f"  {pa} * {pb} = {pa * pb}; "
          f"slice [{spec.slice_msb}:{spec.slice_lsb}] -> "
          f"{cluster_inner_product(a, b, 3, 2, signed_a=False, signed_b=False, mul_width=16)}")
    print("  (the middle base-256 digit is the inner product: "
          f"{np.dot(a, b)})\n")


def tour_dsu_schedules() -> None:
    print("=" * 64)
    print("2. DSU selection schedules (Figure 4)")
    print("=" * 64)
    for bw_a, bw_b in ((8, 8), (8, 6), (6, 4), (2, 2)):
        cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
        sched = group_schedule(cfg)
        print(f"  {cfg.name}: kua={cfg.kua} kub={cfg.kub} "
              f"group={sched.n_elements} elements -> "
              f"{sched.cycles} cycles (chunks {sched.chunks})")
    print("  (paper: a8-w8 and a8-w6 take 12 accumulations, a6-w4 "
          "takes 9)\n")


def tour_pmu() -> None:
    print("=" * 64)
    print("3. PMU counters vs Source Buffer depth (Section III-C)")
    print("=" * 64)
    rng = np.random.default_rng(0)
    a = rng.integers(-2, 2, size=(8, 256))
    b = rng.integers(-2, 2, size=(256, 8))
    for depth in (8, 16, 32):
        cfg = MixGemmConfig(
            bw_a=2, bw_b=2, source_buffer_depth=depth,
            blocking=BlockingParams(mc=8, nc=8, kc=64),
        )
        result = MixGemm(cfg, emulate_datapath=False).gemm(a, b)
        pmu = result.pmu
        print(f"  depth {depth:2d}: {result.cycles} cycles, "
              f"buffer stalls {pmu.buffer_stall_fraction:.1%}, "
              f"bs.get stalls {pmu.get_stall_fraction:.1%}, "
              f"{pmu.macs_per_cycle:.2f} MAC/cycle")
    print()


def tour_physical_design() -> None:
    print("=" * 64)
    print("4. Physical design (Table II, Figure 8)")
    print("=" * 64)
    engine = UEngineArea()
    for name, (area, pct) in engine.breakdown().items():
        print(f"  {name:16s} {area:9.2f} um2  ({pct:.2f}% of SoC)")
    print(f"  {'total':16s} {engine.total_um2:9.2f} um2  "
          f"({100 * engine.soc_overhead():.2f}% of SoC)")
    soc = SocArea()
    print(f"  SoC die: {soc.total_mm2:.2f} mm2 "
          f"(caches {soc.cache_mm2:.2f}, core+pads "
          f"{soc.core_and_pads_mm2:.2f})")
    print(f"  energy/active cycle: "
          f"{DEFAULT_ENERGY.active_pj_per_cycle:.1f} pJ "
          f"(multiplier {DEFAULT_ENERGY.multiply_pj} pJ)")


if __name__ == "__main__":
    tour_binary_segmentation()
    tour_dsu_schedules()
    tour_pmu()
    tour_physical_design()
