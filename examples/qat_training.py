"""The full Figure 3 workflow: QAT -> export -> deploy on Mix-GEMM.

Trains a small quantization-aware CNN on synthetic data (the paper's
PyTorch + Brevitas stage), exports it to the deployment IR (the ONNX
stage), and runs inference through the bit-exact Mix-GEMM backend (the
ONNX Runtime stage), reporting accuracy and simulated cycle counts.

Run:  python examples/qat_training.py
"""

import numpy as np

from repro.nn.data import synthetic_image_dataset
from repro.nn.layers import (
    GlobalAvgPool2d,
    LayerQuantSpec,
    QuantConv2d,
    QuantLinear,
    ReLU,
    Sequential,
    seed_init,
)
from repro.quant.qat import (
    QatRecipe,
    calibrate_activations,
    evaluate,
    train_qat,
)
from repro.runtime import InferenceEngine, export_sequential


def build_model(act_bits: int, weight_bits: int) -> Sequential:
    seed_init(42)
    spec_in = LayerQuantSpec(act_bits=8, weight_bits=8, act_signed=True)
    spec = LayerQuantSpec(act_bits=act_bits, weight_bits=weight_bits)
    return Sequential(
        QuantConv2d(1, 8, 3, spec=spec_in, padding=1),      # 8-bit edge
        ReLU(),
        QuantConv2d(8, 16, 3, spec=spec, padding=1, stride=2),
        ReLU(),
        QuantConv2d(16, 16, 3, spec=spec, padding=1),
        ReLU(),
        GlobalAvgPool2d(),
        QuantLinear(16, 4, spec=spec),
    )


def main() -> None:
    train, val = synthetic_image_dataset(
        n_classes=4, n_samples=320, image_size=12, seed=1
    ).split(0.8)

    act_bits, weight_bits = 4, 4
    model = build_model(act_bits, weight_bits)

    # PTQ initialization: percentile calibration of activation scales.
    calibrate_activations(model, train, batch_size=16, batches=8)
    print(f"post-calibration accuracy: {evaluate(model, val):.1%}")

    # QAT with the paper-style SGD recipe (scaled to laptop size).
    recipe = QatRecipe(lr=0.05, epochs=10, lr_step=7, batch_size=32)
    history = train_qat(model, train, val, recipe, seed=0,
                        log=lambda msg: print("  " + msg))
    print(f"best QAT accuracy (a{act_bits}-w{weight_bits}): "
          f"{history.best_val_accuracy:.1%}")

    # Export to the deployment IR (the ONNX stage of Figure 3).
    model.eval()
    graph = export_sequential(model, name="tiny-qat-cnn")
    print(f"exported graph: {len(graph)} nodes, "
          f"{len(graph.quantized_nodes())} quantized")

    # Deploy on the Mix-GEMM backend: bit-exact + cycle-accounted.
    engine = InferenceEngine(graph, backend="mixgemm")
    images, labels = val.images[:16], val.labels[:16]
    result = engine.run(images)
    accuracy = float((result.output.argmax(axis=1) == labels).mean())
    print(f"deployed accuracy (16 samples): {accuracy:.1%}")
    print(f"simulated: {result.total_macs} MACs, "
          f"{result.total_cycles} cycles -> {result.gops():.2f} GOPS")
    for stats in result.layer_stats[:3]:
        print(f"  {stats.op} [{stats.config}]: "
              f"{stats.macs_per_cycle:.2f} MAC/cycle")

    # Sanity: the integer backend matches the training-time forward.
    ref = InferenceEngine(graph, backend="numpy").run(images).output
    assert np.allclose(result.output, ref, atol=1e-9)
    print("mixgemm backend == numpy reference: OK")


if __name__ == "__main__":
    main()
