"""Edge-deployment explorer: pick the best aX-wY per accuracy budget.

The paper's pitch is that supporting *every* precision from 8 to 2 bits
widens the deployment design space: for a given accuracy target you can
pick the fastest (or most efficient, or smallest-footprint) configuration
per network.  This example sweeps the Figure 7 ladder for each CNN and
answers three edge questions:

1. fastest configuration within an accuracy budget,
2. energy per inference at that configuration,
3. model-size saving against the 8-bit deployment.

Run:  python examples/deployment_explorer.py [max_accuracy_loss_pct]
"""

import sys

from repro.core.config import MixGemmConfig
from repro.eval.accuracy import CONFIG_LADDER, FP32_TOP1, top1_accuracy
from repro.eval.workloads import NETWORK_ORDER
from repro.models.inventory import DISPLAY_NAMES, get_network
from repro.sim.energy import EnergyModel
from repro.sim.perf import MixGemmPerfModel


def explore(max_loss_pct: float) -> None:
    perf = MixGemmPerfModel()
    energy = EnergyModel()
    print(f"accuracy budget: at most {max_loss_pct}% TOP-1 loss vs FP32\n")
    header = (f"{'network':16s} {'config':7s} {'GOPS':>6s} "
              f"{'TOP-1':>7s} {'mJ/inf':>7s} {'model MB':>9s} "
              f"{'vs 8-bit':>9s}")
    print(header)
    print("-" * len(header))
    for name in NETWORK_ORDER:
        inventory = get_network(name)
        best = None
        for bw_a, bw_b in CONFIG_LADDER:
            top1 = top1_accuracy(name, bw_a, bw_b)
            if FP32_TOP1[name] - top1 > max_loss_pct:
                continue
            cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
            result = perf.network(inventory, cfg)
            if best is None or result.gops > best[1].gops:
                best = (cfg, result, top1)
        if best is None:
            print(f"{name:16s} -- no configuration meets the budget")
            continue
        cfg, result, top1 = best
        joules = energy.from_perf(result, cfg).energy_pj * 1e-12
        size_mb = inventory.weight_bytes(cfg.bw_b) / 1e6
        size_8bit = inventory.weight_bytes(8) / 1e6
        print(
            f"{DISPLAY_NAMES[name]:16s} {cfg.name:7s} "
            f"{result.gops:6.2f} {top1:7.2f} {joules * 1e3:7.3f} "
            f"{size_mb:9.2f} {1 - size_mb / size_8bit:8.0%}"
        )


if __name__ == "__main__":
    budget = float(sys.argv[1]) if len(sys.argv) > 1 else 1.5
    explore(budget)
