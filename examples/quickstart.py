"""Quickstart: binary segmentation, one GEMM, and modelled performance.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import BinSegSpec, MixGemmConfig, mix_gemm
from repro.baselines import ScalarGemmModel, blis_dgemm_kernel
from repro.sim import MixGemmPerfModel


def binary_segmentation_demo() -> None:
    """The paper's Figure 1 worked example, verbatim."""
    spec = BinSegSpec(bw_a=3, bw_b=2, signed_a=False, signed_b=False,
                      mul_width=16)
    a = [4, 7, 3, 6]
    b = [3, 2, 0, 1]
    print("Figure 1 example:", spec.describe())
    result = spec.inner_product(a, b)
    print(f"  {a} . {b} = {result} (expected 32)\n")


def exact_gemm_demo() -> None:
    """A mixed-precision GEMM through the bit-exact u-engine simulator."""
    rng = np.random.default_rng(0)
    a = rng.integers(-128, 128, size=(16, 96))   # 8-bit activations
    b = rng.integers(-2, 2, size=(96, 12))       # 2-bit weights
    result = mix_gemm(a, b, bw_a=8, bw_b=2)
    exact = np.array_equal(result.c, a.astype(np.int64) @ b)
    print("a8-w2 GEMM through the simulated u-engine:")
    print(f"  exact: {exact}")
    print(f"  {result.macs} MACs in {result.cycles} cycles "
          f"-> {result.macs_per_cycle:.2f} MAC/cycle")
    print(f"  instruction mix: {result.instructions}\n")


def performance_model_demo() -> None:
    """Modelled speed-ups over the BLIS DGEMM baseline (Figure 6 flavor)."""
    mix = MixGemmPerfModel()
    baseline = ScalarGemmModel(blis_dgemm_kernel())
    n = 1024
    base = baseline.gemm(n, n, n)
    print(f"square GEMM n={n}, speed-up over BLIS DGEMM:")
    for bw in (8, 4, 2):
        cfg = MixGemmConfig(bw_a=bw, bw_b=bw)
        r = mix.gemm(n, n, n, cfg)
        print(f"  {cfg.name}: {base.total_cycles / r.total_cycles:5.1f}x "
              f"({r.gops:.1f} GOPS @ 1.2 GHz)")


if __name__ == "__main__":
    binary_segmentation_demo()
    exact_gemm_demo()
    performance_model_demo()
