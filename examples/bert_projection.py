"""Projecting Mix-GEMM onto BERT -- the paper's NLP motivation.

Section IV argues Mix-GEMM applies beyond CNNs: BERT's "compute expansive
kernels based on matrix-matrix multiplications could be accelerated".
This example walks the BERT-base encoder's GEMM sequence through the
performance and energy models at several precisions, and shows where the
time goes (attention vs feed-forward) as sequence length grows.

Run:  python examples/bert_projection.py [seq_len]
"""

import sys

from repro.core.config import MixGemmConfig
from repro.models.transformer import bert_base, project_gemm_workload
from repro.sim.energy import EnergyModel
from repro.sim.perf import MixGemmPerfModel


def main(seq_len: int) -> None:
    workload = bert_base(seq_len)
    perf = MixGemmPerfModel()
    energy = EnergyModel()
    print(f"BERT-base, sequence length {seq_len}: "
          f"{workload.total_macs / 1e9:.1f} GMAC per sequence, "
          f"{len(workload)} GEMMs")
    print(f"weight GEMM share: {workload.weight_macs_fraction:.1%} "
          "(the rest are activation-activation attention products)\n")

    print(f"{'config':8s} {'GOPS':>7s} {'s/seq':>7s} {'GOPS/W':>8s}")
    for bits in (8, 6, 4, 2):
        cfg = MixGemmConfig(bw_a=bits, bw_b=bits)
        r = project_gemm_workload(workload, perf, cfg)
        eff = energy.from_perf(r, cfg)
        print(f"a{bits}-w{bits}   {r.gops:7.2f} {r.seconds:7.2f} "
              f"{eff.gops_per_watt:8.0f}")

    # Where the time goes at a4-w4.
    cfg = MixGemmConfig(bw_a=4, bw_b=4)
    groups = {"attention": 0.0, "ffn": 0.0, "projections": 0.0}
    for item in workload:
        r = perf.gemm(item.m, item.n, item.k, cfg)
        cycles = r.total_cycles * item.repeats
        if "ffn" in item.name:
            groups["ffn"] += cycles
        elif "scores" in item.name or "context" in item.name:
            groups["attention"] += cycles
        else:
            groups["projections"] += cycles
    total = sum(groups.values())
    print("\ntime breakdown at a4-w4:")
    for name, cycles in groups.items():
        print(f"  {name:12s} {cycles / total:6.1%}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 128)
