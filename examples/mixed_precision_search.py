"""Per-layer mixed-precision search: extending the Pareto frontier.

The u-engine's Control Unit reconfigures in a single cycle (Section
III-B), so every layer can run its own aX-wY precision for free.  This
example sweeps accuracy budgets for a chosen CNN, compares the greedy
per-layer assignment against the best uniform configuration, and prints
the layers the optimizer protects (kept wide) and exploits (driven
narrow).

Run:  python examples/mixed_precision_search.py [network]
"""

import sys
from collections import Counter

from repro.eval.layerwise import LayerwiseOptimizer
from repro.models.inventory import DISPLAY_NAMES, get_network


def main(network: str) -> None:
    inventory = get_network(network)
    optimizer = LayerwiseOptimizer(network, inventory)
    print(f"{DISPLAY_NAMES[network]}: {len(inventory.conv_layers)} conv "
          f"layers, {inventory.conv_macs / 1e9:.2f} GMAC\n")

    header = (f"{'budget':>7s} {'mixed GOPS':>11s} {'uniform GOPS':>13s} "
              f"{'gain':>6s} {'mean bits':>10s}")
    print(header)
    print("-" * len(header))
    for budget in (0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
        mixed = optimizer.optimize(budget)
        uniform = optimizer.best_uniform_within(budget)
        gain = mixed.throughput_gops() / uniform.throughput_gops() - 1
        print(f"{budget:6.2f}% {mixed.throughput_gops():11.2f} "
              f"{uniform.throughput_gops():13.2f} {gain:5.0%} "
              f"{mixed.mean_bits:10.1f}")

    result = optimizer.optimize(2.0)
    print(f"\nassignment at a 2.0% budget "
          f"(predicted loss {result.predicted_loss:.2f}%):")
    histogram = Counter(result.bits.values())
    for bits in sorted(histogram, reverse=True):
        print(f"  {bits}-bit: {histogram[bits]} layers")
    widest = [name for name, b in result.bits.items() if b == 8][:5]
    narrowest = [name for name, b in result.bits.items() if b == 2][:5]
    if widest:
        print(f"  protected (8-bit): {', '.join(widest)}")
    if narrowest:
        print(f"  exploited (2-bit): {', '.join(narrowest)}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "mobilenet_v1")
