"""Reverse-mode automatic differentiation on numpy arrays.

The paper trains its quantized networks with PyTorch + Brevitas; neither is
available offline, so this module provides the training substrate: a small
define-by-run autograd engine sufficient for CNN training with
quantization-aware training (straight-through estimators and LSQ-style
learned scales live in :mod:`repro.nn.functional_quant`).

Design notes
------------
* A :class:`Tensor` wraps an ``ndarray`` plus an optional gradient and a
  backward closure; :meth:`Tensor.backward` runs a topological sweep.
* Elementwise ops broadcast like numpy; gradients are un-broadcast by
  summing over expanded axes (:func:`unbroadcast`).
* Heavy kernels (conv2d, pooling) are fused ops with hand-written
  backward passes built on the im2col machinery, mirroring how the paper
  lowers convolutions to GEMM (Section II-A).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with an autograd tape entry.

    Only float64 data participates in gradients; integer tensors may be
    wrapped (e.g. label arrays) but must not require gradients.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data: ArrayLike, requires_grad: bool = False) -> None:
        if isinstance(data, Tensor):
            raise TypeError("wrapping a Tensor in a Tensor is a bug")
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = requires_grad
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple[Tensor, ...] = ()

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def _lift(value: ArrayLike | "Tensor") -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def zero_grad(self) -> None:
        self.grad = None

    # -- tape machinery ---------------------------------------------------------

    @staticmethod
    def _node(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        out = Tensor(data)
        if any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    @staticmethod
    def _accumulate(tensor: "Tensor", grad: np.ndarray) -> None:
        if not tensor.requires_grad:
            return
        grad = unbroadcast(grad, tensor.shape)
        if tensor.grad is None:
            tensor.grad = grad.copy()
        else:
            tensor.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor (default seed: ones)."""
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor without grad")
        if grad is None:
            grad = np.ones_like(self.data)
        # Topological order over the tape.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))
        self.grad = np.asarray(grad, dtype=np.float64)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- elementwise arithmetic ---------------------------------------------------

    def __add__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad)
            Tensor._accumulate(other, grad)

        return self._node(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, -grad)

        return self._node(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike | "Tensor") -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * other.data)
            Tensor._accumulate(other, grad * self.data)

        return self._node(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike | "Tensor") -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad / other.data)
            Tensor._accumulate(other,
                               -grad * self.data / (other.data ** 2))

        return self._node(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(
                self, grad * exponent * self.data ** (exponent - 1)
            )

        return self._node(out_data, (self,), backward)

    # -- matrix ops -----------------------------------------------------------------

    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad @ other.data.T)
            Tensor._accumulate(other, self.data.T @ grad)

        return self._node(out_data, (self, other), backward)

    __matmul__ = matmul

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes or tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad.transpose(inverse))

        return self._node(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad.reshape(original))

        return self._node(out_data, (self,), backward)

    # -- reductions --------------------------------------------------------------------

    def sum(self, axis: Optional[tuple[int, ...] | int] = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if not keepdims and axis is not None:
                g = np.expand_dims(g, axis)
            Tensor._accumulate(self, np.broadcast_to(g, self.shape))

        return self._node(out_data, (self,), backward)

    def mean(self, axis: Optional[tuple[int, ...] | int] = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, int):
            count = self.shape[axis]
        else:
            count = int(np.prod([self.shape[a] for a in axis]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # -- nonlinearities -----------------------------------------------------------------

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * mask)

        return self._node(out_data, (self,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        """Hard clip with pass-through gradient inside the range.

        ``x.clip(0, 6)`` is ReLU6, the activation the paper substitutes
        into VGG-16 before extreme quantization (Section IV-A).
        """
        mask = (self.data > lo) & (self.data < hi)
        out_data = np.clip(self.data, lo, hi)

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * mask)

        return self._node(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * out_data)

        return self._node(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad / self.data)

        return self._node(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(self, grad * out_data * (1.0 - out_data))

        return self._node(out_data, (self,), backward)

    def silu(self) -> "Tensor":
        """x * sigmoid(x) -- EfficientNet's activation (swish)."""
        sig = 1.0 / (1.0 + np.exp(-self.data))
        out_data = self.data * sig

        def backward(grad: np.ndarray) -> None:
            Tensor._accumulate(
                self, grad * (sig + self.data * sig * (1.0 - sig))
            )

        return self._node(out_data, (self,), backward)

    # -- shape utilities ---------------------------------------------------------------------

    def pad2d(self, pad_h: int, pad_w: int) -> "Tensor":
        """Zero-pad the two trailing (spatial) axes of an NCHW tensor."""
        if pad_h == 0 and pad_w == 0:
            return self
        pads = [(0, 0)] * (self.ndim - 2) + [(pad_h, pad_h), (pad_w, pad_w)]
        out_data = np.pad(self.data, pads)
        h, w = self.shape[-2], self.shape[-1]

        def backward(grad: np.ndarray) -> None:
            sl = [slice(None)] * (self.ndim - 2)
            sl += [slice(pad_h, pad_h + h), slice(pad_w, pad_w + w)]
            Tensor._accumulate(self, grad[tuple(sl)])

        return self._node(out_data, (self,), backward)


def softmax_cross_entropy(logits: Tensor,
                          labels: np.ndarray) -> tuple[Tensor, np.ndarray]:
    """Fused, numerically-stable softmax + cross-entropy.

    ``labels`` are integer class ids of shape (batch,).  Returns the mean
    loss tensor and the (batch, classes) probability array for metrics.
    """
    z = logits.data
    z_shift = z - z.max(axis=1, keepdims=True)
    exp = np.exp(z_shift)
    probs = exp / exp.sum(axis=1, keepdims=True)
    batch = z.shape[0]
    nll = -np.log(probs[np.arange(batch), labels] + 1e-12)
    loss_value = nll.mean()

    def backward(grad: np.ndarray) -> None:
        g = probs.copy()
        g[np.arange(batch), labels] -= 1.0
        Tensor._accumulate(logits, grad * g / batch)

    out = Tensor._node(np.asarray(loss_value), (logits,), backward)
    return out, probs


def accuracy(probs: np.ndarray, labels: np.ndarray) -> float:
    """TOP-1 accuracy of a probability batch."""
    return float((probs.argmax(axis=1) == labels).mean())


def parameters_norm(params: Iterable[Tensor]) -> float:
    """L2 norm over a parameter collection (training diagnostics)."""
    total = 0.0
    for p in params:
        total += float((p.data ** 2).sum())
    return float(np.sqrt(total))
