"""Neural-network modules: float and quantization-aware layers.

A minimal module system in the PyTorch idiom (the paper trains with
PyTorch + Brevitas): :class:`Module` owns parameters and submodules,
``train()``/``eval()`` toggle mode recursively, and quantized variants
(:class:`QuantConv2d`, :class:`QuantLinear`) insert fake quantization on
weights (per-channel absmax, recomputed from the live weights each step)
and on input activations (per-tensor, scale learned in the log domain) --
the exact scheme of Section IV-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from . import functional as F
from .autograd import Tensor
from .functional_quant import (
    fake_quant_learned,
    fake_quant_ste,
    init_log_scale,
    weight_absmax_scale,
)


class Module:
    """Base class: parameter/submodule registry plus train/eval mode."""

    def __init__(self) -> None:
        self._parameters: dict[str, Tensor] = {}
        self._modules: dict[str, "Module"] = {}
        self.training = True

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    def parameters(self) -> Iterator[Tensor]:
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix: str = "") -> Iterator[
            tuple[str, Tensor]]:
        for name, p in self._parameters.items():
            yield f"{prefix}{name}", p
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())


def _kaiming(shape: tuple[int, ...], fan_in: int,
             rng: np.random.Generator) -> np.ndarray:
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


_default_rng = np.random.default_rng(0)


def seed_init(seed: int) -> None:
    """Re-seed layer weight initialization (tests / reproducibility)."""
    global _default_rng
    _default_rng = np.random.default_rng(seed)


class Linear(Module):
    """Fully-connected layer, weights (out_features, in_features)."""

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            _kaiming((out_features, in_features), in_features, _default_rng),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_features), requires_grad=True)
            if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)


class Conv2d(Module):
    """2-D convolution, OIHW weights, square kernel/stride/padding."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        fan_in = (in_channels // groups) * kernel_size * kernel_size
        self.weight = Tensor(
            _kaiming(
                (out_channels, in_channels // groups,
                 kernel_size, kernel_size),
                fan_in, _default_rng,
            ),
            requires_grad=True,
        )
        self.bias = (
            Tensor(np.zeros(out_channels), requires_grad=True)
            if bias else None
        )

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x, self.weight, self.bias,
            stride=self.stride, padding=self.padding, groups=self.groups,
        )


class BatchNorm2d(Module):
    """Batch normalization with running statistics."""

    def __init__(self, channels: int, momentum: float = 0.1,
                 eps: float = 1e-5) -> None:
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Tensor(np.ones(channels), requires_grad=True)
        self.beta = Tensor(np.zeros(channels), requires_grad=True)
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(
            x, self.gamma, self.beta,
            self.running_mean, self.running_var,
            training=self.training, momentum=self.momentum, eps=self.eps,
        )


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class ReLU6(Module):
    """Clipped ReLU -- the paper swaps this into VGG-16 before 2/3-bit QAT."""

    def forward(self, x: Tensor) -> Tensor:
        return x.clip(0.0, 6.0)


class SiLU(Module):
    """Swish activation (EfficientNet)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.silu()


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.flatten(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


# ---------------------------------------------------------------------------
# Quantization-aware layers (Section IV-A scheme)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LayerQuantSpec:
    """Per-layer quantization choice: the paper's aX-wY knob.

    ``act_bits``/``weight_bits`` of ``None`` disable fake quantization on
    that operand (used for float baselines).  ``act_signed`` is false for
    post-ReLU inputs (the common case).
    """

    act_bits: Optional[int] = None
    weight_bits: Optional[int] = None
    act_signed: bool = False

    @property
    def name(self) -> str:
        a = self.act_bits if self.act_bits is not None else "fp"
        w = self.weight_bits if self.weight_bits is not None else "fp"
        return f"a{a}-w{w}"


class _QuantMixin:
    """Shared fake-quantization plumbing for conv/linear layers."""

    def _init_quant(self, spec: LayerQuantSpec,
                    initial_act_scale: float) -> None:
        self.spec = spec
        if spec.act_bits is not None:
            self.act_log_scale = init_log_scale(initial_act_scale)

    def _quant_input(self, x: Tensor) -> Tensor:
        if self.spec.act_bits is None:
            return x
        return fake_quant_learned(
            x, self.act_log_scale, self.spec.act_bits,
            signed=self.spec.act_signed,
        )

    def _quant_weight(self, weight: Tensor, channel_axis: int = 0) -> Tensor:
        if self.spec.weight_bits is None:
            return weight
        scale = weight_absmax_scale(
            weight.data, self.spec.weight_bits, channel_axis=channel_axis
        )
        return fake_quant_ste(
            weight, scale, self.spec.weight_bits,
            signed=True, channel_axis=channel_axis,
        )

    def calibrate_act_scale(self, scale: float) -> None:
        """Overwrite the learned activation scale (PTQ initialization)."""
        if self.spec.act_bits is None:
            raise ValueError("layer has no activation quantizer")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.act_log_scale.data = np.asarray(np.log(scale))


class QuantConv2d(Conv2d, _QuantMixin):
    """Conv2d with QAT fake quantization on inputs and weights."""

    def __init__(self, in_channels: int, out_channels: int,
                 kernel_size: int, *, spec: LayerQuantSpec,
                 stride: int = 1, padding: int = 0, groups: int = 1,
                 bias: bool = True,
                 initial_act_scale: float = 0.1) -> None:
        super().__init__(
            in_channels, out_channels, kernel_size,
            stride=stride, padding=padding, groups=groups, bias=bias,
        )
        self._init_quant(spec, initial_act_scale)

    def forward(self, x: Tensor) -> Tensor:
        xq = self._quant_input(x)
        wq = self._quant_weight(self.weight)
        return F.conv2d(xq, wq, self.bias, stride=self.stride,
                        padding=self.padding, groups=self.groups)


class QuantLinear(Linear, _QuantMixin):
    """Linear with QAT fake quantization on inputs and weights."""

    def __init__(self, in_features: int, out_features: int, *,
                 spec: LayerQuantSpec, bias: bool = True,
                 initial_act_scale: float = 0.1) -> None:
        super().__init__(in_features, out_features, bias=bias)
        self._init_quant(spec, initial_act_scale)

    def forward(self, x: Tensor) -> Tensor:
        xq = self._quant_input(x)
        wq = self._quant_weight(self.weight)
        return F.linear(xq, wq, self.bias)
