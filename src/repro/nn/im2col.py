"""im2col / im2row lowering of convolutions to GEMM (Section II-A).

The paper computes convolutions with the GEMM-based approach: "each row of
A is composed of the flattened input values that contribute to that pixel
... while each column of B corresponds to flattened parameters computing a
single output pixel".  These helpers produce exactly that mapping:

* :func:`im2row` builds the (N*OH*OW, C*KH*KW) activation matrix A;
* :func:`weight_matrix` flattens the filters into the (C*KH*KW, F) B;
* :func:`row2im` is the scatter-add inverse used by conv backward.

All functions take NCHW activations and OIHW weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ConvGeometry:
    """Shape bookkeeping for one convolution lowering."""

    batch: int
    in_channels: int
    in_h: int
    in_w: int
    out_channels: int
    kernel_h: int
    kernel_w: int
    stride: int
    padding: int
    groups: int = 1

    @property
    def out_h(self) -> int:
        return (self.in_h + 2 * self.padding - self.kernel_h) \
            // self.stride + 1

    @property
    def out_w(self) -> int:
        return (self.in_w + 2 * self.padding - self.kernel_w) \
            // self.stride + 1

    @property
    def gemm_m(self) -> int:
        """Rows of the A matrix: output pixels across the batch."""
        return self.batch * self.out_h * self.out_w

    @property
    def gemm_k(self) -> int:
        """Inner dimension: receptive-field size (per group)."""
        return (self.in_channels // self.groups) * self.kernel_h \
            * self.kernel_w

    @property
    def gemm_n(self) -> int:
        """Columns of the B matrix: output channels (per group)."""
        return self.out_channels // self.groups

    @property
    def macs(self) -> int:
        """Multiply-accumulates of the convolution."""
        return self.groups * self.gemm_m * self.gemm_k * self.gemm_n


def conv_geometry(
    x_shape: tuple[int, int, int, int],
    w_shape: tuple[int, int, int, int],
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> ConvGeometry:
    """Resolve the GEMM geometry of a conv given NCHW/OIHW shapes."""
    n, c, h, w = x_shape
    f, c_per_group, kh, kw = w_shape
    if c != c_per_group * groups:
        raise ValueError(
            f"channel mismatch: input {c}, weight {c_per_group} x "
            f"groups {groups}"
        )
    if f % groups:
        raise ValueError(f"out channels {f} not divisible by groups {groups}")
    return ConvGeometry(
        batch=n, in_channels=c, in_h=h, in_w=w, out_channels=f,
        kernel_h=kh, kernel_w=kw, stride=stride, padding=padding,
        groups=groups,
    )


def _padded(x: np.ndarray, padding: int) -> np.ndarray:
    if padding == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (padding, padding),
                      (padding, padding)))


def im2row(
    x: np.ndarray, kh: int, kw: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Lower NCHW activations to the GEMM A matrix (im2row layout).

    Output shape: ``(N * OH * OW, C * KH * KW)`` -- one row per output
    pixel, unit-stride over the receptive field, channel-major.
    """
    n, c, h, w = x.shape
    xp = _padded(x, padding)
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    sn, sc, sh, sw = xp.strides
    windows = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, c, oh, ow, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (n, oh, ow, c, kh, kw) -> rows are output pixels.
    rows = windows.transpose(0, 2, 3, 1, 4, 5).reshape(n * oh * ow,
                                                       c * kh * kw)
    return np.ascontiguousarray(rows)


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Transpose layout: ``(C * KH * KW, N * OH * OW)`` (classic im2col)."""
    return im2row(x, kh, kw, stride, padding).T


def row2im(
    rows: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Scatter-add inverse of :func:`im2row` (the conv backward w.r.t. x).

    Because im2row duplicates overlapping pixels, the inverse accumulates
    every contribution back into its source location.
    """
    n, c, h, w = x_shape
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (w + 2 * padding - kw) // stride + 1
    cols = rows.reshape(n, oh, ow, c, kh, kw)
    xp = np.zeros((n, c, h + 2 * padding, w + 2 * padding),
                  dtype=rows.dtype)
    for i in range(kh):
        h_end = i + stride * oh
        for j in range(kw):
            w_end = j + stride * ow
            xp[:, :, i:h_end:stride, j:w_end:stride] += \
                cols[:, :, :, :, i, j].transpose(0, 3, 1, 2)
    if padding:
        return xp[:, :, padding:-padding, padding:-padding]
    return xp


def weight_matrix(w: np.ndarray) -> np.ndarray:
    """Flatten OIHW filters into the GEMM B matrix (C*KH*KW, F)."""
    f = w.shape[0]
    return w.reshape(f, -1).T


def rows_to_nchw(
    y: np.ndarray, batch: int, out_h: int, out_w: int
) -> np.ndarray:
    """Reshape the GEMM output (N*OH*OW, F) back to NCHW."""
    f = y.shape[1]
    return y.reshape(batch, out_h, out_w, f).transpose(0, 3, 1, 2)


def nchw_to_rows(y: np.ndarray) -> np.ndarray:
    """Inverse of :func:`rows_to_nchw` (used by conv backward)."""
    n, f, oh, ow = y.shape
    return y.transpose(0, 2, 3, 1).reshape(n * oh * ow, f)


def im2row_duplication_factor(geo: ConvGeometry) -> float:
    """Memory blow-up of an explicit im2row (paper Section II-A).

    "A direct implementation of im2col incurs a nontrivial overhead in
    terms of memory and bandwidth, because activations are duplicated
    across A" -- the factor is the A-matrix volume over the input volume.
    Modern implicit schemes (refs [22], [48], [72], [79]) remove it,
    which is why the paper "only focuses on the compute aspect of GEMM";
    this helper quantifies what those schemes save.
    """
    a_elements = geo.gemm_m * geo.gemm_k * geo.groups
    input_elements = geo.batch * geo.in_channels * geo.in_h * geo.in_w
    return a_elements / input_elements
