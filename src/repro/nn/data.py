"""Synthetic image-classification datasets.

The paper trains on ImageNet, which is not available offline; these
generators produce laptop-scale class-conditional image datasets that
exercise the same code paths (conv feature extraction, QAT) and exhibit the
same qualitative accuracy-vs-bitwidth behaviour.  Each class is a distinct
oriented grating plus a class-specific blob, with additive noise -- hard
enough that accuracy degrades visibly under aggressive quantization,
easy enough that a small CNN trains in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np


@dataclass
class Dataset:
    """In-memory dataset: NCHW images plus integer labels."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if len(self.images) != len(self.labels):
            raise ValueError("images/labels length mismatch")

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def n_classes(self) -> int:
        return int(self.labels.max()) + 1

    def batches(self, batch_size: int,
                rng: np.random.Generator | None = None
                ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Iterate mini-batches, shuffled when an rng is given."""
        order = np.arange(len(self))
        if rng is not None:
            rng.shuffle(order)
        for start in range(0, len(self), batch_size):
            idx = order[start:start + batch_size]
            yield self.images[idx], self.labels[idx]

    def split(self, train_fraction: float = 0.8
              ) -> tuple["Dataset", "Dataset"]:
        cut = int(len(self) * train_fraction)
        return (
            Dataset(self.images[:cut], self.labels[:cut]),
            Dataset(self.images[cut:], self.labels[cut:]),
        )


def synthetic_image_dataset(
    n_classes: int = 4,
    n_samples: int = 512,
    image_size: int = 12,
    channels: int = 1,
    noise: float = 0.35,
    seed: int = 0,
) -> Dataset:
    """Class-conditional oriented gratings + blobs with additive noise."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:image_size, 0:image_size] / image_size
    images = np.empty((n_samples, channels, image_size, image_size))
    labels = rng.integers(0, n_classes, size=n_samples)
    for i, label in enumerate(labels):
        angle = np.pi * label / n_classes
        freq = 2.0 + label
        phase = rng.uniform(0, 2 * np.pi)
        pattern = np.sin(
            2 * np.pi * freq * (np.cos(angle) * xx + np.sin(angle) * yy)
            + phase
        )
        # Class-anchored blob (small jitter): gives every class a stable
        # spatial signature on top of the randomized grating phase.
        theta = 2 * np.pi * label / n_classes
        cx = 0.5 + 0.25 * np.cos(theta) + rng.uniform(-0.05, 0.05)
        cy = 0.5 + 0.25 * np.sin(theta) + rng.uniform(-0.05, 0.05)
        blob = 2.0 * np.exp(-(((xx - cx) ** 2 + (yy - cy) ** 2) / 0.02)) \
            * (1.0 if label % 2 == 0 else -1.0)
        base = pattern + blob
        for ch in range(channels):
            images[i, ch] = base * (1.0 + 0.1 * ch) \
                + rng.normal(0, noise, size=base.shape)
    # Normalize to zero mean / unit variance like ImageNet preprocessing.
    images -= images.mean()
    images /= images.std()
    return Dataset(images=images, labels=labels.astype(np.int64))
