"""Optimizers and LR schedules for (quantization-aware) training.

The paper retrains every network with "SGD featuring momentum of 0.9,
weight decay 1e-4" and a step schedule "lowering the learning rate by 0.1
every 30 epochs" (Section IV-A); :class:`SGD` + :class:`StepLR` implement
exactly that recipe.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .autograd import Tensor


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        self.params: list[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"invalid learning rate: {lr}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                update = v
            else:
                update = grad
            p.data -= self.lr * update


class StepLR:
    """Multiply the LR by ``gamma`` every ``step_epochs`` epochs."""

    def __init__(self, optimizer: SGD, step_epochs: int,
                 gamma: float = 0.1) -> None:
        if step_epochs < 1:
            raise ValueError("step_epochs must be >= 1")
        self.optimizer = optimizer
        self.step_epochs = step_epochs
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        """Advance one epoch and update the optimizer LR."""
        self.epoch += 1
        decays = self.epoch // self.step_epochs
        self.optimizer.lr = self.base_lr * (self.gamma ** decays)

    @property
    def current_lr(self) -> float:
        return self.optimizer.lr


class MultiStepLR:
    """Decay at explicit epoch milestones (used for fine-tune recipes)."""

    def __init__(self, optimizer: SGD, milestones: Sequence[int],
                 gamma: float = 0.1) -> None:
        self.optimizer = optimizer
        self.milestones = sorted(milestones)
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        decays = sum(1 for m in self.milestones if self.epoch >= m)
        self.optimizer.lr = self.base_lr * (self.gamma ** decays)
