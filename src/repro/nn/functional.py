"""Fused autograd ops: convolution and pooling on :class:`Tensor`.

Convolution is lowered to GEMM with im2row, exactly the path the paper
accelerates; its backward reuses the same machinery (row2im scatter-add).
Grouped convolution covers MobileNet-V1's depthwise layers and RegNet's
group convs.
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor
from .im2col import (
    conv_geometry,
    im2row,
    nchw_to_rows,
    row2im,
    rows_to_nchw,
    weight_matrix,
)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    *,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """2-D convolution, NCHW x OIHW -> NCHW, via im2row + GEMM."""
    geo = conv_geometry(x.shape, weight.shape, stride, padding, groups)
    cpg = geo.in_channels // groups   # channels per group
    fpg = geo.out_channels // groups  # filters per group

    rows_per_group: list[np.ndarray] = []
    outs: list[np.ndarray] = []
    for g in range(groups):
        xg = x.data[:, g * cpg:(g + 1) * cpg]
        wg = weight.data[g * fpg:(g + 1) * fpg]
        rows = im2row(xg, geo.kernel_h, geo.kernel_w, stride, padding)
        rows_per_group.append(rows)
        outs.append(rows @ weight_matrix(wg))
    y_rows = np.concatenate(outs, axis=1)
    out_data = rows_to_nchw(y_rows, geo.batch, geo.out_h, geo.out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, -1, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(grad: np.ndarray) -> None:
        g_rows = nchw_to_rows(grad)
        if bias is not None:
            Tensor._accumulate(bias, grad.sum(axis=(0, 2, 3)))
        dx_groups: list[np.ndarray] = []
        dw = np.empty_like(weight.data)
        for g in range(groups):
            gr = g_rows[:, g * fpg:(g + 1) * fpg]
            wg = weight.data[g * fpg:(g + 1) * fpg]
            # dX: back through the GEMM then scatter-add to image layout.
            if x.requires_grad:
                d_rows = gr @ weight_matrix(wg).T
                dx_groups.append(
                    row2im(
                        d_rows,
                        (geo.batch, cpg, geo.in_h, geo.in_w),
                        geo.kernel_h, geo.kernel_w, stride, padding,
                    )
                )
            # dW: rows^T @ grad-rows, reshaped back to OIHW.
            dw_mat = rows_per_group[g].T @ gr
            dw[g * fpg:(g + 1) * fpg] = dw_mat.T.reshape(
                fpg, cpg, geo.kernel_h, geo.kernel_w
            )
        if x.requires_grad:
            Tensor._accumulate(x, np.concatenate(dx_groups, axis=1))
        Tensor._accumulate(weight, dw)

    return Tensor._node(out_data, parents, backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Fully-connected layer: ``x @ W.T + b`` with (out, in) weights."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def max_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Max pooling over NCHW spatial dims (kernel == window, no padding)."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    sn, sc, sh, sw = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    flat = windows.reshape(n, c, oh, ow, kernel * kernel)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        dx = np.zeros_like(x.data)
        ki, kj = np.unravel_index(arg, (kernel, kernel))
        n_idx, c_idx, i_idx, j_idx = np.indices((n, c, oh, ow))
        np.add.at(
            dx,
            (n_idx, c_idx, i_idx * stride + ki, j_idx * stride + kj),
            grad,
        )
        Tensor._accumulate(x, dx)

    return Tensor._node(out_data, (x,), backward)


def avg_pool2d(x: Tensor, kernel: int, stride: int | None = None) -> Tensor:
    """Average pooling over NCHW spatial dims."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    sn, sc, sh, sw = x.data.strides
    windows = np.lib.stride_tricks.as_strided(
        x.data,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    out_data = windows.mean(axis=(-2, -1))
    norm = 1.0 / (kernel * kernel)

    def backward(grad: np.ndarray) -> None:
        dx = np.zeros_like(x.data)
        for i in range(kernel):
            for j in range(kernel):
                dx[:, :, i:i + stride * oh:stride,
                   j:j + stride * ow:stride] += grad * norm
        Tensor._accumulate(x, dx)

    return Tensor._node(out_data, (x,), backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Global average pooling: NCHW -> (N, C)."""
    return x.mean(axis=(2, 3))


def batch_norm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    *,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over NCHW channels.

    Running statistics are updated in place when ``training``; the fused
    backward implements the standard batch-norm gradient.
    """
    if training:
        mean = x.data.mean(axis=(0, 2, 3))
        var = x.data.var(axis=(0, 2, 3))
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        running_var += momentum * var
    else:
        mean, var = running_mean, running_var

    mean_b = mean.reshape(1, -1, 1, 1)
    std_b = np.sqrt(var + eps).reshape(1, -1, 1, 1)
    x_hat = (x.data - mean_b) / std_b
    out_data = gamma.data.reshape(1, -1, 1, 1) * x_hat \
        + beta.data.reshape(1, -1, 1, 1)

    def backward(grad: np.ndarray) -> None:
        Tensor._accumulate(gamma, (grad * x_hat).sum(axis=(0, 2, 3)))
        Tensor._accumulate(beta, grad.sum(axis=(0, 2, 3)))
        if not x.requires_grad:
            return
        g = grad * gamma.data.reshape(1, -1, 1, 1)
        if training:
            m = x.data.shape[0] * x.data.shape[2] * x.data.shape[3]
            sum_g = g.sum(axis=(0, 2, 3), keepdims=True)
            sum_gx = (g * x_hat).sum(axis=(0, 2, 3), keepdims=True)
            dx = (g - sum_g / m - x_hat * sum_gx / m) / std_b
        else:
            dx = g / std_b
        Tensor._accumulate(x, dx)

    return Tensor._node(out_data, (x, gamma, beta), backward)


def flatten(x: Tensor) -> Tensor:
    """Collapse all but the batch axis."""
    return x.reshape(x.shape[0], -1)
