"""Quantization-aware training primitives (Section IV-A).

Two fake-quantization ops on autograd tensors:

* :func:`fake_quant_ste` -- fixed scale, straight-through estimator on the
  data (used for weights: per-channel absmax scale recomputed each step,
  which is the behaviour of Brevitas' default weight quantizer the paper
  uses);
* :func:`fake_quant_learned` -- LSQ-style quantizer whose scale is a
  trained parameter in the **log domain**, matching "activations are
  quantized per-tensor with scale learned in log domain" (ref [34], Jain
  et al., trained quantization thresholds).

Both clamp to the Equation-2 integer grid and are exact fixed points for
already-quantized inputs.
"""

from __future__ import annotations

import numpy as np

from repro.core.binseg import value_range

from .autograd import Tensor


def _grid(bits: int, signed: bool) -> tuple[int, int]:
    return value_range(bits, signed)


def fake_quant_ste(
    x: Tensor,
    scale: np.ndarray,
    bits: int,
    *,
    signed: bool = True,
    channel_axis: int | None = None,
) -> Tensor:
    """Quantize-dequantize with a straight-through estimator.

    ``scale`` is a positive scalar or per-channel vector (along
    ``channel_axis``).  Gradients pass through unchanged inside the clip
    range and are zeroed outside it.
    """
    qmin, qmax = _grid(bits, signed)
    scale = np.asarray(scale, dtype=np.float64)
    if channel_axis is not None:
        shape = [1] * x.ndim
        shape[channel_axis] = scale.size
        scale = scale.reshape(shape)
    q = np.round(x.data / scale)
    inside = (q >= qmin) & (q <= qmax)
    q = np.clip(q, qmin, qmax)
    out_data = q * scale

    def backward(grad: np.ndarray) -> None:
        Tensor._accumulate(x, grad * inside)

    return Tensor._node(out_data, (x,), backward)


def weight_absmax_scale(
    weight: np.ndarray, bits: int, *, channel_axis: int = 0,
    eps: float = 1e-12,
) -> np.ndarray:
    """Per-channel absmax scale, recomputed from the live weights.

    This is the paper's weight quantizer: "weights are quantized
    per-channel with scale computed from the absmax of the weight tensor".
    """
    axes = tuple(i for i in range(weight.ndim) if i != channel_axis)
    absmax = np.abs(weight).max(axis=axes)
    qmax = _grid(bits, True)[1]
    return np.maximum(absmax / qmax, eps)


def fake_quant_learned(
    x: Tensor,
    log_scale: Tensor,
    bits: int,
    *,
    signed: bool = False,
    grad_scale: float | None = None,
) -> Tensor:
    """LSQ fake quantization with the scale trained in the log domain.

    ``log_scale`` is a scalar parameter p with s = exp(p).  Gradients:

    * w.r.t. x: straight-through inside the grid, zero outside;
    * w.r.t. s (chain-ruled into p by ds/dp = s):
      ``(q - x/s)`` inside the grid, ``qmin``/``qmax`` at the clip rails
      (Esser et al. LSQ; Jain et al. train the threshold in log2 domain).

    ``grad_scale`` rescales the scale gradient (LSQ uses
    ``1/sqrt(n * qmax)``); defaults to that recipe.
    """
    qmin, qmax = _grid(bits, signed)
    s = float(np.exp(log_scale.data))
    ratio = x.data / s
    q = np.round(ratio)
    below = q < qmin
    above = q > qmax
    inside = ~(below | above)
    q = np.clip(q, qmin, qmax)
    out_data = q * s
    if grad_scale is None:
        grad_scale = 1.0 / np.sqrt(max(x.size * max(qmax, 1), 1))

    def backward(grad: np.ndarray) -> None:
        Tensor._accumulate(x, grad * inside)
        ds = np.where(inside, q - ratio,
                      np.where(below, float(qmin), float(qmax)))
        # Chain rule through s = exp(p): dL/dp = dL/ds * s.
        dp = float((grad * ds).sum()) * s * grad_scale
        Tensor._accumulate(log_scale, np.asarray(dp))

    return Tensor._node(out_data, (x, log_scale), backward)


def init_log_scale(initial_scale: float) -> Tensor:
    """Create the trainable log-domain scale parameter."""
    if initial_scale <= 0:
        raise ValueError("scale must be positive")
    return Tensor(np.log(initial_scale), requires_grad=True)
