"""Winograd F(2x2, 3x3) convolution -- the fast algorithm the paper skips.

Section II-A surveys convolution strategies: direct, FFT/Winograd, and
GEMM-based.  The paper picks GEMM for generality and because fast
algorithms "have additional limitations when applied to quantized values"
(ref [49], Meng & Brothers).  This module makes both halves of that
argument executable:

* a correct float Winograd F(2x2, 3x3): 2.25x fewer multiplications than
  direct convolution for 3x3 kernels (16 multiplies per 4 outputs vs 36);
* :func:`winograd_range_expansion` quantifying *why* it breaks narrow
  quantization: the input/weight transforms inflate the dynamic range
  (the B^T d B transform multiplies values by up to 4, G g G^T by up to
  1), so transformed operands need ~2 extra integer bits -- at 2-4 bit
  precision that erases the entire quantization benefit.

Transforms (Lavin & Gray):

    B^T = [[1, 0, -1, 0], [0, 1, 1, 0], [0, -1, 1, 0], [0, 1, 0, -1]]
    G   = [[1, 0, 0], [.5, .5, .5], [.5, -.5, .5], [0, 0, 1]]
    A^T = [[1, 1, 1, 0], [0, 1, -1, -1]]
"""

from __future__ import annotations

import numpy as np

B_T = np.array([
    [1, 0, -1, 0],
    [0, 1, 1, 0],
    [0, -1, 1, 0],
    [0, 1, 0, -1],
], dtype=np.float64)

G = np.array([
    [1.0, 0.0, 0.0],
    [0.5, 0.5, 0.5],
    [0.5, -0.5, 0.5],
    [0.0, 0.0, 1.0],
], dtype=np.float64)

A_T = np.array([
    [1, 1, 1, 0],
    [0, 1, -1, -1],
], dtype=np.float64)


def transform_filter(g: np.ndarray) -> np.ndarray:
    """3x3 filter -> 4x4 Winograd domain: ``G g G^T``."""
    if g.shape != (3, 3):
        raise ValueError(f"expected a 3x3 filter, got {g.shape}")
    return G @ g @ G.T


def transform_input_tile(d: np.ndarray) -> np.ndarray:
    """4x4 input tile -> Winograd domain: ``B^T d B``."""
    if d.shape != (4, 4):
        raise ValueError(f"expected a 4x4 tile, got {d.shape}")
    return B_T @ d @ B_T.T


def transform_output(m: np.ndarray) -> np.ndarray:
    """4x4 elementwise product -> 2x2 outputs: ``A^T m A``."""
    return A_T @ m @ A_T.T


def winograd_conv2d(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Valid 3x3 convolution via F(2x2, 3x3), NCHW x OIHW -> NCHW.

    Spatial dims must produce even output sizes (tiles of 2).  Float
    only -- the point of this module is explaining why the quantized
    variant is unattractive, not shipping one.
    """
    n, c, h, wid = x.shape
    f, cw, kh, kw = w.shape
    if (kh, kw) != (3, 3):
        raise ValueError("F(2x2, 3x3) requires 3x3 kernels")
    if cw != c:
        raise ValueError(f"channel mismatch: {c} vs {cw}")
    oh, ow = h - 2, wid - 2
    if oh % 2 or ow % 2:
        raise ValueError(
            f"output {oh}x{ow} not tileable by 2 (pad the input)"
        )
    # Pre-transform all filters: (f, c, 4, 4).
    u = np.einsum("ij,fcjk,lk->fcil", G, w, G)
    out = np.zeros((n, f, oh, ow))
    for ti in range(0, oh, 2):
        for tj in range(0, ow, 2):
            d = x[:, :, ti:ti + 4, tj:tj + 4]
            v = np.einsum("ij,ncjk,lk->ncil", B_T, d, B_T)
            m = np.einsum("fcil,ncil->nfil", u, v)
            out[:, :, ti:ti + 2, tj:tj + 2] = np.einsum(
                "ij,nfjk,lk->nfil", A_T, m, A_T
            )
    return out


def multiplication_counts(oh: int, ow: int, channels: int,
                          filters: int) -> tuple[int, int]:
    """(direct, winograd) multiplication counts for a 3x3 conv layer."""
    direct = oh * ow * 9 * channels * filters
    tiles = (oh // 2) * (ow // 2)
    winograd = tiles * 16 * channels * filters
    return direct, winograd


def winograd_range_expansion(bits: int) -> dict[str, float]:
    """Worst-case dynamic-range growth through the Winograd transforms.

    For ``bits``-bit signed inputs/weights, returns the extra integer
    bits the *transformed* operands need.  ``B^T d B`` sums four inputs
    with coefficients in {-1, 0, 1} applied twice (rows then columns), so
    a transformed input can reach 4x the input magnitude (+2 bits);
    ``G g G^T`` keeps weights within 2.25x (+ ~1.2 bits) but introduces
    halves (0.25 granularity), costing 2 fractional bits to represent
    exactly.

    At 8 bits these costs are absorbable; at 2-4 bits they wipe out the
    compression Mix-GEMM exploits -- the quantitative form of ref [49]'s
    caveat and the justification for the paper's GEMM-only focus.
    """
    # Worst case over output positions: product of the largest absolute
    # row sums of the row and column transforms.
    input_worst = float(np.abs(B_T).sum(axis=1).max()) ** 2
    weight_worst = float(np.abs(G).sum(axis=1).max()) ** 2
    extra_input_bits = float(np.ceil(np.log2(input_worst)))
    extra_weight_bits = float(np.log2(weight_worst))
    fractional_bits = 2.0  # G introduces quarters
    return {
        "input_range_gain": input_worst,
        "weight_range_gain": weight_worst,
        "extra_input_bits": extra_input_bits,
        "extra_weight_bits": extra_weight_bits,
        "weight_fractional_bits": fractional_bits,
        "effective_input_bits": bits + extra_input_bits,
        "effective_weight_bits": bits + extra_weight_bits
        + fractional_bits,
    }
