"""Persistent per-layer autotuner (dace-style cutout tuning).

The compiled-plan serving stack runs every quantized GEMM at the
simulator's default blocking.  This package makes deployments
self-optimizing: each graph layer is cut out of a compiled plan with
its *real* operands (:mod:`~repro.tuning.cutout`), a pruned candidate
space of blocking / execution backend / worker counts is measured
against a wall-clock objective with a bit-exactness gate
(:mod:`~repro.tuning.space`, :mod:`~repro.tuning.measure`), and the
winners persist in an on-disk, atomically written result cache keyed
by layer-shape content hash (:mod:`~repro.tuning.cache`).  Plan
compilation consults that cache -- ``compile_graph(..., tuned=True)``
and ``repro serve --tuned`` transparently run each layer at its tuned
blocking; ``repro tune`` runs, inspects and clears campaigns
(:mod:`~repro.tuning.tuner`).
"""

from .cache import (
    TUNE_CACHE_ENV,
    TUNE_SCHEMA_VERSION,
    TuneCache,
    TuneEntry,
    TuneKey,
    backend_capability,
    default_cache_dir,
    shape_digest,
)
from .cutout import LayerCutout, TuningError, extract_cutouts
from .measure import (
    MeasureResult,
    fan_out_measurements,
    measure_candidate,
    measure_serial,
    reference_digest,
)
from .space import (
    Candidate,
    DEFAULT_CORES_VALUES,
    DEFAULT_EVENT_MAC_LIMIT,
    candidate_space,
    default_candidate,
    effective_kc_split,
)
from .tuner import LayerOutcome, TuneReport, tune_cutout, tune_graph

__all__ = [
    "Candidate",
    "DEFAULT_CORES_VALUES",
    "DEFAULT_EVENT_MAC_LIMIT",
    "LayerCutout",
    "LayerOutcome",
    "MeasureResult",
    "TUNE_CACHE_ENV",
    "TUNE_SCHEMA_VERSION",
    "TuneCache",
    "TuneEntry",
    "TuneKey",
    "TuneReport",
    "TuningError",
    "backend_capability",
    "candidate_space",
    "default_cache_dir",
    "default_candidate",
    "effective_kc_split",
    "extract_cutouts",
    "fan_out_measurements",
    "measure_candidate",
    "measure_serial",
    "reference_digest",
    "shape_digest",
    "tune_cutout",
    "tune_graph",
]
