"""Cut single GEMM layers out of a compiled plan as tuning units.

dace-style cutout tuning measures each candidate against the *real*
work the deployment performs, not a synthetic proxy: the A operand is
the exact quantized im2col activation matrix the plan produced for a
representative input, and the B operand is the exact weight panel the
plan baked in at compile time.  This module extracts both without
re-deriving any lowering logic -- it runs the plan once with the
:mod:`~repro.runtime.observe` range hook armed (the same tap the range
sanitizer uses) and captures the ``"act"`` array each quantized GEMM
step reports immediately before calling its bound executor, then pairs
it with that executor's baked weight operand.

Fast-mode executors store their weights as pre-cast kc-blocks (the
float64 blocks are exact by the ``2**53`` rule, so casting back to
int64 is lossless); event-mode executors keep the int64 panel
directly.  Grouped convolutions contribute their first group: every
group shares the layer's shape, bitwidths and blocking, so one group
is the representative tuning unit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import MixGemmConfig
from repro.core.errors import ReproError
from repro.runtime.observe import set_range_hook
from repro.runtime.plan import GraphPlan


class TuningError(ReproError, RuntimeError):
    """Raised on autotuner misuse (wrong backend, no quantized layers)."""


@dataclass
class LayerCutout:
    """One independently runnable tuning unit cut from a plan.

    ``label`` is the step's stable pre-fusion id (``stats_label``), the
    same key per-layer cycle reports use.  ``a`` is the captured
    quantized activation matrix (M x K, int64 codes already in the
    config's range), ``b`` the baked weight panel (K x N, int64).
    """

    label: str
    op: str
    config: MixGemmConfig
    a: np.ndarray
    b: np.ndarray
    groups: int = 1

    @property
    def m(self) -> int:
        return self.a.shape[0]

    @property
    def k(self) -> int:
        return self.a.shape[1]

    @property
    def n(self) -> int:
        return self.b.shape[1]

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k

    def describe(self) -> str:
        return (f"{self.label}: {self.op} {self.config.name} "
                f"{self.m}x{self.k}x{self.n}"
                + (f" (x{self.groups} groups)" if self.groups > 1 else ""))


def bound_weight_operand(gemm) -> np.ndarray:
    """Reassemble a bound executor's int64 K x N weight operand.

    Event mode keeps the panel directly.  Fast mode stores kc-blocks,
    some pre-cast to float64 -- only when every product in the block is
    exactly representable (``kc_blk * max|A| * max|B| < 2**53``), so
    the round-trip back to int64 is the identity on the stored values.
    """
    if gemm.mode == "event":
        return np.asarray(gemm._b, dtype=np.int64)
    blocks = [np.asarray(blk, dtype=np.int64)
              for _, blk, _ in gemm._blocks]
    return blocks[0] if len(blocks) == 1 else np.concatenate(blocks)


def extract_cutouts(plan: GraphPlan, x: np.ndarray) -> list[LayerCutout]:
    """Run ``plan`` once on ``x`` and cut out every quantized GEMM layer.

    The observe hook fires per GEMM call with the step's stable label;
    the first ``"act"`` capture per label (group 0 of a grouped conv)
    becomes the cutout's A operand.  Requires a ``mixgemm``-backend
    plan -- the numpy backend never reports activations and has no
    bound executors to tune.
    """
    if plan.info.backend != "mixgemm":
        raise TuningError(
            f"cutout extraction needs a mixgemm-backend plan, got "
            f"{plan.info.backend!r}")
    captured: dict[str, np.ndarray] = {}

    def _capture(label: str, kind: str, values: np.ndarray) -> None:
        if kind == "act" and label not in captured:
            captured[label] = np.ascontiguousarray(values,
                                                   dtype=np.int64)

    previous = set_range_hook(_capture)
    try:
        plan.run(x)
    finally:
        set_range_hook(previous)

    cutouts: list[LayerCutout] = []
    for step in plan.steps:
        gemms = list(getattr(step, "gemms", []))
        single = getattr(step, "gemm", None)
        if single is not None:
            gemms.append(single)
        if not gemms:
            continue
        label = step.stats_label
        a = captured.get(label)
        if a is None:  # pragma: no cover - every bound gemm observes
            continue
        gemm = gemms[0]
        cutouts.append(LayerCutout(
            label=label, op=step.op, config=gemm.config, a=a,
            b=bound_weight_operand(gemm), groups=len(gemms)))
    if not cutouts:
        raise TuningError(
            "plan has no quantized GEMM layers to tune")
    return cutouts


__all__ = [
    "LayerCutout",
    "TuningError",
    "bound_weight_operand",
    "extract_cutouts",
]
