"""Measured-wall-clock objective with per-candidate exactness gating.

Each candidate runs the cutout's real operands under a steady-state
protocol: ``warmup`` executions are discarded (they absorb one-time
costs -- the fast path's memoized micro-kernel oracle, numpy buffer
warm-up, the event engine's packing-cache fill), then ``repeats``
timed executions produce a median.  The median, not the mean, is the
objective: scheduler preemption contaminates individual samples with a
heavy right tail, and the median of a handful of repeats is the
cheapest robust estimator of steady-state cost.

Before a candidate is eligible to win it must be **bit-exact** against
the default-configuration reference.  This gate is substantive, not
ceremonial: with a sub-container AccMem the kc-block boundaries move
the wrap points, so a different ``kc`` can legitimately change the
produced values -- such a candidate may well be faster, but it does
not compute the deployment's function and is rejected.

Candidate measurement fans out across worker processes reusing the
zero-copy shared-memory distribution from the serving stack: the
cutout's operands are exported once into a single
``multiprocessing.shared_memory`` segment (fingerprint-verified on
attach, like plan sharing), so measuring N candidates never copies the
panels N times.  Any environment that cannot spawn workers degrades to
in-process measurement with a structured
:class:`~repro.robustness.errors.ReliabilityWarning` -- same results,
just slower.
"""

from __future__ import annotations

import multiprocessing as mp
import statistics
import time
import warnings
from dataclasses import dataclass, replace
from multiprocessing import shared_memory
from typing import Optional, Sequence

import numpy as np

from repro.core.config import MixGemmConfig
from repro.core.fastpath import FastPathFallback, run_fastpath
from repro.core.gemm import KernelCosts, MixGemm
from repro.core.packcache import PackingCache
from repro.core.parallel import ParallelMixGemm
from repro.robustness.errors import ReliabilityWarning

from .space import Candidate

#: Alignment of each operand inside the measurement segment (matches
#: the plan exporter's cache-line alignment).
_SHM_ALIGN = 64


@dataclass(frozen=True)
class MeasureResult:
    """Outcome of measuring one candidate on one cutout."""

    candidate: Candidate
    median_s: float
    exact: bool
    error: str = ""

    @property
    def eligible(self) -> bool:
        """Whether this candidate may win (ran and reproduced the
        reference bit for bit)."""
        return self.exact and not self.error


def reference_digest(config: MixGemmConfig, a: np.ndarray,
                     b: np.ndarray) -> str:
    """Fingerprint of the default-configuration result.

    Computed once per cutout on the exact path the compiled plan runs
    (fast when applicable, event otherwise); every candidate's output
    is compared against it.
    """
    costs = KernelCosts()
    try:
        result = run_fastpath(config, costs, a, b)
    except FastPathFallback:
        result = MixGemm(config, emulate_datapath=False, costs=costs,
                         backend="event").gemm(a, b)
    return PackingCache.fingerprint(result.c)


def _run_candidate(config: MixGemmConfig, candidate: Candidate,
                   a: np.ndarray, b: np.ndarray,
                   state: dict) -> np.ndarray:
    """One execution of the cutout under ``candidate``; returns C.

    ``state`` carries per-candidate reusable executors across the
    warmup/repeat runs so construction cost (engine setup, executor
    banks, weight-panel casting) stays out of the timed region after
    warmup.  Single-core candidates run the *deployed* executor -- the
    plan's bound GEMM with the weight blocks pre-cast at bind time --
    not a per-call ``run_fastpath``: the per-call path re-splits and
    re-casts the B panel every execution, a cost the compiled plan
    never pays, and timing it skews the objective toward small ``kc``.
    """
    cfg = replace(config, blocking=candidate.blocking,
                  backend=candidate.backend)
    if candidate.cores > 1:
        bank = state.get("bank")
        if bank is None:
            bank = ParallelMixGemm(cfg, cores=candidate.cores,
                                   emulate_datapath=False,
                                   backend=candidate.backend)
            state["bank"] = bank
        return bank.gemm(a, b, cores=candidate.cores).c
    bound = state.get("bound")
    if bound is None:
        # Imported lazily: repro.runtime.plan lazily imports this
        # package for its tuned-cache consultation.
        from repro.runtime.plan import _BoundGemm

        bound = _BoundGemm(b, cfg, candidate.backend, PackingCache())
        if bound.mode != candidate.backend:
            raise FastPathFallback(
                f"candidate requests the {candidate.backend} backend "
                f"but the bound executor resolved {bound.mode}")
        state["bound"] = bound
    return bound(a)[0]


def measure_candidate(config: MixGemmConfig, candidate: Candidate,
                      a: np.ndarray, b: np.ndarray, *,
                      repeats: int = 3, warmup: int = 1,
                      expected_digest: str) -> MeasureResult:
    """Median-of-``repeats`` wall clock with the exactness gate."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    state: dict = {}
    try:
        c = _run_candidate(config, candidate, a, b, state)
        exact = PackingCache.fingerprint(c) == expected_digest
        for _ in range(max(warmup - 1, 0)):
            _run_candidate(config, candidate, a, b, state)
        samples = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            _run_candidate(config, candidate, a, b, state)
            samples.append(time.perf_counter() - t0)
        return MeasureResult(candidate=candidate,
                             median_s=statistics.median(samples),
                             exact=exact)
    except FastPathFallback as exc:
        return MeasureResult(candidate=candidate, median_s=float("inf"),
                             exact=False,
                             error=f"fast path refused: {exc}")
    except Exception as exc:  # a broken candidate must not kill the sweep
        return MeasureResult(candidate=candidate, median_s=float("inf"),
                             exact=False,
                             error=f"{type(exc).__name__}: {exc}")


def measure_serial(config: MixGemmConfig,
                   candidates: Sequence[Candidate],
                   a: np.ndarray, b: np.ndarray, *,
                   repeats: int = 3, warmup: int = 1,
                   expected_digest: str) -> list[MeasureResult]:
    """Measure every candidate in this process (the fallback path)."""
    return [measure_candidate(config, cand, a, b, repeats=repeats,
                              warmup=warmup,
                              expected_digest=expected_digest)
            for cand in candidates]


# -- zero-copy operand distribution -------------------------------------------


@dataclass(frozen=True)
class _OperandSpec:
    """Manifest entry for one operand inside the segment."""

    offset: int
    shape: tuple[int, ...]
    dtype: str
    digest: str


@dataclass(frozen=True)
class CutoutHandle:
    """Picklable ticket for attaching the cutout's operands."""

    segment: str
    a: _OperandSpec
    b: _OperandSpec
    total_bytes: int


def _operand_view(shm: shared_memory.SharedMemory,
                  spec: _OperandSpec) -> np.ndarray:
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                      buffer=shm.buf, offset=spec.offset)
    view.flags.writeable = False
    return view


def export_cutout_operands(a: np.ndarray, b: np.ndarray
                           ) -> tuple[shared_memory.SharedMemory,
                                      CutoutHandle]:
    """Copy the operands into one shared segment, once.

    The caller owns the returned segment: ``close()`` **and**
    ``unlink()`` it when the sweep is done.  Workers attach by handle
    and verify each operand against its fingerprint before measuring.
    """
    specs = []
    offset = 0
    for arr in (a, b):
        offset = -(-offset // _SHM_ALIGN) * _SHM_ALIGN
        specs.append(_OperandSpec(
            offset=offset, shape=tuple(arr.shape), dtype=arr.dtype.str,
            digest=PackingCache.fingerprint(arr)))
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    try:
        for spec, arr in zip(specs, (a, b)):
            view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                              buffer=shm.buf, offset=spec.offset)
            view[...] = arr
        handle = CutoutHandle(segment=shm.name, a=specs[0], b=specs[1],
                              total_bytes=offset)
        return shm, handle
    except BaseException:
        shm.close()
        shm.unlink()
        raise


def _measure_worker(conn, handle: CutoutHandle, config: MixGemmConfig,
                    candidates: list[Candidate], repeats: int,
                    warmup: int, expected_digest: str) -> None:
    """Worker entry point (``spawn``): attach, verify, measure, reply."""
    shm = None
    try:
        try:
            shm = shared_memory.SharedMemory(name=handle.segment)
            a = _operand_view(shm, handle.a)
            b = _operand_view(shm, handle.b)
            for name, arr, spec in (("A", a, handle.a),
                                    ("B", b, handle.b)):
                if PackingCache.fingerprint(arr) != spec.digest:
                    raise ValueError(
                        f"shared {name} operand does not match its "
                        f"manifest fingerprint")
        except Exception as exc:
            conn.send(("failed", f"{type(exc).__name__}: {exc}"))
            return
        results = measure_serial(config, candidates, a, b,
                                 repeats=repeats, warmup=warmup,
                                 expected_digest=expected_digest)
        conn.send(("ok", results))
    except (EOFError, OSError, KeyboardInterrupt):
        return  # dispatcher gone: exit quietly
    finally:
        if shm is not None:
            shm.close()
        conn.close()


def fan_out_measurements(
    config: MixGemmConfig, candidates: Sequence[Candidate],
    a: np.ndarray, b: np.ndarray, *,
    processes: int = 0, repeats: int = 3, warmup: int = 1,
    expected_digest: str, start_method: str = "spawn",
) -> list[MeasureResult]:
    """Measure the candidate sweep, fanned across worker processes.

    ``processes <= 1`` (the default) measures in-process.  Otherwise
    the operands are exported once to shared memory and the candidate
    list is split into contiguous chunks, one worker process each --
    N candidates, one copy of the panels.  Results come back in
    candidate order.  Environments that cannot spawn (or a worker that
    dies) degrade to in-process measurement of the affected chunk with
    a :class:`~repro.robustness.errors.ReliabilityWarning`.
    """
    candidates = list(candidates)
    workers = min(int(processes), len(candidates))
    if workers <= 1:
        return measure_serial(config, candidates, a, b, repeats=repeats,
                              warmup=warmup,
                              expected_digest=expected_digest)
    try:
        ctx = mp.get_context(start_method)
        shm, handle = export_cutout_operands(np.ascontiguousarray(a),
                                             np.ascontiguousarray(b))
    except (ValueError, OSError) as exc:
        warnings.warn(ReliabilityWarning(
            f"candidate fan-out unavailable ({exc}); measuring "
            f"in-process"), stacklevel=2)
        return measure_serial(config, candidates, a, b, repeats=repeats,
                              warmup=warmup,
                              expected_digest=expected_digest)
    chunks: list[list[Candidate]] = [[] for _ in range(workers)]
    for i, cand in enumerate(candidates):
        chunks[i % workers].append(cand)
    jobs = []
    try:
        for chunk in chunks:
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_measure_worker,
                args=(child, handle, config, chunk, repeats, warmup,
                      expected_digest),
                daemon=True)
            try:
                proc.start()
            except (OSError, ValueError) as exc:
                parent.close()
                child.close()
                warnings.warn(ReliabilityWarning(
                    f"cannot start measurement worker ({exc}); "
                    f"measuring its chunk in-process"), stacklevel=2)
                jobs.append((None, None, chunk))
                continue
            child.close()
            jobs.append((proc, parent, chunk))
        by_candidate: dict[Candidate, MeasureResult] = {}
        for proc, parent, chunk in jobs:
            rows: Optional[list[MeasureResult]] = None
            if proc is not None:
                try:
                    status, payload = parent.recv()
                    if status == "ok":
                        rows = payload
                    else:
                        warnings.warn(ReliabilityWarning(
                            f"measurement worker failed ({payload}); "
                            f"measuring its chunk in-process"),
                            stacklevel=2)
                except (EOFError, OSError) as exc:
                    warnings.warn(ReliabilityWarning(
                        f"measurement worker died "
                        f"({type(exc).__name__}); measuring its chunk "
                        f"in-process"), stacklevel=2)
                finally:
                    parent.close()
                    proc.join(timeout=10.0)
                    if proc.is_alive():
                        proc.terminate()
                        proc.join(timeout=10.0)
            if rows is None:
                rows = measure_serial(
                    config, chunk, a, b, repeats=repeats, warmup=warmup,
                    expected_digest=expected_digest)
            for row in rows:
                by_candidate[row.candidate] = row
        return [by_candidate[cand] for cand in candidates]
    finally:
        shm.close()
        shm.unlink()


__all__ = [
    "CutoutHandle",
    "MeasureResult",
    "export_cutout_operands",
    "fan_out_measurements",
    "measure_candidate",
    "measure_serial",
    "reference_digest",
]
