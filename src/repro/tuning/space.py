"""Candidate space for one tuning unit: blocking x backend x workers.

The raw cross product of the blocking grids is mostly redundant for a
concrete layer: on the fast path the wall clock depends only on how
``kc`` splits the layer's K span (``mc``/``nc``/``mr``/``nr`` shape
the analytic cycle model, not the numpy work), and every ``kc`` whose
effective span reaches past K produces the identical single-block
execution.  This module prunes exactly that structure: invalid grid
points are dropped via
:func:`~repro.core.config.blocking_problems` (``mr > mc`` and friends
never reach a measurement), fast candidates are deduplicated by their
effective kc split clamped at K, and event-backend candidates are
admitted only under a MAC budget -- the event engine is a
cycle-faithful simulator, and simulating a production-sized layer per
candidate would turn a tuning campaign into a weekend.

The layer's default configuration is always candidate 0, measured like
any other: the winner can therefore never be slower than the default
on the tuning measurements, and a layer whose default is already
optimal tunes to itself.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.core.config import (
    BlockingParams,
    MixGemmConfig,
    blocking_candidates,
)
from repro.core.fastpath import fastpath_applicable
from repro.core.packing import aligned_kc

from .cache import backend_capability

#: Worker counts searched by default: single-core only.  Pass
#: ``cores_values=(1, 2, ...)`` to also measure
#: :class:`~repro.core.parallel.ParallelMixGemm` N-slicing.
DEFAULT_CORES_VALUES = (1,)

#: Largest m*n*k an event-backend candidate may have.  Above this the
#: event engine is measured only when the fast path cannot serve the
#: layer at all (there is no alternative to compare against).
DEFAULT_EVENT_MAC_LIMIT = 1 << 16


@dataclass(frozen=True)
class Candidate:
    """One measurable point: blocking + execution backend + cores."""

    blocking: BlockingParams
    backend: str            # "event" | "fast"
    cores: int = 1

    def describe(self) -> str:
        b = self.blocking
        core = f" cores={self.cores}" if self.cores > 1 else ""
        return (f"{self.backend} mc={b.mc} nc={b.nc} kc={b.kc} "
                f"mr={b.mr} nr={b.nr}{core}")

    def as_dict(self) -> dict:
        b = self.blocking
        return {"blocking": [b.mc, b.nc, b.kc, b.mr, b.nr],
                "backend": self.backend, "cores": self.cores}


def effective_kc_split(config: MixGemmConfig, blocking: BlockingParams,
                       k: int) -> int:
    """The kc span (in logical k elements) one blocking actually uses.

    ``kc`` counts 64-bit u-vectors; the logical span grows with the
    compression factor and is aligned to whole accumulation groups.
    Clamped at the group-aligned K so every blocking that covers the
    layer in one block maps to the same split -- they execute
    identically on the fast path (same matmuls, same wrap points).
    """
    lay = config.layout
    kc_eff = aligned_kc(blocking.kc * lay.elems_a, lay.group_elements)
    k_aligned = aligned_kc(max(k, 1), lay.group_elements)
    return min(kc_eff, k_aligned)


def default_candidate(config: MixGemmConfig, k: int,
                      gemm_backend: str = "auto") -> Candidate:
    """The point the un-tuned plan runs at (always candidate 0)."""
    backend = ("fast" if backend_capability(config, k, gemm_backend)
               else "event")
    return Candidate(blocking=config.blocking, backend=backend, cores=1)


def candidate_space(
    config: MixGemmConfig, m: int, n: int, k: int, *,
    gemm_backend: str = "auto",
    blockings: Optional[Sequence[BlockingParams]] = None,
    cores_values: Sequence[int] = DEFAULT_CORES_VALUES,
    event_mac_limit: int = DEFAULT_EVENT_MAC_LIMIT,
) -> list[Candidate]:
    """Deterministic, pruned candidate list for one layer.

    ``blockings`` defaults to the full
    :func:`~repro.core.config.blocking_candidates` grid (already
    filtered of unbuildable points).  The default configuration leads
    the list; fast candidates are deduplicated by effective kc split;
    event candidates obey ``event_mac_limit`` (see module docstring).
    """
    if blockings is None:
        blockings = blocking_candidates()
    default = default_candidate(config, k, gemm_backend)
    candidates: list[Candidate] = [default]
    seen: set[tuple] = {(default.backend,
                         effective_kc_split(config, default.blocking, k)
                         if default.backend == "fast"
                         else default.blocking, default.cores)}
    fast_ok = backend_capability(config, k, gemm_backend)
    macs = m * n * max(k, 1)
    for cores in cores_values:
        if cores < 1:
            continue
        for blocking in blockings:
            if fast_ok:
                trial = replace(config, blocking=blocking)
                if fastpath_applicable(trial, k) is None:
                    split = effective_kc_split(config, blocking, k)
                    key = ("fast", split, cores)
                    if key not in seen:
                        seen.add(key)
                        candidates.append(Candidate(
                            blocking=blocking, backend="fast",
                            cores=cores))
            if macs <= event_mac_limit or not fast_ok:
                key = ("event", blocking, cores)
                if key not in seen:
                    seen.add(key)
                    candidates.append(Candidate(
                        blocking=blocking, backend="event", cores=cores))
    return candidates


def analytic_score(config: MixGemmConfig, candidate: Candidate,
                   m: int, n: int, k: int, *,
                   costs=None) -> tuple[int, int]:
    """Closed-form rank of one candidate: (backend rank, predicted cycles).

    Scores come from the calibrated cost model
    (:func:`repro.analysis.cost.model.predict_gemm`) -- O(1) per
    candidate once the one tile calibration for this bitwidth pair is
    warm, no engine execution.  The fast backend ranks ahead of the
    event backend whenever both are present: on the host the fast path
    is numpy while the event backend simulates every cycle, so
    predicted u-engine cycles only order candidates *within* a backend.
    Multi-core candidates are scored on their widest N slice plus the
    barrier, mirroring ``ParallelMixGemm`` timing.
    """
    from math import ceil

    from repro.analysis.cost.model import predict_gemm
    from repro.core.parallel import DEFAULT_BARRIER_CYCLES

    cfg = replace(config, blocking=candidate.blocking)
    n_eff = max(n, 1)
    barrier = 0
    if candidate.cores > 1:
        nr = candidate.blocking.nr
        chunk = ceil(n_eff / candidate.cores)
        chunk = max(nr, ceil(chunk / nr) * nr)
        n_eff = min(n_eff, chunk)
        barrier = DEFAULT_BARRIER_CYCLES
    breakdown = predict_gemm(cfg, costs, max(m, 1), n_eff, max(k, 1))
    backend_rank = 0 if candidate.backend == "fast" else 1
    return (backend_rank, breakdown.cycles + barrier)


def prefilter_candidates(
    config: MixGemmConfig, candidates: Sequence[Candidate],
    m: int, n: int, k: int, *, costs=None,
) -> tuple[list[Candidate], int]:
    """Analytically score the full space; keep the promising half.

    Returns ``(kept, scored)`` where ``scored`` is the size of the
    space the cost model ranked.  The kept list preserves the original
    candidate order and always retains candidate 0 (the default
    configuration): the measurement sweep's invariants -- default
    leads, winner never slower than default, bit-exactness gate --
    are untouched; the prefilter only decides who gets wall-clock time.
    Spaces of three or fewer candidates pass through unfiltered.
    """
    candidates = list(candidates)
    if len(candidates) <= 3:
        return candidates, len(candidates)
    scores = [analytic_score(config, cand, m, n, k, costs=costs)
              for cand in candidates]
    target = max(2, len(candidates) // 2)
    order = sorted(range(len(candidates)), key=lambda i: (scores[i], i))
    keep = set(order[:target])
    if 0 not in keep:
        worst = max(keep, key=lambda i: (scores[i], i))
        keep.remove(worst)
        keep.add(0)
    kept = [candidates[i] for i in sorted(keep)]
    return kept, len(candidates)


__all__ = [
    "Candidate",
    "DEFAULT_CORES_VALUES",
    "DEFAULT_EVENT_MAC_LIMIT",
    "analytic_score",
    "candidate_space",
    "default_candidate",
    "effective_kc_split",
    "prefilter_candidates",
]
