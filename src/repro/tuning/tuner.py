"""Campaign orchestration: cutouts -> candidates -> winners -> cache.

:func:`tune_graph` is the one entry point the CLI and the tests use:
compile the graph, cut every quantized GEMM layer out with its real
operands, and for each *distinct* layer shape (full
:class:`~repro.tuning.cache.TuneKey` digest) either reuse the cached
winner or run a measurement sweep and persist the new one.  Duplicate
layers -- the second BasicBlock conv of a ResNet, the same model tuned
twice, the same shape in a different model -- hit the cache and skip
the sweep entirely, which is what makes a re-run of a campaign
~instant.

The default configuration is always part of the sweep, so the winner
is never slower than the default on the tuning measurements, and every
winner was bit-exact against the default-configuration reference
before it became eligible (see :mod:`repro.tuning.measure`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.config import (
    BlockingParams,
    DEFAULT_ACCMEM_BITS,
)
from repro.runtime.graph import GraphModel
from repro.runtime.plan import compile_graph

from .cache import TuneCache, TuneEntry, TuneKey
from .cutout import LayerCutout, extract_cutouts
from .measure import fan_out_measurements, reference_digest
from .space import (
    DEFAULT_CORES_VALUES,
    DEFAULT_EVENT_MAC_LIMIT,
    candidate_space,
    prefilter_candidates,
)


@dataclass
class LayerOutcome:
    """What the campaign decided for one layer."""

    label: str
    op: str
    config: str                 # paper notation, e.g. "a8-w8"
    m: int
    n: int
    k: int
    digest: str
    cached: bool                # served from the cache (no sweep run)
    blocking: tuple[int, int, int, int, int]
    backend: str
    cores: int
    median_s: float
    default_median_s: float
    candidates: int
    rejected_inexact: int = 0
    errors: int = 0
    #: Size of the full candidate space the analytic prefilter scored
    #: (0 when no prefilter ran; equals ``candidates`` when the space
    #: was too small to filter).
    candidates_scored: int = 0

    @property
    def speedup(self) -> float:
        return (self.default_median_s / self.median_s
                if self.median_s > 0 else 1.0)

    def as_dict(self) -> dict:
        return {
            "label": self.label, "op": self.op, "config": self.config,
            "m": self.m, "n": self.n, "k": self.k,
            "digest": self.digest, "cached": self.cached,
            "blocking": list(self.blocking), "backend": self.backend,
            "cores": self.cores, "median_s": self.median_s,
            "default_median_s": self.default_median_s,
            "speedup": self.speedup, "candidates": self.candidates,
            "rejected_inexact": self.rejected_inexact,
            "errors": self.errors,
            "candidates_scored": self.candidates_scored,
        }


@dataclass
class TuneReport:
    """One campaign's outcomes plus the cache accounting."""

    layers: list[LayerOutcome] = field(default_factory=list)
    hits: int = 0
    misses: int = 0
    cache_path: str = ""

    @property
    def swept(self) -> int:
        """Layers that actually ran a measurement sweep."""
        return sum(1 for lo in self.layers if not lo.cached)

    def as_dict(self) -> dict:
        return {
            "layers": [lo.as_dict() for lo in self.layers],
            "hits": self.hits, "misses": self.misses,
            "swept": self.swept, "cache_path": self.cache_path,
        }

    def render(self) -> str:
        if not self.layers:
            return "no quantized GEMM layers tuned"
        width = max(len(lo.label) for lo in self.layers)
        lines = [f"{'layer':{width}s} {'shape':>16s} {'cfg':8s} "
                 f"{'winner (mc nc kc mr nr)':24s} {'backend':7s} "
                 f"{'speedup':>8s} {'source':6s}"]
        for lo in self.layers:
            shape = f"{lo.m}x{lo.k}x{lo.n}"
            blocking = " ".join(str(v) for v in lo.blocking)
            lines.append(
                f"{lo.label:{width}s} {shape:>16s} {lo.config:8s} "
                f"{blocking:24s} {lo.backend:7s} {lo.speedup:8.2f} "
                f"{'cache' if lo.cached else 'sweep':6s}")
        lines.append(f"cache: {self.hits} hits, {self.misses} misses, "
                     f"{self.swept} sweeps -> {self.cache_path}")
        scored = sum(lo.candidates_scored for lo in self.layers)
        if scored:
            timed = sum(lo.candidates for lo in self.layers
                        if not lo.cached)
            lines.append(f"analytic prefilter: scored {scored} "
                         f"candidates in closed form, wall-clock-timed "
                         f"{timed}")
        return "\n".join(lines)


def _outcome_from_entry(cutout: LayerCutout, entry: TuneEntry,
                        cached: bool, *, rejected: int = 0,
                        errors: int = 0,
                        scored: int = 0) -> LayerOutcome:
    return LayerOutcome(
        label=cutout.label, op=cutout.op, config=cutout.config.name,
        m=cutout.m, n=cutout.n, k=cutout.k, digest=entry.key.digest(),
        cached=cached, blocking=entry.blocking, backend=entry.backend,
        cores=entry.cores, median_s=entry.median_s,
        default_median_s=entry.default_median_s,
        candidates=entry.candidates, rejected_inexact=rejected,
        errors=errors, candidates_scored=scored)


def tune_cutout(cutout: LayerCutout, key: TuneKey, *,
                blockings: Optional[Sequence[BlockingParams]] = None,
                cores_values: Sequence[int] = DEFAULT_CORES_VALUES,
                event_mac_limit: int = DEFAULT_EVENT_MAC_LIMIT,
                repeats: int = 3, warmup: int = 1,
                processes: int = 0,
                gemm_backend: str = "auto",
                analytic_prefilter: bool = False,
                ) -> tuple[TuneEntry, int, int, int]:
    """Run one measurement sweep; returns (entry, rejected, errors, scored).

    The winner is the fastest *eligible* candidate (ran cleanly and
    reproduced the default-configuration reference bit for bit).  The
    default configuration leads the candidate list, so ties resolve in
    its favour and the sweep can never regress a layer.

    With ``analytic_prefilter`` the closed-form cost model scores the
    full space first and only the promising half is wall-clock-timed
    (see :func:`repro.tuning.space.prefilter_candidates`); ``scored``
    reports the size of the space the model ranked (0 = no prefilter).
    """
    candidates = candidate_space(
        cutout.config, cutout.m, cutout.n, cutout.k,
        gemm_backend=gemm_backend, blockings=blockings,
        cores_values=cores_values, event_mac_limit=event_mac_limit)
    scored = 0
    if analytic_prefilter:
        candidates, scored = prefilter_candidates(
            cutout.config, candidates, cutout.m, cutout.n, cutout.k)
    expected = reference_digest(cutout.config, cutout.a, cutout.b)
    results = fan_out_measurements(
        cutout.config, candidates, cutout.a, cutout.b,
        processes=processes, repeats=repeats, warmup=warmup,
        expected_digest=expected)
    eligible = [r for r in results if r.eligible]
    if not eligible:  # pragma: no cover - the default always reproduces
        raise RuntimeError(
            f"no eligible candidate for {cutout.label}: every point "
            f"failed the exactness gate")
    winner = min(eligible, key=lambda r: r.median_s)
    # Candidate 0 is always the default configuration; if it somehow
    # failed to measure, report a neutral speedup rather than a fake one.
    default_median = (results[0].median_s if results[0].eligible
                      else winner.median_s)
    blk = winner.candidate.blocking
    entry = TuneEntry(
        key=key,
        blocking=(blk.mc, blk.nc, blk.kc, blk.mr, blk.nr),
        backend=winner.candidate.backend,
        cores=winner.candidate.cores,
        median_s=winner.median_s,
        default_median_s=default_median,
        candidates=len(results))
    rejected = sum(1 for r in results if not r.exact and not r.error)
    errors = sum(1 for r in results if r.error)
    return entry, rejected, errors, scored


def tune_graph(
    graph: GraphModel, x: np.ndarray, *,
    cache: Optional[TuneCache] = None,
    accmem_bits: int = DEFAULT_ACCMEM_BITS,
    gemm_backend: str = "auto",
    fuse: bool = True,
    blockings: Optional[Sequence[BlockingParams]] = None,
    cores_values: Sequence[int] = DEFAULT_CORES_VALUES,
    event_mac_limit: int = DEFAULT_EVENT_MAC_LIMIT,
    repeats: int = 3, warmup: int = 1, processes: int = 0,
    analytic_prefilter: bool = False,
) -> TuneReport:
    """Tune every quantized GEMM layer of ``graph`` against input ``x``.

    Compiles the graph at default blocking (``backend="mixgemm"``, the
    only backend with bound GEMM executors), cuts out each layer's real
    operands, and runs or reuses one campaign per distinct layer-shape
    digest.  Winners land in ``cache`` (the default on-disk cache when
    not given) where ``compile_graph(..., tuned=True)`` and
    ``repro serve --tuned`` pick them up.
    """
    if cache is None:
        cache = TuneCache()
    plan = compile_graph(graph, backend="mixgemm",
                         gemm_backend=gemm_backend,
                         accmem_bits=accmem_bits, fuse=fuse)
    cutouts = extract_cutouts(plan, x)
    report = TuneReport(cache_path=str(cache.path))
    for cutout in cutouts:
        key = TuneKey.from_config(cutout.config, cutout.m, cutout.n,
                                  cutout.k, fuse=fuse,
                                  gemm_backend=gemm_backend)
        entry = cache.get(key)
        if entry is not None:
            report.layers.append(
                _outcome_from_entry(cutout, entry, cached=True))
            continue
        entry, rejected, errors, scored = tune_cutout(
            cutout, key, blockings=blockings, cores_values=cores_values,
            event_mac_limit=event_mac_limit, repeats=repeats,
            warmup=warmup, processes=processes,
            gemm_backend=gemm_backend,
            analytic_prefilter=analytic_prefilter)
        cache.put(entry)
        report.layers.append(
            _outcome_from_entry(cutout, entry, cached=False,
                                rejected=rejected, errors=errors,
                                scored=scored))
    report.hits = cache.hits
    report.misses = cache.misses
    return report


__all__ = [
    "LayerOutcome",
    "TuneReport",
    "tune_cutout",
    "tune_graph",
]
