"""Persistent tuning-result cache: one JSON file per tuned layer shape.

The autotuner's winners outlive the process in a small on-disk cache
(``~/.cache/repro/tune`` by default, overridable via the
``REPRO_TUNE_CACHE`` environment variable or an explicit path).  Each
entry is one file named by the **full digest** of its
:class:`TuneKey` -- a content hash over everything that changes which
candidate wins: the GEMM shape (M, N, K), the operand bitwidths and
signedness, the AccMem width, whether the plan compiled with fusion,
the requested gemm backend and whether the fast path can serve the
layer at all (the "backend capabilities" axis).  Duplicate layers --
within one model or across models -- share a digest and therefore tune
exactly once.

Plan compilation cannot know M (the batch- and geometry-dependent row
count of the im2col lowering), so every entry also records a **shape
digest** over the same fields minus M; ``compile_graph(...,
tuned=True)`` looks layers up by shape digest and applies the winning
blocking.  Two M values that tuned to different winners both match at
compile time; the most recently written entry wins, which is the right
bias for a cache that a fresh campaign refreshes in one pass.

Writes are atomic -- serialized to a temporary file in the same
directory, then published with :func:`os.replace` -- so a concurrent
reader (or a crash mid-write) sees either the old entry or the new
one, never a torn file.  Lint rule REP012 enforces exactly this
discipline on this module.  Corrupt or version-skewed entries are
reported once as a structured
:class:`~repro.robustness.errors.ReliabilityWarning` and skipped:
cache damage degrades to default blocking, never to a failed compile.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import warnings
from dataclasses import dataclass
from typing import Optional

from repro.core.backend import resolve_backend
from repro.core.config import BlockingParams, MixGemmConfig
from repro.core.fastpath import fastpath_applicable
from repro.robustness.errors import ReliabilityWarning

#: Version of the on-disk entry schema.  Bump on any layout change;
#: readers skip (with a warning) entries written by a different
#: version instead of guessing at their meaning.
TUNE_SCHEMA_VERSION = 1

#: Environment variable naming an alternative cache directory.
TUNE_CACHE_ENV = "REPRO_TUNE_CACHE"


def default_cache_dir() -> pathlib.Path:
    """The cache directory: ``$REPRO_TUNE_CACHE`` or ``~/.cache/repro/tune``."""
    env = os.environ.get(TUNE_CACHE_ENV, "").strip()
    if env:
        return pathlib.Path(env)
    return pathlib.Path.home() / ".cache" / "repro" / "tune"


def backend_capability(config: MixGemmConfig, k: int,
                       gemm_backend: str) -> bool:
    """Whether the fast path can serve this layer (the capability axis).

    Computed with the same rules plan compilation applies at bind time
    (:class:`~repro.runtime.plan._BoundGemm`), so the tuner and the
    compile-time lookup agree on the key for every layer.
    """
    decision = resolve_backend(gemm_backend, config,
                               emulate_datapath=False)
    return decision.is_fast and fastpath_applicable(config, k) is None


def _digest(fields: dict) -> str:
    payload = json.dumps(fields, sort_keys=True,
                         separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()[:20]


def shape_digest(*, n: int, k: int, bw_a: int, bw_w: int, signed_a: bool,
                 accmem_bits: int, fuse: bool, gemm_backend: str,
                 fast_ok: bool) -> str:
    """The M-free digest plan compilation looks layers up by."""
    return _digest({
        "n": n, "k": k, "bw_a": bw_a, "bw_w": bw_w,
        "signed_a": signed_a, "accmem_bits": accmem_bits,
        "fuse": fuse, "gemm_backend": gemm_backend, "fast_ok": fast_ok,
    })


@dataclass(frozen=True)
class TuneKey:
    """Everything that changes which candidate wins, hashed two ways."""

    m: int
    n: int
    k: int
    bw_a: int
    bw_w: int
    signed_a: bool
    accmem_bits: int
    fuse: bool
    gemm_backend: str
    fast_ok: bool

    @classmethod
    def from_config(cls, config: MixGemmConfig, m: int, n: int, k: int, *,
                    fuse: bool, gemm_backend: str) -> "TuneKey":
        return cls(m=m, n=n, k=k, bw_a=config.bw_a, bw_w=config.bw_b,
                   signed_a=config.signed_a,
                   accmem_bits=config.accmem_bits, fuse=fuse,
                   gemm_backend=gemm_backend,
                   fast_ok=backend_capability(config, k, gemm_backend))

    def digest(self) -> str:
        """Full content hash (M included): the tuning-dedup identity."""
        return _digest({
            "m": self.m, "n": self.n, "k": self.k,
            "bw_a": self.bw_a, "bw_w": self.bw_w,
            "signed_a": self.signed_a, "accmem_bits": self.accmem_bits,
            "fuse": self.fuse, "gemm_backend": self.gemm_backend,
            "fast_ok": self.fast_ok,
        })

    def shape_digest(self) -> str:
        """The M-free digest (see :func:`shape_digest`)."""
        return shape_digest(
            n=self.n, k=self.k, bw_a=self.bw_a, bw_w=self.bw_w,
            signed_a=self.signed_a, accmem_bits=self.accmem_bits,
            fuse=self.fuse, gemm_backend=self.gemm_backend,
            fast_ok=self.fast_ok)

    def as_dict(self) -> dict:
        return {
            "m": self.m, "n": self.n, "k": self.k,
            "bw_a": self.bw_a, "bw_w": self.bw_w,
            "signed_a": self.signed_a, "accmem_bits": self.accmem_bits,
            "fuse": self.fuse, "gemm_backend": self.gemm_backend,
            "fast_ok": self.fast_ok,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TuneKey":
        return cls(
            m=int(payload["m"]), n=int(payload["n"]), k=int(payload["k"]),
            bw_a=int(payload["bw_a"]), bw_w=int(payload["bw_w"]),
            signed_a=bool(payload["signed_a"]),
            accmem_bits=int(payload["accmem_bits"]),
            fuse=bool(payload["fuse"]),
            gemm_backend=str(payload["gemm_backend"]),
            fast_ok=bool(payload["fast_ok"]))


@dataclass(frozen=True)
class TuneEntry:
    """One persisted winner: the key plus what won and by how much."""

    key: TuneKey
    blocking: tuple[int, int, int, int, int]   # (mc, nc, kc, mr, nr)
    backend: str                                # "event" | "fast"
    cores: int
    median_s: float
    default_median_s: float
    candidates: int

    @property
    def speedup(self) -> float:
        """Default-blocking median over the winner's median."""
        return (self.default_median_s / self.median_s
                if self.median_s > 0 else 1.0)

    def blocking_params(self) -> BlockingParams:
        mc, nc, kc, mr, nr = self.blocking
        return BlockingParams(mc=mc, nc=nc, kc=kc, mr=mr, nr=nr)

    def as_dict(self) -> dict:
        return {
            "schema": TUNE_SCHEMA_VERSION,
            "key": self.key.as_dict(),
            "shape_digest": self.key.shape_digest(),
            "blocking": list(self.blocking),
            "backend": self.backend,
            "cores": self.cores,
            "median_s": self.median_s,
            "default_median_s": self.default_median_s,
            "speedup": self.speedup,
            "candidates": self.candidates,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TuneEntry":
        schema = payload.get("schema")
        if schema != TUNE_SCHEMA_VERSION:
            raise ValueError(
                f"schema {schema!r} != supported {TUNE_SCHEMA_VERSION}")
        blocking = tuple(int(v) for v in payload["blocking"])
        if len(blocking) != 5:
            raise ValueError(f"blocking has {len(blocking)} fields, not 5")
        entry = cls(
            key=TuneKey.from_dict(payload["key"]),
            blocking=blocking,
            backend=str(payload["backend"]),
            cores=int(payload["cores"]),
            median_s=float(payload["median_s"]),
            default_median_s=float(payload["default_median_s"]),
            candidates=int(payload["candidates"]))
        entry.blocking_params()   # reject unbuildable persisted blockings
        return entry


class TuneCache:
    """Directory of :class:`TuneEntry` files with atomic publication.

    ``hits``/``misses`` count full-key :meth:`get` lookups -- the
    tuner's dedup accounting ("did this layer shape tune before?").
    Compile-time :meth:`lookup_shape` consultation is deliberately not
    counted there: it is a consumer, not a campaign.
    """

    def __init__(self, path: Optional[os.PathLike] = None) -> None:
        self.path = pathlib.Path(path) if path is not None \
            else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self._shape_index: Optional[dict[str, TuneEntry]] = None

    # -- reading ------------------------------------------------------

    def _load_file(self, path: pathlib.Path) -> Optional[TuneEntry]:
        """Parse one entry file; damaged/skewed files warn and read as
        absent (default blocking), never raise into plan compile."""
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            return TuneEntry.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            warnings.warn(ReliabilityWarning(
                f"ignoring tune-cache entry {path.name}: "
                f"{type(exc).__name__}: {exc}"), stacklevel=3)
            return None

    def get(self, key: TuneKey) -> Optional[TuneEntry]:
        """Full-digest lookup; counts toward ``hits``/``misses``."""
        path = self.path / f"{key.digest()}.json"
        entry = self._load_file(path) if path.is_file() else None
        if entry is not None and entry.key != key:
            warnings.warn(ReliabilityWarning(
                f"tune-cache entry {path.name} does not match its own "
                f"digest (hash collision or tampering); ignoring it"),
                stacklevel=2)
            entry = None
        if entry is None:
            self.misses += 1
        else:
            self.hits += 1
        return entry

    def entries(self) -> list[TuneEntry]:
        """Every readable entry, sorted by file name (deterministic)."""
        if not self.path.is_dir():
            return []
        loaded = []
        for path in sorted(self.path.glob("*.json")):
            entry = self._load_file(path)
            if entry is not None:
                loaded.append(entry)
        return loaded

    def lookup_shape(self, digest: str) -> Optional[TuneEntry]:
        """M-free lookup used by ``compile_graph(..., tuned=True)``.

        The first consultation scans the directory once and indexes by
        shape digest (later files win, i.e. the newest campaign);
        :meth:`put` and :meth:`clear` invalidate the index.
        """
        if self._shape_index is None:
            self._shape_index = {e.key.shape_digest(): e
                                 for e in self.entries()}
        return self._shape_index.get(digest)

    # -- writing ------------------------------------------------------

    def put(self, entry: TuneEntry) -> pathlib.Path:
        """Persist ``entry`` atomically; returns the published path."""
        self.path.mkdir(parents=True, exist_ok=True)
        final = self.path / f"{entry.key.digest()}.json"
        tmp = self.path / f"{final.name}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(entry.as_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, final)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._shape_index = None
        return final

    def clear(self) -> int:
        """Delete every entry file; returns how many were removed."""
        removed = 0
        if self.path.is_dir():
            for path in sorted(self.path.glob("*.json")):
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    continue
        self._shape_index = None
        return removed


__all__ = [
    "TUNE_CACHE_ENV",
    "TUNE_SCHEMA_VERSION",
    "TuneCache",
    "TuneEntry",
    "TuneKey",
    "backend_capability",
    "default_cache_dir",
    "shape_digest",
]
