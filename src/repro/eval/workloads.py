"""Benchmark workload definitions (Section IV).

* Figure 6 sweeps square GEMMs "with 64 to 2048 elements per dimension"
  over 12 activation/weight combinations;
* Table III's microbenchmark is a single convolution (16x16x32 input,
  64x3x3x32 filter);
* Figure 7 / Table III evaluate the six CNN inventories.
"""

from __future__ import annotations

from repro.core.config import FIGURE6_CONFIGS
from repro.models.inventory import NETWORKS, get_network, table3_convolution

#: Square matrix sizes of the Figure 6 sweep.
FIGURE6_SIZES = (64, 128, 256, 512, 1024, 2048)

#: The 12 (activations, weights) combinations Figure 6 plots.
FIGURE6_CONFIG_PAIRS = FIGURE6_CONFIGS

#: Network keys in the paper's presentation order.
NETWORK_ORDER = (
    "alexnet", "vgg16", "resnet18", "mobilenet_v1",
    "regnet_x_400mf", "efficientnet_b0",
)


def square_gemm_sweep():
    """(size, (bw_a, bw_b)) pairs of the Figure 6 sweep."""
    for size in FIGURE6_SIZES:
        for pair in FIGURE6_CONFIG_PAIRS:
            yield size, pair


def all_networks():
    """The six evaluated CNN inventories, in paper order."""
    return [get_network(name) for name in NETWORK_ORDER]


def conv_microbenchmark():
    """Table III's convolution benchmark layer."""
    return table3_convolution()


def network_names():
    return list(NETWORK_ORDER)


def assert_registry_consistent() -> None:
    """Guard: workload order must cover exactly the registry."""
    if set(NETWORK_ORDER) != set(NETWORKS):
        raise RuntimeError(
            "workload order out of sync with the model registry"
        )
