"""Per-layer performance profiler for the six CNN workloads.

Section IV-B's analysis reasons about where each network spends its time
(depthwise vs pointwise, skinny-k expansions, cache-resident layers);
this profiler produces that breakdown: per-layer GEMM dimensions, cycle
counts, MAC/cycle and time share under any aX-wY configuration.

Exposed on the CLI as ``python -m repro profile <network>``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MixGemmConfig
from repro.models.inventory import LayerSpec, NetworkInventory
from repro.sim.perf import MixGemmPerfModel

from .reporting import render_table


@dataclass(frozen=True)
class LayerProfile:
    """One layer's modelled execution profile."""

    name: str
    kind: str
    gemm_m: int
    gemm_k: int
    gemm_n: int
    groups: int
    macs: int
    cycles: float
    macs_per_cycle: float
    time_share: float


@dataclass
class NetworkProfile:
    """Whole-network profile at one configuration."""

    network: str
    config: str
    layers: list[LayerProfile]
    total_cycles: float
    total_macs: int

    @property
    def gops(self) -> float:
        return 2.0 * self.total_macs / self.total_cycles * 1.2

    def hotspots(self, n: int = 5) -> list[LayerProfile]:
        """The n layers with the largest time share."""
        return sorted(self.layers, key=lambda l: -l.time_share)[:n]

    def share_by_kind(self) -> dict[str, float]:
        """Time share aggregated per layer kind (conv/depthwise/...)."""
        out: dict[str, float] = {}
        for layer in self.layers:
            out[layer.kind] = out.get(layer.kind, 0.0) + layer.time_share
        return out


def profile_network(
    inventory: NetworkInventory,
    config: MixGemmConfig,
    *,
    perf_model: MixGemmPerfModel | None = None,
    conv_only: bool = True,
) -> NetworkProfile:
    """Profile every layer of a workload under one configuration."""
    model = perf_model or MixGemmPerfModel()
    layers = inventory.conv_layers if conv_only else inventory.layers
    results: list[tuple[LayerSpec, float]] = []
    for layer in layers:
        cycles = model.conv_layer(layer, config).total_cycles
        results.append((layer, cycles))
    total_cycles = sum(c for _, c in results)
    total_macs = sum(l.macs for l, _ in results)
    profiles = []
    for layer, cycles in results:
        m, k, n = layer.gemm_dims
        profiles.append(LayerProfile(
            name=layer.name,
            kind=layer.kind,
            gemm_m=m, gemm_k=k, gemm_n=n,
            groups=layer.groups,
            macs=layer.macs,
            cycles=cycles,
            macs_per_cycle=layer.macs / cycles,
            time_share=cycles / total_cycles,
        ))
    return NetworkProfile(
        network=inventory.name,
        config=config.name,
        layers=profiles,
        total_cycles=total_cycles,
        total_macs=total_macs,
    )


def render_profile(profile: NetworkProfile, *,
                   top: int | None = None) -> str:
    """Text table of a profile (optionally only the top-N hotspots)."""
    layers = profile.hotspots(top) if top else profile.layers
    headers = ["layer", "kind", "GEMM (m,k,n)", "grp", "MACs",
               "cycles", "MAC/c", "share"]
    rows = [
        [
            l.name, l.kind,
            f"({l.gemm_m},{l.gemm_k},{l.gemm_n})",
            str(l.groups),
            f"{l.macs / 1e6:.1f}M",
            f"{l.cycles / 1e6:.2f}M",
            f"{l.macs_per_cycle:.2f}",
            f"{l.time_share:.1%}",
        ]
        for l in layers
    ]
    title = (f"{profile.network} @ {profile.config}: "
             f"{2 * profile.total_macs / profile.total_cycles * 1.2:.2f} "
             f"GOPS")
    return title + "\n" + render_table(headers, rows)
