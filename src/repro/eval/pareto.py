"""Pareto-frontier utilities (paper Figure 7).

Figure 7 plots TOP-1 accuracy against throughput and highlights the
Pareto-optimal configurations: those for which no other configuration is
simultaneously faster *and* at least as accurate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate: higher ``throughput`` and ``accuracy`` are better."""

    label: str
    throughput: float
    accuracy: float


def dominates(p: ParetoPoint, q: ParetoPoint) -> bool:
    """True when ``p`` is at least as good as ``q`` everywhere and
    strictly better somewhere."""
    at_least = p.throughput >= q.throughput and p.accuracy >= q.accuracy
    strictly = p.throughput > q.throughput or p.accuracy > q.accuracy
    return at_least and strictly


def pareto_frontier(points: Sequence[ParetoPoint]) -> list[ParetoPoint]:
    """Non-dominated subset, sorted by increasing throughput."""
    frontier = [
        p for p in points
        if not any(dominates(q, p) for q in points if q is not p)
    ]
    return sorted(frontier, key=lambda p: (p.throughput, p.accuracy))


def frontier_labels(points: Sequence[ParetoPoint]) -> list[str]:
    return [p.label for p in pareto_frontier(points)]
