"""Text rendering of the regenerated figures and tables.

Every benchmark prints its result through these helpers so the harness
output reads like the paper's own tables -- and so paper-vs-measured
comparisons are one diff away.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .figures import Figure6Point, Figure7Point
from .tables import Table2Row, Table3Row


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[str]]) -> str:
    """Fixed-width text table."""
    rows = [list(map(str, r)) for r in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*["-" * w for w in widths])]
    lines.extend(fmt.format(*row) for row in rows)
    return "\n".join(lines)


def render_figure6(points: list[Figure6Point]) -> str:
    """Figure 6 as a size x configuration speed-up grid."""
    sizes = sorted({p.size for p in points})
    configs = []
    for p in points:
        if p.config not in configs:
            configs.append(p.config)
    grid = {(p.config, p.size): p.speedup for p in points}
    headers = ["config"] + [f"n={s}" for s in sizes]
    rows = [
        [cfg] + [f"{grid[(cfg, s)]:.1f}x" for s in sizes]
        for cfg in configs
    ]
    return render_table(headers, rows)


def render_figure7(points: list[Figure7Point]) -> str:
    """Figure 7 as per-network annotated (GOPS, TOP-1) lists."""
    networks = []
    for p in points:
        if p.network not in networks:
            networks.append(p.network)
    blocks = []
    for net in networks:
        headers = ["config", "GOPS", "TOP-1 %", "vs FP32", "Pareto"]
        rows = [
            [p.config, f"{p.gops:.2f}", f"{p.top1:.2f}",
             f"{p.speedup_vs_fp32:.1f}x", "*" if p.on_frontier else ""]
            for p in points if p.network == net
        ]
        blocks.append(f"[{net}]\n" + render_table(headers, rows))
    return "\n\n".join(blocks)


def render_table2(rows: list[Table2Row]) -> str:
    headers = ["Component", "Area [um2]", "SoC Overhead [%]"]
    body = [
        [r.component, f"{r.area_um2:.2f}", f"{r.soc_overhead_pct:.2f}"]
        for r in rows
    ]
    return render_table(headers, body)


def _fmt_ranges(ranges: dict, keys: Sequence[str]) -> list[str]:
    return [str(ranges[k]) if k in ranges else "-" for k in keys]


def render_table3(rows: list[Table3Row]) -> str:
    benchmarks = [
        "convolution", "alexnet", "vgg16", "resnet18",
        "mobilenet_v1", "regnet_x_400mf", "efficientnet_b0",
    ]
    headers = (
        ["work", "sizes", "mixed", "SoC", "GHz", "nm", "mm2"]
        + [f"{b}:GOPS" for b in benchmarks]
    )
    body = []
    for r in rows:
        body.append(
            [
                r.citation + (" (measured)" if r.measured else ""),
                r.data_sizes,
                "yes" if r.mixed else "no",
                r.soc,
                f"{r.freq_ghz:g}" if r.freq_ghz else "-",
                str(r.tech_nm) if r.tech_nm else "-",
                f"{r.area_mm2:g}" if r.area_mm2 else "-",
            ]
            + _fmt_ranges(r.perf, benchmarks)
        )
    return render_table(headers, body)
