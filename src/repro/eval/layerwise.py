"""Per-layer mixed-precision assignment (the paper's flexibility claim).

Section III-B: "the data sizes of weights and activations can be easily
tuned for each layer of the model, providing a further degree of freedom
when exploring the data size configurations" -- the Control Unit
reconfigures in a single cycle, so switching precision between layers is
free.  This module turns that degree of freedom into an optimizer:

* a per-layer **sensitivity model**, anchored to the network-level QAT
  registry: with uniform bits the predicted loss reproduces the
  Figure 7 registry exactly, and per-layer weights distribute that loss
  using a documented proxy (fewer parameters and depthwise layers are
  more fragile -- the standard mixed-precision heuristic);
* a **greedy knapsack**: start everything at the narrowest supported
  precision and repeatedly widen the layer with the best
  loss-reduction-per-extra-cycle ratio until the accuracy budget holds.

The result demonstrates the paper's point quantitatively: per-layer
assignments dominate the best *uniform* configuration at equal accuracy
budgets (asserted in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import MixGemmConfig
from repro.models.inventory import LayerSpec, NetworkInventory
from repro.sim.perf import MixGemmPerfModel

from .accuracy import accuracy_loss

#: Uniform ladder the optimizer picks per layer (act == weight bits,
#: descending, all supported by the registry anchors).
BIT_CHOICES = (8, 6, 5, 4, 3, 2)

#: Ladder entries mapped onto registry configurations for loss anchoring.
_REGISTRY_CONFIG = {8: (8, 8), 6: (6, 6), 5: (5, 5), 4: (4, 4),
                    3: (3, 3), 2: (2, 2)}


def layer_fragility(layer: LayerSpec) -> float:
    """Relative quantization fragility of one layer (unitless proxy).

    Documented heuristic (per-layer ImageNet sensitivities are not
    published): fragility falls with parameter count (more redundancy)
    and rises 3x for depthwise layers, whose per-channel filters have no
    cross-channel redundancy -- the reason MobileNet/EfficientNet collapse
    at 2 bits in the paper's Figure 7.
    """
    base = 1.0 / np.sqrt(max(layer.weight_elements, 1))
    if layer.kind == "depthwise":
        base *= 3.0
    return float(base)


@dataclass
class LayerwiseSensitivity:
    """Loss model: predicted_loss(assignment) anchored to the registry."""

    network: str
    inventory: NetworkInventory
    weights: dict[str, float] = field(init=False)

    def __post_init__(self) -> None:
        raw = {l.name: layer_fragility(l)
               for l in self.inventory.conv_layers}
        total = sum(raw.values())
        self.weights = {k: v / total for k, v in raw.items()}

    def predicted_loss(self, assignment: dict[str, int]) -> float:
        """TOP-1 loss (points) of a per-layer bit assignment.

        With a uniform assignment this returns exactly the registry loss
        of the matching aX-wX configuration; mixed assignments combine
        per-layer contributions weighted by fragility.
        """
        loss = 0.0
        for layer in self.inventory.conv_layers:
            bits = assignment[layer.name]
            uniform = accuracy_loss(self.network, *_REGISTRY_CONFIG[bits])
            loss += self.weights[layer.name] * uniform
        return loss


@dataclass
class LayerAssignment:
    """Result of the optimizer."""

    network: str
    bits: dict[str, int]
    predicted_loss: float
    total_cycles: float
    macs: int

    def throughput_gops(self, freq_ghz: float = 1.2) -> float:
        return 2.0 * self.macs / self.total_cycles * freq_ghz

    @property
    def mean_bits(self) -> float:
        return float(np.mean(list(self.bits.values())))


class LayerwiseOptimizer:
    """Greedy precision assignment under an accuracy-loss budget."""

    def __init__(self, network: str, inventory: NetworkInventory,
                 perf_model: MixGemmPerfModel | None = None) -> None:
        self.network = network
        self.inventory = inventory
        self.perf = perf_model or MixGemmPerfModel()
        self.sensitivity = LayerwiseSensitivity(network, inventory)
        self._cycle_cache: dict[tuple[str, int], float] = {}

    def _layer_cycles(self, layer: LayerSpec, bits: int) -> float:
        key = (layer.name, bits)
        if key not in self._cycle_cache:
            cfg = MixGemmConfig(bw_a=bits, bw_b=bits)
            self._cycle_cache[key] = self.perf.conv_layer(
                layer, cfg
            ).total_cycles
        return self._cycle_cache[key]

    def _total_cycles(self, assignment: dict[str, int]) -> float:
        return sum(
            self._layer_cycles(l, assignment[l.name])
            for l in self.inventory.conv_layers
        )

    def uniform(self, bits: int) -> LayerAssignment:
        """Baseline: the same precision everywhere."""
        assignment = {l.name: bits for l in self.inventory.conv_layers}
        return LayerAssignment(
            network=self.network,
            bits=assignment,
            predicted_loss=self.sensitivity.predicted_loss(assignment),
            total_cycles=self._total_cycles(assignment),
            macs=self.inventory.conv_macs,
        )

    def optimize(self, loss_budget: float) -> LayerAssignment:
        """Greedy widening from all-2-bit until the budget is met.

        Each step widens (one ladder notch) the layer with the largest
        loss reduction per extra cycle; terminates at all-8-bit in the
        worst case.
        """
        layers = self.inventory.conv_layers
        assignment = {l.name: BIT_CHOICES[-1] for l in layers}
        loss = self.sensitivity.predicted_loss(assignment)
        while loss > loss_budget:
            best = None
            for layer in layers:
                current = assignment[layer.name]
                idx = BIT_CHOICES.index(current)
                if idx == 0:
                    continue  # already at 8 bits
                wider = BIT_CHOICES[idx - 1]
                trial = dict(assignment)
                trial[layer.name] = wider
                new_loss = self.sensitivity.predicted_loss(trial)
                extra = (self._layer_cycles(layer, wider)
                         - self._layer_cycles(layer, current))
                gain = (loss - new_loss) / max(extra, 1e-9)
                if best is None or gain > best[0]:
                    best = (gain, layer.name, wider, new_loss)
            if best is None:
                break  # everything at 8 bits already
            _, name, wider, loss = best[0], best[1], best[2], best[3]
            assignment[name] = wider
        return LayerAssignment(
            network=self.network,
            bits=assignment,
            predicted_loss=self.sensitivity.predicted_loss(assignment),
            total_cycles=self._total_cycles(assignment),
            macs=self.inventory.conv_macs,
        )

    def best_uniform_within(self, loss_budget: float) -> LayerAssignment:
        """The fastest *uniform* configuration meeting the budget."""
        feasible = [
            self.uniform(b) for b in BIT_CHOICES
            if self.sensitivity.predicted_loss(
                {l.name: b for l in self.inventory.conv_layers}
            ) <= loss_budget
        ]
        if not feasible:
            return self.uniform(8)
        return min(feasible, key=lambda a: a.total_cycles)
