"""Figure regenerators: the series behind Figures 6 and 7.

Each function returns structured rows (dataclasses) that the benchmark
harness prints in the same shape the paper plots; ``repro.eval.reporting``
renders them as text tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.scalar import (
    ScalarGemmModel,
    blis_dgemm_kernel,
    blis_int8_kernel,
    openblas_fp32_u740_kernel,
)
from repro.core.config import MixGemmConfig
from repro.models.inventory import DISPLAY_NAMES, get_network
from repro.sim.perf import MixGemmPerfModel

from .accuracy import CONFIG_LADDER, FP32_TOP1, top1_accuracy
from .pareto import ParetoPoint, pareto_frontier
from .workloads import (
    FIGURE6_CONFIG_PAIRS,
    FIGURE6_SIZES,
    NETWORK_ORDER,
)


# ---------------------------------------------------------------------------
# Figure 6: Mix-GEMM speed-up over BLIS DGEMM on square matrices
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure6Point:
    """One point of one Figure 6 series."""

    config: str
    size: int
    speedup: float
    mix_gops: float
    baseline_gops: float


def figure6(
    sizes: tuple[int, ...] = FIGURE6_SIZES,
    config_pairs=FIGURE6_CONFIG_PAIRS,
    *,
    perf_model: MixGemmPerfModel | None = None,
) -> list[Figure6Point]:
    """The 12 Figure 6 speed-up series over the DGEMM baseline."""
    mix = perf_model or MixGemmPerfModel()
    baseline = ScalarGemmModel(blis_dgemm_kernel())
    points = []
    for size in sizes:
        base = baseline.gemm(size, size, size)
        for bw_a, bw_b in config_pairs:
            cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
            result = mix.gemm(size, size, size, cfg)
            points.append(Figure6Point(
                config=cfg.name,
                size=size,
                speedup=base.total_cycles / result.total_cycles,
                mix_gops=result.gops,
                baseline_gops=base.gops,
            ))
    return points


def figure6_steady_state(
    points: list[Figure6Point] | None = None,
) -> dict[str, float]:
    """Largest-size speed-up per configuration (the paper's steady state:
    10.2x at a8-w8 up to 27.2x at a2-w2)."""
    points = points if points is not None else figure6()
    largest = max(p.size for p in points)
    return {p.config: p.speedup for p in points if p.size == largest}


def int8_blis_speedup(size: int = 2048) -> float:
    """BLIS re-typed to int8 vs DGEMM (paper: only ~2.5x on average)."""
    dgemm = ScalarGemmModel(blis_dgemm_kernel())
    int8 = ScalarGemmModel(blis_int8_kernel())
    return dgemm.gemm(size, size, size).total_cycles \
        / int8.gemm(size, size, size).total_cycles


# ---------------------------------------------------------------------------
# Figure 7: accuracy vs throughput Pareto frontier
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Figure7Point:
    """One annotated point of Figure 7."""

    network: str
    config: str
    gops: float
    top1: float
    speedup_vs_fp32: float
    on_frontier: bool


def figure7(
    networks=NETWORK_ORDER,
    *,
    perf_model: MixGemmPerfModel | None = None,
) -> list[Figure7Point]:
    """Per-network (throughput, accuracy) points with the Pareto flags.

    The FP32 baseline is OpenBLAS on the SiFive U740, as in the paper.
    """
    mix = perf_model or MixGemmPerfModel()
    fp32 = ScalarGemmModel(openblas_fp32_u740_kernel())
    out: list[Figure7Point] = []
    for name in networks:
        inventory = get_network(name)
        fp32_gops = fp32.network(inventory).gops
        candidates = []
        for bw_a, bw_b in CONFIG_LADDER:
            cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
            gops = mix.network(inventory, cfg).gops
            candidates.append(ParetoPoint(
                label=cfg.name,
                throughput=gops,
                accuracy=top1_accuracy(name, bw_a, bw_b),
            ))
        frontier = {p.label for p in pareto_frontier(candidates)}
        for p in candidates:
            out.append(Figure7Point(
                network=name,
                config=p.label,
                gops=p.throughput,
                top1=p.accuracy,
                speedup_vs_fp32=p.throughput / fp32_gops,
                on_frontier=p.label in frontier,
            ))
    return out


def figure7_speedup_ranges(
    points: list[Figure7Point] | None = None,
) -> dict[str, tuple[float, float]]:
    """Min/max speed-up over FP32 per network (paper: 5.3x to 15.1x)."""
    points = points if points is not None else figure7()
    out: dict[str, tuple[float, float]] = {}
    for name in {p.network for p in points}:
        values = [p.speedup_vs_fp32 for p in points if p.network == name]
        out[name] = (min(values), max(values))
    return out


def figure7_display_name(network: str) -> str:
    return DISPLAY_NAMES[network]


def fp32_reference(network: str) -> float:
    return FP32_TOP1[network]
