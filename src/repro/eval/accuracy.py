"""QAT accuracy registry for the six CNNs (paper Figure 7 data).

The paper's TOP-1 numbers come from full ImageNet QAT on 4xV100 GPUs --
not regenerable offline.  The registry below encodes the paper's reported
results as *data with documented provenance*:

* FP32 baselines: the pretrained torchvision / imgclsmob models the paper
  starts from (refs [1], [46]).
* Per-configuration accuracy losses: digitized from the Section IV-B
  text, which bounds every regime explicitly --

  - above 4 bits: "accuracy close to or better than the FP32 baseline
    ... losses below 1.5%";
  - 4-bit minimum: "losses ranging from 0.01% for AlexNet up to 4.2% on
    EfficientNet-B0";
  - 3- and 2-bit: per-network ranges (e.g. AlexNet 0.5%-5.1%,
    MobileNet-V1 7.6%-34.5%) whose low end we assign to the mildest
    configuration (a4-w3) and high end to a2-w2, interpolating
    geometrically in between.

The *trend* itself (accuracy degrades as bits shrink, catastrophically
below 3 bits for depthwise networks) is separately reproduced for real by
the QAT pipeline on synthetic data (``benchmarks/bench_qat_accuracy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

#: FP32 TOP-1 baselines (%) of the pretrained models (refs [1], [46]).
FP32_TOP1 = {
    "alexnet": 56.5,
    "vgg16": 71.6,
    "resnet18": 69.8,
    "mobilenet_v1": 70.6,
    "regnet_x_400mf": 72.8,
    "efficientnet_b0": 77.1,
}

#: The configuration ladder Figure 7 annotates, widest to narrowest.
CONFIG_LADDER = (
    (8, 8), (7, 7), (6, 6), (5, 5), (4, 4),
    (4, 3), (3, 3), (3, 2), (2, 2),
)

#: Accuracy-loss anchors (percentage points below FP32) digitized from
#: Section IV-B: (loss at a4-w4, loss at a4-w3, loss at a2-w2).
_LOSS_ANCHORS = {
    "alexnet": (0.01, 0.5, 5.1),
    "vgg16": (0.8, 1.2, 6.5),
    "resnet18": (1.3, 2.2, 8.6),
    "mobilenet_v1": (3.0, 7.6, 34.5),
    "regnet_x_400mf": (1.8, 2.6, 13.0),
    "efficientnet_b0": (4.2, 10.3, 32.8),
}

#: Loss (points) for the >4-bit regime; "close to or better than FP32".
_WIDE_LOSSES = {(8, 8): 0.0, (7, 7): 0.0, (6, 6): 0.1, (5, 5): 0.3}

#: Sub-4-bit ladder positions between the a4-w3 and a2-w2 anchors used
#: for geometric interpolation.
_NARROW_POSITIONS = {(4, 3): 0.0, (3, 3): 1 / 3, (3, 2): 2 / 3, (2, 2): 1.0}


@dataclass(frozen=True)
class AccuracyPoint:
    """One Figure 7 annotation: a configuration and its TOP-1."""

    network: str
    bw_a: int
    bw_b: int
    top1: float

    @property
    def config_name(self) -> str:
        return f"a{self.bw_a}-w{self.bw_b}"

    @property
    def loss_vs_fp32(self) -> float:
        return FP32_TOP1[self.network] - self.top1


def accuracy_loss(network: str, bw_a: int, bw_b: int) -> float:
    """Accuracy loss (percentage points) of one configuration."""
    if network not in _LOSS_ANCHORS:
        raise KeyError(
            f"unknown network {network!r}; choose from "
            f"{sorted(_LOSS_ANCHORS)}"
        )
    config = (bw_a, bw_b)
    at_44, at_43, at_22 = _LOSS_ANCHORS[network]
    if config in _WIDE_LOSSES:
        # Wider configurations can never lose more than the 4-bit point
        # (AlexNet's 0.01% at a4-w4 caps its whole wide regime).
        return min(_WIDE_LOSSES[config], at_44)
    if config == (4, 4):
        return at_44
    if config in _NARROW_POSITIONS:
        t = _NARROW_POSITIONS[config]
        # Geometric interpolation: losses grow multiplicatively as bits
        # shrink (visible in every published low-bit QAT study).
        return float(at_43 * (at_22 / at_43) ** t)
    raise KeyError(
        f"configuration a{bw_a}-w{bw_b} is not on the Figure 7 ladder "
        f"{CONFIG_LADDER}"
    )


def top1_accuracy(network: str, bw_a: int, bw_b: int) -> float:
    """TOP-1 (%) of a network at one quantization configuration."""
    return FP32_TOP1[network] - accuracy_loss(network, bw_a, bw_b)


def accuracy_ladder(network: str) -> list[AccuracyPoint]:
    """All Figure 7 annotations for one network, widest first."""
    return [
        AccuracyPoint(network=network, bw_a=a, bw_b=w,
                      top1=top1_accuracy(network, a, w))
        for a, w in CONFIG_LADDER
    ]


def max_loss_above_4bit(network: str) -> float:
    """Worst loss among >4-bit configurations (paper: below 1.5%)."""
    return max(
        accuracy_loss(network, a, w)
        for a, w in CONFIG_LADDER
        if min(a, w) > 4
    )
