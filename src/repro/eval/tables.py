"""Table regenerators: Tables I, II and III of the evaluation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.related import (
    PAPER_MIXGEMM_ROW,
    RELATED_WORK,
    BenchRange,
    RelatedWork,
)
from repro.core.config import MixGemmConfig
from repro.models.inventory import get_network, table3_convolution
from repro.sim.area import UEngineArea
from repro.sim.dse import TableI, table1 as _dse_table1
from repro.sim.energy import EnergyModel
from repro.sim.perf import MixGemmPerfModel

from .workloads import NETWORK_ORDER


def table1() -> TableI:
    """Table I: the DSE-optimal Mix-GEMM parameters."""
    return _dse_table1()


@dataclass(frozen=True)
class Table2Row:
    component: str
    area_um2: float
    soc_overhead_pct: float


def table2(engine: UEngineArea | None = None) -> list[Table2Row]:
    """Table II: u-engine area breakdown (post-PnR calibrated)."""
    engine = engine or UEngineArea()
    display = {
        "source_buffers": "Src Buffers",
        "dsu": "DSU",
        "dcu": "DCU",
        "dfu": "DFU",
        "adder": "Adder",
        "accmem": "AccMem",
        "control_unit": "Control Unit",
    }
    rows = [
        Table2Row(
            component=display[name],
            area_um2=area,
            soc_overhead_pct=pct,
        )
        for name, (area, pct) in engine.breakdown().items()
    ]
    rows.append(Table2Row(
        component="Total: u-engine",
        area_um2=engine.total_um2,
        soc_overhead_pct=100 * engine.soc_overhead(),
    ))
    return rows


@dataclass(frozen=True)
class Table3Row:
    """One comparison row: published or measured."""

    key: str
    citation: str
    data_sizes: str
    mixed: bool
    soc: str
    freq_ghz: Optional[float]
    tech_nm: Optional[int]
    area_mm2: Optional[float]
    perf: dict
    eff: dict
    measured: bool = False


def _measured_mixgemm_row() -> Table3Row:
    """Mix-GEMM's Table III row, measured by the models of this repo.

    Ranges span the slowest (a8-w8) and fastest (a2-w2) supported
    configurations, as in the paper.
    """
    perf_model = MixGemmPerfModel()
    energy_model = EnergyModel()
    lo_cfg = MixGemmConfig(bw_a=8, bw_b=8)
    hi_cfg = MixGemmConfig(bw_a=2, bw_b=2)
    perf: dict[str, BenchRange] = {}
    eff: dict[str, BenchRange] = {}

    conv = table3_convolution()
    conv_lo = perf_model.conv_layer(conv, lo_cfg)
    conv_hi = perf_model.conv_layer(conv, hi_cfg)
    perf["convolution"] = BenchRange(round(conv_lo.gops, 1),
                                    round(conv_hi.gops, 1))
    eff["convolution"] = BenchRange(
        round(energy_model.from_perf(conv_lo, lo_cfg).tops_per_watt, 2),
        round(energy_model.from_perf(conv_hi, hi_cfg).tops_per_watt, 2),
    )
    for name in NETWORK_ORDER:
        inventory = get_network(name)
        r_lo = perf_model.network(inventory, lo_cfg)
        r_hi = perf_model.network(inventory, hi_cfg)
        perf[name] = BenchRange(round(r_lo.gops, 1), round(r_hi.gops, 1))
        eff[name] = BenchRange(
            round(energy_model.from_perf(r_lo, lo_cfg).tops_per_watt, 2),
            round(energy_model.from_perf(r_hi, hi_cfg).tops_per_watt, 2),
        )
    return Table3Row(
        key="mix_gemm",
        citation="This work",
        data_sizes="All 8b-2b",
        mixed=True,
        soc="RV64",
        freq_ghz=1.2,
        tech_nm=22,
        area_mm2=round(UEngineArea().total_mm2, 4),
        perf=perf,
        eff=eff,
        measured=True,
    )


def _published_row(work: RelatedWork) -> Table3Row:
    return Table3Row(
        key=work.key,
        citation=work.citation,
        data_sizes=work.data_sizes,
        mixed=work.mixed_precision,
        soc=work.soc,
        freq_ghz=work.freq_ghz,
        tech_nm=work.tech_nm,
        area_mm2=work.area_mm2,
        perf=work.perf,
        eff=work.eff,
    )


def table3(include_measured: bool = True) -> list[Table3Row]:
    """Table III: comparison with the state of the art.

    Related-work rows carry published numbers; Mix-GEMM's row is measured
    by this repository's models (the paper's published row is available
    via :data:`repro.baselines.related.PAPER_MIXGEMM_ROW` for checking).
    """
    rows = [_published_row(w) for w in RELATED_WORK.values()]
    if include_measured:
        rows.append(_measured_mixgemm_row())
    return rows


def paper_mixgemm_row() -> Table3Row:
    """The paper's own Mix-GEMM row (for paper-vs-measured reporting)."""
    return _published_row(PAPER_MIXGEMM_ROW)
