"""Roofline analysis of Mix-GEMM workloads.

Classifies each layer of a workload as compute- or memory-bound on the
Mix-GEMM SoC: the classic roofline with the peak set by the u-engine's
per-configuration MAC/cycle and the slope by the modelled DRAM bandwidth.
Narrowing the data moves both lines -- the peak up (more MAC/cycle) *and*
the knee left (operands shrink, so arithmetic intensity in MAC/byte
rises) -- which is the visual form of the paper's claim that performance
"scales with the decreasing of the computational data sizes".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MixGemmConfig
from repro.core.microengine import effective_macs_per_cycle
from repro.models.inventory import LayerSpec, NetworkInventory
from repro.sim.params import DEFAULT_MEMORY_COSTS, PAPER_SOC, SocParams


@dataclass(frozen=True)
class RooflinePoint:
    """One layer on the roofline."""

    name: str
    intensity: float          # MACs per DRAM byte
    attained_macs_per_cycle: float
    bound: str                # "compute" or "memory"

    @property
    def is_compute_bound(self) -> bool:
        return self.bound == "compute"


@dataclass(frozen=True)
class Roofline:
    """The machine model: peak throughput and bandwidth slope."""

    peak_macs_per_cycle: float
    dram_bytes_per_cycle: float

    @property
    def knee_intensity(self) -> float:
        """MAC/byte at which memory stops limiting the kernel."""
        return self.peak_macs_per_cycle / self.dram_bytes_per_cycle

    def attainable(self, intensity: float) -> float:
        """Roofline bound at a given arithmetic intensity."""
        return min(self.peak_macs_per_cycle,
                   intensity * self.dram_bytes_per_cycle)


def machine_roofline(config: MixGemmConfig,
                     soc: SocParams = PAPER_SOC) -> Roofline:
    """The SoC's roofline for one data-size configuration."""
    bandwidth = soc.line_bytes / DEFAULT_MEMORY_COSTS.dram_line_stall
    return Roofline(
        peak_macs_per_cycle=effective_macs_per_cycle(config),
        dram_bytes_per_cycle=bandwidth,
    )


def layer_intensity(layer: LayerSpec, config: MixGemmConfig) -> float:
    """Arithmetic intensity in MACs per DRAM byte (compulsory traffic).

    Counts each operand once (the blocking keeps reuse on-chip) plus the
    requantized output: the best-case intensity the blocked GEMM can
    approach.
    """
    m, k, n = layer.gemm_dims
    bytes_a = m * k * config.bw_a / 8
    bytes_b = k * n * config.bw_b / 8
    bytes_out = m * n  # requantized to one byte
    per_group = m * k * n / (bytes_a + bytes_b + bytes_out)
    return per_group


def analyze_network(
    inventory: NetworkInventory,
    config: MixGemmConfig,
    *,
    soc: SocParams = PAPER_SOC,
) -> list[RooflinePoint]:
    """Roofline classification of every conv layer of a workload."""
    from repro.sim.perf import MixGemmPerfModel

    roof = machine_roofline(config, soc)
    perf = MixGemmPerfModel(soc)
    points = []
    for layer in inventory.conv_layers:
        intensity = layer_intensity(layer, config)
        attained = perf.conv_layer(layer, config).macs_per_cycle
        bound = "compute" if intensity >= roof.knee_intensity \
            else "memory"
        points.append(RooflinePoint(
            name=layer.name,
            intensity=intensity,
            attained_macs_per_cycle=attained,
            bound=bound,
        ))
    return points


def bound_fractions(points: list[RooflinePoint]) -> dict[str, float]:
    """Fraction of layers in each regime."""
    if not points:
        return {"compute": 0.0, "memory": 0.0}
    compute = sum(p.is_compute_bound for p in points) / len(points)
    return {"compute": compute, "memory": 1.0 - compute}
