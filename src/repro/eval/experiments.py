"""Section-level experiment drivers not tied to one table or figure.

Covers the in-text numbers of the evaluation:

* Section III-C: Source Buffer depth study, padding overhead;
* Section IV-B: cache-size sensitivity (5.2% / 7% / 11.8% penalties,
  53% SoC area saving);
* Section IV-C: per-network energy efficiency ranges;
* Section IV-A workflow: an end-to-end QAT demonstration on synthetic
  data (training really happens; the accuracy-vs-bitwidth trend is
  measured, not copied).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import MixGemmConfig
from repro.models.builders import build_tiny
from repro.models.inventory import get_network
from repro.nn.data import synthetic_image_dataset
from repro.quant.qat import (
    QatRecipe,
    calibrate_activations,
    set_model_bits,
    train_qat,
)
from repro.sim.area import SocArea
from repro.sim.energy import EnergyModel
from repro.sim.params import PAPER_SOC
from repro.sim.perf import MixGemmPerfModel
from repro.sim.soc import cache_sensitivity

from .workloads import NETWORK_ORDER


# ---------------------------------------------------------------------------
# Cache sensitivity (Section IV-B)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CacheSensitivityResult:
    l1_kb: int
    l2_kb: int
    penalty: float
    area_saving: float


def cache_sensitivity_study() -> list[CacheSensitivityResult]:
    """The paper's cache exploration: smaller L1/L2 vs performance/area."""
    workload = [(256, 256, 256), (1024, 1024, 1024)]
    configs = [MixGemmConfig(bw_a=a, bw_b=w)
               for a, w in ((8, 8), (6, 4), (4, 4), (2, 2))]
    sizes = [
        (16 * 1024, 512 * 1024),
        (32 * 1024, 64 * 1024),
        (16 * 1024, 64 * 1024),
    ]
    penalties = cache_sensitivity(sizes, workload, configs)
    out = []
    for (l1, l2), penalty in penalties.items():
        area = SocArea(l1d_kb=l1 // 1024, l1i_kb=16, l2_kb=l2 // 1024)
        out.append(CacheSensitivityResult(
            l1_kb=l1 // 1024,
            l2_kb=l2 // 1024,
            penalty=penalty,
            area_saving=area.area_saving_vs_default(),
        ))
    return out


# ---------------------------------------------------------------------------
# Energy efficiency (Section IV-C)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EfficiencyRange:
    network: str
    gops_per_watt_lo: float
    gops_per_watt_hi: float


def energy_efficiency_ranges() -> list[EfficiencyRange]:
    """Per-network efficiency from a8-w8 (lowest) to a2-w2 (highest)."""
    perf = MixGemmPerfModel(PAPER_SOC)
    energy = EnergyModel()
    out = []
    for name in NETWORK_ORDER:
        inventory = get_network(name)
        lo_cfg = MixGemmConfig(bw_a=8, bw_b=8)
        hi_cfg = MixGemmConfig(bw_a=2, bw_b=2)
        lo = energy.from_perf(perf.network(inventory, lo_cfg), lo_cfg)
        hi = energy.from_perf(perf.network(inventory, hi_cfg), hi_cfg)
        out.append(EfficiencyRange(
            network=name,
            gops_per_watt_lo=lo.gops_per_watt,
            gops_per_watt_hi=hi.gops_per_watt,
        ))
    return out


# ---------------------------------------------------------------------------
# Memory footprint (Section III-A deployment claims)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FootprintResult:
    """Per-network model size at one weight bitwidth."""

    network: str
    bits: int
    weight_mb: float
    saving_vs_8bit: float
    padding_overhead: float


def memory_footprint_study(
    bit_ladder: tuple[int, ...] = (8, 5, 4, 2),
) -> list[FootprintResult]:
    """Model-size savings from sub-byte weight storage.

    Reproduces the Section IV-B claim that a5-w5 saves "60% in memory
    usage" against a8-w8 (5/8 = 62.5% of the size kept -- the paper's
    60% counts the whole ladder granularity), including the u-vector
    zero-padding overhead of the actual packed representation.
    """
    from repro.core.config import MixGemmConfig

    out = []
    for name in NETWORK_ORDER:
        inventory = get_network(name)
        base_mb = inventory.weight_bytes(8) / 1e6
        for bits in bit_ladder:
            cfg = MixGemmConfig(bw_a=bits, bw_b=bits)
            padding = cfg.layout.padding_fraction
            raw_mb = inventory.weight_bytes(bits) / 1e6
            packed_mb = raw_mb * (1 + padding)
            out.append(FootprintResult(
                network=name,
                bits=bits,
                weight_mb=packed_mb,
                saving_vs_8bit=1 - packed_mb / base_mb,
                padding_overhead=padding,
            ))
    return out


# ---------------------------------------------------------------------------
# QAT demonstration (Section IV-A workflow on synthetic data)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QatDemoResult:
    network: str
    bits: int
    top1: float


def qat_bitwidth_sweep(
    network: str = "resnet18",
    bit_ladder: tuple[int, ...] = (8, 4, 2),
    *,
    epochs: int = 6,
    n_samples: int = 240,
    seed: int = 0,
) -> list[QatDemoResult]:
    """Train one scaled network per bitwidth; returns best TOP-1 each.

    Real QAT on synthetic data: the qualitative Figure 7 trend (accuracy
    falls as bits shrink) is *measured* here, complementing the digitized
    ImageNet registry.
    """
    train, val = synthetic_image_dataset(
        n_classes=4, n_samples=n_samples, image_size=12, seed=seed,
    ).split(0.8)
    recipe = QatRecipe(lr=0.05, epochs=epochs, lr_step=max(1, epochs - 2),
                       batch_size=32)
    out = []
    for bits in bit_ladder:
        model = build_tiny(network, act_bits=bits, weight_bits=bits)
        set_model_bits(model, bits, bits, first_last_bits=None)
        calibrate_activations(model, train, batch_size=16, batches=4)
        history = train_qat(model, train, val, recipe, seed=seed)
        out.append(QatDemoResult(
            network=network, bits=bits,
            top1=100 * history.best_val_accuracy,
        ))
    return out


# ---------------------------------------------------------------------------
# Backend wall-clock study (simulator throughput, not modelled hardware)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WallClockResult:
    """Event-vs-fast backend comparison on one GEMM shape.

    ``speedup`` is *simulator* wall-clock (host seconds), orthogonal to
    the modelled hardware cycles -- which both backends must agree on
    exactly, asserted by ``bit_exact`` / ``cycles_equal``.
    """

    name: str
    bw_a: int
    bw_b: int
    m: int
    n: int
    k: int
    event_seconds: float
    fast_seconds: float
    cycles: int
    bit_exact: bool
    cycles_equal: bool

    @property
    def speedup(self) -> float:
        return (self.event_seconds / self.fast_seconds
                if self.fast_seconds else float("inf"))


def wallclock_speedup_study(
    shapes: list[tuple[str, int, int, tuple[int, int, int]]] | None = None,
    *,
    seed: int = 0,
    repeats: int = 1,
) -> list[WallClockResult]:
    """Time the event and fast backends on identical GEMMs.

    Each shape entry is ``(name, bw_a, bw_b, (m, n, k))``.  Both
    backends run on the same operands; outputs and cycle counts are
    compared so a speedup claim can never hide a fidelity regression.
    The default is a single small shape suitable for CI smoke gating;
    ``benchmarks/bench_wallclock.py`` drives the full Figure-6 sweep.
    """
    import time

    import numpy as np

    from repro.core.gemm import MixGemm

    if shapes is None:
        shapes = [("smoke-a8w8", 8, 8, (32, 32, 64))]
    rng = np.random.default_rng(seed)
    out: list[WallClockResult] = []
    for name, bw_a, bw_b, (m, n, k) in shapes:
        config = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
        a = rng.integers(-(1 << (bw_a - 1)), 1 << (bw_a - 1), size=(m, k))
        b = rng.integers(-(1 << (bw_b - 1)), 1 << (bw_b - 1), size=(k, n))
        event_s = fast_s = float("inf")
        event = fast = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            event = MixGemm(config, emulate_datapath=False,
                            backend="event").gemm(a, b)
            event_s = min(event_s, time.perf_counter() - t0)
            t0 = time.perf_counter()
            fast = MixGemm(config, emulate_datapath=False,
                           backend="fast").gemm(a, b)
            fast_s = min(fast_s, time.perf_counter() - t0)
        out.append(WallClockResult(
            name=name, bw_a=bw_a, bw_b=bw_b, m=m, n=n, k=k,
            event_seconds=event_s, fast_seconds=fast_s,
            cycles=event.cycles,
            bit_exact=bool(np.array_equal(event.c, fast.c)),
            cycles_equal=(event.cycles == fast.cycles
                          and event.pmu.engine_busy_cycles
                          == fast.pmu.engine_busy_cycles
                          and event.instructions == fast.instructions),
        ))
    return out
