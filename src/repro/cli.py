"""Command-line interface: ``python -m repro <command>``.

Commands mirror the evaluation:

* ``info``            -- library and configuration summary;
* ``gemm``            -- one simulated GEMM (bit-exact + cycles);
* ``run``             -- full graph inference on the simulator, with
  ``--backend {event,fast,auto}`` execution-backend selection and
  ``--compiled`` to serve from an ahead-of-time compiled plan;
* ``serve``           -- batched multi-worker serving load test over
  compiled inference plans (``--processes`` shards across worker
  processes on a zero-copy shared-memory plan, ``--tuned`` serves at
  autotuned per-layer blocking);
* ``tune``            -- per-layer autotuning campaign over a graph;
  winners persist in an on-disk cache consulted by
  ``run --tuned`` / ``serve --tuned``;
* ``figure6``         -- the square-GEMM speed-up grid;
* ``figure7``         -- the accuracy/throughput Pareto points;
* ``table1|2|3``      -- the three tables;
* ``network``         -- one CNN's modelled throughput/efficiency ladder;
* ``explore``         -- per-layer mixed-precision search;
* ``report``          -- run everything and write a consolidated report;
* ``faultsim``        -- seeded fault-injection campaign against the
  hardened runtime (detection / recovery / silent-corruption rates);
* ``check``           -- static quantization-contract checker over a
  deployment graph plus the repo-invariant linter (text/JSON/SARIF).
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np


def _cmd_info(args: argparse.Namespace) -> int:
    from repro import __version__
    from repro.core.config import MixGemmConfig, all_size_combinations

    print(f"repro {__version__} -- Mix-GEMM (HPCA 2023) reproduction")
    print(f"supported configurations: {len(all_size_combinations())} "
          f"(a8-w8 ... a2-w2, mixed precision included)")
    for bw in (8, 6, 4, 3, 2):
        cfg = MixGemmConfig(bw_a=bw, bw_b=bw)
        print(f"  {cfg.describe()}")
    return 0


def _cmd_gemm(args: argparse.Namespace) -> int:
    from repro.core.config import BlockingParams, MixGemmConfig
    from repro.core.gemm import MixGemm, reference_gemm

    rng = np.random.default_rng(args.seed)
    lo_a = -(1 << (args.abits - 1))
    lo_b = -(1 << (args.wbits - 1))
    a = rng.integers(lo_a, -lo_a, size=(args.m, args.k))
    b = rng.integers(lo_b, -lo_b, size=(args.k, args.n))
    cfg = MixGemmConfig(
        bw_a=args.abits, bw_b=args.wbits,
        blocking=BlockingParams(mc=16, nc=16, kc=64),
    )
    executor = MixGemm(cfg, emulate_datapath=False, backend=args.backend)
    result = executor.gemm(a, b)
    exact = bool(np.array_equal(result.c, reference_gemm(a, b)))
    print(f"{cfg.name} GEMM {args.m}x{args.k}x{args.n}: exact={exact}")
    print(f"  backend: {result.backend} "
          f"({executor.last_decision.reason})")
    print(f"  {result.macs} MACs / {result.cycles} cycles "
          f"= {result.macs_per_cycle:.2f} MAC/cycle "
          f"({result.gops():.2f} GOPS @ 1.2 GHz)")
    print(f"  instructions: {result.instructions}")
    return 0 if exact else 1


def _tune_cache(args: argparse.Namespace):
    """The TuneCache named by ``--tune-cache``, or None for the default."""
    path = getattr(args, "tune_cache", "")
    if not path:
        return None
    from repro.tuning import TuneCache

    return TuneCache(path)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.robustness.faults import demo_graph, demo_input
    from repro.runtime.engine import InferenceEngine
    from repro.runtime.graph import GraphModel

    if args.tuned and not args.compiled:
        print("--tuned requires --compiled (tuned blocking lives in "
              "compiled plans)", file=sys.stderr)
        return 2
    if args.model:
        graph = GraphModel.load(args.model)
    else:
        graph = demo_graph()
    x = demo_input(batch=args.batch, size=args.size, seed=args.seed)
    engine = InferenceEngine(
        graph, backend="mixgemm", guard_level=args.guard_level,
        gemm_backend=args.backend, compiled=args.compiled,
    )
    if args.compiled and args.guard_level == "off":
        plan = engine.compile(tuned=args.tuned,
                              tune_cache=_tune_cache(args))
        info = plan.info
        print(f"compiled plan: {info.steps} steps "
              f"({info.folded_batchnorms} batchnorms folded, "
              f"{info.fused_activations} activations fused, "
              f"{info.bound_executors} bound GEMM executors)")
        if args.tuned:
            print(f"autotuned blocking: {len(info.tuned_layers)} layers "
                  f"at non-default blocking")
    elif args.compiled:
        print("compiled plan: disabled (guards force the per-call path)")
    result = engine.run(x)
    stats = engine.pack_stats
    print(f"graph: {len(list(graph))} nodes, "
          f"{len(result.layer_stats)} quantized GEMM calls")
    print(f"gemm backend: {args.backend} (guards: {args.guard_level})")
    print(f"output shape: {result.output.shape}, "
          f"predictions: {result.output.argmax(axis=1).tolist()}")
    print(f"cycles: {result.total_cycles}, macs: {result.total_macs}, "
          f"{result.gops():.2f} GOPS @ 1.2 GHz")
    predicted: dict[str, int] = {}
    if args.compiled and args.guard_level == "off" and result.layer_stats:
        from repro.analysis.cost import predict_graph_cycles
        from repro.analysis.cost.graph import iter_plan_gemms

        first_macs = {}
        for s in result.layer_stats:
            first_macs.setdefault(s.layer, s.macs)
        layer_rows = {}
        for label, _op, gemms in iter_plan_gemms(plan):
            macs = first_macs.get(label)
            if macs and gemms:
                g = gemms[0]
                layer_rows[label] = max(1, macs // max(g.n * g.k, 1))
        cost = predict_graph_cycles(plan, layer_rows=layer_rows)
        # Per-call comparison: each LayerStats row is one bound GEMM
        # execution, so show the per-GEMM prediction next to it.
        predicted = {lc.label: lc.breakdown.cycles for lc in cost.layers}
        print(f"cost model: {cost.total_cycles} predicted cycles "
              f"(closed form, no engine execution)")
    if result.layer_stats:
        width = max(len(s.layer) for s in result.layer_stats)
        print("per-layer:")
        for s in result.layer_stats:
            pred = (f" predicted={predicted[s.layer]}"
                    if s.layer in predicted else "")
            print(f"  {s.layer:{width}s} {s.op:13s} {s.config:8s} "
                  f"macs={s.macs} cycles={s.cycles}{pred}")
    print(f"packing cache: {stats.packs} packs, {stats.hits} hits "
          f"({stats.hit_rate:.0%} hit rate)")
    if result.fault_events:
        print(f"guard detections: {len(result.fault_events)}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.robustness.faults import demo_graph, demo_input
    from repro.runtime.graph import GraphModel
    from repro.runtime.serving import serve

    if args.requests < 1:
        print("--requests must be at least 1", file=sys.stderr)
        return 2
    if args.processes and args.uncompiled:
        print("--processes requires compiled plans (drop --uncompiled)",
              file=sys.stderr)
        return 2
    if args.tuned and args.uncompiled:
        print("--tuned requires compiled plans (drop --uncompiled)",
              file=sys.stderr)
        return 2
    if args.model:
        graph = GraphModel.load(args.model)
    else:
        graph = demo_graph()
    rng = np.random.default_rng(args.seed)
    inputs = [demo_input(batch=1, size=args.size,
                         seed=int(rng.integers(1 << 31)))[0]
              for _ in range(args.requests)]

    plan_memory: dict | None = None

    def serve_once():
        nonlocal plan_memory
        with serve(graph, processes=args.processes,
                   workers=args.workers,
                   max_batch=args.max_batch,
                   max_wait_ms=args.max_wait_ms,
                   queue_capacity=args.queue_capacity,
                   admission=args.admission,
                   admission_timeout_ms=args.admission_timeout_ms,
                   compiled=not args.uncompiled,
                   backend="mixgemm",
                   gemm_backend=args.backend,
                   tuned=args.tuned,
                   tune_cache=_tune_cache(args)) as server:
            deadline = args.deadline_ms if args.deadline_ms > 0 else None
            report = server.run_requests(inputs, deadline_ms=deadline,
                                         tolerate_overload=True)
            if hasattr(server, "plan_memory_report"):
                plan_memory = server.plan_memory_report()
            return report

    check = None
    if args.sanitize:
        from repro.analysis.concurrency import (
            analyze_concurrency,
            annotated_targets,
            crosscheck,
            sanitized_session,
        )
        analysis = analyze_concurrency(annotated_targets())
        with sanitized_session(analysis=analysis) as active:
            report = serve_once()
            trace = active.trace
        check = crosscheck(trace, analysis)
    else:
        report = serve_once()
    s = report.stats
    mode = "compiled plans" if report.compiled else "uncompiled engines"
    print(f"served {s.served}/{s.requests} requests in {s.seconds:.3f}s "
          f"on {report.workers} workers ({mode}, max batch "
          f"{report.max_batch})")
    print(f"throughput: {s.throughput_rps:.1f} req/s, "
          f"{s.batches} batches, mean batch {s.mean_batch_size:.2f}")
    print(f"latency ms: p50={s.latency_p50_ms:.2f} "
          f"p95={s.latency_p95_ms:.2f} p99={s.latency_p99_ms:.2f} "
          f"mean={s.latency_mean_ms:.2f}")
    print(f"batch histogram: "
          + ", ".join(f"{k}x{v}" for k, v
                      in sorted(s.batch_histogram.items())))
    print(f"admission: {s.admission} (queue capacity "
          f"{s.queue_capacity}), max queue depth: {s.max_queue_depth}")
    print(f"overload: shed_rate={s.shed_rate:.1%} "
          f"(deadline={s.shed_deadline} capacity={s.shed_capacity} "
          f"rejected={s.rejected} timeouts={s.admit_timeouts} "
          f"cancelled={s.cancelled} closed={s.shed_closed})")
    print(f"breaker: {s.breaker_state} (trips={s.breaker_trips}, "
          f"degraded responses={s.degraded_responses})")
    if plan_memory is not None:
        shared = sum(w.get("plan_bytes_shared", 0)
                     for w in plan_memory["workers"])
        private = sum(w.get("plan_bytes_private", 0)
                      for w in plan_memory["workers"])
        print(f"plan memory: segment={plan_memory['segment_bytes']}B "
              f"shared across {len(plan_memory['workers'])} workers "
              f"(shared={shared}B private={private}B)")
    if check is not None:
        print(check.render())
        if not check.ok:
            return 1
    return 0


def _tune_input(graph, args: argparse.Namespace):
    """A deterministic input batch shaped for ``graph``'s first layer.

    Conv-fronted graphs (the demo and resnet cases) take the usual
    image batch; a graph that opens with a linear layer takes a flat
    ``(batch, K)`` batch instead, so ``--model`` works for GEMM-only
    deployments too.
    """
    import numpy as np

    first = graph.nodes[0]
    if first.op in ("quant_linear", "linear"):
        k = first.tensors["weight"].shape[1]
        rng = np.random.default_rng(args.seed)
        return rng.normal(size=(args.batch, k))
    from repro.robustness.faults import demo_input

    return demo_input(batch=args.batch, size=args.size, seed=args.seed)


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.tuning import TuneCache

    cache = TuneCache(args.cache) if args.cache else TuneCache()
    if args.clear:
        removed = cache.clear()
        print(f"cleared {removed} cached entries from {cache.path}")
        return 0
    if args.list:
        entries = cache.entries()
        if not entries:
            print(f"no cached entries in {cache.path}")
            return 0
        print(f"{len(entries)} cached entries in {cache.path}:")
        for e in entries:
            k = e.key
            blocking = " ".join(str(v) for v in e.blocking)
            cores = f" cores={e.cores}" if e.cores > 1 else ""
            print(f"  {k.digest()}  a{k.bw_a}-w{k.bw_w} "
                  f"{k.m}x{k.k}x{k.n} accmem={k.accmem_bits} -> "
                  f"{e.backend} [{blocking}]{cores} "
                  f"speedup {e.speedup:.2f} "
                  f"({e.candidates} candidates)")
        return 0

    from repro.robustness.faults import demo_graph
    from repro.runtime.graph import GraphModel
    from repro.tuning import TuningError, tune_graph

    if args.repeats < 1:
        print("--repeats must be at least 1", file=sys.stderr)
        return 2
    if args.model:
        graph = GraphModel.load(args.model)
    else:
        graph = demo_graph()
    x = _tune_input(graph, args)
    try:
        report = tune_graph(
            graph, x, cache=cache, gemm_backend=args.backend,
            event_mac_limit=args.event_mac_limit,
            repeats=args.repeats, warmup=args.warmup,
            processes=args.processes,
            analytic_prefilter=args.analytic_prefilter)
    except TuningError as exc:
        print(f"tuning failed: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report.as_dict(), fh, indent=2)
            fh.write("\n")
        print(f"campaign report -> {args.output}")
    return 0


def _cmd_figure6(args: argparse.Namespace) -> int:
    from repro.eval.figures import figure6, int8_blis_speedup
    from repro.eval.reporting import render_figure6

    print(render_figure6(figure6()))
    print(f"\nint8 BLIS vs DGEMM: {int8_blis_speedup():.2f}x "
          f"(paper ~2.5x)")
    return 0


def _cmd_figure7(args: argparse.Namespace) -> int:
    from repro.eval.figures import figure7
    from repro.eval.reporting import render_figure7

    print(render_figure7(figure7()))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.number == 1:
        from repro.eval.tables import table1
        t1 = table1()
        print("Table I (DSE optimum):")
        print(f"  mc={t1.mc} nc={t1.nc} kc={t1.kc} mr={t1.mr} nr={t1.nr} "
              f"kua={t1.kua} kub={t1.kub} AccMem={t1.accmem} "
              f"SourceBuffers={t1.source_buffers}")
    elif args.number == 2:
        from repro.eval.reporting import render_table2
        from repro.eval.tables import table2
        print(render_table2(table2()))
    elif args.number == 3:
        from repro.eval.reporting import render_table3
        from repro.eval.tables import table3
        print(render_table3(table3()))
    else:
        print(f"no table {args.number} in the paper", file=sys.stderr)
        return 2
    return 0


def _cmd_network(args: argparse.Namespace) -> int:
    from repro.core.config import MixGemmConfig
    from repro.eval.accuracy import CONFIG_LADDER, top1_accuracy
    from repro.models.inventory import get_network
    from repro.sim.energy import EnergyModel
    from repro.sim.perf import MixGemmPerfModel

    inventory = get_network(args.name)
    perf = MixGemmPerfModel()
    energy = EnergyModel()
    print(f"{args.name}: {inventory.conv_macs / 1e9:.2f} conv GMAC")
    print(f"{'config':8s} {'GOPS':>7s} {'GOPS/W':>8s} {'TOP-1':>7s}")
    for bw_a, bw_b in CONFIG_LADDER:
        cfg = MixGemmConfig(bw_a=bw_a, bw_b=bw_b)
        r = perf.network(inventory, cfg)
        eff = energy.from_perf(r, cfg)
        print(f"{cfg.name:8s} {r.gops:7.2f} {eff.gops_per_watt:8.1f} "
              f"{top1_accuracy(args.name, bw_a, bw_b):7.2f}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.config import MixGemmConfig
    from repro.eval.profiler import profile_network, render_profile
    from repro.models.inventory import get_network

    cfg = MixGemmConfig(bw_a=args.abits, bw_b=args.wbits)
    profile = profile_network(get_network(args.name), cfg)
    print(render_profile(profile, top=args.top))
    shares = profile.share_by_kind()
    print("\ntime by layer kind: " + ", ".join(
        f"{kind}={share:.1%}" for kind, share in sorted(shares.items())
    ))
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.eval.layerwise import LayerwiseOptimizer
    from repro.models.inventory import get_network

    optimizer = LayerwiseOptimizer(args.name, get_network(args.name))
    mixed = optimizer.optimize(args.budget)
    uniform = optimizer.best_uniform_within(args.budget)
    print(f"{args.name} @ {args.budget}% loss budget:")
    print(f"  mixed:   {mixed.throughput_gops():.2f} GOPS "
          f"(mean {mixed.mean_bits:.1f} bits, predicted loss "
          f"{mixed.predicted_loss:.2f}%)")
    print(f"  uniform: {uniform.throughput_gops():.2f} GOPS")
    return 0


def _cmd_faultsim(args: argparse.Namespace) -> int:
    from repro.robustness.faults import FAULT_SITES, FaultCampaign

    if args.trials < 1:
        print("--trials must be at least 1", file=sys.stderr)
        return 2
    sites = tuple(s.strip() for s in args.sites.split(",") if s.strip())
    if not sites:
        print("--sites cannot be empty", file=sys.stderr)
        return 2
    for site in sites:
        if site not in FAULT_SITES:
            print(f"unknown fault site {site!r}; choose from "
                  f"{', '.join(FAULT_SITES)}", file=sys.stderr)
            return 2
    campaign = FaultCampaign(seed=args.seed, n_trials=args.trials,
                             sites=sites)
    print(f"fault campaign: {args.trials} trials, seed {args.seed}, "
          f"sites {', '.join(sites)}")
    baseline = campaign.run(guard_level="off")
    print(baseline.render())
    guarded = campaign.run(guard_level=args.guard_level)
    print(guarded.render())
    ok = (guarded.detection_rate >= 0.95 and guarded.n_silent == 0
          and baseline.n_silent > 0)
    verdict = "PASS" if ok else "FAIL"
    print(f"{verdict}: guards-off silent corruptions "
          f"{baseline.n_silent}/{baseline.n_injected}, guarded detection "
          f"{guarded.detection_rate:.1%}, guarded recovery "
          f"{guarded.recovery_rate:.1%}")
    return 0 if ok else 1


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis import (
        AnalysisError,
        DiagnosticReport,
        check_concurrency,
        check_cost_file,
        check_graph_file,
        check_ranges_file,
        lint_paths,
        to_sarif_json,
    )

    if not args.graph and not args.lint and args.concurrency is None \
            and not args.ranges and not args.cost:
        print("nothing to check: pass --graph MODEL.json, --lint PATH, "
              "--concurrency [PATH ...], --ranges MODEL.json and/or "
              "--cost MODEL.json",
              file=sys.stderr)
        return 2
    accmem_bits = args.accmem_bits
    if accmem_bits is None:
        from repro.core.config import DEFAULT_ACCMEM_BITS
        accmem_bits = DEFAULT_ACCMEM_BITS
    input_range = tuple(args.input_range) if args.input_range else None

    # Every selected pass runs and feeds one merged report; usage-level
    # failures (unreadable targets) are collected, not short-circuited,
    # so combined invocations render every finding before exiting 2 and
    # '--fail-on' means the same thing whatever passes are selected.
    report = DiagnosticReport()
    usage_errors: list[str] = []
    for model in args.graph:
        report.extend(check_graph_file(model, accmem_bits=accmem_bits))
    if args.lint:
        try:
            report.extend(lint_paths(args.lint))
        except AnalysisError as exc:
            usage_errors.append(str(exc))
    if args.concurrency is not None:
        from repro.analysis.concurrency import default_targets
        targets = args.concurrency or default_targets()
        try:
            report.extend(check_concurrency(targets))
        except AnalysisError as exc:
            usage_errors.append(str(exc))
    range_tables: dict[str, dict] = {}
    for model in args.ranges:
        try:
            diags, analysis = check_ranges_file(
                model, accmem_bits=accmem_bits,
                input_range=input_range,
                verify_plan=args.verify_plan)
        except AnalysisError as exc:
            usage_errors.append(str(exc))
            continue
        report.extend(diags)
        if analysis is not None and args.ranges_table:
            from repro.analysis.ranges import table_json
            range_tables[model] = json.loads(table_json(analysis))
    for model in args.cost:
        report.extend(check_cost_file(
            model, accmem_bits=accmem_bits,
            workers=args.cost_workers))

    if args.format == "json":
        rendered = report.to_json()
    elif args.format == "sarif":
        from repro import __version__
        rendered = to_sarif_json(report, tool_version=__version__)
    else:
        rendered = report.render_text()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(rendered + "\n")
        print(f"{report.summary()} -> {args.output}")
    else:
        print(rendered)
    if args.ranges_table and range_tables:
        payload = (next(iter(range_tables.values()))
                   if len(range_tables) == 1 else range_tables)
        with open(args.ranges_table, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"per-layer bounds table -> {args.ranges_table}")
    for err in usage_errors:
        print(err, file=sys.stderr)
    if usage_errors:
        return 2
    return report.exit_code(fail_on=args.fail_on)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.full_report import write_full_report

    path = write_full_report(args.output)
    print(f"report written to {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mix-GEMM (HPCA 2023) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="library summary").set_defaults(
        func=_cmd_info)

    p = sub.add_parser("gemm", help="simulate one quantized GEMM")
    p.add_argument("-m", type=int, default=16)
    p.add_argument("-k", type=int, default=96)
    p.add_argument("-n", type=int, default=16)
    p.add_argument("--abits", type=int, default=8)
    p.add_argument("--wbits", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backend", default="auto",
                   choices=("event", "fast", "auto"),
                   help="execution backend (auto picks the vectorized "
                        "fast path on guard-free runs)")
    p.set_defaults(func=_cmd_gemm)

    p = sub.add_parser(
        "run", help="graph inference on the u-engine simulator")
    p.add_argument("--model", default="",
                   help="serialized GraphModel (default: the shipped "
                        "demo CNN)")
    p.add_argument("--batch", type=int, default=2)
    p.add_argument("--size", type=int, default=6,
                   help="input spatial size (input is batch x 1 x "
                        "size x size)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backend", default="auto",
                   choices=("event", "fast", "auto"),
                   help="GEMM execution backend inside the simulator")
    p.add_argument("--guard-level", default="off",
                   choices=("off", "light", "standard", "full"),
                   help="integrity-guard level (guards force the event "
                        "backend per call)")
    p.add_argument("--compiled", action="store_true",
                   help="run from an ahead-of-time compiled plan "
                        "(falls back to the per-call path under guards "
                        "or fault injection)")
    p.add_argument("--tuned", action="store_true",
                   help="with --compiled: run each layer at its "
                        "autotuned blocking from the tune cache "
                        "(see 'repro tune')")
    p.add_argument("--tune-cache", default="", dest="tune_cache",
                   metavar="PATH",
                   help="tune-cache directory (default: "
                        "$REPRO_TUNE_CACHE or ~/.cache/repro/tune)")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "serve", help="batched multi-worker serving load test")
    p.add_argument("--model", default="",
                   help="serialized GraphModel (default: the shipped "
                        "demo CNN)")
    p.add_argument("--requests", type=int, default=64,
                   help="number of single-sample requests to submit")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--max-batch", type=int, default=8,
                   dest="max_batch")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   dest="max_wait_ms",
                   help="micro-batcher deadline window")
    p.add_argument("--queue-capacity", type=int, default=64,
                   dest="queue_capacity",
                   help="bound on the admission queue")
    p.add_argument("--admission", default="block",
                   choices=("block", "reject", "shed-oldest"),
                   help="what a full queue does to new submissions")
    p.add_argument("--admission-timeout-ms", type=float, default=1000.0,
                   dest="admission_timeout_ms",
                   help="how long a blocked submit waits for a slot")
    p.add_argument("--deadline-ms", type=float, default=0.0,
                   dest="deadline_ms",
                   help="per-request deadline (0 = none); expired "
                        "requests are shed before execution")
    p.add_argument("--size", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backend", default="auto",
                   choices=("event", "fast", "auto"))
    p.add_argument("--uncompiled", action="store_true",
                   help="serve from uncompiled engines (baseline for "
                        "what compilation buys)")
    p.add_argument("--processes", action="store_true",
                   help="shard across worker processes on a zero-copy "
                        "shared-memory plan (falls back to threads "
                        "with a ReliabilityWarning if unavailable)")
    p.add_argument("--sanitize", action="store_true",
                   help="run under the lock sanitizer and cross-check "
                        "the trace against the static lockset verdicts")
    p.add_argument("--tuned", action="store_true",
                   help="serve compiled plans at autotuned per-layer "
                        "blocking from the tune cache (see 'repro tune')")
    p.add_argument("--tune-cache", default="", dest="tune_cache",
                   metavar="PATH",
                   help="tune-cache directory (default: "
                        "$REPRO_TUNE_CACHE or ~/.cache/repro/tune)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "tune", help="per-layer autotuning campaign; winners persist "
                     "in an on-disk cache consulted by --tuned")
    p.add_argument("--model", default="",
                   help="serialized GraphModel (default: the shipped "
                        "demo CNN)")
    p.add_argument("--batch", type=int, default=2)
    p.add_argument("--size", type=int, default=6,
                   help="input spatial size (input is batch x 1 x "
                        "size x size)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backend", default="auto",
                   choices=("event", "fast", "auto"),
                   help="GEMM execution backend preference the tuned "
                        "plan will be compiled with")
    p.add_argument("--cache", default="", metavar="PATH",
                   help="tune-cache directory (default: "
                        "$REPRO_TUNE_CACHE or ~/.cache/repro/tune)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timed repetitions per candidate (median wins)")
    p.add_argument("--warmup", type=int, default=1,
                   help="discarded warmup runs per candidate")
    p.add_argument("--processes", type=int, default=0,
                   help="fan candidate measurement across N worker "
                        "processes on shared-memory operands (0 = "
                        "in-process)")
    p.add_argument("--event-mac-limit", type=int,
                   dest="event_mac_limit", default=1 << 16,
                   help="largest m*n*k measured on the cycle-faithful "
                        "event backend (it is a simulator; big layers "
                        "would dominate the campaign)")
    p.add_argument("--analytic-prefilter", action="store_true",
                   dest="analytic_prefilter",
                   help="score the full candidate grid with the "
                        "closed-form cost model and wall-clock-time "
                        "only the analytically promising half (the "
                        "bit-exactness gate is unchanged)")
    p.add_argument("--output", default="", metavar="PATH",
                   help="also write the campaign report as JSON")
    p.add_argument("--list", action="store_true",
                   help="list cached winners instead of tuning")
    p.add_argument("--clear", action="store_true",
                   help="delete every cached winner instead of tuning")
    p.set_defaults(func=_cmd_tune)

    sub.add_parser("figure6", help="square-GEMM speed-up grid"
                   ).set_defaults(func=_cmd_figure6)
    sub.add_parser("figure7", help="accuracy/throughput Pareto points"
                   ).set_defaults(func=_cmd_figure7)

    p = sub.add_parser("table", help="regenerate Table I/II/III")
    p.add_argument("number", type=int, choices=(1, 2, 3))
    p.set_defaults(func=_cmd_table)

    p = sub.add_parser("network", help="one CNN's configuration ladder")
    p.add_argument("name")
    p.set_defaults(func=_cmd_network)

    p = sub.add_parser("profile", help="per-layer performance breakdown")
    p.add_argument("name")
    p.add_argument("--abits", type=int, default=8)
    p.add_argument("--wbits", type=int, default=8)
    p.add_argument("--top", type=int, default=None,
                   help="show only the N hottest layers")
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser("explore", help="per-layer mixed-precision search")
    p.add_argument("name")
    p.add_argument("--budget", type=float, default=1.5,
                   help="max TOP-1 loss in percentage points")
    p.set_defaults(func=_cmd_explore)

    p = sub.add_parser("faultsim",
                       help="seeded fault-injection campaign")
    p.add_argument("--trials", type=int, default=24)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--sites",
                   default="uvector_a,uvector_b,accmem,weight",
                   help="comma-separated fault sites to exercise")
    p.add_argument("--guard-level", default="full",
                   choices=("light", "standard", "full"),
                   help="guard level for the protected run")
    p.set_defaults(func=_cmd_faultsim)

    p = sub.add_parser(
        "check",
        help="static contract checker, repo invariant linter, "
             "concurrency + range + cost analyzers")
    p.add_argument("--graph", action="append", default=[],
                   metavar="MODEL.json",
                   help="contract-check a serialized GraphModel "
                        "(repeatable)")
    p.add_argument("--lint", action="append", default=[],
                   metavar="PATH",
                   help="lint .py files under PATH against the REP "
                        "rules (repeatable)")
    p.add_argument("--concurrency", nargs="*", default=None,
                   metavar="PATH",
                   help="run the lockset / lock-order / escape "
                        "analyzer over PATHs (no PATH: the installed "
                        "repro package)")
    p.add_argument("--ranges", action="append", default=[],
                   metavar="MODEL.json",
                   help="abstract-interpretation range analysis of a "
                        "serialized GraphModel: tight per-layer "
                        "accumulator bounds, RANGE-OVERFLOW / "
                        "RANGE-NARROWABLE findings (repeatable)")
    p.add_argument("--input-range", nargs=2, type=float, default=None,
                   metavar=("LO", "HI"),
                   help="known bounds of the network input for "
                        "--ranges (default: unbounded)")
    p.add_argument("--verify-plan", action="store_true",
                   help="with --ranges: also compile the fused and "
                        "unfused inference plans and statically verify "
                        "they preserve the proven ranges (RANGE-EQUIV)")
    p.add_argument("--ranges-table", default="", metavar="PATH",
                   help="with --ranges: write the per-layer bounds "
                        "table (derived accumulator bits, headroom, "
                        "wrap verdicts) as JSON to PATH")
    p.add_argument("--cost", action="append", default=[],
                   metavar="MODEL.json",
                   help="closed-form cost analysis of a serialized "
                        "GraphModel: COST-MODEL-DRIFT / "
                        "COST-BLOCKING-INEFFICIENT / COST-IMBALANCE "
                        "findings (repeatable)")
    p.add_argument("--cost-workers", type=int, default=1,
                   dest="cost_workers",
                   help="with --cost: deployment worker count to audit "
                        "N-slice balance for (1 = single-core, no "
                        "imbalance check)")
    p.add_argument("--format", default="text",
                   choices=("text", "json", "sarif"),
                   help="diagnostic output format")
    p.add_argument("--output", default="",
                   help="write diagnostics to a file instead of stdout")
    p.add_argument("--accmem-bits", type=int, default=None,
                   dest="accmem_bits",
                   help="AccMem width to verify overflow bounds "
                        "against (default: the engine's 64)")
    p.add_argument("--fail-on", default="error",
                   choices=("error", "warning", "info"),
                   help="lowest severity that makes the exit code "
                        "non-zero")
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("report", help="write the consolidated report")
    p.add_argument("--output", default="REPORT.md")
    p.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
