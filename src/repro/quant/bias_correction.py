"""Bias correction for post-training quantization (Nagel et al., ref [50]).

Quantizing weights shifts the expected value of a layer's output:
``E[W_q x] != E[W x]`` because the quantization error ``dW = W_q_dequant - W``
is not zero-mean per channel.  The paper applies bias correction during its
activation calibration phase ("performing bias correction for 8 more
batches", Section IV-A, with an exception for VGG-16 where it would
overflow).

Given calibration activations, the correction subtracts the empirical
output-mean shift from the layer bias::

    b_corrected = b - E[dW @ x]

computed per output channel over the calibration batches.
"""

from __future__ import annotations

import numpy as np

from .affine import QuantParams, fake_quantize


def weight_quantization_error(weight: np.ndarray,
                              qp: QuantParams) -> np.ndarray:
    """Per-element error introduced by (fake-)quantizing the weights."""
    weight = np.asarray(weight, dtype=np.float64)
    return fake_quantize(weight, qp) - weight


def bias_correction_linear(
    weight: np.ndarray,
    qp: QuantParams,
    activations: np.ndarray,
) -> np.ndarray:
    """Bias correction for a fully-connected layer.

    ``weight`` has shape (out_features, in_features); ``activations`` is a
    calibration batch of shape (batch, in_features).  Returns the per-output
    correction to *subtract* from the layer bias.
    """
    d_w = weight_quantization_error(weight, qp)
    mean_x = np.asarray(activations, dtype=np.float64).mean(axis=0)
    return d_w @ mean_x


def bias_correction_conv(
    weight: np.ndarray,
    qp: QuantParams,
    activations: np.ndarray,
) -> np.ndarray:
    """Bias correction for a conv layer with NCHW activations.

    ``weight`` has shape (out_ch, in_ch, kh, kw); the expected input is
    approximated channel-wise (spatially stationary statistics), which is
    the standard analytic form of the correction.
    """
    d_w = weight_quantization_error(weight, qp)
    x = np.asarray(activations, dtype=np.float64)
    mean_c = x.mean(axis=(0, 2, 3))  # per input channel
    return np.einsum("oikl,i->o", d_w, mean_c)


def apply_bias_correction(
    bias: np.ndarray | None,
    correction: np.ndarray,
    *,
    clip: float | None = None,
) -> np.ndarray:
    """Fold a correction into a bias vector.

    ``clip`` bounds the correction magnitude; the paper skips bias
    correction on VGG-16 "where bias correction would lead to overflow",
    which a caller reproduces by passing ``clip=0``.
    """
    correction = np.asarray(correction, dtype=np.float64)
    if clip is not None:
        correction = np.clip(correction, -clip, clip)
    if bias is None:
        return -correction
    return np.asarray(bias, dtype=np.float64) - correction
