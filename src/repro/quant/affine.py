"""Uniform affine integer quantization (paper Section II-A, Eq. 1-2).

Implements exactly the quantizer family the paper accelerates::

    y = q(x) = clamp(round(x / s + z), y_min, y_max)            (Eq. 1)

    [y_min, y_max] = [0, 2**n - 1]                (unsigned)
                     [-2**(n-1), 2**(n-1) - 1]    (signed)      (Eq. 2)

Variants supported, matching the paper's terminology:

* **symmetric** (z = 0) vs **asymmetric** (z != 0);
* **per-tensor** (scalar s) vs **per-channel** (1-D s along an axis);
* any bitwidth from 2 to 8.

The paper's QAT setup (Section IV-A) uses per-channel absmax weights and
per-tensor activations, both with zero-point 0; those presets are in
:mod:`repro.quant.observers`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.core.binseg import value_range
from repro.core.errors import ReproError


class QuantError(ReproError, ValueError):
    """Raised on malformed quantization parameters."""


@dataclass(frozen=True)
class QuantParams:
    """Resolved quantization parameters for one tensor.

    ``scale`` and ``zero_point`` are scalars for per-tensor quantization,
    or 1-D arrays along ``axis`` for per-channel quantization.  Scales and
    zero-points stay floating-point, as the paper does ("quantization
    scales and biases are left in floating-point").
    """

    scale: np.ndarray
    zero_point: np.ndarray
    bits: int
    signed: bool
    axis: Optional[int] = None

    def __post_init__(self) -> None:
        scale = np.asarray(self.scale, dtype=np.float64)
        zp = np.asarray(self.zero_point, dtype=np.float64)
        if not 2 <= self.bits <= 8:
            raise QuantError(f"bits must be in [2, 8], got {self.bits}")
        if np.any(scale <= 0):
            raise QuantError("scales must be strictly positive")
        if self.axis is None:
            if scale.size != 1:
                raise QuantError(
                    "per-tensor quantization needs a scalar scale"
                )
            scale = scale.reshape(())
        else:
            scale = np.atleast_1d(scale)
        if scale.shape != zp.shape and zp.size != 1:
            raise QuantError("zero_point shape must match scale (or scalar)")
        object.__setattr__(self, "scale", scale)
        object.__setattr__(
            self, "zero_point", np.broadcast_to(zp, scale.shape).copy()
        )

    @property
    def qmin(self) -> int:
        return value_range(self.bits, self.signed)[0]

    @property
    def qmax(self) -> int:
        return value_range(self.bits, self.signed)[1]

    @property
    def is_symmetric(self) -> bool:
        return bool(np.all(self.zero_point == 0))

    @property
    def is_per_channel(self) -> bool:
        return self.axis is not None

    def _expand(self, values: np.ndarray, ndim: int) -> np.ndarray:
        """Reshape per-channel vectors for broadcasting against data."""
        if self.axis is None:
            return values.reshape(())
        shape = [1] * ndim
        shape[self.axis] = values.size
        return values.reshape(shape)

    def with_bits(self, bits: int) -> "QuantParams":
        """Same parameters re-targeted at a different bitwidth.

        The scale is adjusted so the represented real range is preserved
        (each halving of levels doubles the step).
        """
        factor = (self.qmax - self.qmin) / (
            value_range(bits, self.signed)[1]
            - value_range(bits, self.signed)[0]
        )
        return replace(self, scale=self.scale * factor, bits=bits)


def quantize(x: np.ndarray, qp: QuantParams) -> np.ndarray:
    """Equation 1: real tensor -> integer codes (int64)."""
    x = np.asarray(x, dtype=np.float64)
    scale = qp._expand(qp.scale, x.ndim)
    zp = qp._expand(qp.zero_point, x.ndim)
    q = np.round(x / scale + zp)
    return np.clip(q, qp.qmin, qp.qmax).astype(np.int64)


def dequantize(q: np.ndarray, qp: QuantParams) -> np.ndarray:
    """Inverse mapping: integer codes -> real values."""
    q = np.asarray(q, dtype=np.float64)
    scale = qp._expand(qp.scale, q.ndim)
    zp = qp._expand(qp.zero_point, q.ndim)
    return (q - zp) * scale


def fake_quantize(x: np.ndarray, qp: QuantParams) -> np.ndarray:
    """Quantize-dequantize round trip (the QAT forward pass)."""
    return dequantize(quantize(x, qp), qp)


def quantization_error(x: np.ndarray, qp: QuantParams) -> float:
    """RMS error introduced by quantizing ``x`` (diagnostics)."""
    x = np.asarray(x, dtype=np.float64)
    err = x - fake_quantize(x, qp)
    return float(np.sqrt(np.mean(err * err)))


def qparams_from_range(
    lo: np.ndarray,
    hi: np.ndarray,
    bits: int,
    *,
    signed: bool,
    symmetric: bool = True,
    axis: Optional[int] = None,
    eps: float = 1e-12,
) -> QuantParams:
    """Derive scale/zero-point covering the real range ``[lo, hi]``.

    With ``symmetric=True`` the zero-point is forced to 0 and the scale
    covers ``max(|lo|, |hi|)`` (absmax); otherwise an asymmetric affine
    grid maps ``lo -> qmin`` and ``hi -> qmax``.
    """
    lo = np.minimum(np.asarray(lo, dtype=np.float64), 0.0)
    hi = np.maximum(np.asarray(hi, dtype=np.float64), 0.0)
    qmin, qmax = value_range(bits, signed)
    if symmetric:
        absmax = np.maximum(np.abs(lo), np.abs(hi))
        scale = np.maximum(absmax / qmax, eps)
        zero_point = np.zeros_like(scale)
    else:
        scale = np.maximum((hi - lo) / (qmax - qmin), eps)
        zero_point = np.round(qmin - lo / scale)
    return QuantParams(scale=scale, zero_point=zero_point, bits=bits,
                       signed=signed, axis=axis)


def requantize_scale(
    act_qp: QuantParams, wgt_qp: QuantParams
) -> np.ndarray:
    """Combined output scale ``s_x * s_w`` of an integer GEMM/conv.

    After accumulating ``sum((x_q - z_x)(w_q - z_w))`` in wide integers,
    multiplying by this scale recovers the real-valued result -- this is
    the requantization step at the boundary between the Mix-GEMM integer
    pipeline and the floating-point scales the paper keeps.
    """
    sw = wgt_qp.scale
    sx = act_qp.scale
    if act_qp.is_per_channel:
        raise QuantError(
            "activations must be per-tensor to fold scales into channels"
        )
    return sx.reshape(()) * sw
