"""Calibration observers for post-training quantization (Section IV-A).

The paper's initialization recipe before QAT:

* **weights**: quantized per-channel, "with scale computed from the absmax
  of the weight tensor" -- :class:`AbsMaxObserver` with a channel axis;
* **activations**: per-tensor, initialized "by averaging the 99.999
  percentile of the activation absolute values for 8 batches" --
  :class:`PercentileObserver`;
* a generic :class:`MinMaxObserver` is provided for asymmetric schemes.

Observers accumulate statistics over repeated :meth:`observe` calls and
produce :class:`~repro.quant.affine.QuantParams` on demand.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .affine import QuantError, QuantParams, qparams_from_range

#: The paper's activation calibration percentile.
PAPER_PERCENTILE = 99.999

#: The paper's number of calibration batches.
PAPER_CALIBRATION_BATCHES = 8


class Observer:
    """Base class: accumulate tensor statistics, emit QuantParams."""

    def __init__(self, bits: int, *, signed: bool,
                 axis: Optional[int] = None) -> None:
        self.bits = bits
        self.signed = signed
        self.axis = axis
        self.batches_seen = 0

    def observe(self, x: np.ndarray) -> None:
        raise NotImplementedError

    def quant_params(self) -> QuantParams:
        raise NotImplementedError

    def _require_data(self) -> None:
        if self.batches_seen == 0:
            raise QuantError(
                f"{type(self).__name__} has observed no data yet"
            )

    def _reduce_axes(self, ndim: int) -> tuple[int, ...]:
        """Axes to reduce over: all but the channel axis (if any)."""
        if self.axis is None:
            return tuple(range(ndim))
        return tuple(i for i in range(ndim) if i != self.axis)


class MinMaxObserver(Observer):
    """Tracks running min/max; emits an asymmetric affine grid."""

    def __init__(self, bits: int, *, signed: bool = False,
                 axis: Optional[int] = None) -> None:
        super().__init__(bits, signed=signed, axis=axis)
        self._lo: np.ndarray | None = None
        self._hi: np.ndarray | None = None

    def observe(self, x: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64)
        axes = self._reduce_axes(x.ndim)
        lo = x.min(axis=axes)
        hi = x.max(axis=axes)
        if self._lo is None:
            self._lo, self._hi = lo, hi
        else:
            self._lo = np.minimum(self._lo, lo)
            self._hi = np.maximum(self._hi, hi)
        self.batches_seen += 1

    def quant_params(self) -> QuantParams:
        self._require_data()
        return qparams_from_range(
            self._lo, self._hi, self.bits,
            signed=self.signed, symmetric=False, axis=self.axis,
        )


class AbsMaxObserver(Observer):
    """Symmetric absmax calibration -- the paper's weight scheme.

    With ``axis`` set, tracks one absmax per output channel ("weights are
    quantized per-channel with scale computed from the absmax of the
    weight tensor").
    """

    def __init__(self, bits: int, *, signed: bool = True,
                 axis: Optional[int] = None) -> None:
        super().__init__(bits, signed=signed, axis=axis)
        self._absmax: np.ndarray | None = None

    def observe(self, x: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64)
        axes = self._reduce_axes(x.ndim)
        current = np.abs(x).max(axis=axes)
        if self._absmax is None:
            self._absmax = current
        else:
            self._absmax = np.maximum(self._absmax, current)
        self.batches_seen += 1

    def quant_params(self) -> QuantParams:
        self._require_data()
        return qparams_from_range(
            -self._absmax, self._absmax, self.bits,
            signed=self.signed, symmetric=True, axis=self.axis,
        )


class PercentileObserver(Observer):
    """Percentile-of-absolute-values calibration -- the paper's activation
    initialization (99.999 percentile averaged over 8 batches).

    Averaging (rather than max-reducing) follows the paper's wording
    "averaging the 99.999 percentile ... for 8 batches".
    """

    def __init__(self, bits: int, *, signed: bool = False,
                 percentile: float = PAPER_PERCENTILE,
                 axis: Optional[int] = None) -> None:
        super().__init__(bits, signed=signed, axis=axis)
        if not 0 < percentile <= 100:
            raise QuantError(f"percentile out of range: {percentile}")
        self.percentile = percentile
        self._sum: np.ndarray | None = None

    def observe(self, x: np.ndarray) -> None:
        x = np.abs(np.asarray(x, dtype=np.float64))
        if self.axis is None:
            value = np.percentile(x, self.percentile)
        else:
            moved = np.moveaxis(x, self.axis, 0).reshape(x.shape[self.axis],
                                                         -1)
            value = np.percentile(moved, self.percentile, axis=1)
        self._sum = value if self._sum is None else self._sum + value
        self.batches_seen += 1

    def quant_params(self) -> QuantParams:
        self._require_data()
        absmax = self._sum / self.batches_seen
        return qparams_from_range(
            -np.asarray(absmax), np.asarray(absmax), self.bits,
            signed=self.signed, symmetric=True, axis=self.axis,
        )


class KlDivergenceObserver(Observer):
    """Entropy (KL-divergence) calibration, TensorRT style.

    Builds a histogram of absolute values and picks the clip threshold
    whose quantized distribution minimizes the KL divergence against the
    original -- a stronger PTQ calibrator than percentile clipping for
    heavy-tailed activations.  Per-tensor only.
    """

    def __init__(self, bits: int, *, signed: bool = False,
                 n_bins: int = 2048) -> None:
        super().__init__(bits, signed=signed, axis=None)
        if n_bins < 16:
            raise QuantError(f"need at least 16 bins, got {n_bins}")
        self.n_bins = n_bins
        self._hist: np.ndarray | None = None
        self._edge = 0.0

    def observe(self, x: np.ndarray) -> None:
        x = np.abs(np.asarray(x, dtype=np.float64)).ravel()
        top = float(x.max()) if x.size else 0.0
        if self._hist is None:
            self._edge = max(top, 1e-12)
            self._hist = np.histogram(
                x, bins=self.n_bins, range=(0.0, self._edge)
            )[0].astype(np.float64)
        else:
            if top > self._edge:
                # Re-bin the running histogram onto the wider range.
                factor = top / self._edge
                old_centers = (np.arange(self.n_bins) + 0.5) \
                    * (self._edge / self.n_bins)
                self._edge = top
                new_hist = np.histogram(
                    old_centers, bins=self.n_bins,
                    range=(0.0, self._edge),
                    weights=self._hist,
                )[0]
                self._hist = new_hist
            self._hist += np.histogram(
                x, bins=self.n_bins, range=(0.0, self._edge)
            )[0]
        self.batches_seen += 1

    def _kl_divergence(self, p: np.ndarray, q: np.ndarray) -> float:
        mask = p > 0
        q = np.where(q > 0, q, 1e-12)
        return float((p[mask] * np.log(p[mask] / q[mask])).sum())

    def best_threshold(self) -> float:
        """The clip threshold minimizing the KL divergence."""
        self._require_data()
        levels = (1 << self.bits) - 1 if not self.signed \
            else (1 << (self.bits - 1)) - 1
        levels = max(levels, 2)
        hist = self._hist
        bin_width = self._edge / self.n_bins
        best = (np.inf, self._edge)
        start = max(levels, self.n_bins // 8)
        for i in range(start, self.n_bins + 1, max(1, self.n_bins // 64)):
            p = hist[:i].copy()
            outliers = hist[i:].sum()
            if p.sum() == 0:
                continue
            p[-1] += outliers        # clip mass onto the last bin
            # Quantize the clipped distribution onto `levels` buckets.
            idx = (np.arange(i) * levels // i)
            q_small = np.bincount(idx, weights=hist[:i],
                                  minlength=levels)
            counts = np.bincount(idx, minlength=levels)
            expanded = np.where(
                counts[idx] > 0, q_small[idx] / counts[idx], 0.0
            )
            p_norm = p / p.sum()
            q_norm = expanded / max(expanded.sum(), 1e-12)
            kl = self._kl_divergence(p_norm, q_norm)
            if kl < best[0]:
                best = (kl, i * bin_width)
        return best[1]

    def quant_params(self) -> QuantParams:
        threshold = self.best_threshold()
        return qparams_from_range(
            -threshold, threshold, self.bits,
            signed=self.signed, symmetric=True, axis=None,
        )


def paper_weight_observer(bits: int, channel_axis: int = 0) -> AbsMaxObserver:
    """The paper's weight calibration: per-channel signed absmax."""
    return AbsMaxObserver(bits, signed=True, axis=channel_axis)


def paper_activation_observer(bits: int, *,
                              signed: bool = False) -> PercentileObserver:
    """The paper's activation calibration: per-tensor 99.999 percentile.

    Activations after ReLU are unsigned; pass ``signed=True`` for layers
    fed by signed inputs (e.g. the network input after normalization).
    """
    return PercentileObserver(bits, signed=signed)
