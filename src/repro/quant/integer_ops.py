"""Integer-arithmetic layer kernels: the bridge into Mix-GEMM.

A quantized linear/conv layer evaluates, entirely in integers::

    acc = (x_q - z_x) @ (w_q - z_w)          # wide-integer GEMM
    y   = acc * (s_x * s_w) + bias           # float requantization

The wide-integer GEMM is exactly what the u-engine computes; these helpers
express the layer math so that the same code path can run on

* plain numpy (``backend="numpy"``, fast reference), or
* the bit-exact Mix-GEMM simulator (``backend="mixgemm"``), which also
  returns cycle counts.

With the paper's training constraint "both activation and weights are
trained with zero-point equal to zero" the zero-point subtraction
disappears and operands stream into the GEMM untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from repro.core.config import MixGemmConfig
from repro.core.gemm import GemmResult, MixGemm

from .affine import QuantParams, dequantize, quantize, requantize_scale

Backend = Literal["numpy", "mixgemm"]


@dataclass
class IntegerGemmOutput:
    """Integer accumulator plus optional simulator performance data."""

    acc: np.ndarray
    gemm_result: Optional[GemmResult] = None


def integer_gemm(
    x_q: np.ndarray,
    w_q: np.ndarray,
    x_qp: QuantParams,
    w_qp: QuantParams,
    *,
    backend: Backend = "numpy",
    config: MixGemmConfig | None = None,
) -> IntegerGemmOutput:
    """Wide-integer GEMM of quantized codes, zero-points folded out.

    ``x_q`` is (m, k), ``w_q`` is (k, n); both int codes from
    :func:`~repro.quant.affine.quantize`.
    """
    x_int = np.asarray(x_q, dtype=np.int64)
    w_int = np.asarray(w_q, dtype=np.int64)
    if not x_qp.is_symmetric:
        x_int = x_int - x_qp.zero_point.astype(np.int64)
    if not w_qp.is_symmetric:
        w_int = w_int - w_qp.zero_point.astype(np.int64)
    if backend == "numpy":
        return IntegerGemmOutput(acc=x_int @ w_int)
    if backend == "mixgemm":
        # Zero-point folding widens the code range by at most one bit; the
        # paper trains with zero-point 0 so codes pass through unchanged.
        cfg = config or MixGemmConfig(
            bw_a=x_qp.bits, bw_b=w_qp.bits,
            signed_a=x_qp.signed or not x_qp.is_symmetric,
            signed_b=w_qp.signed or not w_qp.is_symmetric,
        )
        result = MixGemm(cfg, emulate_datapath=False).gemm(x_int, w_int)
        return IntegerGemmOutput(acc=result.c, gemm_result=result)
    raise ValueError(f"unknown backend: {backend}")


def integer_gemm_asymmetric(
    x_q: np.ndarray,
    w_q: np.ndarray,
    x_qp: QuantParams,
    w_qp: QuantParams,
    *,
    backend: Backend = "numpy",
    config: MixGemmConfig | None = None,
) -> IntegerGemmOutput:
    """Asymmetric GEMM with hardware-friendly zero-point folding.

    Instead of widening the operands by subtracting zero-points before
    the GEMM (as :func:`integer_gemm` does), expand the product::

        (x - zx) @ (w - zw) = x@w - zx * colsum(w) - rowsum(x) * zw
                              + k * zx * zw

    The raw ``x @ w`` runs on the narrow datapath (this is how GEMMLowp
    and QNNPACK execute asymmetric quantization); the rank-1 corrections
    are O(m*k + k*n) integer reductions.  Must agree exactly with
    :func:`integer_gemm` -- asserted in the tests.
    """
    x_int = np.asarray(x_q, dtype=np.int64)
    w_int = np.asarray(w_q, dtype=np.int64)
    if x_qp.is_per_channel or w_qp.zero_point.size != 1:
        raise ValueError(
            "zero-point folding needs per-tensor zero-points"
        )
    zx = float(x_qp.zero_point)
    zw = float(w_qp.zero_point.reshape(-1)[0]) \
        if w_qp.zero_point.size == 1 else 0.0
    k = x_int.shape[1]
    if backend == "numpy":
        raw = x_int @ w_int
    elif backend == "mixgemm":
        cfg = config or MixGemmConfig(
            bw_a=x_qp.bits, bw_b=w_qp.bits,
            signed_a=x_qp.signed, signed_b=w_qp.signed,
        )
        result = MixGemm(cfg, emulate_datapath=False).gemm(x_int, w_int)
        raw = result.c
    else:
        raise ValueError(f"unknown backend: {backend}")
    col_sums = w_int.sum(axis=0)          # (n,)
    row_sums = x_int.sum(axis=1)          # (m,)
    acc = (
        raw
        - np.int64(round(zx)) * col_sums[None, :]
        - row_sums[:, None] * np.int64(round(zw))
        + np.int64(k) * np.int64(round(zx)) * np.int64(round(zw))
    )
    gemm_result = result if backend == "mixgemm" else None
    return IntegerGemmOutput(acc=acc, gemm_result=gemm_result)


def quantized_linear(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    x_qp: QuantParams,
    w_qp: QuantParams,
    *,
    backend: Backend = "numpy",
    config: MixGemmConfig | None = None,
) -> tuple[np.ndarray, Optional[GemmResult]]:
    """Full quantized linear layer: quantize -> integer GEMM -> requantize.

    ``x`` is a real (batch, in) tensor, ``weight`` real (out, in); returns
    the real-valued output (batch, out) plus the simulator result when the
    Mix-GEMM backend ran.
    """
    x_q = quantize(x, x_qp)
    w_q = quantize(weight, w_qp)
    out = integer_gemm(x_q, w_q.T, x_qp, w_qp, backend=backend,
                       config=config)
    scale = requantize_scale(x_qp, w_qp)  # scalar or per-out-channel
    y = out.acc.astype(np.float64) * scale
    if bias is not None:
        y = y + bias
    return y, out.gemm_result


def dequantized_reference(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    x_qp: QuantParams,
    w_qp: QuantParams,
) -> np.ndarray:
    """Reference: fake-quantize both operands, multiply in floating point.

    The integer pipeline must match this exactly (up to float rounding);
    the equivalence is asserted in the test-suite and is the correctness
    contract that lets Mix-GEMM replace the FP32 computation.
    """
    x_dq = dequantize(quantize(x, x_qp), x_qp)
    w_dq = dequantize(quantize(weight, w_qp), w_qp)
    y = x_dq @ w_dq.T
    if bias is not None:
        y = y + bias
    return y
