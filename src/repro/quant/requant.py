"""Integer-only requantization (the fixed-point alternative to floats).

The paper keeps "quantization scales and biases ... in floating-point";
production integer runtimes (GEMMLowp/TFLite, ref [33]) instead encode the
combined scale ``s_x * s_w / s_y`` as a fixed-point multiplier::

    M = M0 * 2^(-shift),   M0 in [0.5, 1) as a Q31 integer

and requantize accumulators with a saturating rounding doubling high
multiply plus a rounding right shift -- no floating point anywhere on the
inference path.  This module implements that machinery bit-exactly
(matching the reference GEMMLowp semantics), so the Mix-GEMM pipeline can
run scale application on the same integer datapath.

The tests assert both (a) exact agreement with the published fixed-point
reference behaviour on corner cases and (b) <= 1 LSB deviation from the
floating-point requantization across random tensors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import ReproError

INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1


class RequantError(ReproError, ValueError):
    """Raised for unencodable multipliers."""


@dataclass(frozen=True)
class FixedPointMultiplier:
    """A positive real encoded as ``m0 * 2^(-shift)`` with m0 in Q31."""

    m0: int
    shift: int

    @property
    def real_value(self) -> float:
        return self.m0 / (1 << 31) / (1 << self.shift)


def quantize_multiplier(value: float) -> FixedPointMultiplier:
    """Encode a positive real multiplier (typically < 1) as Q31 + shift."""
    if not 0 < value < 1e6:
        raise RequantError(f"multiplier out of range: {value}")
    shift = 0
    while value < 0.5:
        value *= 2.0
        shift += 1
    while value >= 1.0:
        value /= 2.0
        shift -= 1
    m0 = int(round(value * (1 << 31)))
    if m0 == (1 << 31):  # rounding overflowed into 1.0
        m0 //= 2
        shift -= 1
    if shift < 0:
        raise RequantError(
            "multipliers >= 1 are not supported on this path (the "
            "combined scale of a quantized layer is < 1 by construction)"
        )
    return FixedPointMultiplier(m0=m0, shift=shift)


def saturating_rounding_doubling_high_mul(
    a: np.ndarray, b: int
) -> np.ndarray:
    """GEMMLowp's SRDHM: ``round((a * b) / 2^31)`` with saturation.

    The single overflow case ``a == b == INT32_MIN`` saturates to
    INT32_MAX.
    """
    a = np.asarray(a, dtype=np.int64)
    overflow = (a == INT32_MIN) & (b == INT32_MIN)
    ab = a * np.int64(b)
    nudge = np.where(ab >= 0, np.int64(1 << 30), np.int64(1 - (1 << 30)))
    result = (ab + nudge) >> 31
    result = np.clip(result, INT32_MIN, INT32_MAX)
    return np.where(overflow, np.int64(INT32_MAX), result)


def rounding_right_shift(x: np.ndarray, shift: int) -> np.ndarray:
    """Arithmetic right shift with round-half-away-from-zero."""
    if shift == 0:
        return np.asarray(x, dtype=np.int64)
    x = np.asarray(x, dtype=np.int64)
    mask = np.int64((1 << shift) - 1)
    remainder = x & mask
    threshold = (mask >> 1) + np.where(x < 0, np.int64(1), np.int64(0))
    return (x >> shift) + (remainder > threshold).astype(np.int64)


def requantize_int(
    acc: np.ndarray,
    multiplier: FixedPointMultiplier,
    *,
    zero_point: int = 0,
    qmin: int = -128,
    qmax: int = 127,
) -> np.ndarray:
    """int32 accumulators -> quantized outputs, integer arithmetic only."""
    scaled = saturating_rounding_doubling_high_mul(acc, multiplier.m0)
    shifted = rounding_right_shift(scaled, multiplier.shift)
    return np.clip(shifted + zero_point, qmin, qmax).astype(np.int64)


def requantize_reference(
    acc: np.ndarray,
    real_multiplier: float,
    *,
    zero_point: int = 0,
    qmin: int = -128,
    qmax: int = 127,
) -> np.ndarray:
    """Floating-point requantization (what the paper's pipeline does)."""
    scaled = np.round(np.asarray(acc, dtype=np.float64) * real_multiplier)
    return np.clip(scaled + zero_point, qmin, qmax).astype(np.int64)
