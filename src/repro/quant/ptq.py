"""Post-training quantization (paper Section II-A).

The paper contrasts PTQ with QAT: "PTQ starts from a pre-trained model in
floating-point, and relies on a small amount of calibration to determine
appropriate values for scales and zero-points ... is effective at higher
precisions like 7- and 8-bit", while QAT "can scale down to narrower data
sizes".  This module implements the full PTQ flow on our model zoo:

1. run calibration batches through the float model, observing each quant
   layer's input with the paper's percentile observer;
2. set weight scales per-channel (absmax) and activation scales from the
   observers;
3. optionally apply bias correction (Section IV-A initialization);
4. evaluate -- no retraining.

The PTQ-vs-QAT crossover (PTQ fine at 8-bit, collapsing below ~5 bits
where QAT survives) is exercised in the tests and benchmarks, reproducing
the rationale for the paper's choice of QAT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.data import Dataset
from repro.nn.layers import Module, QuantConv2d, QuantLinear

from .bias_correction import (
    bias_correction_conv,
    bias_correction_linear,
    weight_quantization_error,
)
from .observers import PAPER_CALIBRATION_BATCHES, PercentileObserver
from .qat import calibrate_activations, evaluate, quant_layers


@dataclass
class PtqReport:
    """Outcome of one PTQ pass."""

    bits: int
    accuracy: float
    calibrated_layers: int
    bias_corrected_layers: int


def _capture_layer_inputs(
    model: Module, dataset: Dataset, *, batch_size: int, batches: int,
) -> dict[int, np.ndarray]:
    """Record one calibration batch of inputs per quant layer."""
    layers = quant_layers(model)
    captured: dict[int, list[np.ndarray]] = {id(l): [] for l in layers}
    hooked = []
    for layer in layers:
        original = layer._quant_input

        def make_hook(layer=layer, original=original):
            def hook(x):
                if len(captured[id(layer)]) < batches:
                    captured[id(layer)].append(x.data.copy())
                return original(x)
            return hook

        layer._quant_input = make_hook()
        hooked.append((layer, original))
    model.eval()
    try:
        seen = 0
        for images, _ in dataset.batches(batch_size):
            model(Tensor(images))
            seen += 1
            if seen >= batches:
                break
    finally:
        for layer, original in hooked:
            layer._quant_input = original
    return {
        key: np.concatenate(chunks, axis=0)
        for key, chunks in captured.items() if chunks
    }


def apply_bias_correction_to_model(
    model: Module, dataset: Dataset, *,
    batch_size: int = 32, batches: int = PAPER_CALIBRATION_BATCHES,
    clip: Optional[float] = None,
) -> int:
    """Fold the empirical bias correction into every quant layer's bias.

    Returns the number of corrected layers.  ``clip=0`` disables the
    correction (the paper's VGG-16 exception).
    """
    from repro.nn.functional_quant import weight_absmax_scale
    from .affine import QuantParams

    inputs = _capture_layer_inputs(model, dataset, batch_size=batch_size,
                                   batches=batches)
    corrected = 0
    for layer in quant_layers(model):
        if layer.spec.weight_bits is None or layer.bias is None:
            continue
        x = inputs.get(id(layer))
        if x is None:
            continue
        w = layer.weight.data
        scale = weight_absmax_scale(w, layer.spec.weight_bits)
        qp = QuantParams(scale=scale, zero_point=0.0,
                         bits=layer.spec.weight_bits, signed=True, axis=0)
        if isinstance(layer, QuantConv2d):
            correction = bias_correction_conv(w, qp, x)
        elif isinstance(layer, QuantLinear):
            correction = bias_correction_linear(w, qp, x)
        else:  # pragma: no cover - registry guarded
            continue
        if clip is not None:
            correction = np.clip(correction, -clip, clip)
        layer.bias.data = layer.bias.data - correction
        corrected += 1
    return corrected


def post_training_quantize(
    model: Module,
    calibration: Dataset,
    validation: Dataset,
    *,
    batch_size: int = 32,
    batches: int = PAPER_CALIBRATION_BATCHES,
    bias_correction: bool = True,
) -> PtqReport:
    """The complete PTQ pipeline: calibrate, correct, evaluate.

    The model's quant layers must already carry the target
    :class:`~repro.nn.layers.LayerQuantSpec`; use
    :func:`repro.quant.qat.set_model_bits` to retarget first.
    """
    layers = quant_layers(model)
    if not layers:
        raise ValueError("model has no quantization-aware layers")
    calibrate_activations(model, calibration, batch_size=batch_size,
                          batches=batches)
    corrected = 0
    if bias_correction:
        corrected = apply_bias_correction_to_model(
            model, calibration, batch_size=batch_size, batches=batches,
        )
    accuracy = evaluate(model, validation)
    bits = min(
        (l.spec.weight_bits for l in layers
         if l.spec.weight_bits is not None),
        default=0,
    )
    return PtqReport(
        bits=bits,
        accuracy=accuracy,
        calibrated_layers=len(layers),
        bias_corrected_layers=corrected,
    )


def layer_quantization_snr(model: Module) -> dict[str, float]:
    """Per-layer weight signal-to-quantization-noise ratio (dB).

    A PTQ diagnostic: layers whose SQNR drops below ~10 dB are the ones
    that need QAT at the configured bitwidth.
    """
    from repro.nn.functional_quant import weight_absmax_scale
    from .affine import QuantParams

    out: dict[str, float] = {}
    for idx, layer in enumerate(quant_layers(model)):
        if layer.spec.weight_bits is None:
            continue
        w = layer.weight.data
        scale = weight_absmax_scale(w, layer.spec.weight_bits)
        qp = QuantParams(scale=scale, zero_point=0.0,
                         bits=layer.spec.weight_bits, signed=True, axis=0)
        err = weight_quantization_error(w, qp)
        signal = float((w ** 2).mean())
        noise = float((err ** 2).mean()) + 1e-30
        out[f"layer{idx}"] = 10 * np.log10(signal / noise)
    return out
