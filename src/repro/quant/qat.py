"""Quantization-aware training: the paper's Section IV-A workflow.

Implements the Figure 3 pipeline on the numpy substrate:

1. start from a (pre)trained float model;
2. post-training-quantize: calibrate activation scales with the 99.999
   percentile observer, apply bias correction;
3. retrain with fake quantization in the graph (QAT) using the paper's
   SGD recipes (momentum 0.9, weight decay 1e-4, step LR);
4. for extreme bitwidths, retrain progressively (a4-w4 -> a3-w3 ->
   a2-w2), as the paper does to "improve convergence at low precision".

Every network in the paper keeps its first and last layers at 8 bits "to
preserve accuracy"; :func:`set_model_bits` enforces that by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

import numpy as np

from repro.nn.autograd import Tensor, accuracy, softmax_cross_entropy
from repro.nn.data import Dataset
from repro.nn.functional_quant import init_log_scale
from repro.nn.layers import LayerQuantSpec, Module, QuantConv2d, QuantLinear
from repro.nn.optim import SGD, StepLR

from .observers import PAPER_CALIBRATION_BATCHES, PercentileObserver


@dataclass(frozen=True)
class QatRecipe:
    """One network's training hyper-parameters (Section IV-A)."""

    lr: float
    epochs: int
    lr_step: int
    batch_size: int
    momentum: float = 0.9
    weight_decay: float = 1e-4
    gamma: float = 0.1

    def scaled(self, epoch_scale: float) -> "QatRecipe":
        """Shrink the schedule for laptop-scale runs, keeping its shape."""
        return replace(
            self,
            epochs=max(1, int(round(self.epochs * epoch_scale))),
            lr_step=max(1, int(round(self.lr_step * epoch_scale))),
        )


#: The per-network QAT recipes of Section IV-A (ImageNet scale).  The
#: reproduction uses them via ``.scaled()`` on synthetic data.
PAPER_RECIPES: dict[str, QatRecipe] = {
    "resnet18": QatRecipe(lr=1e-3, epochs=90, lr_step=30, batch_size=256),
    "alexnet": QatRecipe(lr=1e-4, epochs=90, lr_step=30, batch_size=128),
    "mobilenet_v1": QatRecipe(lr=1e-2, epochs=120, lr_step=30,
                              batch_size=128),
    "vgg16": QatRecipe(lr=1e-3, epochs=45, lr_step=15, batch_size=32),
    "regnet_x_400mf": QatRecipe(lr=4e-2, epochs=150, lr_step=30,
                                batch_size=128),
    "efficientnet_b0": QatRecipe(lr=3.2e-3, epochs=90, lr_step=30,
                                 batch_size=64),
}

#: Weight decay for progressive low-precision retraining (Section IV-A:
#: "with the same training settings as above except for weight decay at
#: 5e-5").
LOW_PRECISION_WEIGHT_DECAY = 5e-5


@dataclass
class TrainHistory:
    """Per-epoch training record."""

    loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)

    @property
    def best_val_accuracy(self) -> float:
        """The paper reports "the best TOP-1 validation accuracy"."""
        return max(self.val_accuracy) if self.val_accuracy else 0.0


def quant_layers(model: Module) -> list[Module]:
    """All quantization-aware layers of a model, in forward order."""
    return [m for m in model.modules()
            if isinstance(m, (QuantConv2d, QuantLinear))]


def set_model_bits(
    model: Module,
    act_bits: Optional[int],
    weight_bits: Optional[int],
    *,
    first_last_bits: Optional[int] = 8,
) -> None:
    """Retarget every quant layer to ``aX-wY``.

    ``first_last_bits`` pins the first and last layers (default 8-bit),
    following the paper; pass ``None`` to quantize them like the rest.
    """
    layers = quant_layers(model)
    for idx, layer in enumerate(layers):
        is_edge = idx in (0, len(layers) - 1)
        if is_edge and first_last_bits is not None:
            a_bits = first_last_bits if act_bits is not None else None
            w_bits = first_last_bits if weight_bits is not None else None
        else:
            a_bits, w_bits = act_bits, weight_bits
        layer.spec = LayerQuantSpec(
            act_bits=a_bits, weight_bits=w_bits,
            act_signed=layer.spec.act_signed,
        )
        # A layer built as float has no learned activation scale yet;
        # create it when (re)enabling activation quantization.
        if a_bits is not None and not hasattr(layer, "act_log_scale"):
            layer.act_log_scale = init_log_scale(0.1)


def calibrate_activations(
    model: Module,
    dataset: Dataset,
    *,
    batch_size: int = 32,
    batches: int = PAPER_CALIBRATION_BATCHES,
) -> None:
    """PTQ initialization of the learned activation scales.

    Runs the model on calibration batches while percentile observers watch
    each quant layer's input, then writes the averaged scales into the
    learnable log-domain parameters (the paper's "averaging the 99.999
    percentile of the activation absolute values for 8 batches").
    """
    layers = quant_layers(model)
    observers = {
        id(layer): PercentileObserver(
            layer.spec.act_bits or 8, signed=layer.spec.act_signed
        )
        for layer in layers
    }

    hooked: list[tuple[Module, Callable]] = []
    for layer in layers:
        original = layer._quant_input

        def make_hook(layer=layer, original=original):
            def hook(x):
                observers[id(layer)].observe(x.data)
                return original(x)
            return hook

        layer._quant_input = make_hook()
        hooked.append((layer, original))

    model.eval()
    try:
        seen = 0
        for images, _ in dataset.batches(batch_size):
            model(Tensor(images))
            seen += 1
            if seen >= batches:
                break
    finally:
        for layer, original in hooked:
            layer._quant_input = original

    for layer in layers:
        if layer.spec.act_bits is None:
            continue
        qp = observers[id(layer)].quant_params()
        layer.calibrate_act_scale(float(qp.scale))


def evaluate(model: Module, dataset: Dataset,
             batch_size: int = 64) -> float:
    """TOP-1 accuracy over a dataset."""
    model.eval()
    correct = 0
    for images, labels in dataset.batches(batch_size):
        logits = model(Tensor(images))
        correct += int(
            (logits.data.argmax(axis=1) == labels).sum()
        )
    return correct / len(dataset)


def train_qat(
    model: Module,
    train_set: Dataset,
    val_set: Dataset,
    recipe: QatRecipe,
    *,
    seed: int = 0,
    log: Optional[Callable[[str], None]] = None,
) -> TrainHistory:
    """One QAT run with the paper's SGD + step-LR recipe."""
    rng = np.random.default_rng(seed)
    optimizer = SGD(
        model.parameters(), lr=recipe.lr,
        momentum=recipe.momentum, weight_decay=recipe.weight_decay,
    )
    schedule = StepLR(optimizer, recipe.lr_step, recipe.gamma)
    history = TrainHistory()
    for epoch in range(recipe.epochs):
        model.train()
        losses, accs = [], []
        for images, labels in train_set.batches(recipe.batch_size, rng):
            optimizer.zero_grad()
            logits = model(Tensor(images))
            loss, probs = softmax_cross_entropy(logits, labels)
            loss.backward()
            optimizer.step()
            losses.append(float(loss.data))
            accs.append(accuracy(probs, labels))
        val_acc = evaluate(model, val_set)
        history.loss.append(float(np.mean(losses)))
        history.train_accuracy.append(float(np.mean(accs)))
        history.val_accuracy.append(val_acc)
        schedule.step()
        if log is not None:
            log(
                f"epoch {epoch + 1}/{recipe.epochs}: "
                f"loss={history.loss[-1]:.4f} "
                f"train={history.train_accuracy[-1]:.3f} "
                f"val={val_acc:.3f} lr={schedule.current_lr:.2e}"
            )
    return history


def progressive_qat(
    model: Module,
    train_set: Dataset,
    val_set: Dataset,
    recipe: QatRecipe,
    bit_schedule: list[tuple[Optional[int], Optional[int]]],
    *,
    seed: int = 0,
    log: Optional[Callable[[str], None]] = None,
) -> dict[str, TrainHistory]:
    """Retrain through a decreasing bit schedule (Section IV-A).

    The paper retrains a4-w3/a3-w3 from a4-w4, and a3-w2/a2-w2 from
    a3-w3, with weight decay dropped to 5e-5 below 4 bits; this helper
    chains those stages on one model instance.
    """
    histories: dict[str, TrainHistory] = {}
    for act_bits, weight_bits in bit_schedule:
        set_model_bits(model, act_bits, weight_bits)
        stage = f"a{act_bits}-w{weight_bits}"
        stage_recipe = recipe
        if (act_bits or 8) < 4 or (weight_bits or 8) < 4:
            stage_recipe = replace(
                recipe, weight_decay=LOW_PRECISION_WEIGHT_DECAY
            )
        if log is not None:
            log(f"--- stage {stage} ---")
        histories[stage] = train_qat(
            model, train_set, val_set, stage_recipe, seed=seed, log=log,
        )
    return histories
