"""Binary segmentation arithmetic (paper Section II-B, Equations 3-7).

Binary segmentation packs several narrow-integer elements into a single wide
machine word (an *input-cluster*) so that one wide multiplication computes the
inner product of the packed elements.  The Mix-GEMM micro-engine builds its
whole datapath on this technique; this module is the exact functional model.

Terminology follows the paper:

* ``bw_a`` / ``bw_b``     -- bitwidths of the two narrow operand vectors.
* ``cw``                  -- clustering width: bits reserved per packed element
                             (Equation 3).
* ``input_cluster_size``  -- elements packed per wide word (Equation 4).
* ``slice``               -- bit range of the wide product that holds the
                             inner product of one cluster pair (Equations 5-7).

Worked example reproduced in the tests (paper Figure 1): with a 16-bit
multiplier and 3-bit x 2-bit operands, ``cw = 8`` and two elements fit per
cluster, so ``[4, 7] . [3, 2]`` is computed as ``1031 * 515`` whose middle
base-256 digit is ``26``.

Signedness: packed integers are formed over the integers (a negative element
contributes a negative term), which makes the product's base-``2**cw`` digit
at the slice position exactly the inner product.  Recovering that digit from
the two's-complement product needs a one-bit borrow correction whenever the
digits below the slice are negative; the bit just below the slice tells us
exactly when (see :func:`extract_inner_product`).  Equation 3's headroom
guarantees the correction is always representable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .errors import ReproError

#: Multiplier width of the scalar RV64 core the paper integrates with.
DEFAULT_MUL_WIDTH = 64

#: Data sizes supported by Mix-GEMM (paper Section I: "all data size
#: combinations from 8- to 2-bit").
SUPPORTED_BITWIDTHS = (2, 3, 4, 5, 6, 7, 8)


class BinSegError(ReproError, ValueError):
    """Raised for configurations binary segmentation cannot support."""


def _check_bitwidth(bw: int, name: str) -> None:
    if bw not in SUPPORTED_BITWIDTHS:
        raise BinSegError(
            f"{name}={bw} is outside the supported range "
            f"{SUPPORTED_BITWIDTHS[0]}-{SUPPORTED_BITWIDTHS[-1]} bits"
        )


def clustering_width(bw_a: int, bw_b: int, cluster_size: int) -> int:
    """Minimum clustering width for ``cluster_size`` elements (Equation 3).

    ``cw >= 1 + bw_a + bw_b + ceil(log2(cluster_size + 1))``.
    """
    if cluster_size < 1:
        raise BinSegError(f"cluster_size must be >= 1, got {cluster_size}")
    return 1 + bw_a + bw_b + math.ceil(math.log2(cluster_size + 1))


def input_cluster_size(
    bw_a: int, bw_b: int, mul_width: int = DEFAULT_MUL_WIDTH
) -> int:
    """Largest cluster size a ``mul_width``-bit multiplier supports (Eq. 4).

    Equations 3 and 4 are mutually dependent (the width per element grows
    with the cluster size), so we take the largest ``n`` with
    ``n * clustering_width(bw_a, bw_b, n) <= mul_width``.
    """
    _check_bitwidth(bw_a, "bw_a")
    _check_bitwidth(bw_b, "bw_b")
    best = 0
    n = 1
    while n * clustering_width(bw_a, bw_b, n) <= mul_width:
        best = n
        n += 1
    if best == 0:
        raise BinSegError(
            f"multiplier of {mul_width} bits cannot hold even one "
            f"{bw_a}x{bw_b}-bit product cluster"
        )
    return best


def slice_bounds(cluster_size: int, cw: int) -> tuple[int, int]:
    """Bit range of the product holding the inner product (Equations 6-7).

    Returns ``(slice_msb, slice_lsb)``, both inclusive.
    """
    slice_lsb = (cluster_size - 1) * cw
    slice_msb = slice_lsb + cw - 1
    return slice_msb, slice_lsb


def value_range(bw: int, signed: bool) -> tuple[int, int]:
    """Representable ``[min, max]`` for a ``bw``-bit element (Equation 2)."""
    if signed:
        return -(1 << (bw - 1)), (1 << (bw - 1)) - 1
    return 0, (1 << bw) - 1


def ceil_div(n: int, d: int) -> int:
    """Exact ``ceil(n / d)`` in pure integer arithmetic.

    ``math.ceil(n / d)`` rounds through a float and silently loses
    precision once ``n`` exceeds 2**53; kernel code must use this
    instead (enforced by lint rule REP003).
    """
    if d <= 0:
        raise BinSegError(f"ceil_div divisor must be positive, got {d}")
    return -(-n // d)


def _check_elements(
    values: Sequence[int], bw: int, signed: bool, name: str
) -> None:
    lo, hi = value_range(bw, signed)
    for v in values:
        if not lo <= int(v) <= hi:
            raise BinSegError(
                f"{name} element {int(v)} does not fit {bw}-bit "
                f"{'signed' if signed else 'unsigned'} range [{lo}, {hi}]"
            )


def pack_cluster(values: Sequence[int], cw: int, *, reverse: bool) -> int:
    """Pack elements into one input-cluster integer.

    Element 0 lands in the most-significant ``cw``-bit digit; passing
    ``reverse=True`` applies the order reversal the paper prescribes for the
    ``b`` operand (Figure 1, green stage), which turns the product's middle
    digit into the inner product.  The result is an integer over Z: negative
    elements contribute negative terms, so the value itself may be negative.
    """
    ordered = list(values)[::-1] if reverse else list(values)
    packed = 0
    top = len(ordered) - 1
    for i, v in enumerate(ordered):
        packed += int(v) << ((top - i) * cw)
    return packed


def extract_inner_product(product: int, cluster_size: int, cw: int) -> int:
    """Pull the cluster inner product out of a wide multiplication (Eq. 5).

    The digit of ``product`` in base ``2**cw`` at position
    ``cluster_size - 1`` is the inner product.  Because lower digits may be
    negative, the floor-division residue below the slice can borrow one unit
    from it; the borrow happened exactly when the bit just below the slice is
    set (the residue then exceeds half the slice weight, which Equation 3's
    headroom makes otherwise impossible).  This mirrors the single-bit
    correction the hardware Data Filtering Unit applies.
    """
    _, slice_lsb = slice_bounds(cluster_size, cw)
    raw = (product >> slice_lsb) & ((1 << cw) - 1)
    # Interpret the slice as a signed cw-bit value.
    if raw >= 1 << (cw - 1):
        raw -= 1 << cw
    if slice_lsb == 0:
        return raw
    borrow = (product >> (slice_lsb - 1)) & 1
    return raw + borrow


def cluster_inner_product(
    a_values: Sequence[int],
    b_values: Sequence[int],
    bw_a: int,
    bw_b: int,
    *,
    signed_a: bool = True,
    signed_b: bool = True,
    mul_width: int = DEFAULT_MUL_WIDTH,
) -> int:
    """Inner product of one sub-u-vector pair via a single wide multiply.

    Models the pink + blue + orange pipeline stages of Figure 1: pack both
    operands (with ``b`` reversed), multiply, then slice-extract.
    """
    if len(a_values) != len(b_values):
        raise BinSegError(
            f"cluster operands differ in length: "
            f"{len(a_values)} vs {len(b_values)}"
        )
    n = len(a_values)
    max_n = input_cluster_size(bw_a, bw_b, mul_width)
    if n > max_n:
        raise BinSegError(
            f"cluster of {n} elements exceeds input_cluster_size={max_n} "
            f"for {bw_a}x{bw_b}-bit data on a {mul_width}-bit multiplier"
        )
    _check_elements(a_values, bw_a, signed_a, "a")
    _check_elements(b_values, bw_b, signed_b, "b")
    cw = clustering_width(bw_a, bw_b, max_n)
    a_cluster = pack_cluster(a_values, cw, reverse=False)
    b_cluster = pack_cluster(b_values, cw, reverse=True)
    return extract_inner_product(a_cluster * b_cluster, n, cw)


def segmented_inner_product(
    a: Sequence[int],
    b: Sequence[int],
    bw_a: int,
    bw_b: int,
    *,
    signed_a: bool = True,
    signed_b: bool = True,
    mul_width: int = DEFAULT_MUL_WIDTH,
) -> int:
    """Full-vector inner product computed cluster by cluster (Figure 1).

    Splits ``a`` and ``b`` into sub-u-vectors of at most
    ``input_cluster_size`` elements, evaluates each pair with one wide
    multiplication, and accumulates the partial inner products (grey stage).
    """
    if len(a) != len(b):
        raise BinSegError(f"length mismatch: {len(a)} vs {len(b)}")
    size = input_cluster_size(bw_a, bw_b, mul_width)
    total = 0
    for start in range(0, len(a), size):
        total += cluster_inner_product(
            a[start:start + size],
            b[start:start + size],
            bw_a,
            bw_b,
            signed_a=signed_a,
            signed_b=signed_b,
            mul_width=mul_width,
        )
    return total


def multiplications_required(
    n_elements: int, bw_a: int, bw_b: int, mul_width: int = DEFAULT_MUL_WIDTH
) -> int:
    """Wide multiplications needed for an ``n_elements`` inner product."""
    size = input_cluster_size(bw_a, bw_b, mul_width)
    return ceil_div(n_elements, size)


def arithmetic_reduction(
    n_elements: int, bw_a: int, bw_b: int, mul_width: int = DEFAULT_MUL_WIDTH
) -> float:
    """Arithmetic complexity reduction over one-MAC-per-element baselines.

    The paper's Figure 1 example (4 elements, 3x2 bits, 16-bit multiplier)
    needs 2 multiplications and 1 addition instead of 4 multiplications and
    3 additions, a 7/3 = 2.33x reduction.  We count one multiply plus one add
    per scalar MAC against one multiply per cluster plus one add per partial
    accumulation.
    """
    muls = multiplications_required(n_elements, bw_a, bw_b, mul_width)
    baseline_ops = 2 * n_elements - 1
    segmented_ops = muls + (muls - 1)
    return baseline_ops / segmented_ops


def worst_case_inner_product(
    k: int,
    bw_a: int,
    bw_b: int,
    *,
    signed_a: bool = True,
    signed_b: bool = True,
) -> int:
    """Largest |value| a ``k``-deep inner product can reach (Eq. 2 + 5).

    Every element pair contributes at most ``max|a| * max|b|``; for signed
    operands ``max|a| = 2**(bw_a - 1)``, so the bound is the
    ``k * 2**(bw_a + bw_b - 2)`` figure the overflow contract quotes.
    This is the exact algebraic worst case, not an estimate: it is reached
    by all-minimum operand vectors.
    """
    if k < 0:
        raise BinSegError(f"k must be non-negative, got {k}")
    lo_a, hi_a = value_range(bw_a, signed_a)
    lo_b, hi_b = value_range(bw_b, signed_b)
    return k * max(abs(lo_a), abs(hi_a)) * max(abs(lo_b), abs(hi_b))


def accumulator_bits_required(
    k: int,
    bw_a: int,
    bw_b: int,
    *,
    signed_a: bool = True,
    signed_b: bool = True,
) -> int:
    """Two's-complement accumulator width that provably cannot wrap.

    The smallest signed width holding every value a ``k``-deep
    ``bw_a`` x ``bw_b`` inner product can produce.  Static contract
    checking compares this against the configured AccMem width; the
    dynamic engine wraps exactly when this exceeds ``accmem_bits``
    *and* the data actually excites the bound.
    """
    worst = worst_case_inner_product(
        k, bw_a, bw_b, signed_a=signed_a, signed_b=signed_b)
    return worst.bit_length() + 1  # sign bit


@dataclass(frozen=True)
class BinSegSpec:
    """Resolved binary-segmentation parameters for one (bw_a, bw_b) pair.

    This is what ``bs.set`` loads into the micro-engine Control Unit: the
    element widths and signedness plus every derived constant the datapath
    stages need (Section III-B).
    """

    bw_a: int
    bw_b: int
    signed_a: bool = True
    signed_b: bool = True
    mul_width: int = DEFAULT_MUL_WIDTH

    def __post_init__(self) -> None:
        _check_bitwidth(self.bw_a, "bw_a")
        _check_bitwidth(self.bw_b, "bw_b")
        if self.mul_width < 8:
            raise BinSegError(f"mul_width too small: {self.mul_width}")

    @property
    def input_cluster_size(self) -> int:
        """Elements processed per multiplier pass (the MAC/cycle rate)."""
        return input_cluster_size(self.bw_a, self.bw_b, self.mul_width)

    @property
    def cw(self) -> int:
        return clustering_width(self.bw_a, self.bw_b, self.input_cluster_size)

    @property
    def slice_msb(self) -> int:
        return slice_bounds(self.input_cluster_size, self.cw)[0]

    @property
    def slice_lsb(self) -> int:
        return slice_bounds(self.input_cluster_size, self.cw)[1]

    @property
    def macs_per_cycle(self) -> int:
        """Peak MAC throughput; the paper's 3-7 MAC/cycle range at 64 bits."""
        return self.input_cluster_size

    def inner_product(self, a: Sequence[int], b: Sequence[int]) -> int:
        """Convenience wrapper over :func:`segmented_inner_product`."""
        return segmented_inner_product(
            a,
            b,
            self.bw_a,
            self.bw_b,
            signed_a=self.signed_a,
            signed_b=self.signed_b,
            mul_width=self.mul_width,
        )

    def describe(self) -> str:
        """One-line summary in the paper's aX-wY notation."""
        return (
            f"a{self.bw_a}-w{self.bw_b}: cw={self.cw}, "
            f"cluster={self.input_cluster_size} elements, "
            f"{self.macs_per_cycle} MAC/cycle, "
            f"slice=[{self.slice_msb}:{self.slice_lsb}]"
        )


def reference_inner_product(a: Sequence[int], b: Sequence[int]) -> int:
    """Ground-truth integer inner product (for verification only)."""
    return int(np.dot(np.asarray(a, dtype=np.int64),
                      np.asarray(b, dtype=np.int64)))
