"""Multi-core Mix-GEMM (paper Section III-B scalability).

"The performance benefits of Mix-GEMM also apply to processors hosting
multiple cores.  Indeed, our BLIS-based library can easily enable
multi-threading support [73] while retaining performance-per-core close
to the single-threaded implementation [67], and a u-engine can be
instantiated on every processor core."

This module implements that claim functionally: the many-threaded BLIS
strategy parallelizes the ``jc``/``jr`` loops -- each core owns a slice of
the N dimension, with its own u-engine, its own AccMem, and a barrier at
the end.  Results are bit-exact (each core runs the ordinary
:class:`~repro.core.gemm.MixGemm` on its slice) and the timing is the
slowest core plus a synchronization cost.

Since the serving PR the per-core slices also *run* on real threads
(``threaded=True``, the default for ``cores > 1``): each core's
executor is driven from a worker thread, which overlaps the numpy
portions of the slices and -- more importantly -- exercises the shared
:class:`~repro.core.packcache.PackingCache` under genuine contention,
which the concurrency stress tests rely on.  Per-core executors are
stateful (each owns a ``MicroEngine``), so one ``gemm()`` call owns
all of them for its duration: calls are serialized on
``_gemm_lock`` -- a discipline annotated for, and enforced by,
``repro check --concurrency``.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from .binseg import BinSegError
from .config import MixGemmConfig
from .gemm import GemmResult, KernelCosts, MixGemm
from .locks import make_lock
from .microengine import PmuCounters
from .packcache import PackingCache

#: Barrier cost per synchronization point (cycles): a sense-reversing
#: barrier over a snoopy bus at edge-SoC scale.  An SoC interconnect
#: parameter, not a u-kernel issue cost, so it stays outside the
#: calibrated cost model's digest.
DEFAULT_BARRIER_CYCLES = 200  # repro: noqa REP013


@dataclass
class ParallelGemmResult:
    """Combined outcome of a multi-core GEMM."""

    c: np.ndarray
    cycles: int                     # slowest core + barrier
    macs: int
    per_core: list[GemmResult] = field(default_factory=list)

    @property
    def cores(self) -> int:
        return len(self.per_core)

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.cycles if self.cycles else 0.0

    @property
    def parallel_efficiency(self) -> float:
        """Achieved speedup over one core, divided by the core count."""
        serial = sum(r.cycles for r in self.per_core)
        return serial / (self.cycles * self.cores) if self.cycles else 0.0

    def gops(self, freq_ghz: float = 1.2) -> float:
        return 2.0 * self.macs_per_cycle * freq_ghz


class ParallelMixGemm:
    """N-dimension-parallel Mix-GEMM over per-core u-engines."""

    def __init__(
        self,
        config: MixGemmConfig,
        cores: int = 2,
        *,
        emulate_datapath: bool = False,
        costs: KernelCosts | None = None,
        barrier_cycles: int = DEFAULT_BARRIER_CYCLES,
        backend: str | None = None,
        pack_cache: PackingCache | None = None,
        threaded: bool | None = None,
    ) -> None:
        if cores < 1:
            raise ValueError(f"need at least one core, got {cores}")
        self.config = config
        self.cores = cores
        self.barrier_cycles = barrier_cycles
        self.threaded = cores > 1 if threaded is None else threaded
        # One shared cache across the per-core executors: every core
        # consumes the same packed A, and the N-slices of B are distinct
        # matrices (distinct fingerprints), so sharing is always safe.
        self.pack_cache = pack_cache
        # Each executor owns a stateful MicroEngine, so a gemm() call
        # needs the whole bank exclusively; concurrent callers
        # serialize on this lock instead of corrupting engine state.
        self._gemm_lock = make_lock("ParallelMixGemm._gemm_lock")
        self._executors = [                 # repro: guarded-by(_gemm_lock)
            MixGemm(config, emulate_datapath=emulate_datapath, costs=costs,
                    backend=backend, pack_cache=pack_cache)
            for _ in range(cores)
        ]

    def _partition(self, n: int, cores: int) -> list[tuple[int, int]]:
        """Split N into per-core column slices, nr-aligned when possible."""
        nr = self.config.blocking.nr
        chunk = math.ceil(n / cores)
        chunk = max(nr, math.ceil(chunk / nr) * nr)
        slices = []
        start = 0
        while start < n:
            end = min(n, start + chunk)
            slices.append((start, end))
            start = end
        return slices

    @staticmethod
    def _run_slice(executor: MixGemm, a: np.ndarray,
                   b_slice: np.ndarray) -> GemmResult:
        """One core's share: an ordinary single-core GEMM on its slice.

        A staticmethod on purpose: worker threads receive their executor
        explicitly instead of reading ``self._executors``, so the only
        touch of the guarded bank happens under ``_gemm_lock`` in
        :meth:`gemm`.
        """
        return executor.gemm(a, b_slice)

    def gemm(self, a: np.ndarray, b: np.ndarray, *,
             cores: int | None = None) -> ParallelGemmResult:
        """Compute ``A @ B`` across the cores; bit-exact, max-core timing.

        With ``threaded`` (default for ``cores > 1``) the per-core
        slices run on real worker threads -- results stay bit-exact
        because the slices write disjoint columns and are collected in
        submission order, independent of thread scheduling.

        ``cores`` restricts this call to the first ``cores`` executors
        of the bank (``1 <= cores <= self.cores``) -- the per-call
        worker-count knob the autotuner turns while reusing one
        executor bank (and its shared packing cache) across the whole
        candidate sweep.
        """
        if cores is None:
            cores = self.cores
        elif not 1 <= cores <= self.cores:
            raise BinSegError(
                f"cores={cores} outside the constructed bank of "
                f"{self.cores} executors")
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise BinSegError("parallel gemm expects conformable 2-D "
                              "operands")
        m, k = a.shape
        n = b.shape[1]
        c = np.zeros((m, n), dtype=np.int64)
        slices = self._partition(n, cores)
        with self._gemm_lock:
            if self.threaded and len(slices) > 1:
                with ThreadPoolExecutor(
                        max_workers=len(slices),
                        thread_name_prefix="repro-core") as pool:
                    futures = [
                        pool.submit(self._run_slice, executor,
                                    a, b[:, lo:hi])
                        for executor, (lo, hi)
                        in zip(self._executors, slices)
                    ]
                    per_core = [f.result() for f in futures]
            else:
                per_core = [
                    executor.gemm(a, b[:, lo:hi])
                    for executor, (lo, hi)
                    in zip(self._executors, slices)
                ]
        for result, (lo, hi) in zip(per_core, slices):
            c[:, lo:hi] = result.c
        slowest = max((r.cycles for r in per_core), default=0)
        return ParallelGemmResult(
            c=c,
            cycles=slowest + self.barrier_cycles,
            macs=m * n * k,
            per_core=per_core,
        )


def combined_pmu(result: ParallelGemmResult) -> PmuCounters:
    """Aggregate PMU counters across cores (diagnostics)."""
    total = PmuCounters()
    for r in result.per_core:
        p = r.pmu
        total.engine_busy_cycles += p.engine_busy_cycles
        total.buffer_full_stall_cycles += p.buffer_full_stall_cycles
        total.get_stall_cycles += p.get_stall_cycles
        total.macs += p.macs
        total.groups += p.groups
        total.ip_instructions += p.ip_instructions
        total.get_instructions += p.get_instructions
        total.set_instructions += p.set_instructions
    total.cycles_total = result.cycles
    return total
