"""Execution-backend dispatch for the Mix-GEMM library.

Two interchangeable backends compute Algorithm 1:

* ``event`` -- the reference path: every u-vector pair goes through the
  event-timed :class:`~repro.core.microengine.MicroEngine`, one ``bs.ip``
  at a time.  Bit-exact, cycle-exact, and able to host fault hooks, pack
  guards and per-access memory tracing -- but pure Python and slow.
* ``fast`` -- the vectorized path (:mod:`repro.core.fastpath`): whole
  u-panels as numpy array operations plus an analytic cycle model that
  replays the engine's own micro-kernel timing, so cycles, PMU counters
  and instruction counts match the event backend exactly on guard-free
  runs.

``resolve_backend`` is the single decision point.  Fidelity demands
always win: a fault hook, pack guard or memory system needs to observe
individual packs/accumulations/accesses, which only the event backend
models, so their presence forces ``event`` even when ``fast`` was
requested explicitly.  The same applies to register blockings where
``mc``/``nc`` are not multiples of ``mr``/``nr`` -- there the event
path's edge tiles overlap neighbouring cache blocks, an accounting the
fast path deliberately refuses to reproduce.

Under ``auto`` (the default), datapath emulation additionally routes to
``event``: callers asking for ``emulate_datapath=True`` want the binary
segmentation pipeline exercised, not just its (identical) results.  An
explicit ``fast`` request overrides that soft preference only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .config import EXECUTION_BACKENDS, MixGemmConfig
from .errors import ReproError

#: Canonical backend names (also see ``EXECUTION_BACKENDS`` in config).
EVENT = "event"
FAST = "fast"
AUTO = "auto"


class BackendError(ReproError, ValueError):
    """Raised for unknown backend names."""


@dataclass(frozen=True)
class BackendDecision:
    """Outcome of dispatch: the backend to run and why it was chosen."""

    backend: str
    reason: str

    @property
    def is_fast(self) -> bool:
        return self.backend == FAST


def resolve_backend(
    requested: str,
    config: MixGemmConfig,
    *,
    emulate_datapath: bool = False,
    memory: Any = None,
    fault_hook: Any = None,
    pack_guard: Any = None,
) -> BackendDecision:
    """Pick the execution backend for one GEMM call.

    ``requested`` is ``event``, ``fast`` or ``auto`` (normally taken from
    ``MixGemmConfig.backend`` or the ``MixGemm(backend=...)`` override).
    Hooks that need event fidelity force the event backend regardless of
    the request; see the module docstring for the full rule set.
    """
    if requested not in EXECUTION_BACKENDS:
        raise BackendError(
            f"unknown backend {requested!r}; expected one of "
            f"{EXECUTION_BACKENDS}"
        )
    if memory is not None:
        return BackendDecision(
            EVENT, "memory system traces per-access latencies"
        )
    if fault_hook is not None:
        return BackendDecision(
            EVENT, "fault hook observes individual packs/accumulations"
        )
    if pack_guard is not None:
        return BackendDecision(
            EVENT, "pack guard checksums the packed operands"
        )
    blk = config.blocking
    if blk.mc % blk.mr or blk.nc % blk.nr:
        return BackendDecision(
            EVENT,
            f"blocking mc={blk.mc}/nc={blk.nc} not a multiple of "
            f"mr={blk.mr}/nr={blk.nr}; edge tiles overlap cache blocks",
        )
    if requested == EVENT:
        return BackendDecision(EVENT, "event backend explicitly requested")
    if requested == FAST:
        return BackendDecision(FAST, "fast backend explicitly requested")
    if emulate_datapath:
        return BackendDecision(
            EVENT, "datapath emulation exercises the binseg pipeline"
        )
    return BackendDecision(FAST, "guard-free run; fast path is exact")
