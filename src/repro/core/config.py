"""Mix-GEMM configuration: data sizes, u-vector layout and blocking.

Gathers every tunable the paper exposes (Sections III-A, III-C, Table I):

* the activation/weight bitwidths (``a8-w8`` ... ``a2-w2`` notation),
* the u-vector layout -- how many narrow elements one 64-bit word packs,
* the ``kua`` / ``kub`` balancing factors for mixed-precision streams,
* the BLIS blocking parameters ``mc, nc, kc, mr, nr``,
* micro-engine sizing: AccMem slots and Source Buffer depth.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field, replace

from .binseg import (
    SUPPORTED_BITWIDTHS,
    BinSegError,
    BinSegSpec,
    DEFAULT_MUL_WIDTH,
)

#: 64-bit architectural word the library compresses u-vectors into.
WORD_BITS = 64

#: Upper bound for kua/kub found by the paper's DSE (Section III-C): with a
#: 32-register RF and mr = nr = 4, holding kua*mr + kub*nr u-vectors caps
#: both factors at 4.
MAX_KU = 4

#: AccMem entry width in bits.  The paper's implementation registers
#: 64-bit accumulator slots (Section III-B); narrower deployments trade
#: area for the overflow headroom the static contract checker verifies.
DEFAULT_ACCMEM_BITS = 64

#: Width of the scalar-core integer container (numpy ``int64``) that
#: per-block partial sums are folded into *outside* AccMem.  At or above
#: this width, two's-complement wrapping is the identity on the int64
#: representation, so runtime wrap guards compare against it instead of
#: hard-coding the literal (enforced by lint rule REP010).
ACCMEM_CONTAINER_BITS = 64

#: Execution backends a :class:`MixGemmConfig` may request (see
#: :mod:`repro.core.backend` for the dispatch rules).
EXECUTION_BACKENDS = ("event", "fast", "auto")


def elements_per_uvector(bw: int, word_bits: int = WORD_BITS) -> int:
    """Narrow elements one u-vector packs: 8 at 8-bit up to 32 at 2-bit."""
    if bw not in SUPPORTED_BITWIDTHS:
        raise BinSegError(f"unsupported element width: {bw}")
    return word_bits // bw


def select_ku(
    bw_a: int,
    bw_b: int,
    max_ku: int = MAX_KU,
    word_bits: int = WORD_BITS,
) -> tuple[int, int]:
    """Choose ``(kua, kub)`` balancing the two u-vector streams (Fig. 4).

    Each innermost u-kernel iteration issues ``kua`` A u-vectors and ``kub``
    B u-vectors; the logical elements consumed from both streams must match,
    and any slot surplus on the wider stream is zero padding.  We pick the
    pair that minimises the padded-slot fraction, breaking ties toward
    larger groups (better RF utilisation, up to the RF-imposed ``max_ku``).

    Reproduces the paper's choices: a8-w8 -> (4, 4); a8-w6 -> (4, 3);
    a6-w4 -> (3, 2).
    """
    ea = elements_per_uvector(bw_a, word_bits)
    eb = elements_per_uvector(bw_b, word_bits)
    best_key: tuple[float, int, int] | None = None
    chosen = (1, 1)
    for kua, kub in itertools.product(range(1, max_ku + 1), repeat=2):
        slots = kua * ea + kub * eb
        group = min(kua * ea, kub * eb)
        pad_fraction = 1.0 - (2 * group) / slots
        # Least padding first, then largest group, then least RF pressure.
        key = (pad_fraction, -group, kua + kub)
        if best_key is None or key < best_key:
            best_key = key
            chosen = (kua, kub)
    return chosen


@dataclass(frozen=True)
class UVectorLayout:
    """How one (bw_a, bw_b) pair maps onto 64-bit u-vector streams."""

    bw_a: int
    bw_b: int
    kua: int
    kub: int
    word_bits: int = WORD_BITS

    @property
    def elems_a(self) -> int:
        return elements_per_uvector(self.bw_a, self.word_bits)

    @property
    def elems_b(self) -> int:
        return elements_per_uvector(self.bw_b, self.word_bits)

    @property
    def slots_a(self) -> int:
        """A-stream element slots per innermost iteration."""
        return self.kua * self.elems_a

    @property
    def slots_b(self) -> int:
        return self.kub * self.elems_b

    @property
    def group_elements(self) -> int:
        """Logical k elements consumed per innermost u-kernel iteration."""
        return min(self.slots_a, self.slots_b)

    @property
    def padded_slots(self) -> int:
        """Zero-padded slots per group on the surplus stream."""
        return max(self.slots_a, self.slots_b) - self.group_elements

    @property
    def padding_fraction(self) -> float:
        """Padded fraction of all issued slots (paper: 2.4% on average)."""
        total = self.slots_a + self.slots_b
        return self.padded_slots / total

    def groups_for_k(self, k: int) -> int:
        """Innermost iterations needed to cover a k-long inner product."""
        return math.ceil(k / self.group_elements)

    def consistency_problems(self) -> list[str]:
        """Static layout-contract violations, empty when well-formed.

        Everything the u-kernel assumes about this layout without checking
        at runtime: supported element widths, kua/kub inside the
        RF-imposed band, and both streams packing at least one element
        per word so a group makes progress.
        """
        problems: list[str] = []
        for name, bw in (("bw_a", self.bw_a), ("bw_b", self.bw_b)):
            if bw not in SUPPORTED_BITWIDTHS:
                problems.append(
                    f"{name}={bw} outside the supported "
                    f"{SUPPORTED_BITWIDTHS[0]}-{SUPPORTED_BITWIDTHS[-1]} "
                    f"bit band"
                )
        for name, ku in (("kua", self.kua), ("kub", self.kub)):
            if not 1 <= ku <= MAX_KU:
                problems.append(
                    f"{name}={ku} outside the RF-imposed range 1-{MAX_KU}"
                )
        if not problems and self.word_bits < max(self.bw_a, self.bw_b):
            problems.append(
                f"word_bits={self.word_bits} cannot hold one "
                f"{max(self.bw_a, self.bw_b)}-bit element"
            )
        return problems


# ---------------------------------------------------------------------------
# Blocking parameters (BLIS heritage, Table I)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BlockingParams:
    """BLIS cache/register blocking (Table I: mc = nc = kc = 256).

    ``mc``/``nc`` count rows/columns; ``kc`` counts **64-bit u-vectors**
    along k (the unit the BLIS machinery sees, since the library abstracts
    each compressed chunk as one 64-bit element).  The *logical* k span of
    one k-block is therefore ``kc * elements_per_uvector(bw_a)`` -- it
    grows as the data narrows, which is exactly the compression benefit:
    the same L1 budget holds 8x more 8-bit and 32x more 2-bit elements
    than the DGEMM baseline.  ``mr``/``nr`` size the register u-panel.
    """

    mc: int = 256
    nc: int = 256
    kc: int = 256
    mr: int = 4
    nr: int = 4

    def __post_init__(self) -> None:
        for name in ("mc", "nc", "kc", "mr", "nr"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        if self.mr > self.mc:
            raise ValueError("mr cannot exceed mc")
        if self.nr > self.nc:
            raise ValueError("nr cannot exceed nc")

    @property
    def accmem_slots(self) -> int:
        """AccMem entries needed for one C u-panel (Table I: 16)."""
        return self.mr * self.nr


def blocking_problems(mc: int, nc: int, kc: int, mr: int,
                      nr: int) -> list[str]:
    """Why ``BlockingParams(mc, nc, kc, mr, nr)`` would refuse to build.

    The same constraints :meth:`BlockingParams.__post_init__` raises on,
    exposed as data so a candidate-space generator (the autotuner in
    :mod:`repro.tuning`) can filter and *report* invalid points instead
    of driving the search by exception handling.  Empty list = buildable.
    """
    problems: list[str] = []
    for name, value in (("mc", mc), ("nc", nc), ("kc", kc),
                        ("mr", mr), ("nr", nr)):
        if value < 1:
            problems.append(f"{name}={value} must be positive")
    if not problems:
        if mr > mc:
            problems.append(f"mr={mr} exceeds mc={mc}: one register "
                            f"u-panel cannot outgrow its cache block")
        if nr > nc:
            problems.append(f"nr={nr} exceeds nc={nc}: one register "
                            f"u-panel cannot outgrow its cache block")
    return problems


#: Default per-axis grids the autotuner searches.  ``mc``/``nc``/``kc``
#: span the paper's Table-I point (256) down to the simulator default
#: (16/16/64); ``mr``/``nr`` stay at the RF-imposed 4x4 register tile
#: (Section III-C: a 32-register RF caps the u-panel at 4x4).
TUNE_MC_VALUES = (16, 64, 256)
TUNE_NC_VALUES = (16, 64, 256)
TUNE_KC_VALUES = (16, 64, 256, 1024)
TUNE_MR_VALUES = (4,)
TUNE_NR_VALUES = (4,)


def blocking_candidates(
    *,
    mc_values: tuple[int, ...] = TUNE_MC_VALUES,
    nc_values: tuple[int, ...] = TUNE_NC_VALUES,
    kc_values: tuple[int, ...] = TUNE_KC_VALUES,
    mr_values: tuple[int, ...] = TUNE_MR_VALUES,
    nr_values: tuple[int, ...] = TUNE_NR_VALUES,
) -> list[BlockingParams]:
    """Every buildable :class:`BlockingParams` on the given grids.

    The cross product is filtered through :func:`blocking_problems`, so
    points like ``mr > mc`` are dropped rather than raised; the result
    is deterministic (grid order) and duplicate-free.
    """
    candidates: list[BlockingParams] = []
    seen: set[tuple[int, int, int, int, int]] = set()
    for mc, nc, kc, mr, nr in itertools.product(
            mc_values, nc_values, kc_values, mr_values, nr_values):
        point = (mc, nc, kc, mr, nr)
        if point in seen or blocking_problems(*point):
            continue
        seen.add(point)
        candidates.append(BlockingParams(mc=mc, nc=nc, kc=kc,
                                         mr=mr, nr=nr))
    return candidates


@dataclass(frozen=True)
class MixGemmConfig:
    """Complete configuration of the Mix-GEMM HW-SW stack.

    The notation ``aX-wY`` names the activation (A matrix) and weight
    (B matrix) bitwidths.  Everything else either derives from them via
    binary segmentation or is a DSE-chosen constant (Table I).
    """

    bw_a: int = 8
    bw_b: int = 8
    signed_a: bool = True
    signed_b: bool = True
    blocking: BlockingParams = field(default_factory=BlockingParams)
    source_buffer_depth: int = 16
    mul_width: int = DEFAULT_MUL_WIDTH
    word_bits: int = WORD_BITS
    accmem_bits: int = DEFAULT_ACCMEM_BITS
    kua: int | None = None
    kub: int | None = None
    backend: str = "auto"

    def __post_init__(self) -> None:
        if self.source_buffer_depth < 1:
            raise ValueError("source_buffer_depth must be positive")
        if self.backend not in EXECUTION_BACKENDS:
            raise ValueError(
                f"backend={self.backend!r} not one of {EXECUTION_BACKENDS}"
            )
        if not 8 <= self.accmem_bits <= 128:
            raise ValueError(
                f"accmem_bits={self.accmem_bits} outside the buildable "
                f"8-128 bit range"
            )
        if self.kua is None or self.kub is None:
            kua, kub = select_ku(self.bw_a, self.bw_b, word_bits=self.word_bits)
            object.__setattr__(self, "kua", self.kua or kua)
            object.__setattr__(self, "kub", self.kub or kub)

    @property
    def name(self) -> str:
        """Paper notation, e.g. ``a8-w8`` or ``a6-w4``."""
        return f"a{self.bw_a}-w{self.bw_b}"

    @property
    def binseg(self) -> BinSegSpec:
        return BinSegSpec(
            bw_a=self.bw_a,
            bw_b=self.bw_b,
            signed_a=self.signed_a,
            signed_b=self.signed_b,
            mul_width=self.mul_width,
        )

    @property
    def layout(self) -> UVectorLayout:
        return UVectorLayout(
            bw_a=self.bw_a,
            bw_b=self.bw_b,
            kua=self.kua,
            kub=self.kub,
            word_bits=self.word_bits,
        )

    @property
    def macs_per_cycle(self) -> int:
        """Peak micro-engine throughput for this configuration."""
        return self.binseg.macs_per_cycle

    @property
    def accmem_range(self) -> tuple[int, int]:
        """Representable ``[min, max]`` of one two's-complement AccMem slot."""
        half = 1 << (self.accmem_bits - 1)
        return -half, half - 1

    @property
    def min_buffer_depth(self) -> int:
        """Smallest Source Buffer depth that can stage one full group.

        A shallower buffer deadlocks the u-kernel: the DSU cannot start a
        group until all ``kua`` (resp. ``kub``) u-vectors are buffered,
        but the CPU stalls pushing them -- the condition
        :class:`~repro.core.microengine.MicroEngine` raises on at runtime
        and the packing contract rejects statically.
        """
        assert self.kua is not None and self.kub is not None
        return max(self.kua, self.kub)

    @property
    def compression_vs_fp64(self) -> tuple[float, float]:
        """Per-matrix problem-size reduction versus the 64-bit DGEMM
        baseline (paper: "from 8x to 32x")."""
        return self.word_bits / self.bw_a, self.word_bits / self.bw_b

    def with_sizes(self, bw_a: int, bw_b: int) -> "MixGemmConfig":
        """Derive a config for different data sizes, re-solving kua/kub."""
        return replace(self, bw_a=bw_a, bw_b=bw_b, kua=None, kub=None)

    def describe(self) -> str:
        lay = self.layout
        return (
            f"{self.name}: {self.macs_per_cycle} MAC/cycle, "
            f"kua={self.kua}, kub={self.kub}, "
            f"group={lay.group_elements} elements, "
            f"padding={lay.padding_fraction:.1%}, "
            f"blocking mc={self.blocking.mc} nc={self.blocking.nc} "
            f"kc={self.blocking.kc} mr={self.blocking.mr} nr={self.blocking.nr}"
        )


def all_size_combinations() -> list[tuple[int, int]]:
    """Every (bw_a, bw_b) pair Mix-GEMM supports: 7 x 7 = 49 combinations."""
    return [
        (a, w)
        for a in SUPPORTED_BITWIDTHS[::-1]
        for w in SUPPORTED_BITWIDTHS[::-1]
    ]


#: The 12 configurations plotted in the paper's Figure 6.
FIGURE6_CONFIGS = (
    (8, 8), (8, 6), (8, 4), (8, 2),
    (6, 6), (6, 4), (6, 2),
    (4, 4), (4, 2),
    (3, 3), (3, 2),
    (2, 2),
)
