"""Unified error hierarchy for the whole reproduction.

Every subsystem raises its own error type (``BinSegError`` for datapath
configuration, ``MicroEngineError`` for u-engine protocol violations,
``GraphError`` for deployment-graph problems, ``GuardError`` for runtime
integrity-guard trips), but all of them derive from :class:`ReproError`
so callers that do not care *which* layer failed can catch one type::

    try:
        engine.run(x)
    except ReproError as exc:
        log_and_reject(exc)

The concrete errors keep their historical stdlib bases (``ValueError`` /
``RuntimeError``) via multiple inheritance, so pre-existing ``except``
clauses keep working.

This module must stay dependency-free: it is imported by ``core``,
``runtime`` and ``robustness`` alike.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every error the reproduction raises deliberately."""


__all__ = ["ReproError"]
