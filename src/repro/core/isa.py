"""RISC-V ISA extension for Mix-GEMM: ``bs.set``, ``bs.ip``, ``bs.get``.

The paper extends RV64G with three single-cycle R-type instructions
(Section III-A/III-B):

* ``bs.set rs1``        -- load the micro-engine Control Unit configuration.
* ``bs.ip rs1, rs2``    -- push one u-vector pair into the Source Buffers.
* ``bs.get rd, rs1``    -- read one AccMem slot (a C u-panel element).

This module provides the instruction-level view: a faithful 32-bit R-type
encoding under the *custom-0* opcode, an encoder/decoder pair, and the
dataclasses the simulator consumes as its instruction stream.  The GEMM
library emits these as intrinsics; the CPU timing model charges each a
single issue cycle, exactly as the paper's in-order core does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Union

from .errors import ReproError

#: RISC-V custom-0 major opcode (inst[6:0]) reserved for vendor extensions.
CUSTOM0_OPCODE = 0b0001011

# ---------------------------------------------------------------------------
# ISA cost table
# ---------------------------------------------------------------------------
#
# This module is one of the two homes (with core/config.py and the
# analysis/cost/ model that consumes them) where cycle costs may be
# spelled as literals -- lint rule REP013 flags them anywhere else.

#: Issue cost, in CPU cycles, of ``bs.set``: single-issue R-type.
BS_SET_COST = 1

#: Issue cost, in CPU cycles, of ``bs.ip`` (stalls on full Source
#: Buffers are modelled separately by the micro-engine, not here).
BS_IP_COST = 1

#: Issue cost, in CPU cycles, of ``bs.get`` (stalls waiting on the
#: engine to drain are modelled separately).
BS_GET_COST = 1

#: mnemonic -> issue cycles; the content the cost-model calibration
#: cache is keyed by (together with :class:`KernelCosts`).
ISA_COST_TABLE = {
    "bs.set": BS_SET_COST,
    "bs.ip": BS_IP_COST,
    "bs.get": BS_GET_COST,
}


@dataclass(frozen=True)
class KernelCosts:
    """Scalar-core instruction costs surrounding the bs.* intrinsics.

    The paper's Sargantana host is a 7-stage, in-order, single-issue core:
    every instruction occupies the issue slot for one cycle, and the
    u-engine overlaps with independent loads/branches (Section III-B).  The
    u-kernel's non-bs.ip work therefore costs issue cycles:

    * one cycle per u-vector load that misses the register file (the RF
      holds the current kua*mr + kub*nr u-vectors, so each is loaded from
      L1 once per k-group);
    * ``inner_loop_overhead`` covers address generation/branch per innermost
      iteration that the compiler cannot fold away;
    * ``kgroup_overhead`` covers the per-k-group pointer bumps
      (LoadNextAddress in Algorithm 1);
    * ``c_update_cost`` covers the load + add + store per output element
      when folding the collected u-panel into C.

    Defaults were fixed once against the paper's steady-state a8-w8 speedup
    (Section IV-B) and left untouched for every other configuration; the
    cross-configuration scaling then *emerges* from the DSU schedule.

    Lives next to the bs.* encodings because it *is* the rest of the ISA
    cost table: together with :data:`ISA_COST_TABLE` these fields are the
    only primitive cycle constants in the repository (REP013), and the
    closed-form cost model (:mod:`repro.analysis.cost`) derives every
    per-phase term from them.
    """

    load_cost: int = 1
    inner_loop_overhead: int = 4
    kgroup_overhead: int = 4
    c_update_cost: int = 3
    get_cost: int = 1


class BsFunct3(enum.IntEnum):
    """funct3 selector distinguishing the three Mix-GEMM instructions."""

    SET = 0b000
    IP = 0b001
    GET = 0b010


class IsaError(ReproError, ValueError):
    """Raised on malformed encodings or out-of-range register indices."""


def _check_reg(idx: int, name: str) -> None:
    if not 0 <= idx <= 31:
        raise IsaError(f"{name}={idx} is not a valid RV register index")


def encode_rtype(funct3: int, rd: int, rs1: int, rs2: int,
                 funct7: int = 0) -> int:
    """Assemble a 32-bit R-type instruction word under custom-0."""
    _check_reg(rd, "rd")
    _check_reg(rs1, "rs1")
    _check_reg(rs2, "rs2")
    if not 0 <= funct7 < 128:
        raise IsaError(f"funct7 out of range: {funct7}")
    return (
        (funct7 << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (rd << 7)
        | CUSTOM0_OPCODE
    )


def decode_rtype(word: int) -> tuple[BsFunct3, int, int, int, int]:
    """Disassemble a custom-0 R-type word -> (funct3, rd, rs1, rs2, funct7)."""
    if word & 0x7F != CUSTOM0_OPCODE:
        raise IsaError(f"not a custom-0 instruction: {word:#010x}")
    funct3 = (word >> 12) & 0x7
    try:
        f3 = BsFunct3(funct3)
    except ValueError as exc:
        raise IsaError(f"unknown funct3 {funct3:#b} in {word:#010x}") from exc
    rd = (word >> 7) & 0x1F
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F
    return f3, rd, rs1, rs2, funct7


_MNEMONICS = {
    BsFunct3.SET: "bs.set",
    BsFunct3.IP: "bs.ip",
    BsFunct3.GET: "bs.get",
}


def assemble(mnemonic: str, rd: int = 0, rs1: int = 0,
             rs2: int = 0) -> int:
    """Assemble a bs.* instruction from its mnemonic."""
    lookup = {v: k for k, v in _MNEMONICS.items()}
    try:
        funct3 = lookup[mnemonic]
    except KeyError:
        raise IsaError(f"unknown mnemonic: {mnemonic}") from None
    return encode_rtype(funct3, rd, rs1, rs2)


def disassemble(word: int) -> str:
    """Human-readable form of a bs.* instruction word.

    Register operands follow the RISC-V assembly convention:
    ``bs.ip x0, x10, x11``.
    """
    funct3, rd, rs1, rs2, _ = decode_rtype(word)
    return f"{_MNEMONICS[funct3]} x{rd}, x{rs1}, x{rs2}"


# ---------------------------------------------------------------------------
# Configuration word layout for bs.set
# ---------------------------------------------------------------------------

#: Field layout (lsb, width) of the 64-bit rs1 payload bs.set transfers into
#: the Control Unit.  Mirrors the paper's list of Control Unit parameters:
#: data sizes, signedness, cluster size, clustering width, inner-product
#: length and the product slice to extract.
SET_FIELDS = {
    "bw_a": (0, 4),
    "bw_b": (4, 4),
    "signed_a": (8, 1),
    "signed_b": (9, 1),
    "cluster_size": (10, 4),
    "cw": (14, 6),
    "kua": (20, 3),
    "kub": (23, 3),
    "ip_length": (26, 12),
    "slice_lsb": (38, 7),
}


def pack_set_payload(**fields: int) -> int:
    """Pack named Control-Unit fields into the bs.set rs1 payload."""
    word = 0
    for name, value in fields.items():
        if name not in SET_FIELDS:
            raise IsaError(f"unknown bs.set field: {name}")
        lsb, width = SET_FIELDS[name]
        value = int(value)
        if not 0 <= value < (1 << width):
            raise IsaError(
                f"bs.set field {name}={value} does not fit {width} bits"
            )
        word |= value << lsb
    return word


def unpack_set_payload(word: int) -> dict[str, int]:
    """Inverse of :func:`pack_set_payload`."""
    return {
        name: (word >> lsb) & ((1 << width) - 1)
        for name, (lsb, width) in SET_FIELDS.items()
    }


# ---------------------------------------------------------------------------
# Instruction-stream dataclasses consumed by the simulator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BsSet:
    """``bs.set``: (re)configure the Control Unit; single cycle."""

    payload: int

    @property
    def mnemonic(self) -> str:
        return "bs.set"


@dataclass(frozen=True)
class BsIp:
    """``bs.ip``: push a u-vector pair toward the Source Buffers.

    ``a_word``/``b_word`` carry the packed 64-bit u-vectors; ``push_a`` /
    ``push_b`` model the Control Unit suppressing a push once the current
    group's ``kua`` / ``kub`` u-vectors of that stream have been delivered
    (Algorithm 1 line 7 issues a zero operand past ``kub``; the mirror case
    arises when the B stream needs more words than the A stream).
    """

    a_word: int
    b_word: int
    push_a: bool = True
    push_b: bool = True

    @property
    def mnemonic(self) -> str:
        return "bs.ip"


@dataclass(frozen=True)
class BsGet:
    """``bs.get``: read one AccMem slot into ``rd``; single cycle."""

    slot: int

    @property
    def mnemonic(self) -> str:
        return "bs.get"


BsInstruction = Union[BsSet, BsIp, BsGet]


@dataclass
class InstructionStream:
    """Ordered list of micro-engine instructions plus bookkeeping counters.

    The GEMM library records its issue trace here; the SoC simulator then
    replays it against the cycle model.  Keeping the trace explicit lets
    tests assert instruction counts the paper reasons about (e.g. the number
    of bs.ip per u-kernel and the mr*nr bs.get collection loop).
    """

    instructions: list[BsInstruction] = field(default_factory=list)

    def append(self, instr: BsInstruction) -> None:
        self.instructions.append(instr)

    def extend(self, instrs: Iterable[BsInstruction]) -> None:
        self.instructions.extend(instrs)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[BsInstruction]:
        return iter(self.instructions)

    def count(self, mnemonic: str) -> int:
        return sum(1 for i in self.instructions if i.mnemonic == mnemonic)
