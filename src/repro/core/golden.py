"""Golden test vectors for the u-engine datapath.

RTL verification of a real u-engine needs stimulus/expected pairs; this
module generates them from the bit-exact Python model: for each
configuration, random sub-u-vector pairs together with their packed
input-clusters, the 128-bit multiplier product, the slice parameters and
the expected inner product.  The vectors serialize to JSON so a SystemVerilog
testbench (or any other implementation) can consume them directly --
the reproducibility artifact a hardware group would want from this repo.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

import numpy as np

from .binseg import (
    BinSegSpec,
    pack_cluster,
    slice_bounds,
)
from .config import all_size_combinations


@dataclass(frozen=True)
class GoldenVector:
    """One datapath stimulus/response pair."""

    bw_a: int
    bw_b: int
    signed_a: bool
    signed_b: bool
    cluster_size: int
    cw: int
    slice_msb: int
    slice_lsb: int
    a_elements: list
    b_elements: list
    a_cluster: int          # packed operand (two's complement, mul_width)
    b_cluster: int
    product: int            # full multiplier output (2 * mul_width bits)
    expected: int           # the inner product the DFU must extract


def _to_twos_complement(value: int, bits: int) -> int:
    return value & ((1 << bits) - 1)


def generate_vector(spec: BinSegSpec, rng: np.random.Generator
                    ) -> GoldenVector:
    """One random vector for a configuration (full cluster width)."""
    n = spec.input_cluster_size
    lo_a = -(1 << (spec.bw_a - 1)) if spec.signed_a else 0
    hi_a = (1 << (spec.bw_a - 1)) if spec.signed_a else (1 << spec.bw_a)
    lo_b = -(1 << (spec.bw_b - 1)) if spec.signed_b else 0
    hi_b = (1 << (spec.bw_b - 1)) if spec.signed_b else (1 << spec.bw_b)
    a = [int(v) for v in rng.integers(lo_a, hi_a, size=n)]
    b = [int(v) for v in rng.integers(lo_b, hi_b, size=n)]
    a_cluster = pack_cluster(a, spec.cw, reverse=False)
    b_cluster = pack_cluster(b, spec.cw, reverse=True)
    product = a_cluster * b_cluster
    msb, lsb = slice_bounds(n, spec.cw)
    return GoldenVector(
        bw_a=spec.bw_a,
        bw_b=spec.bw_b,
        signed_a=spec.signed_a,
        signed_b=spec.signed_b,
        cluster_size=n,
        cw=spec.cw,
        slice_msb=msb,
        slice_lsb=lsb,
        a_elements=a,
        b_elements=b,
        a_cluster=_to_twos_complement(a_cluster, spec.mul_width),
        b_cluster=_to_twos_complement(b_cluster, spec.mul_width),
        product=_to_twos_complement(product, 2 * spec.mul_width),
        expected=int(np.dot(a, b)),
    )


def generate_suite(
    vectors_per_config: int = 16,
    *,
    seed: int = 0,
    signed: bool = True,
) -> list[GoldenVector]:
    """Golden vectors across every supported (bw_a, bw_b) combination."""
    rng = np.random.default_rng(seed)
    suite = []
    for bw_a, bw_b in all_size_combinations():
        spec = BinSegSpec(bw_a=bw_a, bw_b=bw_b,
                          signed_a=signed, signed_b=signed)
        for _ in range(vectors_per_config):
            suite.append(generate_vector(spec, rng))
    return suite


def verify_vector(vector: GoldenVector) -> bool:
    """Check one vector against the DFU extraction rule.

    Re-derives the inner product from the *two's-complement product
    bits* exactly as hardware would: slice [msb:lsb], interpret signed,
    add the borrow bit below the slice.
    """
    product_bits = vector.product
    cw = vector.cw
    raw = (product_bits >> vector.slice_lsb) & ((1 << cw) - 1)
    if raw >= 1 << (cw - 1):
        raw -= 1 << cw
    if vector.slice_lsb > 0:
        raw += (product_bits >> (vector.slice_lsb - 1)) & 1
    return raw == vector.expected


def dump_suite(path: str, vectors: list[GoldenVector]) -> None:
    """Serialize a suite to JSON (hex strings for the wide fields)."""
    payload = []
    for v in vectors:
        entry = asdict(v)
        entry["a_cluster"] = f"{v.a_cluster:016x}"
        entry["b_cluster"] = f"{v.b_cluster:016x}"
        entry["product"] = f"{v.product:032x}"
        payload.append(entry)
    with open(path, "w") as f:
        json.dump({"format": "mix-gemm-golden-v1",
                   "vectors": payload}, f, indent=1)


def load_suite(path: str) -> list[GoldenVector]:
    """Inverse of :func:`dump_suite`."""
    with open(path) as f:
        payload = json.load(f)
    if payload.get("format") != "mix-gemm-golden-v1":
        raise ValueError("not a golden-vector file")
    vectors = []
    for entry in payload["vectors"]:
        entry["a_cluster"] = int(entry["a_cluster"], 16)
        entry["b_cluster"] = int(entry["b_cluster"], 16)
        entry["product"] = int(entry["product"], 16)
        vectors.append(GoldenVector(**entry))
    return vectors
