"""Vectorized fast-path backend: exact values, exact analytic timing.

The event backend executes Algorithm 1 word by word -- every u-vector
pair is a :meth:`~repro.core.microengine.MicroEngine.push_pair` call --
which makes a 256x256x256 GEMM millions of Python-level events.  This
module computes the identical :class:`~repro.core.gemm.GemmResult`
without ever touching the engine on the hot path, exploiting two
properties of the reference implementation:

**Values.**  Within one kc-block, the engine folds per-group partial
products into a finite AccMem slot with ``wrap_signed`` after every
group; because reduction mod ``2**bits`` commutes with addition, the
collected slot value equals ``wrap_signed(block_dot_product,
accmem_bits)`` -- one wrap of the exact block inner product.  numpy's
int64 matmul reduces mod ``2**64``, and mod ``2**bits`` factors through
mod ``2**64`` for ``bits <= 64``, so a blocked int64 matmul plus one
vectorized wrap per kc-block reproduces the event backend bit for bit.
When ``kc * max|A| * max|B| < 2**53`` every partial sum fits a float64
mantissa exactly and the block can ride the BLAS dgemm instead.

**Timing.**  The micro-kernel's cycle count is data independent (stall
logic only looks at counts and arrival times, never word values) and
translation invariant (each micro-kernel starts with the CPU at or past
the engine, empty queues, and all buffer releases in the past, because
the collection loop drains the engine).  One micro-kernel execution is
therefore a pure function of ``(config, costs, n_groups)`` -- so the
per-tile oracle can be seeded once per distinct signature and the
whole-GEMM totals assembled arithmetically.  Two seeding strategies
exist: the *reference* runs the real engine once on zero panels
(:func:`_tile_timing_engine`); when the calibrated closed-form model
(:mod:`repro.analysis.cost`) has verified itself exact for the
signature, :func:`_tile_timing` substitutes its prediction and the
engine never runs at all (set :data:`COST_ORACLE` to ``False`` to pin
the reference).  The C-update cycles are added analytically: with
``mc % mr == 0`` and ``nc % nr == 0`` the in-range cells of each
kc-block sum to exactly ``m * n``.

The oracle *is* the production micro-kernel, so cycles, PMU counters
and instruction counts match the event backend exactly -- the
differential suite in ``tests/core/test_fastpath.py`` asserts equality,
not approximation.  Configurations the model cannot reproduce (register
blockings that overlap cache blocks, >64-bit AccMems near int64
overflow) refuse via :class:`FastPathFallback` and run on the event
backend instead; :mod:`repro.core.backend` makes that routing decision.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from .binseg import BinSegError, ceil_div, value_range
from .config import ACCMEM_CONTAINER_BITS, MixGemmConfig
from .isa import BS_SET_COST
from .microengine import PmuCounters
from .packing import (
    _check_matrix,
    aligned_kc,
    create_micro_panel,
    pack_matrix_a,
    pack_matrix_b,
)

if TYPE_CHECKING:  # imported lazily at runtime to keep gemm -> fastpath
    from .gemm import GemmResult, KernelCosts  # one-directional at load

#: Largest magnitude whose integer arithmetic is exact in a float64.
_FLOAT64_EXACT = 1 << 53

#: First magnitude an int64 accumulator cannot represent.
_INT64_HALF = 1 << 63


class FastPathFallback(Exception):  # repro: noqa REP001
    """The fast path cannot reproduce this run; use the event backend.

    Deliberately *not* a :class:`~repro.core.errors.ReproError`: it is
    an internal control-flow signal consumed by ``MixGemm.gemm``, never
    an error surfaced to callers.
    """


def wrap_signed_array(values: np.ndarray, bits: int) -> np.ndarray:
    """Vectorized :func:`~repro.core.microengine.wrap_signed`.

    For ``bits >= 64`` the int64 representation already is the wrapped
    value.  Below that, the add-half / mask / subtract-half dance stays
    inside uint64 arithmetic, avoiding the signed-overflow hazards a
    naive ``np.where`` formulation would hit at ``1 << 63``.
    """
    if bits >= ACCMEM_CONTAINER_BITS:
        return values
    half = 1 << (bits - 1)
    shifted = (values.astype(np.uint64) + np.uint64(half)) \
        & np.uint64((1 << bits) - 1)
    return shifted.astype(np.int64) - np.int64(half)


@dataclass(frozen=True)
class MicroKernelTiming:
    """Observed per-micro-kernel deltas (C updates excluded)."""

    cpu_cycles: int
    buffer_full_stall_cycles: int
    get_stall_cycles: int
    engine_busy_cycles: int
    groups: int
    macs: int
    ip_instructions: int
    get_instructions: int


@dataclass(frozen=True)
class FastPathTiming:
    """Whole-GEMM analytic timing (the single ``bs.set`` included).

    ``macs`` here is the PMU's issued-MAC count (full register tiles,
    zero-padded edges included), not the algebraic ``m * n * k``.
    """

    cycles: int
    buffer_full_stall_cycles: int
    get_stall_cycles: int
    engine_busy_cycles: int
    groups: int
    macs: int
    ip_instructions: int
    get_instructions: int

    def to_pmu(self) -> PmuCounters:
        """Materialize the equivalent PMU counter block."""
        return PmuCounters(
            cycles_total=self.cycles,
            buffer_full_stall_cycles=self.buffer_full_stall_cycles,
            get_stall_cycles=self.get_stall_cycles,
            engine_busy_cycles=self.engine_busy_cycles,
            groups=self.groups,
            macs=self.macs,
            ip_instructions=self.ip_instructions,
            get_instructions=self.get_instructions,
            set_instructions=1,
        )


#: Whether :func:`_tile_timing` may substitute the calibrated
#: closed-form predictor for the engine run.  Only calibrations that
#: verified themselves *exact* against holdout probes are substituted,
#: so flipping this flag never changes a cycle count -- tests pin it to
#: ``False`` (and clear the lru_caches) to force the reference.
COST_ORACLE = True


@functools.lru_cache(maxsize=None)
def _tile_timing(config: MixGemmConfig, costs: "KernelCosts",
                 n_groups: int) -> MicroKernelTiming:
    """Per-tile timing oracle: calibrated closed form, engine fallback.

    Consults :func:`repro.analysis.cost.calibrate.exact_tile_timing`,
    which returns a prediction only when the persisted calibration for
    this (signature, cost-table digest) proved exact on holdout group
    counts; anything else -- model inexact, calibration layer broken --
    falls back to :func:`_tile_timing_engine`, the instrumented engine
    run that is also calibration's ground truth.
    """
    if COST_ORACLE:
        try:
            from repro.analysis.cost.calibrate import exact_tile_timing
        except ImportError:
            timing = None
        else:
            timing = exact_tile_timing(config, costs, n_groups)
        if timing is not None:
            return timing
    return _tile_timing_engine(config, costs, n_groups)


@functools.lru_cache(maxsize=None)
def _tile_timing_engine(config: MixGemmConfig, costs: "KernelCosts",
                        n_groups: int) -> MicroKernelTiming:
    """Run the real micro-kernel once on zero panels and record deltas.

    ``n_groups`` is the per-tile group count of one kc-block; the engine
    always schedules *full* groups (tail groups keep the full DSU walk),
    so a ``n_groups * group_elements``-long zero run times identically
    to any ragged production tile with the same group count.  Passing an
    empty C matrix keeps every collection cell out of range, so the
    measured CPU delta excludes C updates -- those are added
    analytically per in-range output element.
    """
    from .gemm import MixGemm

    blk = config.blocking
    lay = config.layout
    k_len = n_groups * lay.group_elements
    executor = MixGemm(config, emulate_datapath=False, costs=costs,
                       backend="event")
    a_up = create_micro_panel(
        pack_matrix_a(np.zeros((blk.mr, k_len), dtype=np.int64), config),
        0, blk.mr, 0, k_len,
    )
    b_up = create_micro_panel(
        pack_matrix_b(np.zeros((k_len, blk.nr), dtype=np.int64), config),
        0, blk.nr, 0, k_len,
    )
    engine = executor.engine
    engine.set_config(config)
    pmu = engine.pmu
    start = engine.now
    base = (
        pmu.buffer_full_stall_cycles,
        pmu.get_stall_cycles,
        pmu.engine_busy_cycles,
        pmu.groups,
        pmu.macs,
        pmu.ip_instructions,
        pmu.get_instructions,
    )
    executor._micro_kernel(a_up, b_up, np.zeros((0, 0), dtype=np.int64),
                           0, 0)
    return MicroKernelTiming(
        cpu_cycles=engine.now - start,
        buffer_full_stall_cycles=pmu.buffer_full_stall_cycles - base[0],
        get_stall_cycles=pmu.get_stall_cycles - base[1],
        engine_busy_cycles=pmu.engine_busy_cycles - base[2],
        groups=pmu.groups - base[3],
        macs=pmu.macs - base[4],
        ip_instructions=pmu.ip_instructions - base[5],
        get_instructions=pmu.get_instructions - base[6],
    )


def fastpath_applicable(config: MixGemmConfig, k: int) -> str | None:
    """Why the fast path must refuse this run, or ``None`` if it can go.

    Mirrors the refusal checks of :func:`run_fastpath` (same order) so a
    compiled plan can decide *once* whether a layer will ride the fast
    path without paying an exception on every call.
    """
    blk = config.blocking
    lay = config.layout
    if blk.mc % blk.mr or blk.nc % blk.nr:
        return "edge tiles overlap cache blocks; event backend required"
    kc_eff = aligned_kc(blk.kc * lay.elems_a, lay.group_elements)
    lo_a, hi_a = value_range(config.bw_a, config.signed_a)
    lo_b, hi_b = value_range(config.bw_b, config.signed_b)
    amax = max(abs(lo_a), abs(hi_a))
    bmax = max(abs(lo_b), abs(hi_b))
    bits = config.accmem_bits
    block_bound = min(kc_eff, max(k, 1)) * amax * bmax
    if bits > ACCMEM_CONTAINER_BITS and block_bound >= _INT64_HALF:
        return (f"accmem_bits={bits} with block bound {block_bound} "
                f">= 2**63 exceeds int64 accumulation")
    return None


@functools.lru_cache(maxsize=None)
def fastpath_timing(config: MixGemmConfig, costs: "KernelCosts", m: int,
                    n: int, k: int) -> FastPathTiming:
    """Analytic timing of one fast-path GEMM, memoized by shape.

    Cycles on the fast path are a pure function of ``(config, costs, m,
    n, k)`` -- the per-tile oracle is data independent and the blocked
    loop structure depends only on the shape -- so a compiled plan can
    look the whole-GEMM timing up once and reuse it on every call.
    Caller must have cleared :func:`fastpath_applicable` first.
    """
    blk = config.blocking
    lay = config.layout
    kc_eff = aligned_kc(blk.kc * lay.elems_a, lay.group_elements)
    oracle_config = replace(config, backend="event")
    row_tiles = sum(ceil_div(min(blk.mc, m - ic), blk.mr)
                    for ic in range(0, m, blk.mc))
    col_tiles = sum(ceil_div(min(blk.nc, n - jc), blk.nr)
                    for jc in range(0, n, blk.nc))
    tiles_per_kblock = row_tiles * col_tiles

    cycles = BS_SET_COST  # the single bs.set
    stalls_full = stalls_get = busy = groups = macs = ips = gets = 0
    for pc in range(0, k, kc_eff):
        kc_blk = min(kc_eff, k - pc)
        n_groups = ceil_div(kc_blk, lay.group_elements)
        tile = _tile_timing(oracle_config, costs, n_groups)
        cycles += (tiles_per_kblock * tile.cpu_cycles
                   + m * n * costs.c_update_cost)
        stalls_full += tiles_per_kblock * tile.buffer_full_stall_cycles
        stalls_get += tiles_per_kblock * tile.get_stall_cycles
        busy += tiles_per_kblock * tile.engine_busy_cycles
        groups += tiles_per_kblock * tile.groups
        macs += tiles_per_kblock * tile.macs
        ips += tiles_per_kblock * tile.ip_instructions
        gets += tiles_per_kblock * tile.get_instructions
    return FastPathTiming(
        cycles=cycles,
        buffer_full_stall_cycles=stalls_full,
        get_stall_cycles=stalls_get,
        engine_busy_cycles=busy,
        groups=groups,
        macs=macs,
        ip_instructions=ips,
        get_instructions=gets,
    )


def run_fastpath(config: MixGemmConfig, costs: "KernelCosts", a: np.ndarray,
                 b: np.ndarray,
                 c: np.ndarray | None = None, *,
                 blocking=None) -> "GemmResult":
    """Compute one GEMM on the fast path; returns a ``GemmResult``.

    Validation mirrors ``MixGemm.gemm`` + the packers step for step so
    both backends raise the same :class:`BinSegError` in the same order
    on malformed inputs.  Raises :class:`FastPathFallback` when only the
    event backend can reproduce the run.

    ``blocking`` overrides ``config.blocking`` for this call only --
    the per-candidate knob the autotuner (:mod:`repro.tuning`) turns
    without materializing a fresh config per measurement.  Semantics
    are identical to running with ``replace(config, blocking=...)``:
    with a sub-container AccMem the kc-block boundaries move the wrap
    points, so the result can legitimately differ between blockings
    (exactly what the tuner's bit-exactness gate screens for).
    """
    from .gemm import GemmResult

    if blocking is not None and blocking != config.blocking:
        config = replace(config, blocking=blocking)

    a_arr = np.asarray(a)
    b_arr = np.asarray(b)
    if a_arr.ndim != 2 or b_arr.ndim != 2:
        raise BinSegError("gemm expects 2-D operands")
    m, k = a_arr.shape
    kb, n = b_arr.shape
    if k != kb:
        raise BinSegError(f"inner dimensions differ: {k} vs {kb}")
    if c is None:
        c = np.zeros((m, n), dtype=np.int64)
    elif c.shape != (m, n):
        raise BinSegError(f"C shape {c.shape} does not match ({m}, {n})")

    a64 = _check_matrix(a_arr, config.bw_a, config.signed_a, "A")
    if k == 0 and m > 0:
        raise BinSegError("cannot pack an empty k vector")
    b64 = _check_matrix(b_arr, config.bw_b, config.signed_b, "B")
    if k == 0 and n > 0:
        raise BinSegError("cannot pack an empty k vector")

    refusal = fastpath_applicable(config, k)
    if refusal is not None:
        # The >64-bit AccMem case would carry where int64 wraps; only
        # the bignum-backed event engine models that faithfully.
        raise FastPathFallback(refusal)

    blk = config.blocking
    lay = config.layout
    kc_eff = aligned_kc(blk.kc * lay.elems_a, lay.group_elements)
    lo_a, hi_a = value_range(config.bw_a, config.signed_a)
    lo_b, hi_b = value_range(config.bw_b, config.signed_b)
    amax = max(abs(lo_a), abs(hi_a))
    bmax = max(abs(lo_b), abs(hi_b))
    bits = config.accmem_bits

    timing = fastpath_timing(config, costs, m, n, k)
    for pc in range(0, k, kc_eff):
        kc_blk = min(kc_eff, k - pc)
        a_blk = a64[:, pc:pc + kc_blk]
        b_blk = b64[pc:pc + kc_blk, :]
        if kc_blk * amax * bmax < _FLOAT64_EXACT:
            # Every partial sum is exactly representable: take the BLAS.
            partial = (a_blk.astype(np.float64)
                       @ b_blk.astype(np.float64)).astype(np.int64)
        else:
            partial = a_blk @ b_blk
        if bits < ACCMEM_CONTAINER_BITS:
            partial = wrap_signed_array(partial, bits)
        c += partial

    pmu = timing.to_pmu()
    return GemmResult(
        c=c,
        cycles=timing.cycles,
        macs=m * n * k,
        pmu=pmu,
        config=config,
        instructions={
            "bs.set": pmu.set_instructions,
            "bs.ip": pmu.ip_instructions,
            "bs.get": pmu.get_instructions,
        },
        backend="fast",
    )
