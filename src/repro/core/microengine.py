"""Cycle-level functional model of the Mix-GEMM u-engine (Section III-B).

The u-engine is a computational pipeline living next to the scalar core's
functional units:

* two **Source Buffers** (16 u-vectors deep after the DSE) absorb the
  ``bs.ip`` operand pairs so the core does not wait for their completion;
* the **Data Selection Unit (DSU)** picks up to ``input_cluster_size``
  element pairs per cycle, reloading from a Source Buffer whenever one
  u-vector runs out (Figure 4);
* the **Data Conversion Unit (DCU)** sign/zero-extends the selected
  sub-u-vectors into clustering-width fields, forming the input-clusters;
* the shared **64-bit processor multiplier** computes one cluster product
  per cycle;
* the **Data Filtering Unit (DFU)** slices the inner product out of the
  product (Equation 5) and the internal adder accumulates it into the
  **AccMem**, whose address the **Control Unit** advances after each
  accumulation group;
* a **PMU** counts busy/stall cycles -- the paper uses it for the Source
  Buffer depth DSE (Section III-C).

Two views are provided with the same underlying DSU schedule:

* :class:`MicroEngine` -- executes an instruction stream bit-exactly while
  tracking time at u-vector granularity (discrete events, not a per-cycle
  loop, so it stays fast enough for whole small GEMMs);
* :func:`dsu_walk` / :func:`group_cycles` -- the closed-form per-group
  schedule the analytic performance model reuses for large problems.

Reference checks embedded in the tests: the walk yields 12, 12 and 9
accumulation cycles for the paper's a8-w8, a8-w6 and a6-w4 examples.
"""

from __future__ import annotations

import functools
import math
from collections import deque
from dataclasses import dataclass, field

from .binseg import BinSegSpec, cluster_inner_product
from .config import MixGemmConfig, UVectorLayout
from .errors import ReproError
from .isa import BsGet, BsInstruction, BsIp, BsSet, InstructionStream
from .packing import unpack_word


class MicroEngineError(ReproError, RuntimeError):
    """Raised on protocol violations (e.g. bs.ip before bs.set)."""


def wrap_signed(value: int, bits: int) -> int:
    """Reduce ``value`` to a ``bits``-wide two's-complement register.

    This is what a hardware accumulator of finite width does on
    overflow: the carry out of the top bit is silently dropped.  The
    static overflow contract (``ACC-OVERFLOW``) exists precisely to
    prove this function is the identity for every reachable value.
    """
    mask = (1 << bits) - 1
    value &= mask
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def distribute_elements(n: int, n_words: int, per_word: int) -> list[int]:
    """Spread ``n`` logical elements densely over ``n_words`` u-vectors.

    Elements fill words front to back; the zero padding therefore sits at
    the tail of the group, matching the packing layout and Figure 4.
    """
    if n > n_words * per_word:
        raise MicroEngineError(
            f"{n} elements cannot fit {n_words} words of {per_word}"
        )
    return [max(0, min(per_word, n - i * per_word)) for i in range(n_words)]


@dataclass(frozen=True)
class GroupSchedule:
    """DSU schedule for one accumulation group of kua + kub u-vectors.

    ``chunks[c]`` is the number of element pairs the DSU selects on walk
    cycle ``c``; ``a_release[w]``/``b_release[w]`` give the walk cycle
    (1-based, i.e. cycles elapsed) after which u-vector ``w`` of the
    respective stream has been fully consumed and its Source Buffer slot
    frees up; ``a_needed[w]``/``b_needed[w]`` give the walk cycle (0-based)
    at which the DSU first reads that u-vector.
    """

    chunks: tuple[int, ...]
    a_release: tuple[int, ...]
    b_release: tuple[int, ...]
    a_needed: tuple[int, ...]
    b_needed: tuple[int, ...]
    n_elements: int

    @property
    def cycles(self) -> int:
        """Multiplier passes (= accumulations) this group costs."""
        return len(self.chunks)

    @property
    def macs_per_cycle(self) -> float:
        return self.n_elements / self.cycles


@functools.lru_cache(maxsize=None)
def dsu_walk(
    elems_a: int,
    elems_b: int,
    kua: int,
    kub: int,
    cluster_size: int,
    n_elements: int,
) -> GroupSchedule:
    """Simulate the DSU selection for one group (Figure 4 semantics).

    Each cycle the DSU selects ``min(cluster_size, remaining in the current
    A u-vector, remaining in the current B u-vector, remaining in the
    group)`` element pairs; when a u-vector empties, the next one is pulled
    from its Source Buffer on the following cycle.
    """
    a_counts = distribute_elements(n_elements, kua, elems_a)
    b_counts = distribute_elements(n_elements, kub, elems_b)
    chunks: list[int] = []
    a_release = [0] * kua
    b_release = [0] * kub
    a_needed = [0] * kua
    b_needed = [0] * kub
    ai = bi = 0
    rem_a, rem_b = a_counts[0], b_counts[0]
    remaining = n_elements
    cycle = 0
    while remaining > 0:
        while rem_a == 0:  # zero-count words (over-padded group tail)
            a_release[ai] = cycle
            ai += 1
            rem_a = a_counts[ai]
            a_needed[ai] = cycle
        while rem_b == 0:
            b_release[bi] = cycle
            bi += 1
            rem_b = b_counts[bi]
            b_needed[bi] = cycle
        chunk = min(cluster_size, rem_a, rem_b, remaining)
        cycle += 1
        chunks.append(chunk)
        rem_a -= chunk
        rem_b -= chunk
        remaining -= chunk
        if rem_a == 0 and remaining > 0:
            a_release[ai] = cycle
            ai += 1
            rem_a = a_counts[ai] if ai < kua else 0
            if ai < kua:
                a_needed[ai] = cycle
        if rem_b == 0 and remaining > 0:
            b_release[bi] = cycle
            bi += 1
            rem_b = b_counts[bi] if bi < kub else 0
            if bi < kub:
                b_needed[bi] = cycle
    # Whatever is still held (including pure-padding tail words) releases
    # when the group completes.
    for w in range(ai, kua):
        a_release[w] = cycle
    for w in range(bi, kub):
        b_release[w] = cycle
    return GroupSchedule(
        chunks=tuple(chunks),
        a_release=tuple(a_release),
        b_release=tuple(b_release),
        a_needed=tuple(a_needed),
        b_needed=tuple(b_needed),
        n_elements=n_elements,
    )


def group_schedule(config: MixGemmConfig,
                   n_elements: int | None = None) -> GroupSchedule:
    """DSU schedule for one full (or partial) group of ``config``."""
    lay = config.layout
    n = lay.group_elements if n_elements is None else n_elements
    return dsu_walk(
        lay.elems_a, lay.elems_b, lay.kua, lay.kub,
        config.binseg.input_cluster_size, n,
    )


def group_cycles(config: MixGemmConfig,
                 n_elements: int | None = None) -> int:
    """Multiplier cycles for one accumulation group (12/12/9 in Fig. 4)."""
    return group_schedule(config, n_elements).cycles


def effective_macs_per_cycle(config: MixGemmConfig) -> float:
    """Steady-state engine throughput including u-vector boundary losses.

    The paper notes a2-w2 loses ~15% against its theoretical bound because
    32-element u-vectors drain in 5 cycles at 7 MAC/cycle; this number is
    that effect, derived from the DSU schedule rather than assumed.
    """
    return group_schedule(config).macs_per_cycle


# ---------------------------------------------------------------------------
# Performance monitoring unit
# ---------------------------------------------------------------------------


@dataclass
class PmuCounters:
    """Micro-engine PMU, as used for the Section III-C buffer-depth DSE."""

    cycles_total: int = 0
    engine_busy_cycles: int = 0
    buffer_full_stall_cycles: int = 0
    get_stall_cycles: int = 0
    macs: int = 0
    groups: int = 0
    ip_instructions: int = 0
    get_instructions: int = 0
    set_instructions: int = 0

    @property
    def buffer_stall_fraction(self) -> float:
        if self.cycles_total == 0:
            return 0.0
        return self.buffer_full_stall_cycles / self.cycles_total

    @property
    def get_stall_fraction(self) -> float:
        if self.cycles_total == 0:
            return 0.0
        return self.get_stall_cycles / self.cycles_total

    @property
    def macs_per_cycle(self) -> float:
        if self.cycles_total == 0:
            return 0.0
        return self.macs / self.cycles_total


# ---------------------------------------------------------------------------
# The micro-engine proper
# ---------------------------------------------------------------------------


@dataclass
class _PendingWord:
    word: int
    arrival: int  # CPU cycle at which bs.ip delivered it


@dataclass
class EngineRun:
    """Result of executing an instruction stream."""

    values: list[int] = field(default_factory=list)
    pmu: PmuCounters = field(default_factory=PmuCounters)


class MicroEngine:
    """Bit-exact, event-timed model of the u-engine.

    Drive it either through :meth:`execute` with an
    :class:`~repro.core.isa.InstructionStream`, or instruction by
    instruction via :meth:`set_config`, :meth:`push_pair` and
    :meth:`read_slot` (each returns the stall cycles the CPU observes,
    letting the SoC model interleave other instructions).

    Parameters
    ----------
    config:
        Full Mix-GEMM configuration (data sizes, kua/kub, buffer depth,
        AccMem slots from the blocking parameters).
    emulate_datapath:
        When true (default) every accumulation goes through the binary
        segmentation pack/multiply/slice pipeline; when false the group
        inner product is computed directly (identical result -- asserted
        by the test-suite -- but faster for large functional runs).
    fault_hook:
        Optional fault-injection hook (duck-typed; see
        :class:`repro.robustness.faults.FaultInjector`).  After every
        accumulation group the engine calls
        ``fault_hook.on_accumulate(accmem, group_index)``, which may flip
        bits in the AccMem in place -- the mechanism the reliability
        campaigns use to model accumulator soft errors.
    """

    def __init__(self, config: MixGemmConfig | None = None, *,
                 emulate_datapath: bool = True, fault_hook=None) -> None:
        self._emulate_datapath = emulate_datapath
        self._fault_hook = fault_hook
        self._configured = False
        self._cpu_time = 0
        self._engine_time = 0
        self.pmu = PmuCounters()
        self._a_queue: deque[_PendingWord] = deque()
        self._b_queue: deque[_PendingWord] = deque()
        # Cycle at which each already-scheduled (but not yet drained)
        # u-vector frees its Source Buffer slot; kept sorted because groups
        # are processed in order and releases are monotone within a group.
        self._a_releases: deque[int] = deque()
        self._b_releases: deque[int] = deque()
        self._group_counter = 0
        if config is not None:
            self.set_config(config)

    # -- configuration ------------------------------------------------------

    def set_config(self, config: MixGemmConfig) -> int:
        """Model ``bs.set``: single-cycle Control Unit reconfiguration."""
        self._config = config
        self._spec: BinSegSpec = config.binseg
        self._layout: UVectorLayout = config.layout
        self._depth = config.source_buffer_depth
        self._accmem_bits = config.accmem_bits
        self._accmem = [0] * config.blocking.accmem_slots
        self._group_counter = 0
        self._configured = True
        self._cpu_time += 1
        self.pmu.set_instructions += 1
        return 0

    @property
    def accmem(self) -> list[int]:
        return list(self._accmem)

    @property
    def now(self) -> int:
        """Current CPU-visible cycle."""
        return self._cpu_time

    def advance(self, cycles: int) -> None:
        """Let the CPU spend cycles on unrelated instructions (loads etc.)."""
        if cycles < 0:
            raise ValueError("cannot advance time backwards")
        self._cpu_time += cycles

    # -- bs.ip ---------------------------------------------------------------

    def push_pair(self, a_word: int, b_word: int, *,
                  push_a: bool = True, push_b: bool = True) -> int:
        """Model ``bs.ip``: buffer one u-vector (pair).  Returns the stall
        cycles the CPU spent waiting for Source Buffer space."""
        if not self._configured:
            raise MicroEngineError("bs.ip before bs.set")
        issue_at = self._cpu_time
        # The instruction needs a free slot in each buffer it writes; a
        # slot is occupied from push until the DSU releases the u-vector.
        targets = []
        if push_a:
            targets.append((self._a_queue, self._a_releases))
        if push_b:
            targets.append((self._b_queue, self._b_releases))
        wait_until = issue_at
        for queue, releases in targets:
            wait_until = max(
                wait_until, self._time_for_free_slot(queue, releases,
                                                     wait_until)
            )
        stall = wait_until - issue_at
        self._cpu_time = wait_until + 1
        self.pmu.buffer_full_stall_cycles += stall
        self.pmu.ip_instructions += 1
        if push_a:
            self._a_queue.append(_PendingWord(a_word, self._cpu_time))
        if push_b:
            self._b_queue.append(_PendingWord(b_word, self._cpu_time))
        self._try_process_groups()
        return stall

    def _time_for_free_slot(self, queue: deque[_PendingWord],
                            releases: deque[int], now: int) -> int:
        """Earliest cycle at which ``queue``'s buffer has a free slot."""
        self._prune_releases(now)
        occupancy = len(queue) + len(releases)
        if occupancy < self._depth:
            return now
        # Pending (ungrouped) words have no release time yet; schedule as
        # many complete groups as possible to learn theirs.
        self._try_process_groups()
        self._prune_releases(now)
        occupancy = len(queue) + len(releases)
        if occupancy < self._depth:
            return now
        # Waiting only drains scheduled words; pending (ungrouped) ones need
        # future pushes to complete their group, which cannot happen while
        # the CPU is stalled on this push.
        overflow = occupancy - self._depth
        if len(releases) < overflow + 1:
            raise MicroEngineError(
                "Source Buffer full of unscheduled u-vectors; buffer depth "
                "is smaller than the configuration's kua/kub group size"
            )
        free_at = sorted(releases)[overflow]
        return max(now, free_at)

    def _prune_releases(self, now: int) -> None:
        for releases in (self._a_releases, self._b_releases):
            while releases and releases[0] <= now:
                releases.popleft()

    # -- bs.get ---------------------------------------------------------------

    def read_slot(self, slot: int) -> tuple[int, int]:
        """Model ``bs.get``: read (and clear) one AccMem slot.

        Returns ``(value, stall_cycles)``.  The CPU stalls until every
        buffered u-vector has been consumed, because the slot may still
        have accumulations in flight (the paper observed such stalls only
        with 32-deep buffers).
        """
        if not self._configured:
            raise MicroEngineError("bs.get before bs.set")
        if not 0 <= slot < len(self._accmem):
            raise MicroEngineError(f"AccMem slot {slot} out of range")
        stall = 0
        self._process_all_available()
        if self._engine_time > self._cpu_time:
            # The C u-panel may still have accumulations in flight; the
            # first bs.get of the collection loop absorbs the drain.
            stall = self._engine_time - self._cpu_time
            self._cpu_time = self._engine_time
        self._cpu_time += 1
        self.pmu.get_stall_cycles += stall
        self.pmu.get_instructions += 1
        value = self._accmem[slot]
        self._accmem[slot] = 0
        return value, stall

    # -- whole-stream execution ----------------------------------------------

    def execute(self, stream: InstructionStream,
                config: MixGemmConfig | None = None) -> EngineRun:
        """Run a full instruction stream; gather bs.get values and the PMU."""
        run = EngineRun()
        for instr in stream:
            self._dispatch(instr, run, config)
        run.pmu = self.pmu
        self.pmu.cycles_total = max(self._cpu_time, self._engine_time)
        return run

    def _dispatch(self, instr: BsInstruction, run: EngineRun,
                  config: MixGemmConfig | None) -> None:
        if isinstance(instr, BsSet):
            if config is None and not self._configured:
                raise MicroEngineError(
                    "stream execution needs a MixGemmConfig for bs.set"
                )
            if config is not None:
                self.set_config(config)
            else:
                self._cpu_time += 1
                self.pmu.set_instructions += 1
        elif isinstance(instr, BsIp):
            self.push_pair(instr.a_word, instr.b_word,
                           push_a=instr.push_a, push_b=instr.push_b)
        elif isinstance(instr, BsGet):
            value, _ = self.read_slot(instr.slot)
            run.values.append(value)
        else:  # pragma: no cover - defensive
            raise MicroEngineError(f"unknown instruction {instr!r}")

    # -- engine internals ------------------------------------------------------

    def _group_ready(self) -> bool:
        return (len(self._a_queue) >= self._layout.kua
                and len(self._b_queue) >= self._layout.kub)

    def _try_process_groups(self) -> None:
        while self._group_ready():
            self._process_group()

    def _process_all_available(self) -> None:
        self._try_process_groups()
        # A trailing partial group cannot exist in a well-formed stream;
        # leftover words simply wait for their group to complete.

    def _process_group(self) -> None:
        lay = self._layout
        a_words = [self._a_queue.popleft() for _ in range(lay.kua)]
        b_words = [self._b_queue.popleft() for _ in range(lay.kub)]
        sched = dsu_walk(
            lay.elems_a, lay.elems_b, lay.kua, lay.kub,
            self._spec.input_cluster_size, lay.group_elements,
        )
        # Group start: engine free and the first u-vector of each stream
        # delivered; each walk cycle additionally waits for the u-vectors it
        # first touches.
        start = max(self._engine_time,
                    a_words[0].arrival, b_words[0].arrival)
        finish = start
        for w, needed in enumerate(sched.a_needed):
            finish = max(finish, a_words[w].arrival + sched.cycles - needed)
        for w, needed in enumerate(sched.b_needed):
            finish = max(finish, b_words[w].arrival + sched.cycles - needed)
        finish = max(finish, start + sched.cycles)
        self._engine_time = finish
        self.pmu.engine_busy_cycles += sched.cycles
        # Each u-vector keeps its Source Buffer slot until the DSU finishes
        # with it; anchor the relative release offsets to the group finish.
        for rel in sched.a_release:
            self._a_releases.append(finish - (sched.cycles - rel))
        for rel in sched.b_release:
            self._b_releases.append(finish - (sched.cycles - rel))
        # Functional accumulation into a finite-width AccMem register:
        # values past the configured width wrap exactly as hardware would.
        value = self._group_inner_product(a_words, b_words, sched)
        slot = self._group_counter % len(self._accmem)
        self._accmem[slot] = wrap_signed(self._accmem[slot] + value,
                                         self._accmem_bits)
        self._group_counter += 1
        self.pmu.groups += 1
        self.pmu.macs += sched.n_elements
        if self._fault_hook is not None:
            self._fault_hook.on_accumulate(self._accmem,
                                           self._group_counter - 1)
            # Injected bit flips land in the same finite registers.
            for i, v in enumerate(self._accmem):
                self._accmem[i] = wrap_signed(v, self._accmem_bits)

    def _group_inner_product(self, a_words: list[_PendingWord],
                             b_words: list[_PendingWord],
                             sched: GroupSchedule) -> int:
        lay = self._layout
        a_counts = distribute_elements(sched.n_elements, lay.kua, lay.elems_a)
        b_counts = distribute_elements(sched.n_elements, lay.kub, lay.elems_b)
        a_elems: list[int] = []
        for pw, count in zip(a_words, a_counts):
            a_elems.extend(unpack_word(pw.word, lay.bw_a, count,
                                       signed=self._spec.signed_a))
        b_elems: list[int] = []
        for pw, count in zip(b_words, b_counts):
            b_elems.extend(unpack_word(pw.word, lay.bw_b, count,
                                       signed=self._spec.signed_b))
        if not self._emulate_datapath:
            return sum(a * b for a, b in zip(a_elems, b_elems))
        total = 0
        pos = 0
        for chunk in sched.chunks:
            total += cluster_inner_product(
                a_elems[pos:pos + chunk], b_elems[pos:pos + chunk],
                self._spec.bw_a, self._spec.bw_b,
                signed_a=self._spec.signed_a, signed_b=self._spec.signed_b,
                mul_width=self._spec.mul_width,
            )
            pos += chunk
        return total
