"""u-vector packing: narrow matrices compressed into 64-bit words.

The Mix-GEMM software library keeps A and B compressed over their common
``k`` dimension "in chunks ranging from 8 to 32 elements, for 8- and 2-bit
data sizes" (Section III-A).  Each chunk is one *u-vector*, abstracted by the
BLIS machinery as a single 64-bit element, which is what lets the library
reuse DGEMM's cache-friendly data movement unchanged.

Two layers of padding exist and are both modelled:

* word padding -- the last u-vector of a k-run rarely fills completely;
* group padding -- in mixed precision, each innermost iteration consumes
  ``kua`` A words against ``kub`` B words, and the surplus slots on the
  wider stream are zeroed (Section III-C measures this at 2.4% on average).

Elements are stored two's-complement in ``bw``-bit fields, element 0 at the
least-significant end of the word.  Words are Python integers (they are
bit-exact and the functional simulator unpacks them anyway).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .binseg import BinSegError, ceil_div, value_range
from .config import MixGemmConfig, UVectorLayout


def pack_word(values: Sequence[int], bw: int, word_bits: int = 64) -> int:
    """Pack narrow elements into one u-vector word, element 0 at the LSB.

    Values are stored two's complement in ``bw``-bit fields; unused high
    bits stay zero (they are word padding).
    """
    capacity = word_bits // bw
    if len(values) > capacity:
        raise BinSegError(
            f"{len(values)} elements exceed u-vector capacity {capacity} "
            f"at {bw} bits"
        )
    mask = (1 << bw) - 1
    word = 0
    for i, v in enumerate(values):
        word |= (int(v) & mask) << (i * bw)
    return word


def unpack_word(
    word: int, bw: int, count: int, *, signed: bool, word_bits: int = 64
) -> list[int]:
    """Extract ``count`` elements from a u-vector word (inverse of pack)."""
    capacity = word_bits // bw
    if count > capacity:
        raise BinSegError(
            f"cannot unpack {count} elements from a {word_bits}-bit word "
            f"holding at most {capacity} at {bw} bits"
        )
    mask = (1 << bw) - 1
    sign_bit = 1 << (bw - 1)
    out = []
    for i in range(count):
        v = (word >> (i * bw)) & mask
        if signed and v & sign_bit:
            v -= 1 << bw
        out.append(v)
    return out


def _check_matrix(matrix: np.ndarray, bw: int, signed: bool,
                  name: str) -> np.ndarray:
    arr = np.asarray(matrix)
    if arr.ndim != 2:
        raise BinSegError(f"{name} must be 2-D, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise BinSegError(f"{name} must be an integer array, got {arr.dtype}")
    lo, hi = value_range(bw, signed)
    if arr.size and (arr.min() < lo or arr.max() > hi):
        raise BinSegError(
            f"{name} holds values outside the {bw}-bit "
            f"{'signed' if signed else 'unsigned'} range [{lo}, {hi}]"
        )
    return arr.astype(np.int64)


@dataclass(frozen=True)
class KVector:
    """One row/column of a matrix packed along k with group structure.

    ``words`` is flat: group g occupies ``words[g*ku : (g+1)*ku]`` and
    carries ``elements_in_group(g)`` logical elements, distributed densely
    from the group's first word (so the zero padding sits at the tail of the
    group, matching the DSU walk in Figure 4).
    """

    words: tuple[int, ...]
    k: int
    bw: int
    ku: int
    group_elements: int
    signed: bool
    word_bits: int = 64

    @property
    def n_groups(self) -> int:
        return ceil_div(self.k, self.group_elements)

    @property
    def elems_per_word(self) -> int:
        return self.word_bits // self.bw

    def elements_in_group(self, g: int) -> int:
        if not 0 <= g < self.n_groups:
            raise IndexError(f"group {g} out of range")
        return min(self.group_elements, self.k - g * self.group_elements)

    def group_words(self, g: int) -> tuple[int, ...]:
        return self.words[g * self.ku:(g + 1) * self.ku]

    def unpack(self) -> list[int]:
        """Recover the logical k elements (drops all padding)."""
        out: list[int] = []
        epw = self.elems_per_word
        for g in range(self.n_groups):
            remaining = self.elements_in_group(g)
            for word in self.group_words(g):
                take = min(remaining, epw)
                out.extend(
                    unpack_word(word, self.bw, take, signed=self.signed,
                                word_bits=self.word_bits)
                )
                remaining -= take
                if remaining == 0:
                    break
        return out


def pack_kvector(
    values: Sequence[int],
    bw: int,
    ku: int,
    group_elements: int,
    *,
    signed: bool,
    word_bits: int = 64,
) -> KVector:
    """Pack one k-run of narrow elements into group-aligned u-vectors."""
    values = [int(v) for v in values]
    k = len(values)
    if k == 0:
        raise BinSegError("cannot pack an empty k vector")
    epw = word_bits // bw
    n_groups = ceil_div(k, group_elements)
    words: list[int] = []
    for g in range(n_groups):
        chunk = values[g * group_elements:(g + 1) * group_elements]
        for w in range(ku):
            sub = chunk[w * epw:(w + 1) * epw]
            words.append(pack_word(sub, bw, word_bits))
    return KVector(
        words=tuple(words), k=k, bw=bw, ku=ku,
        group_elements=group_elements, signed=signed, word_bits=word_bits,
    )


@dataclass(frozen=True)
class PackedMatrix:
    """A full matrix compressed along k, one :class:`KVector` per k-run.

    For the A operand (m x k) each row is a k-run; for the B operand
    (k x n) each *column* is a k-run.  ``operand`` records which.
    """

    kvectors: tuple[KVector, ...]
    operand: str  # "A" or "B"
    rows: int
    cols: int

    @property
    def k(self) -> int:
        return self.kvectors[0].k

    @property
    def n_runs(self) -> int:
        return len(self.kvectors)

    @property
    def words_per_run(self) -> int:
        return len(self.kvectors[0].words)

    @property
    def memory_bytes(self) -> int:
        """Footprint of the compressed representation, padding included."""
        word_bytes = self.kvectors[0].word_bits // 8
        return self.n_runs * self.words_per_run * word_bytes

    @property
    def logical_bits(self) -> int:
        """Bits strictly needed for the payload (no padding)."""
        return self.n_runs * self.k * self.kvectors[0].bw

    @property
    def padding_overhead(self) -> float:
        """Fraction of stored bits that are padding (Section III-C)."""
        stored = self.memory_bytes * 8
        return 1.0 - self.logical_bits / stored

    def to_dense(self) -> np.ndarray:
        """Reconstruct the dense int64 matrix (for verification)."""
        runs = np.array([kv.unpack() for kv in self.kvectors], dtype=np.int64)
        if self.operand == "A":
            return runs
        return runs.T


def pack_matrix_a(
    matrix: np.ndarray, config: MixGemmConfig
) -> PackedMatrix:
    """Compress the activation matrix A (m x k) row-wise along k."""
    arr = _check_matrix(matrix, config.bw_a, config.signed_a, "A")
    lay = config.layout
    kvecs = tuple(
        pack_kvector(
            row, config.bw_a, lay.kua, lay.group_elements,
            signed=config.signed_a, word_bits=config.word_bits,
        )
        for row in arr
    )
    return PackedMatrix(kvectors=kvecs, operand="A",
                        rows=arr.shape[0], cols=arr.shape[1])


def pack_matrix_b(
    matrix: np.ndarray, config: MixGemmConfig
) -> PackedMatrix:
    """Compress the weight matrix B (k x n) column-wise along k."""
    arr = _check_matrix(matrix, config.bw_b, config.signed_b, "B")
    lay = config.layout
    kvecs = tuple(
        pack_kvector(
            col, config.bw_b, lay.kub, lay.group_elements,
            signed=config.signed_b, word_bits=config.word_bits,
        )
        for col in arr.T
    )
    return PackedMatrix(kvectors=kvecs, operand="B",
                        rows=arr.shape[0], cols=arr.shape[1])


# ---------------------------------------------------------------------------
# BLIS panels and u-panels (Figure 2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MicroPanel:
    """One register-resident u-panel: ``mr`` (or ``nr``) k-runs, one k block.

    ``runs[i]`` is the group-aligned word list of run ``i`` restricted to
    the panel's k range.  Runs past the matrix edge are zero (BLIS edge
    handling), recorded via ``valid_runs``.
    """

    runs: tuple[KVector, ...]
    valid_runs: int
    k_offset: int

    @property
    def n_groups(self) -> int:
        return self.runs[0].n_groups


@dataclass(frozen=True)
class Panel:
    """A cache-resident panel: a block of k-runs over one kc-slice of k."""

    micro_panels: tuple[MicroPanel, ...]
    run_offset: int
    k_offset: int
    kc: int


def _slice_kvector(kv: KVector, k_lo: int, k_hi: int) -> KVector:
    """Restrict a packed k-run to logical elements [k_lo, k_hi).

    ``kc`` blocking is chosen as a multiple of the group size, so slices
    land on group boundaries and no repacking is needed.
    """
    ge = kv.group_elements
    if k_lo % ge or (k_hi % ge and k_hi != kv.k):
        raise BinSegError(
            f"k slice [{k_lo}, {k_hi}) not aligned to group size {ge}"
        )
    g_lo = k_lo // ge
    g_hi = ceil_div(k_hi, ge)
    words = kv.words[g_lo * kv.ku:g_hi * kv.ku]
    return KVector(
        words=words, k=k_hi - k_lo, bw=kv.bw, ku=kv.ku,
        group_elements=ge, signed=kv.signed, word_bits=kv.word_bits,
    )


def _zero_kvector(template: KVector) -> KVector:
    return KVector(
        words=tuple(0 for _ in template.words), k=template.k,
        bw=template.bw, ku=template.ku,
        group_elements=template.group_elements, signed=template.signed,
        word_bits=template.word_bits,
    )


def create_micro_panel(
    packed: PackedMatrix, run_lo: int, r: int, k_lo: int, k_hi: int
) -> MicroPanel:
    """Cut an ``r``-run u-panel out of a packed matrix (CreateuPanel)."""
    runs: list[KVector] = []
    valid = 0
    template: KVector | None = None
    for i in range(run_lo, run_lo + r):
        if i < packed.n_runs:
            kv = _slice_kvector(packed.kvectors[i], k_lo, k_hi)
            runs.append(kv)
            template = kv
            valid += 1
        else:
            if template is None:
                template = _slice_kvector(packed.kvectors[0], k_lo, k_hi)
            runs.append(_zero_kvector(template))
    return MicroPanel(runs=tuple(runs), valid_runs=valid, k_offset=k_lo)


def create_panel(
    packed: PackedMatrix, run_lo: int, run_hi: int, r: int,
    k_lo: int, k_hi: int
) -> Panel:
    """Cut a cache panel (CreateAPanel / CreateBPanel in Algorithm 1)."""
    micro = tuple(
        create_micro_panel(packed, lo, r, k_lo, k_hi)
        for lo in range(run_lo, run_hi, r)
    )
    return Panel(micro_panels=micro, run_offset=run_lo,
                 k_offset=k_lo, kc=k_hi - k_lo)


def aligned_kc(kc: int, group_elements: int) -> int:
    """Round the kc blocking down to a whole number of groups (min 1)."""
    return max(group_elements, (kc // group_elements) * group_elements)
