"""Sanitizer-aware lock factory.

Every production lock in this repository is constructed through
:func:`make_lock` / :func:`make_rlock` instead of calling
``threading.Lock()`` / ``threading.RLock()`` directly (lint rule
REP008).  The indirection exists for exactly one reason: the
concurrency sanitizer (:mod:`repro.analysis.concurrency.sanitizer`)
installs a factory hook that returns instrumented wrappers recording
per-thread acquisition stacks, so ``repro serve --sanitize`` and the
``lock_sanitizer`` pytest fixture can observe every lock the serving
stack takes without touching the hot path when disabled: with no hook
installed the factory returns the raw ``threading`` primitive, zero
indirection added.

Locks are *named* at the construction site (``"PackingCache._lock"``)
because the static lockset analysis identifies locks by
``ClassName.attribute`` and the runtime cross-check must join dynamic
events against those static identities.
"""

from __future__ import annotations

import threading
from types import TracebackType
from typing import Callable, Optional, Protocol


class LockLike(Protocol):
    """Structural type of both raw and sanitizer-wrapped locks."""

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> bool: ...

    def __exit__(self, exc_type: Optional[type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None: ...


#: Hook signature: ``(kind, name) -> lock`` where ``kind`` is ``"lock"``
#: or ``"rlock"`` and ``name`` is the dotted construction-site name.
LockFactoryHook = Callable[[str, str], LockLike]

_hook: Optional[LockFactoryHook] = None


def set_lock_factory_hook(hook: Optional[LockFactoryHook]) -> None:
    """Install (or, with ``None``, remove) the global factory hook.

    Installed by the sanitizer's ``activate()``; locks constructed
    while the hook is live are wrapped, locks constructed before or
    after are raw.  The hook is process-global because lock creation
    sites (class ``__init__``) have no sanitizer handle to thread
    through.
    """
    global _hook
    _hook = hook


def lock_factory_hook() -> Optional[LockFactoryHook]:
    """The currently installed hook (``None`` when locks are raw)."""
    return _hook


def make_lock(name: str) -> LockLike:
    """A non-reentrant mutex, wrapped when the sanitizer is active.

    ``name`` identifies the lock in traces and diagnostics; use the
    ``ClassName.attribute`` form the static analysis derives.
    """
    if _hook is not None:
        return _hook("lock", name)
    return threading.Lock()


def make_rlock(name: str) -> LockLike:
    """A reentrant mutex, wrapped when the sanitizer is active."""
    if _hook is not None:
        return _hook("rlock", name)
    return threading.RLock()


__all__ = [
    "LockFactoryHook",
    "LockLike",
    "lock_factory_hook",
    "make_lock",
    "make_rlock",
    "set_lock_factory_hook",
]
