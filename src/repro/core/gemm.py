"""The Mix-GEMM software library: Algorithm 1 on top of the u-engine.

This is the BLIS-derived narrow-precision GEMM of Section III-A.  The three
procedures of Algorithm 1 map one-to-one onto methods here:

* :meth:`MixGemm.gemm`          -- ``M-GEMM``: panel decomposition over
  ``n/nc``, ``k/kc``, ``m/mc`` plus the single ``bs.set``;
* :meth:`MixGemm._macro_kernel` -- ``MACRO-KERNEL``: u-panel extraction over
  ``nc/nr`` and ``mc/mr``;
* :meth:`MixGemm._micro_kernel` -- ``u-KERNEL``: the bs.ip issue loops and
  the mr x nr bs.get collection, with ``kua``/``kub`` balancing for mixed
  precision.

The library drives a :class:`~repro.core.microengine.MicroEngine` instance,
so every run is simultaneously a bit-exact computation *and* a timing
measurement: the returned :class:`GemmResult` carries the output matrix, the
engine PMU, and the modelled cycle count including the scalar core's load
and loop-overhead instructions (see :class:`KernelCosts`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .backend import EVENT, FAST, BackendDecision, resolve_backend
from .binseg import BinSegError, ceil_div
from .config import MixGemmConfig
from .isa import KernelCosts
from .microengine import MicroEngine, PmuCounters
from .packcache import PackingCache
from .packing import (
    MicroPanel,
    PackedMatrix,
    aligned_kc,
    create_micro_panel,
    pack_matrix_a,
    pack_matrix_b,
)

# KernelCosts is re-exported here for the many call sites that import
# it from this module; the definition moved next to the bs.* encodings
# in core/isa.py so the ISA cost table has a single home (REP013).


@dataclass
class GemmResult:
    """Output of one Mix-GEMM run: values plus performance accounting."""

    c: np.ndarray
    cycles: int
    macs: int
    pmu: PmuCounters
    config: MixGemmConfig
    instructions: dict[str, int] = field(default_factory=dict)
    backend: str = EVENT

    @property
    def macs_per_cycle(self) -> float:
        return self.macs / self.cycles if self.cycles else 0.0

    def gops(self, freq_ghz: float = 1.2) -> float:
        """Throughput in GOPS (2 ops per MAC) at ``freq_ghz``."""
        return 2.0 * self.macs_per_cycle * freq_ghz


def reference_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Ground-truth integer GEMM used to verify the simulated datapath."""
    return np.asarray(a, dtype=np.int64) @ np.asarray(b, dtype=np.int64)


class MixGemm:
    """Narrow-precision GEMM executor bound to one u-engine instance.

    Parameters
    ----------
    config:
        Data sizes, blocking and buffer depth.  ``kc`` is re-aligned to a
        whole number of accumulation groups so packed k-slices never split
        a u-vector.
    emulate_datapath:
        Forwarded to the engine: route every accumulation through the
        binary-segmentation pack/multiply/slice pipeline (slow, bit-exact
        by construction) or compute group products directly (identical
        values, faster).
    costs:
        Scalar-core cost model; see :class:`KernelCosts`.
    memory:
        Optional cache-backed memory system (duck-typed: ``load_a(run,
        word)``, ``load_b(run, word)`` and ``update_c(row, col)``, each
        returning a latency in cycles -- see
        :class:`repro.sim.trace.GemmMemorySystem`).  When given, u-vector
        loads and C updates are charged simulated cache latencies instead
        of the constant :class:`KernelCosts` figures.
    fault_hook:
        Optional fault injector (duck-typed; see
        :class:`repro.robustness.faults.FaultInjector`).  Its
        ``on_pack(operand, packed)`` is called after each operand is
        compressed -- modelling corruption of the stored u-vectors -- and
        it is forwarded to the engine for AccMem faults.
    pack_guard:
        Optional integrity guard (duck-typed; see
        :class:`repro.robustness.guards.PackGuard`).  Checksums are taken
        at pack time and verified before the u-kernel consumes the
        words; the accumulated C is range-checked against the algebraic
        bound.  Guard failures raise
        :class:`repro.robustness.errors.GuardError`.
    backend:
        ``"event"``, ``"fast"`` or ``"auto"``; overrides
        ``config.backend``.  Dispatch happens per :meth:`gemm` call via
        :func:`repro.core.backend.resolve_backend`; hooks that need
        event fidelity always win.  The decision taken by the last call
        is kept on :attr:`last_decision`.
    pack_cache:
        Optional :class:`~repro.core.packcache.PackingCache` consulted
        before packing either operand on the event path (the fast path
        never materializes u-vectors).  Share one instance across
        executors to amortize static-weight packing.
    """

    def __init__(
        self,
        config: MixGemmConfig,
        *,
        emulate_datapath: bool = True,
        costs: KernelCosts | None = None,
        memory=None,
        fault_hook=None,
        pack_guard=None,
        backend: str | None = None,
        pack_cache: PackingCache | None = None,
    ) -> None:
        self.config = config
        self.costs = costs or KernelCosts()
        self.memory = memory
        self.fault_hook = fault_hook
        self.pack_guard = pack_guard
        self.emulate_datapath = emulate_datapath
        self.backend = backend if backend is not None else config.backend
        self.pack_cache = pack_cache
        self.last_decision: BackendDecision | None = None
        self.engine = MicroEngine(emulate_datapath=emulate_datapath,
                                  fault_hook=fault_hook)
        # kc counts 64-bit u-vectors; convert to logical elements and align
        # to whole accumulation groups so k-slices never split a u-vector.
        self._kc = aligned_kc(config.blocking.kc * config.layout.elems_a,
                              config.layout.group_elements)

    # -- public API -----------------------------------------------------------

    def gemm(self, a: np.ndarray, b: np.ndarray,
             c: np.ndarray | None = None) -> GemmResult:
        """Compute ``C (+)= A @ B`` with quantized narrow-integer operands.

        ``a`` is the m x k activation matrix at ``bw_a`` bits, ``b`` the
        k x n weight matrix at ``bw_b`` bits.  The accumulator matrix ``c``
        (int64) is updated in place when given, matching GEMM semantics.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2:
            raise BinSegError("gemm expects 2-D operands")
        m, k = a.shape
        kb, n = b.shape
        if k != kb:
            raise BinSegError(f"inner dimensions differ: {k} vs {kb}")
        if c is None:
            c = np.zeros((m, n), dtype=np.int64)
        elif c.shape != (m, n):
            raise BinSegError(f"C shape {c.shape} does not match ({m}, {n})")

        decision = resolve_backend(
            self.backend, self.config,
            emulate_datapath=self.emulate_datapath,
            memory=self.memory, fault_hook=self.fault_hook,
            pack_guard=self.pack_guard,
        )
        self.last_decision = decision
        if decision.backend == FAST:
            from .fastpath import FastPathFallback, run_fastpath
            try:
                result = run_fastpath(self.config, self.costs, a, b, c)
            except FastPathFallback as fallback:
                self.last_decision = BackendDecision(EVENT, str(fallback))
            else:
                return self._fold_fast_result(result)

        if self.pack_cache is not None:
            packed_a = self.pack_cache.get_or_pack("A", a, self.config)
            packed_b = self.pack_cache.get_or_pack("B", b, self.config)
        else:
            packed_a = pack_matrix_a(a, self.config)
            packed_b = pack_matrix_b(b, self.config)

        # Checksums at pack time; storage corruption (the fault hook)
        # happens between packing and consumption, exactly where a real
        # deployment would suffer memory soft errors.
        if self.pack_guard is not None:
            sum_a = self.pack_guard.checksum(packed_a)
            sum_b = self.pack_guard.checksum(packed_b)
        if self.fault_hook is not None:
            packed_a = self.fault_hook.on_pack("A", packed_a)
            packed_b = self.fault_hook.on_pack("B", packed_b)
        if self.pack_guard is not None:
            self.pack_guard.verify(packed_a, sum_a, "A")
            self.pack_guard.verify(packed_b, sum_b, "B")

        blk = self.config.blocking
        self.engine.set_config(self.config)  # bs.set, once per GEMM

        # M-GEMM: jc over n, pc over k, ic over m (Algorithm 1 lines 21-28).
        for jc in range(0, n, blk.nc):
            nc = min(blk.nc, n - jc)
            for pc in range(0, k, self._kc):
                kc = min(self._kc, k - pc)
                for ic in range(0, m, blk.mc):
                    mc = min(blk.mc, m - ic)
                    self._macro_kernel(
                        packed_a, packed_b, c,
                        ic, mc, jc, nc, pc, pc + kc,
                    )

        if self.pack_guard is not None:
            self.pack_guard.check_result(c, k)

        macs = m * n * k
        pmu = self.engine.pmu
        pmu.cycles_total = self.engine.now
        return GemmResult(
            c=c,
            cycles=self.engine.now,
            macs=macs,
            pmu=pmu,
            config=self.config,
            instructions={
                "bs.set": pmu.set_instructions,
                "bs.ip": pmu.ip_instructions,
                "bs.get": pmu.get_instructions,
            },
        )

    def _fold_fast_result(self, result: GemmResult) -> GemmResult:
        """Fold a fast-path run into the executor's cumulative engine state.

        The event backend never resets between :meth:`gemm` calls: the
        engine clock and PMU accumulate, so a reused executor reports
        cumulative cycles and instruction counts.  A fast run models the
        same ``bs.set`` (which also resets the AccMem) and the same
        modelled cycles, so interleaving backends on one executor stays
        exactly cycle- and counter-compatible with an all-event history.
        """
        engine = self.engine
        engine.set_config(self.config)       # the modelled bs.set
        engine.advance(result.cycles - 1)    # everything after it
        pmu = engine.pmu
        delta = result.pmu
        pmu.engine_busy_cycles += delta.engine_busy_cycles
        pmu.buffer_full_stall_cycles += delta.buffer_full_stall_cycles
        pmu.get_stall_cycles += delta.get_stall_cycles
        pmu.macs += delta.macs
        pmu.groups += delta.groups
        pmu.ip_instructions += delta.ip_instructions
        pmu.get_instructions += delta.get_instructions
        pmu.cycles_total = engine.now
        result.pmu = pmu
        result.cycles = engine.now
        result.instructions = {
            "bs.set": pmu.set_instructions,
            "bs.ip": pmu.ip_instructions,
            "bs.get": pmu.get_instructions,
        }
        return result

    # -- Algorithm 1 internals --------------------------------------------------

    def _macro_kernel(
        self,
        packed_a: PackedMatrix,
        packed_b: PackedMatrix,
        c: np.ndarray,
        ic: int, mc: int, jc: int, nc: int, k_lo: int, k_hi: int,
    ) -> None:
        blk = self.config.blocking
        for jr in range(jc, jc + nc, blk.nr):
            b_up = create_micro_panel(packed_b, jr, blk.nr, k_lo, k_hi)
            for ir in range(ic, ic + mc, blk.mr):
                a_up = create_micro_panel(packed_a, ir, blk.mr, k_lo, k_hi)
                self._micro_kernel(a_up, b_up, c, ir, jr)

    def _micro_kernel(
        self,
        a_up: MicroPanel,
        b_up: MicroPanel,
        c: np.ndarray,
        ir: int, jr: int,
    ) -> None:
        """u-KERNEL: stream u-vector pairs group by group, then collect.

        Issue order matches Algorithm 1: for every k-group, all nr x mr
        (i, j) cells receive their kua/kub u-vectors, so the engine's
        modulo-AccMem addressing lines up with slot ``j + i * mr``.
        """
        blk = self.config.blocking
        lay = self.config.layout
        costs = self.costs
        engine = self.engine
        n_groups = a_up.runs[0].n_groups
        ku_iters = max(lay.kua, lay.kub)

        group_base = a_up.k_offset // lay.group_elements

        for g in range(n_groups):
            # The k-group's u-vectors are loaded from L1 into the RF once
            # (kua*mr + kub*nr loads) and reused across the i/j loops.
            if self.memory is None:
                engine.advance(
                    costs.load_cost
                    * (lay.kua * blk.mr + lay.kub * blk.nr)
                    + costs.kgroup_overhead
                )
            else:
                cycles = costs.kgroup_overhead
                for j in range(min(blk.mr, a_up.valid_runs)):
                    for w in range(lay.kua):
                        cycles += self.memory.load_a(
                            ir + j, (group_base + g) * lay.kua + w
                        )
                for i in range(min(blk.nr, b_up.valid_runs)):
                    for w in range(lay.kub):
                        cycles += self.memory.load_b(
                            jr + i, (group_base + g) * lay.kub + w
                        )
                engine.advance(cycles)
            for i in range(blk.nr):
                for j in range(blk.mr):
                    engine.advance(costs.inner_loop_overhead)
                    a_words = a_up.runs[j].group_words(g)
                    b_words = b_up.runs[i].group_words(g)
                    for ku in range(ku_iters):
                        push_a = ku < lay.kua
                        push_b = ku < lay.kub
                        engine.push_pair(
                            a_words[ku] if push_a else 0,
                            b_words[ku] if push_b else 0,
                            push_a=push_a,
                            push_b=push_b,
                        )

        # Collection loop (Algorithm 1 lines 11-14) + C update.
        for i in range(blk.nr):
            for j in range(blk.mr):
                value, _ = engine.read_slot(j + i * blk.mr)
                row, col = ir + j, jr + i
                if row < c.shape[0] and col < c.shape[1]:
                    if self.memory is None:
                        engine.advance(costs.c_update_cost)
                    else:
                        engine.advance(self.memory.update_c(row, col))
                    c[row, col] += value


def mix_gemm(
    a: np.ndarray,
    b: np.ndarray,
    bw_a: int,
    bw_b: int,
    *,
    signed_a: bool = True,
    signed_b: bool = True,
    emulate_datapath: bool = True,
    config: MixGemmConfig | None = None,
) -> GemmResult:
    """One-call convenience wrapper: quantized ``A @ B`` via Mix-GEMM."""
    if config is None:
        config = MixGemmConfig(
            bw_a=bw_a, bw_b=bw_b, signed_a=signed_a, signed_b=signed_b,
        )
    executor = MixGemm(config, emulate_datapath=emulate_datapath)
    return executor.gemm(a, b)


def macs_for(m: int, n: int, k: int) -> int:
    """MAC count of an m x n x k GEMM."""
    return m * n * k


def uvector_loads(m: int, n: int, k: int, config: MixGemmConfig) -> int:
    """Total u-vector loads a full GEMM performs (for memory accounting)."""
    lay = config.layout
    blk = config.blocking
    groups_per_run = ceil_div(k, lay.group_elements)
    m_tiles = ceil_div(m, blk.mr)
    n_tiles = ceil_div(n, blk.nr)
    per_kernel = groups_per_run * (lay.kua * blk.mr + lay.kub * blk.nr)
    return m_tiles * n_tiles * per_kernel
