"""Packing cache: pack each operand once, reuse it across GEMM calls.

The BLIS lineage this library reproduces amortizes packing across the
macro-kernel and packs static weights exactly once per deployment
(Mix-GEMM Section III-A; Martinez et al. make the same point for the
whole mixed-precision GEMM family).  The reference ``MixGemm.gemm``
instead re-packs both operands on every call -- correct, but it turns
repeated inference over a fixed graph into a packing benchmark.

:class:`PackingCache` closes that gap for the event backend (the fast
path never materializes u-vectors, so it needs no cache).  Entries are
keyed by

* the *layout* the packed words depend on -- operand side, element
  width, signedness, ``kua``/``kub``, group size and word width; the
  blocking parameters do **not** enter the key because panels are cut
  from the packed matrix afterwards -- and
* a blake2b *content fingerprint* of the dense matrix (shape, dtype,
  bytes).  Content hashing, not object identity: the runtime quantizes
  weights into a fresh array each inference, byte-identical every time,
  and identity keys would miss all of them.

Invalidation is therefore automatic -- mutate or re-quantize a matrix
to different values and its fingerprint changes -- at the price of one
hash per call, which is orders of magnitude cheaper than re-packing.
Capacity is bounded by an LRU policy.  Cached :class:`PackedMatrix`
objects are deeply immutable (tuples of frozen ``KVector``), and fault
hooks corrupt *copies* (``FaultInjector.on_pack`` returns new objects),
so sharing one entry across calls and cores is safe.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .config import MixGemmConfig
from .errors import ReproError
from .locks import make_rlock
from .packing import PackedMatrix, pack_matrix_a, pack_matrix_b

#: Default entry bound: a deployment graph's worth of weight matrices
#: plus headroom for the activations in flight.
DEFAULT_CAPACITY = 64


class PackCacheError(ReproError, ValueError):
    """Raised on misuse (unknown operand side, bad capacity)."""


@dataclass
class PackCacheStats:
    """Hit/miss accounting; ``misses`` equals the packs performed."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def packs(self) -> int:
        return self.misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PackingCache:
    """LRU cache of :class:`PackedMatrix` keyed by layout + content."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise PackCacheError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        # One cache is shared across ParallelMixGemm cores and serving
        # workers; the OrderedDict reorder-on-hit is not atomic under
        # free-threaded access, so every access takes the lock --
        # enforced by `repro check --concurrency` via the annotation.
        self._lock = make_rlock("PackingCache._lock")
        self._entries: OrderedDict[
            tuple[object, ...], PackedMatrix
        ] = OrderedDict()               # repro: guarded-by(_lock)
        self.stats = PackCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def capacity(self) -> int:
        return self._capacity

    @staticmethod
    def fingerprint(matrix: np.ndarray) -> str:
        """Content hash of a dense operand (shape + dtype + bytes)."""
        arr = np.ascontiguousarray(matrix)
        digest = hashlib.blake2b(digest_size=16)
        digest.update(repr((arr.shape, arr.dtype.str)).encode())
        digest.update(arr.tobytes())
        return digest.hexdigest()

    @staticmethod
    def layout_key(operand: str, config: MixGemmConfig) -> tuple[object, ...]:
        """Every config field the packed words depend on, and nothing else."""
        lay = config.layout
        if operand == "A":
            return ("A", config.bw_a, config.signed_a, lay.kua,
                    lay.group_elements, config.word_bits)
        if operand == "B":
            return ("B", config.bw_b, config.signed_b, lay.kub,
                    lay.group_elements, config.word_bits)
        raise PackCacheError(f"operand must be 'A' or 'B', got {operand!r}")

    def get_or_pack(self, operand: str, matrix: np.ndarray,
                    config: MixGemmConfig) -> PackedMatrix:
        """Return the packed form of ``matrix``, packing at most once."""
        key = self.layout_key(operand, config) + (self.fingerprint(matrix),)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return cached
        packer = pack_matrix_a if operand == "A" else pack_matrix_b
        packed = packer(matrix, config)
        with self._lock:
            raced = self._entries.get(key)
            if raced is not None:
                # Another thread packed the same content concurrently;
                # keep its (identical, immutable) entry.
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return raced
            self.stats.misses += 1
            self._entries[key] = packed
            if len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        return packed

    def prewarm(self, operand: str, matrix: np.ndarray,
                config: MixGemmConfig) -> bool:
        """Pack ``matrix`` into the cache ahead of time.

        Compiled plans call this once per static weight so the first
        served request never pays a pack.  Returns ``True`` when this
        call performed the pack, ``False`` on an already-warm entry.
        """
        key = self.layout_key(operand, config) + (self.fingerprint(matrix),)
        with self._lock:
            warm = key in self._entries
        self.get_or_pack(operand, matrix, config)
        return not warm

    def clear(self) -> None:
        """Drop every entry; statistics are preserved."""
        with self._lock:
            self._entries.clear()
