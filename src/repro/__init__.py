"""repro -- reproduction of Mix-GEMM (HPCA 2023).

A hardware-software codesign for mixed-precision quantized DNN inference on
edge RISC-V devices, rebuilt as a Python library: bit-exact functional
models of binary segmentation, the u-engine and the BLIS-derived GEMM
library; a quantization + QAT stack; six CNN workload models; cycle-level
performance, energy and area models; and the benchmark harness regenerating
every table and figure of the paper's evaluation.

Quick start::

    import numpy as np
    from repro import MixGemmConfig, mix_gemm

    rng = np.random.default_rng(0)
    a = rng.integers(-8, 8, size=(16, 32))   # 4-bit activations
    b = rng.integers(-8, 8, size=(32, 16))   # 4-bit weights
    result = mix_gemm(a, b, bw_a=4, bw_b=4)
    assert np.array_equal(result.c, a.astype(np.int64) @ b)
    print(f"{result.macs_per_cycle:.2f} MAC/cycle, "
          f"{result.gops():.2f} GOPS @ 1.2 GHz")
"""

from .core import (
    BinSegSpec,
    BlockingParams,
    GemmResult,
    MicroEngine,
    MixGemm,
    MixGemmConfig,
    mix_gemm,
)

__version__ = "1.0.0"

__all__ = [
    "BinSegSpec",
    "BlockingParams",
    "GemmResult",
    "MicroEngine",
    "MixGemm",
    "MixGemmConfig",
    "mix_gemm",
    "__version__",
]
