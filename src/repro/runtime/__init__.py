"""Deployment runtime: graph IR, JSON model format, inference engine."""

from .engine import InferenceEngine, InferenceResult, LayerStats
from .export_modules import export_into, export_model
from .graph import (
    FORMAT_VERSION,
    GraphBuilder,
    GraphError,
    GraphModel,
    NodeSpec,
    export_sequential,
)
from .async_client import AsyncInferenceClient
from .overload import (
    ADMISSION_POLICIES,
    AdmissionQueue,
    CircuitBreaker,
)
from .plan import (
    AttachedPlan,
    GraphPlan,
    PlanInfo,
    PlanShareError,
    SharedPlan,
    SharedPlanHandle,
    attach_plan,
    compile_graph,
    export_plan,
    plan_share_stats,
)
from .serving import (
    BatchedServer,
    ServedResponse,
    ServingError,
    ServingReport,
    ServingStats,
    serve,
)
from .sharding import ShardedServer, ShardingUnavailable

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionQueue",
    "AsyncInferenceClient",
    "CircuitBreaker",
    "InferenceEngine",
    "InferenceResult",
    "LayerStats",
    "export_into",
    "export_model",
    "FORMAT_VERSION",
    "GraphBuilder",
    "GraphError",
    "GraphModel",
    "NodeSpec",
    "export_sequential",
    "AttachedPlan",
    "GraphPlan",
    "PlanInfo",
    "PlanShareError",
    "SharedPlan",
    "SharedPlanHandle",
    "attach_plan",
    "compile_graph",
    "export_plan",
    "plan_share_stats",
    "BatchedServer",
    "ServedResponse",
    "ServingError",
    "ServingReport",
    "ServingStats",
    "serve",
    "ShardedServer",
    "ShardingUnavailable",
]
