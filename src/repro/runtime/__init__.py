"""Deployment runtime: graph IR, JSON model format, inference engine."""

from .engine import InferenceEngine, InferenceResult, LayerStats
from .export_modules import export_into, export_model
from .graph import (
    FORMAT_VERSION,
    GraphBuilder,
    GraphError,
    GraphModel,
    NodeSpec,
    export_sequential,
)
from .async_client import AsyncInferenceClient
from .overload import (
    ADMISSION_POLICIES,
    AdmissionQueue,
    CircuitBreaker,
)
from .plan import GraphPlan, PlanInfo, compile_graph
from .serving import (
    BatchedServer,
    ServedResponse,
    ServingError,
    ServingReport,
    ServingStats,
)

__all__ = [
    "ADMISSION_POLICIES",
    "AdmissionQueue",
    "AsyncInferenceClient",
    "CircuitBreaker",
    "InferenceEngine",
    "InferenceResult",
    "LayerStats",
    "export_into",
    "export_model",
    "FORMAT_VERSION",
    "GraphBuilder",
    "GraphError",
    "GraphModel",
    "NodeSpec",
    "export_sequential",
    "GraphPlan",
    "PlanInfo",
    "compile_graph",
    "BatchedServer",
    "ServedResponse",
    "ServingError",
    "ServingReport",
    "ServingStats",
]
