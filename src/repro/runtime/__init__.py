"""Deployment runtime: graph IR, JSON model format, inference engine."""

from .engine import InferenceEngine, InferenceResult, LayerStats
from .export_modules import export_into, export_model
from .graph import (
    FORMAT_VERSION,
    GraphBuilder,
    GraphError,
    GraphModel,
    NodeSpec,
    export_sequential,
)
from .plan import GraphPlan, PlanInfo, compile_graph
from .serving import BatchedServer, ServingReport, ServingStats

__all__ = [
    "InferenceEngine",
    "InferenceResult",
    "LayerStats",
    "export_into",
    "export_model",
    "FORMAT_VERSION",
    "GraphBuilder",
    "GraphError",
    "GraphModel",
    "NodeSpec",
    "export_sequential",
    "GraphPlan",
    "PlanInfo",
    "compile_graph",
    "BatchedServer",
    "ServingReport",
    "ServingStats",
]
