"""Runtime value-range observation hook (the range sanitizer's tap).

The abstract-interpretation range analyzer (:mod:`repro.analysis.ranges`)
proves static per-layer intervals; its runtime sanitizer cross-checks
them against what the engine actually computes.  The engine and the
compiled plans cannot import the analysis package (the analysis package
imports *them*), so the coupling is inverted through this module -- the
same installable-hook pattern the lock sanitizer uses via
:mod:`repro.core.locks`.

The default state is a ``None`` hook, and :func:`observe_range` is a
single attribute read plus a ``None`` check in that state, so the
inference hot path pays effectively nothing when no sanitizer is
armed.  Installation is process-global and meant for test/diagnostic
sessions, not concurrent production serving.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

#: ``hook(label, kind, values)`` -- ``kind`` is one of ``"act"``
#: (quantized GEMM A-operand codes), ``"acc"`` (post-wrap integer
#: accumulator output) or ``"out"`` (the node's float output tensor).
RangeHook = Callable[[str, str, np.ndarray], None]

_hook: Optional[RangeHook] = None


def set_range_hook(hook: Optional[RangeHook]) -> Optional[RangeHook]:
    """Install ``hook`` (or ``None`` to disarm); returns the previous one."""
    global _hook
    previous = _hook
    _hook = hook
    return previous


def observe_range(label: str, kind: str, values: np.ndarray) -> None:
    """Report one tensor to the installed hook; no-op when disarmed."""
    hook = _hook
    if hook is not None:
        hook(label, kind, values)


__all__ = ["RangeHook", "observe_range", "set_range_hook"]
