"""Batched multi-worker serving on top of compiled inference plans.

The ROADMAP's north star is a runtime that can "serve heavy traffic" --
sharding, batching, async, caching.  This module supplies the
single-process core of that story:

* a **bounded request queue** with admission control: a full queue
  blocks (with timeout), rejects, or sheds its oldest entry depending
  on the configured :data:`~repro.runtime.overload.ADMISSION_POLICIES`
  policy, so sustained overload degrades into structured
  :class:`~repro.robustness.errors.OverloadError` responses instead of
  unbounded memory growth;
* **per-request deadlines**: ``submit(x, deadline_ms=...)`` stamps an
  absolute deadline on the request; the batcher sheds expired requests
  before they reach a worker and cuts batches early so a near-deadline
  member is not held for stragglers;
* a **dynamic micro-batcher**: the first request of a batch opens a
  deadline window (``max_wait_ms``); further requests join until the
  window closes, ``max_batch`` is reached, or a member's deadline
  forces an early cut;
* a **worker pool** of compiled :class:`~repro.runtime.plan.GraphPlan`
  instances behind a ``ThreadPoolExecutor``.  Plans hold mutable
  scratch state and are not thread-safe, so each worker owns a private
  runner checked out of a **bounded** pool queue *before* dispatch --
  the checkout is what gives the executor backpressure (its internal
  queue is unbounded, so dispatching first would defeat admission
  control).  All plans share one (locked)
  :class:`~repro.core.packcache.PackingCache`;
* an optional **circuit breaker**
  (:class:`~repro.runtime.overload.CircuitBreaker`): when guards or
  fault injection are armed, repeated faulty batches open the circuit
  and the pool degrades to each runner's clean numpy reference engine;
  responses carry degraded-mode metadata until a half-open probe batch
  comes back clean.

Futures resolve to :class:`ServedResponse` objects carrying the output
*and* per-request reliability metadata (latency, degraded flag, breaker
state, fallback warnings surfaced from the inference result rather than
dropped in the worker thread).  :class:`ServingReport` aggregates p50 /
p95 / p99 / mean latency, throughput, the batch-size histogram,
observed queue depths and every overload counter, so a load test
doubles as a capacity measurement.

Process-level sharding is built on top of this class:
:class:`~repro.runtime.sharding.ShardedServer` overrides only the
runner-construction hook (:meth:`BatchedServer._setup_runners`) to fan
batches out to worker processes executing a zero-copy shared plan; the
:func:`serve` factory picks between the two behind one API (and
degrades process sharding to this threaded pool with a
:class:`~repro.robustness.errors.ReliabilityWarning` when the
environment cannot support it).  The asyncio front end lives in
:mod:`repro.runtime.async_client` and works against either flavour.
"""

from __future__ import annotations

import queue
import threading
import time
import warnings
from collections import Counter
from concurrent.futures import Future, InvalidStateError, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.config import DEFAULT_ACCMEM_BITS
from repro.core.errors import ReproError
from repro.core.locks import make_lock
from repro.core.packcache import PackingCache
from repro.robustness.errors import OverloadError, ReliabilityWarning
from repro.robustness.faults import FaultPlan
from repro.robustness.recovery import BreakerPolicy, RecoveryPolicy

from .engine import InferenceEngine
from .graph import GraphModel
from .overload import AdmissionQueue, CircuitBreaker
from .plan import compile_graph

#: Queue sentinel telling the batcher thread to drain and exit.
_STOP = object()

#: Map from OverloadError reason to the ServingStats counter it bumps.
_REASON_COUNTERS = {
    "deadline": "shed_deadline",
    "shed": "shed_capacity",
    "closed": "shed_closed",
    "queue-full": "rejected",
    "admission-timeout": "admit_timeouts",
    "cancelled": "cancelled",
}


class ServingError(ReproError, RuntimeError):
    """Raised on server misuse (bad parameters, submit after close)."""


@dataclass
class _Request:
    """One in-flight sample plus its promise, deadline and timing."""

    x: np.ndarray
    future: Future
    submitted: float
    deadline: Optional[float] = None      # absolute perf_counter time
    deadline_ms: Optional[float] = None   # as given by the client
    completed: float = 0.0


@dataclass(frozen=True)
class ServedResponse:
    """What a request's future resolves to: output + reliability metadata.

    ``warnings`` carries human-readable fallback/degradation notices
    surfaced from the worker's inference result (one per recovered
    layer, plus a breaker notice when the batch ran degraded) --
    per-request metadata instead of process-global ``warnings.warn``
    noise from worker threads.
    """

    output: np.ndarray
    latency_ms: float
    degraded: bool = False
    breaker_state: str = "disabled"
    warnings: tuple[str, ...] = ()
    recovered_layers: tuple[str, ...] = ()
    fault_detections: int = 0


@dataclass
class _Runner:
    """One worker slot: the primary backend plus its degraded fallback."""

    primary: object
    reference: Optional[InferenceEngine] = None


@dataclass
class ServingStats:
    """Latency/throughput/overload accounting for one measurement window."""

    requests: int = 0
    served: int = 0
    batches: int = 0
    seconds: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_mean_ms: float = 0.0
    throughput_rps: float = 0.0
    batch_histogram: dict[int, int] = field(default_factory=dict)
    max_queue_depth: int = 0
    mean_batch_size: float = 0.0
    queue_capacity: int = 0
    admission: str = "block"
    shed_deadline: int = 0
    shed_capacity: int = 0
    shed_closed: int = 0
    rejected: int = 0
    admit_timeouts: int = 0
    cancelled: int = 0
    degraded_responses: int = 0
    breaker_state: str = "disabled"
    breaker_trips: int = 0

    @property
    def shed_total(self) -> int:
        """Requests refused or shed by overload protection."""
        return (self.shed_deadline + self.shed_capacity
                + self.shed_closed + self.rejected
                + self.admit_timeouts + self.cancelled)

    @property
    def shed_rate(self) -> float:
        """Fraction of submitted requests lost to overload protection."""
        return self.shed_total / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests, "served": self.served,
            "batches": self.batches,
            "seconds": self.seconds,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "throughput_rps": self.throughput_rps,
            "batch_histogram": {str(k): v for k, v
                                in sorted(self.batch_histogram.items())},
            "max_queue_depth": self.max_queue_depth,
            "mean_batch_size": self.mean_batch_size,
            "queue_capacity": self.queue_capacity,
            "admission": self.admission,
            "shed_deadline": self.shed_deadline,
            "shed_capacity": self.shed_capacity,
            "shed_closed": self.shed_closed,
            "rejected": self.rejected,
            "admit_timeouts": self.admit_timeouts,
            "cancelled": self.cancelled,
            "shed_total": self.shed_total,
            "shed_rate": self.shed_rate,
            "degraded_responses": self.degraded_responses,
            "breaker_state": self.breaker_state,
            "breaker_trips": self.breaker_trips,
        }


@dataclass
class ServingReport:
    """Outputs (request order) plus the stats of the run.

    ``outputs`` keeps the historical array-per-request shape (``None``
    where a request was shed); ``responses`` holds the full
    :class:`ServedResponse` objects and ``errors`` the
    :class:`OverloadError` for every shed slot.
    """

    outputs: list[Optional[np.ndarray]]
    stats: ServingStats
    workers: int
    max_batch: int
    compiled: bool
    responses: list[Optional[ServedResponse]] = field(default_factory=list)
    errors: list[Optional[Exception]] = field(default_factory=list)


class BatchedServer:
    """Bounded queue + micro-batcher + worker pool over one graph.

    Parameters
    ----------
    graph:
        The deployment IR every worker serves.
    workers:
        Worker-pool width; also the number of runner replicas built.
    max_batch:
        Upper bound on the dynamic batch size.
    max_wait_ms:
        How long the batcher holds an open batch for stragglers.  The
        first queued request starts the clock; ``0`` degenerates to
        batch-per-request.  A member's deadline can cut the window
        short.
    queue_capacity:
        Bound on the admission queue.  Sustained overload hits this
        bound and resolves per the admission policy instead of growing
        memory without limit.
    admission:
        Full-queue policy: ``"block"`` (wait up to
        ``admission_timeout_ms``), ``"reject"`` (fail fast) or
        ``"shed-oldest"`` (evict the stalest queued request).
    admission_timeout_ms:
        How long a blocked ``submit()`` waits for a queue slot.
    compiled:
        Serve from compiled :class:`~repro.runtime.plan.GraphPlan`
        replicas (default) or from uncompiled engines.  Ignored (forced
        off) when guards or fault injection are armed -- those paths
        need the engine's recovery machinery.
    guard_level / fault_plan / recovery:
        Forwarded to each worker's :class:`InferenceEngine`, same
        semantics as direct inference.  Arming either makes every
        response carry fault/fallback metadata.
    breaker:
        A :class:`~repro.robustness.recovery.BreakerPolicy` arms the
        circuit breaker: repeated faulty batches degrade the pool to
        per-runner numpy reference engines until a clean half-open
        probe.  ``None`` (default) disables it.
    backend / gemm_backend / accmem_bits:
        Forwarded to the plan/engine, same semantics as
        :class:`~repro.runtime.engine.InferenceEngine`.
    """

    def __init__(self, graph: GraphModel, *, workers: int = 2,
                 max_batch: int = 8, max_wait_ms: float = 2.0,
                 queue_capacity: int = 64, admission: str = "block",
                 admission_timeout_ms: float = 1000.0,
                 compiled: bool = True, backend: str = "numpy",
                 gemm_backend: str = "auto",
                 accmem_bits: int = DEFAULT_ACCMEM_BITS,
                 guard_level: str = "off",
                 fault_plan: Optional[FaultPlan] = None,
                 recovery: Optional[RecoveryPolicy] = None,
                 breaker: Optional[BreakerPolicy] = None,
                 tuned: bool = False, tune_cache=None) -> None:
        if workers < 1:
            raise ServingError(f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ServingError(
                f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if queue_capacity < 1:
            raise ServingError(
                f"queue_capacity must be >= 1, got {queue_capacity}")
        if admission_timeout_ms < 0:
            raise ServingError(f"admission_timeout_ms must be >= 0, "
                               f"got {admission_timeout_ms}")
        self.workers = workers
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1000.0
        self.queue_capacity = queue_capacity
        self.admission = admission
        self.compiled = compiled
        # Autotuner consumption: compiled plans look up per-layer tuned
        # blocking in the on-disk result cache.  Stored before
        # _setup_runners runs because ShardedServer overrides that hook.
        self.tuned = tuned
        self.tune_cache = tune_cache
        self.pack_cache = PackingCache()
        guarded = guard_level != "off" or fault_plan is not None
        self._breaker = (CircuitBreaker(breaker)
                         if breaker is not None else None)
        # Runner checkout is the backpressure point: the pool queue is
        # bounded at `workers`, and the batcher blocks on get() before
        # dispatching, so at most `workers` batches are ever in flight.
        self._runners: queue.Queue = queue.Queue(maxsize=workers)
        self._setup_runners(graph, guarded=guarded, backend=backend,
                            gemm_backend=gemm_backend,
                            accmem_bits=accmem_bits,
                            guard_level=guard_level,
                            fault_plan=fault_plan, recovery=recovery)
        self._pool = ThreadPoolExecutor(max_workers=workers)
        # Stats are written by batcher/worker/submitter threads and
        # drained by the client thread; lifecycle state orders submit()
        # against close().  Both disciplines are annotated and enforced
        # by `repro check --concurrency`.
        self._stats_lock = make_lock("BatchedServer._stats_lock")
        self._batch_sizes: Counter = Counter()  # repro: guarded-by(_stats_lock)
        self._queue_depths: list[int] = []      # repro: guarded-by(_stats_lock)
        self._counters: Counter = Counter()     # repro: guarded-by(_stats_lock)
        self._state_lock = make_lock("BatchedServer._state_lock")
        self._closed = False                    # repro: guarded-by(_state_lock)
        self._admission = AdmissionQueue(
            queue_capacity, policy=admission,
            timeout_s=admission_timeout_ms / 1000.0,
            on_shed=self._shed_evicted, sentinel=_STOP)
        # Testing hook: called with (route, batch) in the worker just
        # before execution; lets tests stall or observe batches
        # deterministically.  Never set in production.
        self._batch_hook = None
        self._batcher = threading.Thread(target=self._batch_loop,
                                         name="repro-batcher", daemon=True)
        self._batcher.start()

    def _setup_runners(self, graph: GraphModel, *, guarded: bool,
                       backend: str, gemm_backend: str,
                       accmem_bits: int, guard_level: str,
                       fault_plan: Optional[FaultPlan],
                       recovery: Optional[RecoveryPolicy]) -> None:
        """Fill ``self._runners`` with one :class:`_Runner` per slot.

        The thread-pool flavour builds in-process backends (engine or
        compiled plan).  :class:`~repro.runtime.sharding.ShardedServer`
        overrides exactly this hook to put process-backed runners into
        the same bounded pool -- every other dispatcher mechanism
        (admission, batching, breaker, stats) is shared.
        """
        for _ in range(self.workers):
            if guarded:
                primary: object = InferenceEngine(
                    graph, backend=backend, gemm_backend=gemm_backend,
                    accmem_bits=accmem_bits, guard_level=guard_level,
                    fault_plan=fault_plan, recovery=recovery)
            elif self.compiled:
                primary = compile_graph(
                    graph, backend=backend, gemm_backend=gemm_backend,
                    accmem_bits=accmem_bits, pack_cache=self.pack_cache,
                    tuned=self.tuned, tune_cache=self.tune_cache)
            else:
                primary = InferenceEngine(
                    graph, backend=backend, gemm_backend=gemm_backend,
                    accmem_bits=accmem_bits)
            reference = None
            if self._breaker is not None:
                reference = InferenceEngine(graph, backend="numpy",
                                            accmem_bits=accmem_bits)
            self._runners.put(_Runner(primary=primary,
                                      reference=reference))

    # -- client API -----------------------------------------------------------

    def submit(self, x: np.ndarray, *,
               deadline_ms: Optional[float] = None) -> Future:
        """Enqueue one sample (no batch axis); resolves to a
        :class:`ServedResponse`.

        ``deadline_ms`` bounds the request's total time in the system:
        if it has not *started executing* within the budget it is shed
        with an :class:`OverloadError` (reason ``deadline``) instead of
        wasting a GEMM slot.  A full queue raises synchronously per the
        admission policy.
        """
        if deadline_ms is not None and deadline_ms <= 0:
            raise ServingError(
                f"deadline_ms must be positive, got {deadline_ms}")
        now = time.perf_counter()
        request = _Request(
            x=np.asarray(x, dtype=np.float64), future=Future(),
            submitted=now,
            deadline=(now + deadline_ms / 1000.0
                      if deadline_ms is not None else None),
            deadline_ms=deadline_ms)
        request.future._repro_request = request
        # The closed check is ordered under _state_lock, but the
        # (possibly blocking) enqueue happens outside it so a blocked
        # submit can never stall close().  The re-check below plus the
        # batcher's drain-and-shed pass close the resulting race: a
        # request that lands behind _STOP is resolved with reason
        # "closed" by whichever side sees it first (double resolution
        # is idempotent via InvalidStateError).
        with self._state_lock:
            closed = self._closed
        if closed:
            raise ServingError("submit() on a closed server")
        try:
            self._admission.put(request)
        except OverloadError as exc:
            self._count(_REASON_COUNTERS[exc.reason])
            raise
        with self._state_lock:
            closed = self._closed
        if closed:
            self._resolve_overload(request, reason="closed")
        return request.future

    def run_requests(self, inputs: Sequence[np.ndarray], *,
                     deadline_ms: Optional[float] = None,
                     tolerate_overload: bool = False) -> ServingReport:
        """Submit every sample, wait for all, and report the window.

        With ``tolerate_overload`` rejected/shed requests become
        ``None`` outputs (their :class:`OverloadError` lands in
        ``report.errors``) instead of raising -- the mode load tests
        use to drive the server past capacity.
        """
        t0 = time.perf_counter()
        slots: list[Union[Future, Exception]] = []
        for x in inputs:
            try:
                slots.append(self.submit(x, deadline_ms=deadline_ms))
            except OverloadError as exc:
                if not tolerate_overload:
                    raise
                slots.append(exc)
        outputs: list[Optional[np.ndarray]] = []
        responses: list[Optional[ServedResponse]] = []
        errors: list[Optional[Exception]] = []
        for slot in slots:
            if isinstance(slot, Exception):
                outputs.append(None)
                responses.append(None)
                errors.append(slot)
                continue
            try:
                response = slot.result()
            except OverloadError as exc:
                if not tolerate_overload:
                    raise
                outputs.append(None)
                responses.append(None)
                errors.append(exc)
                continue
            outputs.append(response.output)
            responses.append(response)
            errors.append(None)
        seconds = time.perf_counter() - t0
        stats = self._window_stats(len(inputs), seconds, responses)
        return ServingReport(outputs=outputs, stats=stats,
                             workers=self.workers,
                             max_batch=self.max_batch,
                             compiled=self.compiled,
                             responses=responses, errors=errors)

    def overload_snapshot(self) -> dict:
        """Live overload observability (non-destructive, for CLIs)."""
        with self._stats_lock:
            counters = dict(self._counters)
        snap = {
            "queue_depth": self._admission.qsize(),
            "queue_capacity": self.queue_capacity,
            "admission": self.admission,
            "counters": counters,
            "breaker": (self._breaker.snapshot()
                        if self._breaker is not None else None),
        }
        return snap

    def close(self) -> None:
        """Stop accepting work, drain in-flight batches, shut down.

        Requests still queued when the sentinel lands are shed with
        reason ``closed`` -- every admitted future resolves.
        """
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self._admission.put_sentinel(_STOP)
        self._batcher.join()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "BatchedServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals ------------------------------------------------------------

    def _window_stats(self, submitted: int, seconds: float,
                      responses: Sequence[Optional[ServedResponse]],
                      ) -> ServingStats:
        """Drain the window's accounting into one ServingStats."""
        with self._stats_lock:
            histogram = dict(self._batch_sizes)
            depths = list(self._queue_depths)
            counters = dict(self._counters)
            self._batch_sizes.clear()
            self._queue_depths.clear()
            self._counters.clear()
        latencies = sorted(r.latency_ms for r in responses
                           if r is not None)
        n = len(latencies)
        batches = sum(histogram.values())
        breaker_state = "disabled"
        breaker_trips = 0
        if self._breaker is not None:
            snap = self._breaker.snapshot()
            breaker_state = snap["state"]
            breaker_trips = snap["trips"]
        return ServingStats(
            requests=submitted, served=n, batches=batches,
            seconds=seconds,
            latency_p50_ms=float(np.percentile(latencies, 50)) if n else 0.0,
            latency_p95_ms=float(np.percentile(latencies, 95)) if n else 0.0,
            latency_p99_ms=float(np.percentile(latencies, 99)) if n else 0.0,
            latency_mean_ms=float(np.mean(latencies)) if n else 0.0,
            throughput_rps=n / seconds if seconds > 0 else 0.0,
            batch_histogram=histogram,
            max_queue_depth=max(depths, default=0),
            mean_batch_size=(n / batches) if batches else 0.0,
            queue_capacity=self.queue_capacity,
            admission=self.admission,
            shed_deadline=counters.get("shed_deadline", 0),
            shed_capacity=counters.get("shed_capacity", 0),
            shed_closed=counters.get("shed_closed", 0),
            rejected=counters.get("rejected", 0),
            admit_timeouts=counters.get("admit_timeouts", 0),
            cancelled=counters.get("cancelled", 0),
            degraded_responses=counters.get("degraded_responses", 0),
            breaker_state=breaker_state,
            breaker_trips=breaker_trips,
        )

    def _count(self, key: str, n: int = 1) -> None:
        with self._stats_lock:
            self._counters[key] += n

    def _resolve_overload(self, request: _Request, *, reason: str,
                          message: Optional[str] = None) -> None:
        """Resolve a request's future with a structured OverloadError.

        Idempotent: close/shed races can reach the same request twice,
        and the loser's InvalidStateError is deliberately swallowed.
        """
        request.completed = time.perf_counter()
        if message is None:
            message = {
                "deadline": "deadline expired before execution",
                "shed": "shed by shed-oldest admission under overload",
                "closed": "request raced a server shutdown",
            }.get(reason, reason)
        exc = OverloadError(message, reason=reason,
                            queue_depth=self._admission.qsize(),
                            deadline_ms=request.deadline_ms)
        try:
            request.future.set_exception(exc)
        except InvalidStateError:
            return  # already resolved/cancelled by the other side
        self._count(_REASON_COUNTERS[reason])

    def _shed_evicted(self, request: _Request) -> None:
        """AdmissionQueue on_shed hook (runs on the submitting thread)."""
        self._resolve_overload(request, reason="shed")

    def _expired_or_cancelled(self, request: _Request,
                              now: float) -> bool:
        """Shed-at-pop filter run by the batcher for every request."""
        if request.future.cancelled():
            self._count("cancelled")
            return True
        if request.deadline is not None and now >= request.deadline:
            self._resolve_overload(request, reason="deadline")
            return True
        return False

    def _drain_closed(self) -> None:
        """After _STOP: shed whatever is still queued (reason closed)."""
        while True:
            try:
                item = self._admission.get_nowait()
            except queue.Empty:
                return
            if item is _STOP:
                continue
            self._resolve_overload(item, reason="closed")

    def _batch_loop(self) -> None:
        """Collect requests into deadline-bounded batches; dispatch."""
        while True:
            first = self._admission.get()
            if first is _STOP:
                self._drain_closed()
                return
            now = time.perf_counter()
            if self._expired_or_cancelled(first, now):
                continue
            batch = [first]
            # The batch is cut at the straggler window *or* the
            # earliest member deadline, whichever comes first: a
            # near-deadline request is never held waiting for company
            # it cannot afford.
            cut = now + self.max_wait_s
            if first.deadline is not None:
                cut = min(cut, first.deadline)
            stop = False
            while len(batch) < self.max_batch:
                remaining = cut - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    item = self._admission.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _STOP:
                    stop = True
                    break
                if self._expired_or_cancelled(item,
                                              time.perf_counter()):
                    continue
                batch.append(item)
                if item.deadline is not None:
                    cut = min(cut, item.deadline)
            with self._stats_lock:
                self._queue_depths.append(self._admission.qsize())
            # Mixed sample shapes cannot share one np.stack; split the
            # batch into shape-homogeneous sub-batches (rare path).
            by_shape: dict[tuple[int, ...], list[_Request]] = {}
            for request in batch:
                by_shape.setdefault(request.x.shape, []).append(request)
            for group in by_shape.values():
                with self._stats_lock:
                    self._batch_sizes[len(group)] += 1
                # Blocking checkout BEFORE dispatch: this is the
                # backpressure that keeps admitted-but-undispatched
                # work inside the bounded queue.
                runner = self._runners.get()
                self._pool.submit(self._run_batch, runner, group)
            if stop:
                self._drain_closed()
                return

    def _run_batch(self, runner: _Runner,
                   batch: list[_Request]) -> None:
        """Execute one shape-homogeneous batch on its checked-out runner."""
        route = "primary"
        try:
            # Last-chance shed: deadlines may have expired while the
            # batch sat waiting for a runner, and clients may have
            # cancelled.  set_running_or_notify_cancel() atomically
            # claims each future against a concurrent cancel.
            now = time.perf_counter()
            live: list[_Request] = []
            for request in batch:
                if (request.deadline is not None
                        and now >= request.deadline):
                    self._resolve_overload(request, reason="deadline")
                    continue
                if not request.future.set_running_or_notify_cancel():
                    self._count("cancelled")
                    continue
                live.append(request)
            if self._breaker is not None:
                route = self._breaker.route()
            if not live:
                if route == "probe":
                    self._breaker.cancel_probe()
                return
            if self._batch_hook is not None:
                self._batch_hook(route, live)
            backend = runner.primary
            if route == "reference" and runner.reference is not None:
                backend = runner.reference
            stacked = np.stack([r.x for r in live])
            result = backend.run(stacked)
            events = list(getattr(result, "fault_events", []))
            recovered = tuple(getattr(result, "recovered_layers", []))
            if self._breaker is not None and route != "reference":
                self._breaker.record(bool(events),
                                     probe=(route == "probe"))
            breaker_state = (self._breaker.state()
                             if self._breaker is not None else "disabled")
            degraded = route == "reference"
            notes = tuple(
                f"{e.layer}: fell back to reference backend "
                f"(detected by {e.detected_by})"
                for e in events if e.action == "fallback")
            notes += tuple(
                f"{e.layer}: {e.message}"
                for e in events if e.action == "respawn")
            if degraded:
                notes += ("batch served by reference backend: "
                          "circuit breaker open",)
            done = time.perf_counter()
            for i, request in enumerate(live):
                request.completed = done
                response = ServedResponse(
                    output=result.output[i],
                    latency_ms=(done - request.submitted) * 1000.0,
                    degraded=degraded,
                    breaker_state=breaker_state,
                    warnings=notes,
                    recovered_layers=recovered,
                    fault_detections=len(events))
                try:
                    request.future.set_result(response)
                except InvalidStateError:
                    continue  # lost a shutdown/cancel race; shed wins
            if degraded:
                self._count("degraded_responses", len(live))
        except BaseException as exc:  # pragma: no cover - defensive
            if self._breaker is not None and route == "probe":
                self._breaker.cancel_probe()
            for request in batch:
                request.completed = time.perf_counter()
                try:
                    request.future.set_exception(exc)
                except InvalidStateError:
                    continue
        finally:
            self._runners.put(runner)


def serve(graph: GraphModel, *, processes: bool = False,
          start_method: str = "spawn", **kwargs) -> BatchedServer:
    """Build a server: threaded pool or process shards, one API.

    ``processes=False`` (default) returns a :class:`BatchedServer`.
    ``processes=True`` returns a
    :class:`~repro.runtime.sharding.ShardedServer`; when the
    environment cannot support process sharding (no ``spawn`` start
    method, shared memory unavailable, worker startup failure) the
    factory degrades to the threaded pool and emits a structured
    :class:`~repro.robustness.errors.ReliabilityWarning` instead of
    failing -- the caller still gets a working server with identical
    semantics.  Misuse (guards or fault injection with
    ``processes=True``) raises :class:`ServingError` and does *not*
    fall back: that is a configuration error, not an environment
    limitation.
    """
    if not processes:
        return BatchedServer(graph, **kwargs)
    from .sharding import ShardedServer, ShardingUnavailable

    try:
        return ShardedServer(graph, start_method=start_method, **kwargs)
    except ShardingUnavailable as exc:
        warnings.warn(ReliabilityWarning(
            f"process sharding unavailable ({exc}); serving from the "
            f"threaded pool instead"), stacklevel=2)
        return BatchedServer(graph, **kwargs)


def scaling_sweep(graph: GraphModel, inputs: Sequence[np.ndarray], *,
                  worker_counts: Sequence[int] = (1, 2, 4),
                  max_batch: int = 8, max_wait_ms: float = 2.0,
                  backend: str = "numpy", gemm_backend: str = "auto",
                  compiled: bool = True,
                  queue_capacity: int = 64, admission: str = "block",
                  deadline_ms: Optional[float] = None) -> list[dict]:
    """Throughput rows for increasing worker counts (benchmark helper)."""
    rows = []
    for workers in worker_counts:
        with BatchedServer(graph, workers=workers, max_batch=max_batch,
                           max_wait_ms=max_wait_ms, backend=backend,
                           gemm_backend=gemm_backend, compiled=compiled,
                           queue_capacity=queue_capacity,
                           admission=admission) as server:
            report = server.run_requests(inputs, deadline_ms=deadline_ms,
                                         tolerate_overload=True)
        rows.append({
            "workers": workers,
            "requests": report.stats.requests,
            "served": report.stats.served,
            "throughput_rps": report.stats.throughput_rps,
            "latency_p50_ms": report.stats.latency_p50_ms,
            "latency_p95_ms": report.stats.latency_p95_ms,
            "latency_p99_ms": report.stats.latency_p99_ms,
            "shed_rate": report.stats.shed_rate,
            "mean_batch_size": report.stats.mean_batch_size,
        })
    return rows
