"""Batched multi-worker serving on top of compiled inference plans.

The ROADMAP's north star is a runtime that can "serve heavy traffic" --
sharding, batching, async, caching.  This module supplies the
single-process core of that story:

* a **request queue** accepting one sample per request;
* a **dynamic micro-batcher**: the first request of a batch opens a
  deadline window (``max_wait_ms``); further requests join until either
  the window closes or ``max_batch`` is reached, trading a bounded
  per-request latency for GEMM batches big enough to amortize per-call
  overhead (batching a conv graph multiplies the GEMM ``m`` dimension,
  not the call count);
* a **worker pool** of compiled :class:`~repro.runtime.plan.GraphPlan`
  instances behind a ``ThreadPoolExecutor``.  Plans hold mutable
  scratch state and are not thread-safe, so each worker owns a private
  plan checked out of a pool queue; all plans share one (locked)
  :class:`~repro.core.packcache.PackingCache`, so static weights are
  packed once for the whole server.  Threads (not processes) are the
  right pool here because the hot path is numpy kernels -- BLAS matmuls
  and large elementwise ops release the GIL, so batches genuinely
  overlap; the remaining Python bookkeeping is microseconds per batch.

Every request's journey is timed: :class:`ServingReport` carries p50 /
p95 / p99 / mean latency, total throughput, the batch-size histogram
and observed queue depths, so a load test doubles as a capacity
measurement.  Process-level sharding and an async client API remain
open items (see ROADMAP.md).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import Counter
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.config import DEFAULT_ACCMEM_BITS
from repro.core.errors import ReproError
from repro.core.locks import make_lock
from repro.core.packcache import PackingCache

from .engine import InferenceEngine
from .graph import GraphModel
from .plan import compile_graph

#: Queue sentinel telling the batcher thread to drain and exit.
_STOP = object()


class ServingError(ReproError, RuntimeError):
    """Raised on server misuse (bad parameters, submit after close)."""


@dataclass
class _Request:
    """One in-flight sample plus its promise and timing."""

    x: np.ndarray
    future: Future
    submitted: float
    completed: float = 0.0


@dataclass
class ServingStats:
    """Latency/throughput accounting for one measurement window."""

    requests: int = 0
    batches: int = 0
    seconds: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p95_ms: float = 0.0
    latency_p99_ms: float = 0.0
    latency_mean_ms: float = 0.0
    throughput_rps: float = 0.0
    batch_histogram: dict[int, int] = field(default_factory=dict)
    max_queue_depth: int = 0
    mean_batch_size: float = 0.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests, "batches": self.batches,
            "seconds": self.seconds,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "throughput_rps": self.throughput_rps,
            "batch_histogram": {str(k): v for k, v
                                in sorted(self.batch_histogram.items())},
            "max_queue_depth": self.max_queue_depth,
            "mean_batch_size": self.mean_batch_size,
        }


@dataclass
class ServingReport:
    """Outputs (request order) plus the stats of the run."""

    outputs: list[np.ndarray]
    stats: ServingStats
    workers: int
    max_batch: int
    compiled: bool


class BatchedServer:
    """Queue + micro-batcher + worker pool over one deployment graph.

    Parameters
    ----------
    graph:
        The deployment IR every worker serves.
    workers:
        Worker-pool width; also the number of plan replicas compiled.
    max_batch:
        Upper bound on the dynamic batch size.
    max_wait_ms:
        How long the batcher holds an open batch for stragglers.  The
        first queued request starts the clock; ``0`` degenerates to
        batch-per-request.
    compiled:
        Serve from compiled :class:`~repro.runtime.plan.GraphPlan`
        replicas (default) or from uncompiled engines -- the latter
        exists so benchmarks can measure exactly what compilation buys
        under identical batching.
    backend / gemm_backend / accmem_bits:
        Forwarded to the plan/engine, same semantics as
        :class:`~repro.runtime.engine.InferenceEngine`.
    """

    def __init__(self, graph: GraphModel, *, workers: int = 2,
                 max_batch: int = 8, max_wait_ms: float = 2.0,
                 compiled: bool = True, backend: str = "numpy",
                 gemm_backend: str = "auto",
                 accmem_bits: int = DEFAULT_ACCMEM_BITS) -> None:
        if workers < 1:
            raise ServingError(f"workers must be >= 1, got {workers}")
        if max_batch < 1:
            raise ServingError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ServingError(
                f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.workers = workers
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1000.0
        self.compiled = compiled
        self.pack_cache = PackingCache()
        self._runners: queue.SimpleQueue = queue.SimpleQueue()
        for _ in range(workers):
            if compiled:
                runner = compile_graph(
                    graph, backend=backend, gemm_backend=gemm_backend,
                    accmem_bits=accmem_bits, pack_cache=self.pack_cache)
            else:
                runner = InferenceEngine(
                    graph, backend=backend, gemm_backend=gemm_backend,
                    accmem_bits=accmem_bits)
            self._runners.put(runner)
        self._queue: queue.Queue = queue.Queue()
        self._pool = ThreadPoolExecutor(max_workers=workers)
        # Stats are written by the batcher thread and drained by the
        # client thread; lifecycle state orders submit() against
        # close() so no request can land behind the _STOP sentinel
        # (its future would never resolve).  Both disciplines are
        # annotated and enforced by `repro check --concurrency`.
        self._stats_lock = make_lock("BatchedServer._stats_lock")
        self._batch_sizes: Counter = Counter()  # repro: guarded-by(_stats_lock)
        self._queue_depths: list[int] = []      # repro: guarded-by(_stats_lock)
        self._state_lock = make_lock("BatchedServer._state_lock")
        self._closed = False                    # repro: guarded-by(_state_lock)
        self._batcher = threading.Thread(target=self._batch_loop,
                                         name="repro-batcher", daemon=True)
        self._batcher.start()

    # -- client API -----------------------------------------------------------

    def submit(self, x: np.ndarray) -> Future:
        """Enqueue one sample (no batch axis); resolves to its output."""
        request = _Request(x=np.asarray(x, dtype=np.float64),
                           future=Future(), submitted=time.perf_counter())
        request.future._repro_request = request
        # Checking _closed and enqueueing under one lock orders this
        # submit against close(): a request can never land behind the
        # _STOP sentinel, where its future would wait forever.
        with self._state_lock:
            if self._closed:
                raise ServingError("submit() on a closed server")
            self._queue.put(request)
        return request.future

    def run_requests(self, inputs: Sequence[np.ndarray],
                     ) -> ServingReport:
        """Submit every sample, wait for all, and report the window."""
        t0 = time.perf_counter()
        futures = [self.submit(x) for x in inputs]
        outputs = [f.result() for f in futures]
        seconds = time.perf_counter() - t0
        requests = [f._repro_request for f in futures]
        latencies = sorted((r.completed - r.submitted) * 1000.0
                           for r in requests)
        with self._stats_lock:
            histogram = dict(self._batch_sizes)
            depths = list(self._queue_depths)
            self._batch_sizes.clear()
            self._queue_depths.clear()
        n = len(latencies)
        batches = sum(histogram.values())
        stats = ServingStats(
            requests=n, batches=batches, seconds=seconds,
            latency_p50_ms=float(np.percentile(latencies, 50)) if n else 0.0,
            latency_p95_ms=float(np.percentile(latencies, 95)) if n else 0.0,
            latency_p99_ms=float(np.percentile(latencies, 99)) if n else 0.0,
            latency_mean_ms=float(np.mean(latencies)) if n else 0.0,
            throughput_rps=n / seconds if seconds > 0 else 0.0,
            batch_histogram=histogram,
            max_queue_depth=max(depths, default=0),
            mean_batch_size=(n / batches) if batches else 0.0,
        )
        return ServingReport(outputs=outputs, stats=stats,
                             workers=self.workers,
                             max_batch=self.max_batch,
                             compiled=self.compiled)

    def close(self) -> None:
        """Stop accepting work, drain in-flight batches, shut down."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_STOP)
        self._batcher.join()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "BatchedServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals ------------------------------------------------------------

    def _batch_loop(self) -> None:
        """Collect requests into deadline-bounded batches; dispatch."""
        while True:
            first = self._queue.get()
            if first is _STOP:
                return
            batch = [first]
            deadline = time.perf_counter() + self.max_wait_s
            stop = False
            while len(batch) < self.max_batch:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if item is _STOP:
                    stop = True
                    break
                batch.append(item)
            with self._stats_lock:
                self._queue_depths.append(self._queue.qsize())
            # Mixed sample shapes cannot share one np.stack; split the
            # batch into shape-homogeneous sub-batches (rare path).
            by_shape: dict[tuple[int, ...], list[_Request]] = {}
            for request in batch:
                by_shape.setdefault(request.x.shape, []).append(request)
            for group in by_shape.values():
                with self._stats_lock:
                    self._batch_sizes[len(group)] += 1
                self._pool.submit(self._run_batch, group)
            if stop:
                return

    def _run_batch(self, batch: list[_Request]) -> None:
        """Execute one shape-homogeneous batch on a checked-out runner."""
        runner = self._runners.get()
        try:
            stacked = np.stack([r.x for r in batch])
            result = runner.run(stacked)
            done = time.perf_counter()
            for i, request in enumerate(batch):
                request.completed = done
                request.future.set_result(result.output[i])
        except BaseException as exc:  # pragma: no cover - defensive
            for request in batch:
                request.completed = time.perf_counter()
                if not request.future.done():
                    request.future.set_exception(exc)
        finally:
            self._runners.put(runner)


def scaling_sweep(graph: GraphModel, inputs: Sequence[np.ndarray], *,
                  worker_counts: Sequence[int] = (1, 2, 4),
                  max_batch: int = 8, max_wait_ms: float = 2.0,
                  backend: str = "numpy", gemm_backend: str = "auto",
                  compiled: bool = True) -> list[dict]:
    """Throughput rows for increasing worker counts (benchmark helper)."""
    rows = []
    for workers in worker_counts:
        with BatchedServer(graph, workers=workers, max_batch=max_batch,
                           max_wait_ms=max_wait_ms, backend=backend,
                           gemm_backend=gemm_backend,
                           compiled=compiled) as server:
            report = server.run_requests(inputs)
        rows.append({
            "workers": workers,
            "requests": report.stats.requests,
            "throughput_rps": report.stats.throughput_rps,
            "latency_p50_ms": report.stats.latency_p50_ms,
            "latency_p95_ms": report.stats.latency_p95_ms,
            "mean_batch_size": report.stats.mean_batch_size,
        })
    return rows
