"""Stateless operator kernels shared by the engine and compiled plans.

:class:`~repro.runtime.engine.InferenceEngine` executes these per call;
:mod:`repro.runtime.plan` bakes the same functions into compiled steps.
Keeping one implementation is what makes the compiled plan bit-exact
against the uncompiled engine *by construction* -- both paths run the
identical float operations in the identical order, so there is nothing
to drift.

The activation kernels use numerically stable forms: the textbook
``1 / (1 + exp(-x))`` overflows ``exp`` for large-magnitude negative
inputs (a ``RuntimeWarning`` and a spurious intermediate ``inf``), so
:func:`sigmoid` evaluates the branch whose exponent is non-positive on
each side of zero.  For ``x >= 0`` the stable form *is* the textbook
form, so existing outputs are unchanged there.
"""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic function, overflow-free over the whole float64 range.

    ``exp`` only ever sees a non-positive argument: ``exp(-x)`` where
    ``x >= 0`` and ``exp(x)`` where ``x < 0`` -- both bounded by 1.
    """
    x = np.asarray(x, dtype=np.float64)
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish ``x * sigmoid(x)`` via the stable :func:`sigmoid`."""
    x = np.asarray(x, dtype=np.float64)
    return x * sigmoid(x)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu6(x: np.ndarray) -> np.ndarray:
    return np.clip(x, 0.0, 6.0)


def pool2d(x: np.ndarray, kernel: int, stride: int, reducer) -> np.ndarray:
    """Windowed reduction over NCHW via a zero-copy strided view."""
    n, c, h, w = x.shape
    oh = (h - kernel) // stride + 1
    ow = (w - kernel) // stride + 1
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x, shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    return reducer(windows, axis=(-2, -1))


def max_pool2d(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    return pool2d(x, kernel, stride, np.max)


def avg_pool2d(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    return pool2d(x, kernel, stride, np.mean)


def global_avg_pool2d(x: np.ndarray) -> np.ndarray:
    return x.mean(axis=(2, 3))


def flatten(x: np.ndarray) -> np.ndarray:
    return x.reshape(x.shape[0], -1)


def channel_scale(x: np.ndarray, s: np.ndarray) -> np.ndarray:
    """Squeeze-excite gating: NCHW features x (N, C) gates."""
    return x * s[:, :, None, None]


def batchnorm_params(tensors: dict, eps: float
                     ) -> tuple[np.ndarray, np.ndarray]:
    """Fold BN statistics into per-channel ``(scale, shift)`` NCHW arrays.

    Pure function of the node constants: the engine evaluates it on
    every call, a compiled plan once at compile time -- same inputs,
    same float operations, bitwise-identical arrays either way.
    """
    std = np.sqrt(tensors["running_var"] + eps)
    scale = (tensors["gamma"] / std).reshape(1, -1, 1, 1)
    shift = (tensors["beta"] - tensors["gamma"] * tensors["running_mean"]
             / std).reshape(1, -1, 1, 1)
    return scale, shift


def apply_batchnorm(x: np.ndarray, scale: np.ndarray,
                    shift: np.ndarray) -> np.ndarray:
    return x * scale + shift
