"""Process-sharded serving: one dispatcher, N shared-nothing workers.

The threaded pool in :mod:`repro.runtime.serving` only scales while its
workers sit inside GIL-releasing numpy sections; on a multi-core host
the measured worker scaling is flat to negative (see
``BENCH_serving.json``).  This module shards the *execution* across
processes while keeping every control-plane concern -- admission queue,
deadlines, micro-batching, circuit breaker, stats -- in the dispatcher:

* :class:`ShardedServer` subclasses :class:`~repro.runtime.serving.
  BatchedServer` and replaces only the runner construction: each
  runner's primary backend becomes a :class:`_WorkerHandle`, a proxy
  whose ``run(batch)`` round-trips over a dedicated pipe to a worker
  process.  The pipe wait releases the GIL, so the dispatcher's worker
  threads overlap fully;
* the compiled :class:`~repro.runtime.plan.GraphPlan` is exported
  **once** into a shared-memory segment
  (:func:`~repro.runtime.plan.export_plan`); every worker attaches and
  rebuilds its plan directly on the shared buffers
  (:func:`~repro.runtime.plan.attach_plan`), then releases its source
  graph -- N workers, one copy of the weights, no per-worker packing;
* workers are started with the ``spawn`` method: the dispatcher runs
  batcher and pool threads, and forking a multi-threaded process is
  undefined behaviour waiting to happen;
* a worker crash (including ``kill -9``) surfaces as a broken pipe;
  the handle respawns the worker against the *still-live* segment and
  re-runs the batch once, tagging the result with a synthetic
  ``respawn`` fault event so the existing
  :class:`~repro.runtime.overload.CircuitBreaker` accounting sees it:
  repeated crashes open the circuit and batches degrade to the
  dispatcher-local reference engines until a half-open probe passes.
  Futures never leak -- the retried batch resolves them normally;
* lifecycle: ``close()`` drains the dispatcher (inherited), stops every
  worker, then closes **and unlinks** the segment.  Workers only ever
  close their mapping; the dispatcher owns the unlink.

When process sharding cannot work in the current environment (no spawn
start method, shared memory unavailable in a sandbox), construction
raises :class:`ShardingUnavailable`; the
:func:`~repro.runtime.serving.serve` factory catches exactly that and
degrades to the threaded pool with a structured
:class:`~repro.robustness.errors.ReliabilityWarning`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Optional

from repro.core.errors import ReproError
from repro.core.locks import make_lock
from repro.robustness.recovery import FaultEvent

from .engine import InferenceEngine, InferenceResult, LayerStats
from .graph import GraphModel
from .plan import (
    PlanShareError,
    SharedPlan,
    SharedPlanHandle,
    attach_plan,
    compile_graph,
    export_plan,
    plan_share_stats,
)
from .serving import BatchedServer, ServingError, _Runner


class ShardingUnavailable(ReproError, RuntimeError):
    """Process sharding cannot run in this environment (no usable
    multiprocessing start method, shared memory unavailable, worker
    startup failed).  The :func:`~repro.runtime.serving.serve` factory
    treats this as a degradation signal, not a hard error."""


class WorkerCrashError(ReproError, RuntimeError):
    """A worker process died while a batch was in flight."""


def _rss_bytes() -> int:
    """Resident set size of this process in bytes (0 if unreadable)."""
    try:
        with open("/proc/self/statm", encoding="ascii") as fh:
            pages = int(fh.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        return 0


def _worker_main(conn, handle: SharedPlanHandle) -> None:
    """Entry point of one worker process (``spawn`` start method).

    Attaches the shared plan, releases the rebuilt source graph (the
    float64 weights would otherwise stay resident per worker), then
    serves ``run``/``stats`` requests off its pipe until ``stop`` or a
    dispatcher disappearance (EOF).  Exceptions travel back as
    ``("error", text)`` tuples; the worker never dies on a bad batch.
    """
    attached = None
    try:
        try:
            attached = attach_plan(handle)
            attached.plan.release_source()
        except Exception as exc:
            conn.send(("failed", f"{type(exc).__name__}: {exc}"))
            return
        conn.send(("ready", os.getpid()))
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "stop":
                return
            try:
                if op == "run":
                    result = attached.plan.run(msg[1])
                    stats = [(s.op, s.config, s.macs, s.cycles, s.layer)
                             for s in result.layer_stats]
                    conn.send(("ok", (result.output, stats)))
                elif op == "stats":
                    payload = plan_share_stats(attached.plan,
                                               attached.buf)
                    payload["pid"] = os.getpid()
                    payload["rss_bytes"] = _rss_bytes()
                    conn.send(("ok", payload))
                else:
                    conn.send(("error", f"unknown worker op {op!r}"))
            except Exception as exc:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
    except (EOFError, OSError, KeyboardInterrupt):
        return  # dispatcher gone or interrupted: exit quietly
    finally:
        if attached is not None:
            attached.close()
        conn.close()


class _WorkerHandle:
    """Dispatcher-side proxy for one worker process.

    Presents the same ``run(stacked) -> InferenceResult`` surface as a
    compiled plan, so :meth:`BatchedServer._run_batch` uses it
    unchanged.  Each handle owns a dedicated duplex pipe; the runner-
    checkout discipline means at most one dispatcher thread uses a
    handle at a time, but every pipe/process access still happens under
    ``_lock`` so the concurrency analyzer (and the half-open probe
    path) have an enforced contract rather than a convention.
    """

    def __init__(self, ctx, handle: SharedPlanHandle, index: int, *,
                 spawn_timeout_s: float = 60.0) -> None:
        self._ctx = ctx
        self._handle = handle
        self.index = index
        self._spawn_timeout_s = spawn_timeout_s
        self._lock = make_lock(f"_WorkerHandle[{index}]._lock")
        self._proc = None       # repro: guarded-by(_lock)
        self._conn = None       # repro: guarded-by(_lock)
        self._respawns = 0      # repro: guarded-by(_lock)
        with self._lock:
            self._spawn()

    # -- lifecycle ----------------------------------------------------

    def _spawn(self) -> None:
        """Start the worker and wait for its attach handshake.

        Callers hold ``_lock``.  A worker that cannot attach the shared
        segment reports ``("failed", reason)`` and the spawn raises
        :class:`ShardingUnavailable` -- at construction time the server
        factory turns that into a threaded-pool fallback.
        """
        parent, child = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main, args=(child, self._handle),
            name=f"repro-shard-{self.index}", daemon=True)
        try:
            proc.start()
        except (OSError, ValueError) as exc:
            parent.close()
            child.close()
            raise ShardingUnavailable(
                f"cannot start worker {self.index}: {exc}") from exc
        child.close()
        try:
            if not parent.poll(self._spawn_timeout_s):
                raise ShardingUnavailable(
                    f"worker {self.index} did not report ready within "
                    f"{self._spawn_timeout_s:.0f}s")
            msg = parent.recv()
        except (EOFError, OSError) as exc:
            parent.close()
            proc.terminate()
            proc.join(timeout=5.0)
            raise ShardingUnavailable(
                f"worker {self.index} died during startup: {exc}"
            ) from exc
        except ShardingUnavailable:
            parent.close()
            proc.terminate()
            proc.join(timeout=5.0)
            raise
        if msg[0] != "ready":
            parent.close()
            proc.join(timeout=5.0)
            raise ShardingUnavailable(
                f"worker {self.index} failed to attach the shared "
                f"plan: {msg[1]}")
        self._proc = proc
        self._conn = parent

    def _respawn(self) -> None:
        """Replace a dead worker (callers hold ``_lock``).

        The shared segment outlives its attachers, so the replacement
        attaches the *same* weights -- no repacking, no second copy.
        """
        if self._conn is not None:
            self._conn.close()
        if self._proc is not None:
            self._proc.join(timeout=1.0)
            if self._proc.is_alive():
                self._proc.terminate()
                self._proc.join(timeout=5.0)
        self._conn = None
        self._proc = None
        self._respawns += 1
        self._spawn()

    def stop(self, timeout_s: float = 10.0) -> None:
        """Ask the worker to exit; escalate to terminate on timeout."""
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.send(("stop",))
                except (OSError, ValueError):
                    pass  # already dead; join/terminate below applies
                self._conn.close()
                self._conn = None
            if self._proc is not None:
                self._proc.join(timeout=timeout_s)
                if self._proc.is_alive():
                    self._proc.terminate()
                    self._proc.join(timeout=timeout_s)
                self._proc = None

    # -- the plan surface ---------------------------------------------

    def run(self, stacked) -> InferenceResult:
        """Execute one batch on the worker; respawn + retry on crash.

        A successful retry appends a synthetic ``respawn`` fault event
        so the circuit breaker counts the crash; the batch's futures
        resolve from the retried result, keeping the zero-lost-futures
        invariant.  A second crash on the retry propagates as
        :class:`WorkerCrashError` (with the breaker armed, subsequent
        batches route to the reference engines).
        """
        with self._lock:
            try:
                return self._roundtrip(stacked)
            except WorkerCrashError:
                self._respawn()
                result = self._roundtrip(stacked)
                result.fault_events.append(FaultEvent(
                    layer=f"shard-worker-{self.index}", op="serve",
                    detected_by="pipe", action="respawn",
                    message="worker process died mid-batch; respawned "
                            "on the shared segment and re-ran the "
                            "batch"))
                return result

    def _roundtrip(self, stacked) -> InferenceResult:
        """One send/recv cycle (callers hold ``_lock``)."""
        conn = self._conn
        try:
            conn.send(("run", stacked))
            status, payload = conn.recv()
        except (EOFError, OSError, ValueError) as exc:
            raise WorkerCrashError(
                f"worker {self.index} died mid-batch: "
                f"{type(exc).__name__}") from exc
        if status != "ok":
            raise ServingError(
                f"worker {self.index} failed the batch: {payload}")
        output, stats = payload
        result = InferenceResult(output=output, guard_level="off")
        result.layer_stats.extend(
            LayerStats(op=op, config=config, macs=macs, cycles=cycles,
                       layer=layer)
            for op, config, macs, cycles, layer in stats)
        return result

    def stats(self) -> dict:
        """Worker-side zero-copy accounting (plan bytes, RSS, pid)."""
        with self._lock:
            try:
                self._conn.send(("stats",))
                status, payload = self._conn.recv()
            except (EOFError, OSError, ValueError) as exc:
                raise WorkerCrashError(
                    f"worker {self.index} died during stats: "
                    f"{type(exc).__name__}") from exc
            if status != "ok":
                raise ServingError(
                    f"worker {self.index} stats failed: {payload}")
            payload["respawns"] = self._respawns
            return payload

    def pid(self) -> Optional[int]:
        """The worker's OS pid (crash-injection tests kill it)."""
        with self._lock:
            return self._proc.pid if self._proc is not None else None


class ShardedServer(BatchedServer):
    """Process-sharded :class:`BatchedServer`: same API, real cores.

    The dispatcher (this object) keeps the whole overload stack --
    admission queue, deadlines, batching, breaker, stats -- and fans
    shape-homogeneous batches out to worker processes that execute a
    zero-copy shared plan.  Construction raises
    :class:`ShardingUnavailable` when the environment cannot support
    it; :func:`~repro.runtime.serving.serve` turns that into a threaded
    fallback.  Only compiled, guard-free configurations shard: guards
    and fault injection need the engine recovery machinery and stay on
    the threaded pool.

    Extra parameter ``start_method`` defaults to ``"spawn"`` -- the
    dispatcher is multi-threaded, and forking a multi-threaded process
    can deadlock in the child.
    """

    def __init__(self, graph: GraphModel, *, compiled: bool = True,
                 guard_level: str = "off", fault_plan=None,
                 recovery=None, start_method: str = "spawn",
                 **kwargs) -> None:
        if not compiled or guard_level != "off" or fault_plan is not None:
            raise ServingError(
                "process sharding serves compiled plans only; guards "
                "and fault injection need the engine's recovery "
                "machinery -- use the threaded BatchedServer")
        self._start_method = start_method
        self._shared: Optional[SharedPlan] = None
        self._handles: list[_WorkerHandle] = []
        super().__init__(graph, compiled=True, guard_level="off",
                         fault_plan=None, recovery=recovery, **kwargs)

    # -- runner construction hook -------------------------------------

    def _setup_runners(self, graph: GraphModel, *, guarded: bool,
                       backend: str, gemm_backend: str,
                       accmem_bits: int, guard_level: str,
                       fault_plan, recovery) -> None:
        try:
            ctx = mp.get_context(self._start_method)
        except ValueError as exc:
            raise ShardingUnavailable(
                f"multiprocessing start method "
                f"{self._start_method!r} unavailable: {exc}") from exc
        plan = compile_graph(graph, backend=backend,
                             gemm_backend=gemm_backend,
                             accmem_bits=accmem_bits,
                             pack_cache=self.pack_cache,
                             tuned=self.tuned, tune_cache=self.tune_cache)
        try:
            self._shared = export_plan(plan)
        except PlanShareError as exc:
            raise ShardingUnavailable(str(exc)) from exc
        ok = False
        try:
            for index in range(self.workers):
                worker = _WorkerHandle(ctx, self._shared.handle, index)
                self._handles.append(worker)
                reference = None
                if self._breaker is not None:
                    reference = InferenceEngine(graph, backend="numpy",
                                                accmem_bits=accmem_bits)
                self._runners.put(_Runner(primary=worker,
                                          reference=reference))
            ok = True
        finally:
            if not ok:
                self._teardown_processes()

    # -- lifecycle ----------------------------------------------------

    def close(self) -> None:
        """Drain the dispatcher, stop every worker, unlink the segment."""
        super().close()
        self._teardown_processes()

    def _teardown_processes(self) -> None:
        for worker in self._handles:
            worker.stop()
        self._handles = []
        if self._shared is not None:
            self._shared.close()
            self._shared.unlink()
            self._shared = None

    # -- observability ------------------------------------------------

    def worker_pids(self) -> list[Optional[int]]:
        return [worker.pid() for worker in self._handles]

    def plan_memory_report(self) -> dict:
        """Zero-copy proof per worker: one segment, N attached views.

        Checks every runner out of the pool first so the pipes are
        quiescent -- call between measurement windows, not mid-load.
        ``plan_bytes_private`` should be 0 for every worker; the
        segment holds the single shared copy.
        """
        runners = [self._runners.get() for _ in range(self.workers)]
        try:
            rows = [runner.primary.stats() for runner in runners
                    if isinstance(runner.primary, _WorkerHandle)]
        finally:
            for runner in runners:
                self._runners.put(runner)
        return {
            "segment_bytes": (self._shared.handle.total_bytes
                              if self._shared is not None else 0),
            "dispatcher_rss_bytes": _rss_bytes(),
            "workers": rows,
        }


__all__ = [
    "ShardedServer",
    "ShardingUnavailable",
    "WorkerCrashError",
]
